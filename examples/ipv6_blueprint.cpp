// ipv6_blueprint: the paper's concluding thought, run end to end on the
// real library types.
//
// "When IPv6 becomes popular, brute forcing the address space becomes
// infeasible. [...] Perhaps TASS can offer a blueprint for tackling that
// challenge as well." (§6)
//
// There is no full scan to seed from in v6 — 2^128 addresses — so the
// seed becomes a *hitlist* (active addresses from passive measurements,
// DNS, or prior studies, cf. Plonka & Berger). The TASS loop is the same
// pipeline the v4 system runs, on the same family-generic substrate:
//
//   pfx2as6 -> RoutingTable6 (l/m split + Figure-2 deaggregation)
//           -> PrefixPartition6 (flat LPM attribution)
//           -> rank_by_density (hosts per /64, the v6 rho)
//           -> select_by_density (the paper's phi stopping rule)
//           -> ScanScope6 (selection minus blocklist, candidate set,
//              ZMap-style cyclic-group permutation)
//           -> TSIM seal + zero-copy reload (StateImage6)
//
// Earlier revisions of this demo hand-rolled attribution and ranking
// over a std::map; everything below is the production path.
#include <cstdio>
#include <string>
#include <vector>

#include "bgp/pfx2as.hpp"
#include "bgp/table6.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "report/table.hpp"
#include "scan/blocklist.hpp"
#include "scan/scope6.hpp"
#include "state/image.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

// A miniature announced table (documentation space, varying lengths),
// in pfx2as6 text form: the /32 covers several announced more-specifics,
// so the m-partition genuinely exercises the 128-bit deaggregation.
constexpr const char* kAnnounced =
    "2001:db8::\t32\t64500\n"
    "2001:db8:1000::\t36\t64501\n"
    "2001:db8:2000::\t36\t64502\n"
    "2001:db8:3000::\t40\t64503\n"
    "2001:db8:4000::\t44\t64504\n"
    "2001:db8:5000::\t48\t64505\n"
    "2001:db8:6000::\t48\t64506\n"
    "2001:db8:7000::\t48\t64507\n"
    "2001:db8:8000::\t33\t64508\n"
    "2001:db8:f000::\t52\t64509\n";

// Synthetic hitlist: hosts cluster in a few prefixes with low-entropy
// interface identifiers (the structure real v6 hitlists show).
std::vector<net::Ipv6Address> synthetic_hitlist(util::Rng& rng) {
  std::vector<net::Ipv6Address> hitlist;
  const struct {
    const char* base;
    int hosts;
  } clusters[] = {
      {"2001:db8:5000::", 500},   // dense /48 (hosting)
      {"2001:db8:f000::", 300},   // dense /52
      {"2001:db8:1000::", 120},   // sparse /36
      {"2001:db8:8000::", 60},    // very sparse /33
  };
  for (const auto& cluster : clusters) {
    const net::Ipv6Address base =
        net::Ipv6Address::parse_or_throw(cluster.base);
    for (int i = 0; i < cluster.hosts; ++i) {
      // A handful of /64 subnets per site (varying the last group of the
      // network half) with ::1, ::2, ... style low interface identifiers.
      const std::uint64_t subnet = rng.bounded(16);
      hitlist.emplace_back(base.hi() | subnet,
                           1 + rng.bounded(1000));
    }
  }
  return hitlist;
}

}  // namespace

int main() {
  util::Rng rng(2026);

  // Ingest the announced table and derive the deaggregated m-partition —
  // the same Figure-2 construction the v4 pipeline uses.
  const auto records = bgp::parse_pfx2as6(kAnnounced);
  const auto table = bgp::RoutingTable6::from_pfx2as(records);
  const bgp::PrefixPartition6 partition = table.m_partition();
  const auto hitlist = synthetic_hitlist(rng);
  std::printf(
      "announced v6 prefixes: %zu (%zu l-prefixes), m-partition cells: "
      "%zu, hitlist seeds: %zu\n\n",
      table.size(), table.l_prefixes().size(), partition.size(),
      hitlist.size());

  // Attribute hitlist hosts through the flat LPM substrate (the same
  // tally kernel the sharded v4 attribution runs per shard).
  std::vector<std::uint32_t> counts(partition.size(), 0);
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  partition.tally_cells(hitlist, counts, attributed, unattributed);
  std::printf("attributed %llu hitlist hosts (%llu outside announced)\n",
              static_cast<unsigned long long>(attributed),
              static_cast<unsigned long long>(unattributed));

  // Density ranking: hosts per /64 (the v6 rho), the paper's ordering.
  const core::DensityRanking6 ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);

  report::Table out({"announced prefix", "seed hosts", "density per /64",
                     "cumulative host coverage"});
  std::uint64_t cumulative = 0;
  for (const core::RankedPrefix6& entry : ranking.ranked) {
    cumulative += entry.hosts;
    out.add_row({entry.prefix.to_string(),
                 report::Table::cell(entry.hosts),
                 report::Table::cell(entry.density, 6),
                 report::Table::cell(static_cast<double>(cumulative) /
                                         static_cast<double>(
                                             ranking.total_hosts),
                                     3)});
  }
  std::printf("%s", out.to_text().c_str());

  // Selection: the paper's stopping rule at phi = 0.95.
  core::SelectionParams params;
  params.phi = 0.95;
  const core::Selection6 selection =
      core::select_by_density(ranking, params);
  std::printf(
      "\nselection: k=%zu prefixes cover %.1f%% of known-active hosts "
      "with %llu of %llu announced /64s (%.4f%%)\n",
      selection.k(), 100.0 * selection.host_coverage(),
      static_cast<unsigned long long>(selection.selected_addresses),
      static_cast<unsigned long long>(selection.advertised_addresses),
      100.0 * selection.space_coverage());

  // Scan scope: selection minus blocklist, candidates from the hitlist,
  // probed in ZMap cyclic-group order sized to the candidate set. The
  // blocked /64 is one of the hitlist's populated subnets, so the
  // filter visibly drops candidates below the hitlist size.
  scan::Blocklist blocklist;
  blocklist.add(net::Ipv6Prefix::parse_or_throw("2001:db8:5000:3::/64"));
  scan::ScanScope6 scope(selection.prefixes, blocklist);
  scope.add_candidates(hitlist);
  auto permutation = scope.permutation(/*seed=*/7);
  std::size_t probes = 0;
  while (scope.next_target(permutation)) ++probes;
  std::printf(
      "scope: %zu of %zu hitlist targets admitted (blocklist + "
      "selection filtered %zu), full permutation cycle visited %zu "
      "(group modulus %llu)\n",
      scope.candidate_count(), hitlist.size(),
      hitlist.size() - scope.candidate_count(), probes,
      static_cast<unsigned long long>(permutation.modulus()));

  // Seal the derived state into a TSIM image and reload it zero-copy —
  // the same millisecond cold-start path v4 workers use.
  const std::string image_path = "demo6.tsim";
  state::save_image(image_path, partition, ranking);
  const auto image = state::StateImage6::load(image_path);
  image.verify();
  const auto reencoded =
      state::encode_image(image.partition(), image.ranking().materialize());
  const auto original = state::encode_image(partition, ranking);
  std::printf(
      "\nTSIM: sealed %zu cells / %zu ranked prefixes into %s (%zu "
      "bytes, %s), reloaded zero-copy, re-encode bit-identical: %s\n",
      image.info().cell_count, image.info().ranked_count,
      image_path.c_str(), image.info().file_bytes,
      net::address_family_name(image.info().family).data(),
      reencoded == original ? "yes" : "NO (BUG)");

  std::printf(
      "\nBlueprint: scanning candidate addresses only in the densest "
      "prefixes covers most known-active v6 hosts while touching a "
      "vanishing fraction of announced space — the TASS trade-off, seeded "
      "from hitlists instead of full scans, now end to end on the "
      "family-generic production pipeline.\n");
  return reencoded == original ? 0 : 1;
}
