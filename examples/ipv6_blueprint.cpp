// ipv6_blueprint: the paper's concluding thought, sketched end to end.
//
// "When IPv6 becomes popular, brute forcing the address space becomes
// infeasible. [...] Perhaps TASS can offer a blueprint for tackling that
// challenge as well." (§6)
//
// There is no full scan to seed from in v6 — 2^128 addresses — so the
// seed becomes a *hitlist* (active addresses from passive measurements,
// DNS, or prior studies, cf. Plonka & Berger). The TASS blueprint still
// applies: attribute the seed hosts to announced prefixes, rank prefixes
// by density per /64 (the v6 unit of allocation), and scan the densest
// prefixes' candidate addresses first.
//
// This example runs the blueprint over a synthetic announced-v6 table and
// hitlist, entirely with the library's Ipv6 primitives.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "net/ipv6.hpp"
#include "report/table.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

struct AnnouncedV6 {
  net::Ipv6Prefix prefix;
  std::uint32_t origin_as;
};

// A miniature announced table (documentation space, varying lengths).
std::vector<AnnouncedV6> announced_table() {
  const struct {
    const char* prefix;
    std::uint32_t asn;
  } rows[] = {
      {"2001:db8::/32", 64500},        {"2001:db8:1000::/36", 64501},
      {"2001:db8:2000::/36", 64502},   {"2001:db8:3000::/40", 64503},
      {"2001:db8:4000::/44", 64504},   {"2001:db8:5000::/48", 64505},
      {"2001:db8:6000::/48", 64506},   {"2001:db8:7000::/48", 64507},
      {"2001:db8:8000::/33", 64508},   {"2001:db8:f000::/52", 64509},
  };
  std::vector<AnnouncedV6> table;
  for (const auto& row : rows) {
    table.push_back({net::Ipv6Prefix::parse_or_throw(row.prefix), row.asn});
  }
  return table;
}

// Synthetic hitlist: hosts cluster in a few prefixes with low-entropy
// interface identifiers (the structure real v6 hitlists show).
std::vector<net::Ipv6Address> synthetic_hitlist(util::Rng& rng) {
  std::vector<net::Ipv6Address> hitlist;
  const struct {
    const char* base;
    int hosts;
  } clusters[] = {
      {"2001:db8:5000::", 500},   // dense /48 (hosting)
      {"2001:db8:f000::", 300},   // dense /52
      {"2001:db8:1000::", 120},   // sparse /36
      {"2001:db8:8000::", 60},    // very sparse /33
  };
  for (const auto& cluster : clusters) {
    const net::Ipv6Address base =
        net::Ipv6Address::parse_or_throw(cluster.base);
    for (int i = 0; i < cluster.hosts; ++i) {
      // A handful of /64 subnets per site (varying the last group of the
      // network half) with ::1, ::2, ... style low interface identifiers.
      const std::uint64_t subnet = rng.bounded(16);
      hitlist.emplace_back(base.hi() | subnet,
                           1 + rng.bounded(1000));
    }
  }
  return hitlist;
}

}  // namespace

int main() {
  util::Rng rng(2026);
  const auto table = announced_table();
  const auto hitlist = synthetic_hitlist(rng);
  std::printf("announced v6 prefixes: %zu, hitlist seeds: %zu\n\n",
              table.size(), hitlist.size());

  // Attribute hitlist hosts to their longest covering announced prefix.
  std::map<net::Ipv6Prefix, std::uint64_t> hosts;
  for (const net::Ipv6Address addr : hitlist) {
    const AnnouncedV6* best = nullptr;
    for (const AnnouncedV6& entry : table) {
      if (entry.prefix.contains(addr) &&
          (best == nullptr ||
           entry.prefix.length() > best->prefix.length())) {
        best = &entry;
      }
    }
    if (best != nullptr) ++hosts[best->prefix];
  }

  // Density per /64: hosts / 2^(64 - len) for len <= 64 — the v6
  // analogue of the paper's rho.
  struct Ranked {
    net::Ipv6Prefix prefix;
    std::uint64_t count;
    double density_per_slash64;
  };
  std::vector<Ranked> ranking;
  std::uint64_t total = 0;
  for (const auto& [prefix, count] : hosts) {
    const double slash64s =
        std::pow(2.0, std::max(0, 64 - prefix.length()));
    ranking.push_back({prefix, count,
                       static_cast<double>(count) / slash64s});
    total += count;
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const Ranked& a, const Ranked& b) {
              return a.density_per_slash64 > b.density_per_slash64;
            });

  report::Table out({"announced prefix", "seed hosts", "density per /64",
                     "cumulative host coverage"});
  std::uint64_t cumulative = 0;
  for (const Ranked& entry : ranking) {
    cumulative += entry.count;
    out.add_row({entry.prefix.to_string(),
                 report::Table::cell(entry.count),
                 report::Table::cell(entry.density_per_slash64, 6),
                 report::Table::cell(static_cast<double>(cumulative) /
                                         static_cast<double>(total),
                                     3)});
  }
  std::printf("%s", out.to_text().c_str());
  std::printf(
      "\nBlueprint: scanning candidate addresses only in the densest "
      "prefixes covers most known-active v6 hosts while touching a "
      "vanishing fraction of announced space — the TASS trade-off, seeded "
      "from hitlists instead of full scans.\n");
  return 0;
}
