// scan_planner: turn a routing table + seed scan into a concrete periodic
// scan plan — the operational tool a scanning team would run.
//
// Usage:
//   ./scan_planner [pfx2as_file] [protocol] [phi] [less|more]
//
// With no pfx2as file, a synthetic table is generated and also written to
// ./demo.pfx2as so the file-driven path can be replayed. The seed scan is
// simulated from the census model; with real infrastructure it would be
// the result of one full ZMap sweep. The plan reports the selected
// prefixes, per-cycle probe volume, packet estimate and expected duration,
// and emits the first targets in ZMap permutation order.
#include <cstdio>
#include <string>

#include "core/tass.hpp"
#include "report/table.hpp"

namespace {

using namespace tass;

constexpr double kProbesPerSecond = 100'000;  // a polite ZMap rate

}  // namespace

int main(int argc, char** argv) {
  const std::string pfx2as_path = argc > 1 ? argv[1] : "";
  const census::Protocol protocol =
      argc > 2 ? census::parse_protocol(argv[2]) : census::Protocol::kHttps;
  const double phi = argc > 3 ? std::stod(argv[3]) : 0.95;
  const core::PrefixMode mode =
      argc > 4 && std::string(argv[4]) == "less" ? core::PrefixMode::kLess
                                                 : core::PrefixMode::kMore;

  // 1. Routing table: from file, or synthetic (then saved for replay).
  std::shared_ptr<const census::Topology> topology;
  if (!pfx2as_path.empty()) {
    const auto records = bgp::load_pfx2as(pfx2as_path, /*strict=*/false);
    topology = census::topology_from_table(
        bgp::RoutingTable::from_pfx2as(records), /*seed=*/2016);
    std::printf("loaded %zu pfx2as records from %s\n", records.size(),
                pfx2as_path.c_str());
  } else {
    census::TopologyParams params;
    params.seed = 2016;
    params.l_prefix_count = 2000;
    topology = census::generate_topology(params);
    bgp::save_pfx2as("demo.pfx2as", topology->table.to_pfx2as());
    std::printf("generated synthetic table (saved to demo.pfx2as)\n");
  }

  // 2. Seed scan (simulated full sweep at t0).
  census::SeriesParams series_params;
  series_params.months = 1;
  series_params.host_scale = 0.01;
  const auto series =
      census::CensusSeries::generate(topology, protocol, series_params);
  const census::Snapshot& seed = series.month(0);

  // 3. TASS selection.
  const auto ranking = core::rank_by_density(seed, mode);
  core::SelectionParams params;
  params.phi = phi;
  const auto selection = core::select_by_density(ranking, params);

  // 4. The plan.
  const auto cost = scan::CostModel::for_protocol(protocol);
  const double packets = cost.packets(
      selection.selected_addresses,
      static_cast<std::uint64_t>(static_cast<double>(seed.total_hosts()) *
                                 selection.host_coverage()));
  report::Table table({"plan item", "value"});
  table.add_row({"protocol", std::string(census::protocol_name(protocol)) +
                                 "/" +
                                 std::to_string(
                                     census::protocol_port(protocol))});
  table.add_row({"prefix granularity",
                 std::string(core::prefix_mode_name(mode)) + " specific"});
  table.add_row({"host coverage target (phi)", report::Table::cell(phi, 2)});
  table.add_row({"selected prefixes",
                 report::Table::cell(static_cast<std::uint64_t>(
                     selection.k()))});
  table.add_row({"addresses per cycle",
                 report::Table::cell(selection.selected_addresses)});
  table.add_row({"share of announced space",
                 report::Table::cell(selection.space_coverage(), 3)});
  table.add_row({"expected host coverage at seed",
                 report::Table::cell(selection.host_coverage(), 3)});
  table.add_row({"estimated packets per cycle",
                 report::Table::cell(static_cast<std::uint64_t>(packets))});
  table.add_row(
      {"estimated duration at 100kpps",
       report::Table::cell(static_cast<double>(
                               selection.selected_addresses) /
                               kProbesPerSecond / 3600.0,
                           2) +
           " hours"});
  std::printf("\n%s", table.to_text().c_str());

  // 5. First targets in ZMap permutation order, restricted to the plan
  //    scope and the default special-use blocklist.
  const scan::ScanScope scope(selection.prefixes,
                              scan::Blocklist::default_blocklist());
  scan::TargetIterator targets(/*seed=*/42);
  std::printf("\nfirst targets in permutation order:\n");
  std::size_t shown = 0;
  while (shown < 8) {
    const auto addr = targets.next();
    if (!addr) break;
    if (!scope.contains(*addr)) continue;
    std::printf("  %s\n", addr->to_string().c_str());
    ++shown;
  }

  // 6. Dry-run the plan: replay one cycle against the seed snapshot with
  //    the sharded engine's estimate path (batched bitmap counts, one
  //    shard slot per scope chunk, process-wide thread pool) — only the
  //    totals matter for planning, so no hitlist is materialised.
  scan::EngineConfig engine_config;
  engine_config.order = scan::EngineConfig::Order::kEnumerate;
  engine_config.threads = 0;  // all hardware threads
  const scan::SnapshotOracle oracle(seed);
  const scan::ScanStats dry_run =
      scan::ScanEngine(engine_config).estimate(scope, oracle);
  std::printf(
      "\ndry run vs seed snapshot (%u threads): %llu probes, %llu hits, "
      "hitrate %.4f\n",
      util::ThreadPool::shared().thread_count(),
      static_cast<unsigned long long>(dry_run.probes_sent),
      static_cast<unsigned long long>(dry_run.responses),
      dry_run.hitrate());
  return 0;
}
