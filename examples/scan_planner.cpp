// scan_planner: turn a routing table + seed scan into a concrete periodic
// scan plan — the operational tool a scanning team would run.
//
// Usage:
//   ./scan_planner [pfx2as_file|state.tsim] [protocol] [phi] [less|more]
//
// With no input file, a synthetic table is generated and also written to
// ./demo.pfx2as so the file-driven path can be replayed. The seed scan is
// simulated from the census model; with real infrastructure it would be
// the result of one full ZMap sweep. The plan reports the selected
// prefixes, per-cycle probe volume, packet estimate and expected duration,
// and emits the first targets in ZMap permutation order.
//
// Cold-start path: every run that builds the pipeline from a table also
// seals the derived partition + ranking into ./demo.tsim; pass that
// .tsim file as the first argument and the planner mmaps the prebuilt
// state (millisecond start, shared page cache across planner processes)
// instead of re-deriving it. The census dry-run steps need the full
// topology and are skipped in image mode.
#include <cstdio>
#include <string>

#include "core/tass.hpp"
#include "report/table.hpp"
#include "state/image.hpp"

namespace {

using namespace tass;

constexpr double kProbesPerSecond = 100'000;  // a polite ZMap rate

}  // namespace

int main(int argc, char** argv) {
  const std::string input_path = argc > 1 ? argv[1] : "";
  const census::Protocol protocol =
      argc > 2 ? census::parse_protocol(argv[2]) : census::Protocol::kHttps;
  const double phi = argc > 3 ? std::stod(argv[3]) : 0.95;
  const core::PrefixMode mode =
      argc > 4 && std::string(argv[4]) == "less" ? core::PrefixMode::kLess
                                                 : core::PrefixMode::kMore;

  // 0. Fast path: a sealed state image replaces steps 1-3's derivation.
  if (input_path.ends_with(".tsim")) {
    const auto image = state::StateImage::load(input_path);
    std::printf(
        "attached state image %s (%zu cells, %zu ranked prefixes, "
        "%zu bytes; topology fingerprint %016llx)\n",
        input_path.c_str(), image.info().cell_count,
        image.info().ranked_count, image.info().file_bytes,
        static_cast<unsigned long long>(image.info().fingerprint));

    const core::DensityRankingView ranking = image.ranking();
    core::SelectionParams params;
    params.phi = phi;
    const auto selection = core::select_by_density(ranking, params);
    const auto cost = scan::CostModel::for_protocol(protocol);
    const double packets = cost.packets(
        selection.selected_addresses,
        static_cast<std::uint64_t>(
            static_cast<double>(ranking.total_hosts) *
            selection.host_coverage()));
    report::Table table({"plan item", "value"});
    table.add_row({"pipeline state", "mmap'ed image (no rebuild)"});
    table.add_row({"selected prefixes",
                   report::Table::cell(
                       static_cast<std::uint64_t>(selection.k()))});
    table.add_row({"addresses per cycle",
                   report::Table::cell(selection.selected_addresses)});
    table.add_row({"share of announced space",
                   report::Table::cell(selection.space_coverage(), 3)});
    table.add_row({"expected host coverage at seed",
                   report::Table::cell(selection.host_coverage(), 3)});
    table.add_row({"estimated packets per cycle",
                   report::Table::cell(
                       static_cast<std::uint64_t>(packets))});
    std::printf("\n%s", table.to_text().c_str());
    std::printf(
        "\n(census dry-run steps need the full topology; run the "
        "pfx2as path for those)\n");
    return 0;
  }
  const std::string pfx2as_path = input_path;

  // 1. Routing table: from file, or synthetic (then saved for replay).
  std::shared_ptr<const census::Topology> topology;
  if (!pfx2as_path.empty()) {
    const auto records = bgp::load_pfx2as(pfx2as_path, /*strict=*/false);
    topology = census::topology_from_table(
        bgp::RoutingTable::from_pfx2as(records), /*seed=*/2016);
    std::printf("loaded %zu pfx2as records from %s\n", records.size(),
                pfx2as_path.c_str());
  } else {
    census::TopologyParams params;
    params.seed = 2016;
    params.l_prefix_count = 2000;
    topology = census::generate_topology(params);
    bgp::save_pfx2as("demo.pfx2as", topology->table.to_pfx2as());
    std::printf("generated synthetic table (saved to demo.pfx2as)\n");
  }

  // 2. Seed scan (simulated full sweep at t0).
  census::SeriesParams series_params;
  series_params.months = 1;
  series_params.host_scale = 0.01;
  const auto series =
      census::CensusSeries::generate(topology, protocol, series_params);
  const census::Snapshot& seed = series.month(0);

  // 3. TASS selection.
  const auto ranking = core::rank_by_density(seed, mode);
  // Seal the derived state so the next planner start can skip steps 1-3
  // by passing demo.tsim instead of the pfx2as file. Best-effort: an
  // unwritable working directory must not cost us the plan itself.
  try {
    state::save_image("demo.tsim",
                      mode == core::PrefixMode::kMore
                          ? topology->m_partition
                          : topology->l_partition,
                      ranking);
    std::printf("sealed pipeline state to demo.tsim (replay with "
                "./scan_planner demo.tsim)\n");
  } catch (const Error& error) {
    std::fprintf(stderr, "warning: could not seal demo.tsim: %s\n",
                 error.what());
  }
  core::SelectionParams params;
  params.phi = phi;
  const auto selection = core::select_by_density(ranking, params);

  // 4. The plan.
  const auto cost = scan::CostModel::for_protocol(protocol);
  const double packets = cost.packets(
      selection.selected_addresses,
      static_cast<std::uint64_t>(static_cast<double>(seed.total_hosts()) *
                                 selection.host_coverage()));
  report::Table table({"plan item", "value"});
  table.add_row({"protocol", std::string(census::protocol_name(protocol)) +
                                 "/" +
                                 std::to_string(
                                     census::protocol_port(protocol))});
  table.add_row({"prefix granularity",
                 std::string(core::prefix_mode_name(mode)) + " specific"});
  table.add_row({"host coverage target (phi)", report::Table::cell(phi, 2)});
  table.add_row({"selected prefixes",
                 report::Table::cell(static_cast<std::uint64_t>(
                     selection.k()))});
  table.add_row({"addresses per cycle",
                 report::Table::cell(selection.selected_addresses)});
  table.add_row({"share of announced space",
                 report::Table::cell(selection.space_coverage(), 3)});
  table.add_row({"expected host coverage at seed",
                 report::Table::cell(selection.host_coverage(), 3)});
  table.add_row({"estimated packets per cycle",
                 report::Table::cell(static_cast<std::uint64_t>(packets))});
  table.add_row(
      {"estimated duration at 100kpps",
       report::Table::cell(static_cast<double>(
                               selection.selected_addresses) /
                               kProbesPerSecond / 3600.0,
                           2) +
           " hours"});
  std::printf("\n%s", table.to_text().c_str());

  // 5. First targets in ZMap permutation order, restricted to the plan
  //    scope and the default special-use blocklist.
  const scan::ScanScope scope(selection.prefixes,
                              scan::Blocklist::default_blocklist());
  scan::TargetIterator targets(/*seed=*/42);
  std::printf("\nfirst targets in permutation order:\n");
  std::size_t shown = 0;
  while (shown < 8) {
    const auto addr = targets.next();
    if (!addr) break;
    if (!scope.contains(*addr)) continue;
    std::printf("  %s\n", addr->to_string().c_str());
    ++shown;
  }

  // 6. Dry-run the plan: replay one cycle against the seed snapshot with
  //    the sharded engine's estimate path (batched bitmap counts, one
  //    shard slot per scope chunk, process-wide thread pool) — only the
  //    totals matter for planning, so no hitlist is materialised.
  scan::EngineConfig engine_config;
  engine_config.order = scan::EngineConfig::Order::kEnumerate;
  engine_config.threads = 0;  // all hardware threads
  const scan::SnapshotOracle oracle(seed);
  const scan::ScanStats dry_run =
      scan::ScanEngine(engine_config).estimate(scope, oracle);
  std::printf(
      "\ndry run vs seed snapshot (%u threads): %llu probes, %llu hits, "
      "hitrate %.4f\n",
      util::ThreadPool::shared().thread_count(),
      static_cast<unsigned long long>(dry_run.probes_sent),
      static_cast<unsigned long long>(dry_run.responses),
      dry_run.hitrate());
  return 0;
}
