// strategy_compare: the paper's section 4 experiment as a tool — compare
// full scans, address hitlists, Heidemann-style /24 sampling and TASS over
// a multi-month census series for one protocol.
//
// Usage:  ./strategy_compare [protocol] [months]
#include <cstdio>
#include <string>

#include "core/tass.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace tass;
  const census::Protocol protocol =
      argc > 1 ? census::parse_protocol(argv[1]) : census::Protocol::kCwmp;
  const int months = argc > 2 ? std::atoi(argv[2]) : 7;

  census::TopologyParams topo_params;
  topo_params.seed = 2016;
  topo_params.l_prefix_count = 4000;
  const auto topology = census::generate_topology(topo_params);

  census::SeriesParams series_params;
  series_params.months = months;
  series_params.host_scale = 0.01;
  const auto series =
      census::CensusSeries::generate(topology, protocol, series_params);
  const census::Snapshot& seed = series.month(0);

  std::printf("protocol=%s months=%d hosts(t0)=%llu announced=%.2fB\n\n",
              census::protocol_name(protocol).data(), months,
              static_cast<unsigned long long>(seed.total_hosts()),
              static_cast<double>(topology->advertised_addresses) / 1e9);

  // Build the strategy zoo.
  std::vector<std::unique_ptr<core::Strategy>> strategies;
  strategies.push_back(std::make_unique<core::FullScanStrategy>(seed));
  strategies.push_back(std::make_unique<core::HitlistStrategy>(seed));
  strategies.push_back(std::make_unique<core::RandomSampleStrategy>(
      seed, core::RandomSampleParams{}));
  for (const core::PrefixMode mode :
       {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
    for (const double phi : {1.0, 0.95}) {
      core::SelectionParams params;
      params.phi = phi;
      strategies.push_back(
          std::make_unique<core::TassStrategy>(seed, mode, params));
    }
  }

  report::Table table({"strategy", "space/cycle", "hitrate m+1",
                       "hitrate last", "efficiency vs full"});
  for (const auto& strategy : strategies) {
    const auto evaluation = core::evaluate(*strategy, series);
    const auto& cycles = evaluation.cycles;
    table.add_row(
        {strategy->name(),
         report::Table::cell(evaluation.space_fraction(), 4),
         report::Table::cell(
             cycles.size() > 1 ? cycles[1].hitrate() : 1.0, 3),
         report::Table::cell(cycles.back().hitrate(), 3),
         report::Table::cell(evaluation.efficiency_vs_full(), 2)});
  }
  std::printf("%s", table.to_text().c_str());

  std::printf(
      "\nNote: random-sample scans %.2f%% of the space and therefore finds "
      "a proportional sliver of hosts; its hitrate column reflects "
      "coverage, not estimation quality.\n",
      100.0 * static_cast<double>(
                  strategies[2]->scanned_addresses()) /
          static_cast<double>(topology->advertised_addresses));
  return 0;
}
