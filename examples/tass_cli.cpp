// tass_cli: the library as an operator tool.
//
//   tass_cli rank         <pfx2as> <addresses> [less|more] [top_n]
//   tass_cli plan         <pfx2as> <addresses> <phi> [less|more]
//   tass_cli rank6        <pfx2as6> <hitlist> [less|more] [top_n]
//   tass_cli plan6        <pfx2as6> <hitlist> <phi> [less|more]
//   tass_cli aggregate    <prefix-file>
//   tass_cli inspect      <file.mrt>
//   tass_cli state build  <pfx2as> <addresses> <out.tsim> [less|more]
//   tass_cli state build6 <pfx2as6> <hitlist> <out.tsim> [less|more]
//   tass_cli state info   <file.tsim> [--huge]
//
// `rank` attributes a scan export onto the routing table and prints the
// densest prefixes; `plan` emits the TASS selection (aggregated, one
// prefix per line on stdout, summary on stderr) ready to feed a scanner
// whitelist; `aggregate` minimises a CIDR list; `inspect` summarises an
// MRT RIB dump. `state build` runs the pfx2as -> partition -> ranking
// pipeline once and seals the derived state into a TSIM image so later
// process starts mmap it instead of rebuilding; `state info` validates
// an image of either family (header, checksum, bounds, deep audit) and
// prints its header, address family included.
//
// The *6 verbs are the IPv6 pipeline on the same family-generic
// substrate: the seed input is a hitlist (one address per line) instead
// of a scan export, and densities are hosts per /64.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "bgp/table6.hpp"
#include "census/hitlist6.hpp"
#include "core/ranking6.hpp"
#include "core/selection6.hpp"
#include "core/tass.hpp"
#include "report/table.hpp"
#include "state/image.hpp"
#include "util/strings.hpp"

namespace {

using namespace tass;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tass_cli rank         <pfx2as> <addresses> [less|more] [n]\n"
      "  tass_cli plan         <pfx2as> <addresses> <phi> [less|more]\n"
      "  tass_cli rank6        <pfx2as6> <hitlist> [less|more] [n]\n"
      "  tass_cli plan6        <pfx2as6> <hitlist> <phi> [less|more]\n"
      "  tass_cli aggregate    <prefix-file>\n"
      "  tass_cli inspect      <file.mrt>\n"
      "  tass_cli state build  <pfx2as> <addresses> <out.tsim> "
      "[less|more]\n"
      "  tass_cli state build6 <pfx2as6> <hitlist> <out.tsim> "
      "[less|more]\n"
      "  tass_cli state info   <file.tsim> [--huge]\n");
  return 2;
}

core::PrefixMode parse_mode(const std::string& text) {
  if (text == "less") return core::PrefixMode::kLess;
  if (text == "more") return core::PrefixMode::kMore;
  throw ParseError("prefix mode must be 'less' or 'more', got '" + text +
                   "'");
}

std::shared_ptr<const census::Topology> load_topology(
    const std::string& pfx2as_path) {
  const auto records = bgp::load_pfx2as(pfx2as_path, /*strict=*/false);
  auto topology = census::topology_from_table(
      bgp::RoutingTable::from_pfx2as(records), /*seed=*/1);
  std::fprintf(stderr, "loaded %zu routes; advertised %.3fB addresses\n",
               topology->table.size(),
               static_cast<double>(topology->advertised_addresses) / 1e9);
  return topology;
}

core::DensityRanking build_ranking(const census::Topology& topology,
                                   const std::string& address_path,
                                   core::PrefixMode mode) {
  const auto addresses =
      census::load_address_list(address_path, /*strict=*/false);
  const auto& partition = mode == core::PrefixMode::kMore
                              ? topology.m_partition
                              : topology.l_partition;
  const auto attribution = core::attribute(addresses, partition);
  std::fprintf(stderr,
               "attributed %llu responsive addresses (%llu outside the "
               "announced space)\n",
               static_cast<unsigned long long>(attribution.attributed),
               static_cast<unsigned long long>(attribution.unattributed));
  return core::rank_by_density(attribution.counts, partition, mode);
}

// The v6 seed pipeline: pfx2as6 -> RoutingTable6 -> chosen partition ->
// hitlist attribution -> density-per-/64 ranking.
struct Pipeline6 {
  bgp::PrefixPartition6 partition;
  core::DensityRanking6 ranking;
};

Pipeline6 build_pipeline6(const std::string& pfx2as_path,
                          const std::string& hitlist_path,
                          core::PrefixMode mode) {
  const auto records = bgp::load_pfx2as6(pfx2as_path, /*strict=*/false);
  const auto table = bgp::RoutingTable6::from_pfx2as(records);
  std::fprintf(stderr, "loaded %zu v6 routes; advertised %.3fM /64s\n",
               table.size(),
               static_cast<double>(table.advertised_units()) / 1e6);

  Pipeline6 result;
  result.partition = mode == core::PrefixMode::kMore ? table.m_partition()
                                                     : table.l_partition();
  const auto hitlist = census::load_hitlist6(hitlist_path,
                                             /*strict=*/false);
  std::vector<std::uint32_t> counts(result.partition.size(), 0);
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  result.partition.tally_cells(hitlist, counts, attributed, unattributed);
  std::fprintf(stderr,
               "attributed %llu hitlist addresses (%llu outside the "
               "announced space)\n",
               static_cast<unsigned long long>(attributed),
               static_cast<unsigned long long>(unattributed));
  result.ranking = core::rank_by_density(counts, result.partition, mode);
  return result;
}

int cmd_rank(int argc, char** argv) {
  if (argc < 4) return usage();
  const core::PrefixMode mode =
      argc > 4 ? parse_mode(argv[4]) : core::PrefixMode::kMore;
  const std::size_t top_n =
      argc > 5 ? static_cast<std::size_t>(std::stoul(argv[5])) : 20;

  const auto topology = load_topology(argv[2]);
  const auto ranking = build_ranking(*topology, argv[3], mode);

  report::Table table({"rank", "prefix", "hosts", "density",
                       "cum. host coverage", "cum. space coverage"});
  std::uint64_t hosts = 0;
  std::uint64_t space = 0;
  for (std::size_t i = 0; i < ranking.ranked.size() && i < top_n; ++i) {
    const auto& entry = ranking.ranked[i];
    hosts += entry.hosts;
    space += entry.size;
    table.add_row(
        {report::Table::cell(static_cast<std::uint64_t>(i + 1)),
         entry.prefix.to_string(), report::Table::cell(entry.hosts),
         report::Table::cell(entry.density, 6),
         report::Table::cell(static_cast<double>(hosts) /
                                 static_cast<double>(ranking.total_hosts),
                             4),
         report::Table::cell(
             static_cast<double>(space) /
                 static_cast<double>(ranking.advertised_addresses),
             4)});
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 5) return usage();
  const double phi = std::stod(argv[4]);
  const core::PrefixMode mode =
      argc > 5 ? parse_mode(argv[5]) : core::PrefixMode::kMore;

  const auto topology = load_topology(argv[2]);
  const auto ranking = build_ranking(*topology, argv[3], mode);
  core::SelectionParams params;
  params.phi = phi;
  const auto selection = core::select_by_density(ranking, params);

  // Whitelist on stdout (aggregated for compactness), summary on stderr.
  const auto compact = bgp::aggregate(selection.prefixes);
  for (const net::Prefix prefix : compact) {
    std::printf("%s\n", prefix.to_string().c_str());
  }
  std::fprintf(stderr,
               "selection: k=%zu prefixes (%zu aggregated), %.2f%% host "
               "coverage at seed, %.2f%% of announced space, %llu "
               "addresses per cycle\n",
               selection.k(), compact.size(),
               100.0 * selection.host_coverage(),
               100.0 * selection.space_coverage(),
               static_cast<unsigned long long>(
                   selection.selected_addresses));
  return 0;
}

int cmd_rank6(int argc, char** argv) {
  if (argc < 4) return usage();
  const core::PrefixMode mode =
      argc > 4 ? parse_mode(argv[4]) : core::PrefixMode::kMore;
  const std::size_t top_n =
      argc > 5 ? static_cast<std::size_t>(std::stoul(argv[5])) : 20;

  const auto pipeline = build_pipeline6(argv[2], argv[3], mode);
  const auto& ranking = pipeline.ranking;

  report::Table table({"rank", "prefix", "hosts", "density per /64",
                       "cum. host coverage"});
  std::uint64_t hosts = 0;
  for (std::size_t i = 0; i < ranking.ranked.size() && i < top_n; ++i) {
    const auto& entry = ranking.ranked[i];
    hosts += entry.hosts;
    table.add_row(
        {report::Table::cell(static_cast<std::uint64_t>(i + 1)),
         entry.prefix.to_string(), report::Table::cell(entry.hosts),
         report::Table::cell(entry.density, 6),
         report::Table::cell(static_cast<double>(hosts) /
                                 static_cast<double>(ranking.total_hosts),
                             4)});
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

int cmd_plan6(int argc, char** argv) {
  if (argc < 5) return usage();
  const double phi = std::stod(argv[4]);
  const core::PrefixMode mode =
      argc > 5 ? parse_mode(argv[5]) : core::PrefixMode::kMore;

  const auto pipeline = build_pipeline6(argv[2], argv[3], mode);
  core::SelectionParams params;
  params.phi = phi;
  const auto selection = core::select_by_density(pipeline.ranking, params);

  // Whitelist on stdout, summary on stderr (no v6 aggregation pass yet;
  // selections are already short — k densest prefixes).
  for (const net::Ipv6Prefix prefix : selection.prefixes) {
    std::printf("%s\n", prefix.to_string().c_str());
  }
  std::fprintf(stderr,
               "selection: k=%zu prefixes, %.2f%% host coverage at seed, "
               "%.4f%% of announced /64s (%llu /64s per cycle)\n",
               selection.k(), 100.0 * selection.host_coverage(),
               100.0 * selection.space_coverage(),
               static_cast<unsigned long long>(
                   selection.selected_addresses));
  return 0;
}

int cmd_aggregate(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in(argv[2]);
  if (!in) throw Error(std::string("cannot open ") + argv[2]);
  std::vector<net::Prefix> prefixes;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    prefixes.push_back(net::Prefix::parse_or_throw(trimmed));
  }
  const auto compact = bgp::aggregate(prefixes);
  for (const net::Prefix prefix : compact) {
    std::printf("%s\n", prefix.to_string().c_str());
  }
  std::fprintf(stderr, "%zu prefixes -> %zu (covering %llu addresses)\n",
               prefixes.size(), compact.size(),
               static_cast<unsigned long long>(bgp::union_size(compact)));
  return 0;
}

int cmd_state_build(int argc, char** argv) {
  if (argc < 6) return usage();
  const core::PrefixMode mode =
      argc > 6 ? parse_mode(argv[6]) : core::PrefixMode::kMore;
  const std::string out_path = argv[5];

  const auto topology = load_topology(argv[3]);
  const auto ranking = build_ranking(*topology, argv[4], mode);
  const auto& partition = mode == core::PrefixMode::kMore
                              ? topology->m_partition
                              : topology->l_partition;
  state::save_image(out_path, partition, ranking);

  const auto image = state::StateImage::load(out_path);
  std::fprintf(stderr,
               "sealed %zu cells / %zu ranked prefixes into %s (%zu "
               "bytes, fingerprint %016llx); workers can now mmap it "
               "instead of rebuilding\n",
               image.info().cell_count, image.info().ranked_count,
               out_path.c_str(), image.info().file_bytes,
               static_cast<unsigned long long>(image.info().fingerprint));
  return 0;
}

int cmd_state_build6(int argc, char** argv) {
  if (argc < 6) return usage();
  const core::PrefixMode mode =
      argc > 6 ? parse_mode(argv[6]) : core::PrefixMode::kMore;
  const std::string out_path = argv[5];

  const auto pipeline = build_pipeline6(argv[3], argv[4], mode);
  state::save_image(out_path, pipeline.partition, pipeline.ranking);

  const auto image = state::StateImage6::load(out_path);
  std::fprintf(stderr,
               "sealed %zu cells / %zu ranked prefixes into %s (%zu "
               "bytes, %s, fingerprint %016llx); workers can now mmap "
               "it instead of rebuilding\n",
               image.info().cell_count, image.info().ranked_count,
               out_path.c_str(), image.info().file_bytes,
               net::address_family_name(image.info().family).data(),
               static_cast<unsigned long long>(image.info().fingerprint));
  return 0;
}

void print_state_info(const state::ImageInfo& info) {
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(info.fingerprint));
  char checksum[32];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(info.checksum));
  report::Table out({"field", "value"});
  out.add_row({"version", report::Table::cell(
                              static_cast<std::uint64_t>(info.version))});
  out.add_row(
      {"address family", std::string(net::address_family_name(info.family))});
  out.add_row(
      {"prefix mode", std::string(core::prefix_mode_name(info.mode))});
  out.add_row({"topology fingerprint", fingerprint});
  out.add_row({"payload checksum", checksum});
  out.add_row({"cells", report::Table::cell(
                            static_cast<std::uint64_t>(info.cell_count))});
  out.add_row({"live cells",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.live_cells))});
  out.add_row({"ranked prefixes",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.ranked_count))});
  out.add_row({"total hosts", report::Table::cell(info.total_hosts)});
  out.add_row({"advertised addresses",
               report::Table::cell(info.advertised_addresses)});
  out.add_row({"LPM nodes", report::Table::cell(
                                static_cast<std::uint64_t>(info.lpm_nodes))});
  out.add_row({"LPM leaves",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.lpm_leaves))});
  out.add_row({"file bytes",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.file_bytes))});
  out.add_row({"page backing",
               std::string(util::page_backing_name(info.backing))});
  std::printf("%s", out.to_text().c_str());
  std::fprintf(stderr, "image OK (checksum, bounds and deep audit)\n");
}

int cmd_state_info(int argc, char** argv) {
  if (argc < 4) return usage();
  // Optional --huge: request hugepage backing for the serving mmap; the
  // "page backing" row then reports whether the request materialised
  // (hugetlb/thp) or fell back to base pages.
  util::MapOptions map_options;
  for (int i = 4; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--huge") map_options.huge_pages = true;
  }
  // Family dispatch by magic: either family's image prints through the
  // same table, with its family named.
  if (state::image_family_of_file(argv[3]) == net::AddressFamily::kIpv6) {
    const auto image = state::StateImage6::load(argv[3], map_options);
    image.verify();  // deep audit beyond the load-time integrity checks
    print_state_info(image.info());
  } else {
    const auto image = state::StateImage::load(argv[3], map_options);
    image.verify();
    print_state_info(image.info());
  }
  return 0;
}

int cmd_state(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string verb = argv[2];
  if (verb == "build") return cmd_state_build(argc, argv);
  if (verb == "build6") return cmd_state_build6(argc, argv);
  if (verb == "info") return cmd_state_info(argc, argv);
  return usage();
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto dump = bgp::load_mrt(argv[2]);
  const auto table = bgp::RoutingTable::from_mrt(dump);
  const auto stats = table.stats();
  report::Table out({"field", "value"});
  out.add_row({"collector", dump.collector_id.to_string()});
  out.add_row({"view", dump.view_name});
  out.add_row({"peers", report::Table::cell(
                            static_cast<std::uint64_t>(dump.peers.size()))});
  out.add_row({"rib records",
               report::Table::cell(
                   static_cast<std::uint64_t>(dump.records.size()))});
  out.add_row({"skipped records",
               report::Table::cell(
                   static_cast<std::uint64_t>(dump.skipped_records))});
  out.add_row({"unique prefixes",
               report::Table::cell(
                   static_cast<std::uint64_t>(stats.prefix_count))});
  out.add_row({"m-prefix fraction",
               report::Table::cell(stats.m_prefix_fraction, 3)});
  out.add_row({"advertised addresses",
               report::Table::cell(stats.advertised_addresses)});
  std::printf("%s", out.to_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "rank") return cmd_rank(argc, argv);
    if (command == "plan") return cmd_plan(argc, argv);
    if (command == "rank6") return cmd_rank6(argc, argv);
    if (command == "plan6") return cmd_plan6(argc, argv);
    if (command == "aggregate") return cmd_aggregate(argc, argv);
    if (command == "inspect") return cmd_inspect(argc, argv);
    if (command == "state") return cmd_state(argc, argv);
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
