// tass_cli: the library as an operator tool.
//
//   tass_cli rank        <routes> <seeds> [less|more] [n] [--family v4|v6]
//   tass_cli plan        <routes> <seeds> <phi> [less|more] [--family v4|v6]
//   tass_cli sample      <routes> <seeds> [budget] [less|more]
//                        [--family v4|v6] [--floor n] [--seed n] [--phi f]
//   tass_cli aggregate   <prefix-file>
//   tass_cli reduce      <prefix-file> [--family v4|v6] [--overshoot pct]
//                        [--min-prefixes n]
//   tass_cli inspect     <file.mrt>
//   tass_cli state build <routes> <seeds> <out.tsim> [less|more]
//                        [--family v4|v6]
//   tass_cli state info  <file.tsim> [--huge]
//
// Every seed-pipeline verb is family-generic: `--family v4` (the
// default) reads a pfx2as table and a scan-export address list,
// `--family v6` reads a pfx2as6 table and a hitlist, and both run the
// same templated driver over the family-generic substrate. The legacy
// spellings rank6/plan6/state build6 still work as deprecated aliases
// for `--family v6`.
//
// `rank` attributes the seed onto the routing table and prints the
// densest prefixes; `plan` emits the TASS selection (one prefix per line
// on stdout, summary on stderr) ready to feed a scanner whitelist;
// `sample` allocates a probe budget across the selection
// (scan/sampled_scope.hpp) and prints the sampling design — for v4 it
// also probes the seed oracle and reports the scale-up estimate with its
// 95% CI against the seed truth; `aggregate` minimises a CIDR list;
// `reduce` goes further than aggregation — it merges near-sibling
// prefixes until an address-overshoot cap, emitting the smallest
// whitelist that still covers every input address (bgp/reduce.hpp);
// `inspect` summarises an MRT RIB dump. `state build` runs the
// routes -> partition -> ranking pipeline once and seals the derived
// state into a TSIM image so later process starts mmap it instead of
// rebuilding; `state info` validates an image of either family (header,
// checksum, bounds, deep audit) and prints its header.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "bgp/reduce.hpp"
#include "bgp/table6.hpp"
#include "census/hitlist6.hpp"
#include "census/snapshot_index.hpp"
#include "core/estimator.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "core/tass.hpp"
#include "net/interval.hpp"
#include "report/table.hpp"
#include "scan/sampled_scope.hpp"
#include "state/image.hpp"
#include "util/strings.hpp"

namespace {

using namespace tass;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tass_cli rank        <routes> <seeds> [less|more] [n] "
      "[--family v4|v6]\n"
      "  tass_cli plan        <routes> <seeds> <phi> [less|more] "
      "[--family v4|v6]\n"
      "  tass_cli sample      <routes> <seeds> [budget] [less|more]\n"
      "                       [--family v4|v6] [--floor n] [--seed n] "
      "[--phi f]\n"
      "  tass_cli aggregate   <prefix-file>\n"
      "  tass_cli reduce      <prefix-file> [--family v4|v6] "
      "[--overshoot pct]\n"
      "                       [--min-prefixes n]\n"
      "  tass_cli inspect     <file.mrt>\n"
      "  tass_cli state build <routes> <seeds> <out.tsim> [less|more] "
      "[--family v4|v6]\n"
      "  tass_cli state info  <file.tsim> [--huge]\n"
      "v4 seeds are a scan-export address list; v6 seeds are a hitlist.\n"
      "(rank6/plan6/state build6 are deprecated aliases for --family "
      "v6.)\n");
  return 2;
}

core::PrefixMode parse_mode(const std::string& text) {
  if (text == "less") return core::PrefixMode::kLess;
  if (text == "more") return core::PrefixMode::kMore;
  throw ParseError("prefix mode must be 'less' or 'more', got '" + text +
                   "'");
}

// Command-line shape shared by the family-generic verbs: positional
// arguments with the option flags (--family/--floor/--seed/--phi/--huge)
// already extracted.
struct Cli {
  std::vector<std::string> args;  // positionals after the verb
  bool v6 = false;
  bool huge_pages = false;
  std::uint64_t floor = 16;
  std::uint64_t seed = 1;
  double phi = 1.0;
  double overshoot_pct = 5.0;      // reduce: address-overshoot cap (%)
  std::uint64_t min_prefixes = 0;  // reduce: stop below this count
};

Cli parse_cli(int argc, char** argv, int first) {
  Cli cli;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw ParseError(std::string(arg) + " needs a value");
      return argv[++i];
    };
    if (arg == "--family") {
      const std::string family = value();
      if (family == "v6") {
        cli.v6 = true;
      } else if (family != "v4") {
        throw ParseError("--family must be v4 or v6, got '" + family + "'");
      }
    } else if (arg == "--floor") {
      cli.floor = std::stoull(value());
    } else if (arg == "--seed") {
      cli.seed = std::stoull(value());
    } else if (arg == "--phi") {
      cli.phi = std::stod(value());
    } else if (arg == "--overshoot") {
      cli.overshoot_pct = std::stod(value());
    } else if (arg == "--min-prefixes") {
      cli.min_prefixes = std::stoull(value());
    } else if (arg == "--huge") {
      cli.huge_pages = true;
    } else {
      cli.args.emplace_back(arg);
    }
  }
  return cli;
}

// The per-family seed pipeline: routes -> chosen partition -> seed
// attribution -> density ranking, plus the raw seed addresses (the
// sample verb probes/subsamples them).
struct PipelineV4 {
  std::shared_ptr<const census::Topology> topology;
  const bgp::PrefixPartition* partition = nullptr;
  core::DensityRanking ranking;
  std::vector<std::uint32_t> addresses;  // as loaded (unsorted)
};

struct PipelineV6 {
  bgp::PrefixPartition6 partition;
  core::DensityRanking6 ranking;
  std::vector<net::Ipv6Address> hitlist;
};

template <class Family>
using PipelineT = std::conditional_t<Family::kBits == 32, PipelineV4,
                                     PipelineV6>;

template <class Family>
PipelineT<Family> build_pipeline(const std::string& routes_path,
                                 const std::string& seed_path,
                                 core::PrefixMode mode) {
  if constexpr (Family::kBits == 32) {
    PipelineV4 result;
    const auto records = bgp::load_pfx2as(routes_path, /*strict=*/false);
    result.topology = census::topology_from_table(
        bgp::RoutingTable::from_pfx2as(records), /*seed=*/1);
    std::fprintf(stderr, "loaded %zu routes; advertised %.3fB addresses\n",
                 result.topology->table.size(),
                 static_cast<double>(result.topology->advertised_addresses) /
                     1e9);
    result.partition = mode == core::PrefixMode::kMore
                           ? &result.topology->m_partition
                           : &result.topology->l_partition;
    result.addresses = census::load_address_list(seed_path,
                                                 /*strict=*/false);
    const auto attribution = core::attribute(result.addresses,
                                             *result.partition);
    std::fprintf(stderr,
                 "attributed %llu responsive addresses (%llu outside the "
                 "announced space)\n",
                 static_cast<unsigned long long>(attribution.attributed),
                 static_cast<unsigned long long>(attribution.unattributed));
    result.ranking =
        core::rank_by_density(attribution.counts, *result.partition, mode);
    return result;
  } else {
    PipelineV6 result;
    const auto records = bgp::load_pfx2as6(routes_path, /*strict=*/false);
    const auto table = bgp::RoutingTable6::from_pfx2as(records);
    std::fprintf(stderr, "loaded %zu v6 routes; advertised %.3fM /64s\n",
                 table.size(),
                 static_cast<double>(table.advertised_units()) / 1e6);
    result.partition = mode == core::PrefixMode::kMore ? table.m_partition()
                                                       : table.l_partition();
    result.hitlist = census::load_hitlist6(seed_path, /*strict=*/false);
    std::vector<std::uint32_t> counts(result.partition.size(), 0);
    std::uint64_t attributed = 0;
    std::uint64_t unattributed = 0;
    result.partition.tally_cells(result.hitlist, counts, attributed,
                                 unattributed);
    std::fprintf(stderr,
                 "attributed %llu hitlist addresses (%llu outside the "
                 "announced space)\n",
                 static_cast<unsigned long long>(attributed),
                 static_cast<unsigned long long>(unattributed));
    result.ranking = core::rank_by_density(counts, result.partition, mode);
    return result;
  }
}

template <class Family>
int run_rank(const Cli& cli) {
  if (cli.args.size() < 2) return usage();
  const core::PrefixMode mode =
      cli.args.size() > 2 ? parse_mode(cli.args[2]) : core::PrefixMode::kMore;
  const std::size_t top_n =
      cli.args.size() > 3
          ? static_cast<std::size_t>(std::stoul(cli.args[3]))
          : 20;

  const auto pipeline = build_pipeline<Family>(cli.args[0], cli.args[1],
                                               mode);
  const auto& ranking = pipeline.ranking;

  constexpr bool kV4 = Family::kBits == 32;
  report::Table table(
      kV4 ? std::vector<std::string>{"rank", "prefix", "hosts", "density",
                                     "cum. host coverage",
                                     "cum. space coverage"}
          : std::vector<std::string>{"rank", "prefix", "hosts",
                                     "density per /64",
                                     "cum. host coverage"});
  std::uint64_t hosts = 0;
  std::uint64_t space = 0;
  for (std::size_t i = 0; i < ranking.ranked.size() && i < top_n; ++i) {
    const auto& entry = ranking.ranked[i];
    hosts += entry.hosts;
    space += entry.size;
    std::vector<std::string> row{
        report::Table::cell(static_cast<std::uint64_t>(i + 1)),
        entry.prefix.to_string(), report::Table::cell(entry.hosts),
        report::Table::cell(entry.density, 6),
        report::Table::cell(static_cast<double>(hosts) /
                                static_cast<double>(ranking.total_hosts),
                            4)};
    if constexpr (kV4) {
      row.push_back(report::Table::cell(
          static_cast<double>(space) /
              static_cast<double>(ranking.advertised_addresses),
          4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

template <class Family>
int run_plan(const Cli& cli) {
  if (cli.args.size() < 3) return usage();
  const double phi = std::stod(cli.args[2]);
  const core::PrefixMode mode =
      cli.args.size() > 3 ? parse_mode(cli.args[3]) : core::PrefixMode::kMore;

  const auto pipeline = build_pipeline<Family>(cli.args[0], cli.args[1],
                                               mode);
  core::SelectionParams params;
  params.phi = phi;
  const auto selection = core::select_by_density(pipeline.ranking, params);

  if constexpr (Family::kBits == 32) {
    // Whitelist on stdout (aggregated for compactness), summary on
    // stderr.
    const auto compact = bgp::aggregate(selection.prefixes);
    for (const net::Prefix prefix : compact) {
      std::printf("%s\n", prefix.to_string().c_str());
    }
    std::fprintf(stderr,
                 "selection: k=%zu prefixes (%zu aggregated), %.2f%% host "
                 "coverage at seed, %.2f%% of announced space, %llu "
                 "addresses per cycle\n",
                 selection.k(), compact.size(),
                 100.0 * selection.host_coverage(),
                 100.0 * selection.space_coverage(),
                 static_cast<unsigned long long>(
                     selection.selected_addresses));
  } else {
    // Whitelist on stdout, summary on stderr (no v6 aggregation pass
    // yet; selections are already short — k densest prefixes).
    for (const net::Ipv6Prefix prefix : selection.prefixes) {
      std::printf("%s\n", prefix.to_string().c_str());
    }
    std::fprintf(stderr,
                 "selection: k=%zu prefixes, %.2f%% host coverage at seed, "
                 "%.4f%% of announced /64s (%llu /64s per cycle)\n",
                 selection.k(), 100.0 * selection.host_coverage(),
                 100.0 * selection.space_coverage(),
                 static_cast<unsigned long long>(
                     selection.selected_addresses));
  }
  return 0;
}

template <class Family>
int run_sample(const Cli& cli) {
  if (cli.args.size() < 2) return usage();
  scan::SampleParams params;
  if (cli.args.size() > 2) params.budget = std::stoull(cli.args[2]);
  const core::PrefixMode mode =
      cli.args.size() > 3 ? parse_mode(cli.args[3]) : core::PrefixMode::kMore;
  params.floor = static_cast<std::uint32_t>(cli.floor);
  params.seed = cli.seed;
  params.phi = cli.phi;

  const auto pipeline = build_pipeline<Family>(cli.args[0], cli.args[1],
                                               mode);
  const auto design = scan::plan_sample(pipeline.ranking, params);

  report::Table table({"rank", "prefix", "universe", "draws", "seed hosts"});
  for (std::size_t i = 0; i < design.cells.size() && i < 20; ++i) {
    const auto& row = design.cells[i];
    table.add_row({report::Table::cell(static_cast<std::uint64_t>(i + 1)),
                   row.prefix.to_string(), report::Table::cell(row.universe),
                   report::Table::cell(row.draws),
                   report::Table::cell(row.seed_hosts)});
  }
  std::printf("%s", table.to_text().c_str());
  std::fprintf(stderr,
               "sample design: k=%zu cells, %llu probes vs %llu exhaustive "
               "(%.1fx probe reduction)\n",
               design.cells.size(),
               static_cast<unsigned long long>(design.total_draws),
               static_cast<unsigned long long>(design.frame_units),
               design.probe_reduction());

  if constexpr (Family::kBits == 32) {
    // Probe the seed itself as the oracle: the scale-up estimate then
    // has an exhaustive truth to compare against, demonstrating the
    // whole estimation loop end to end.
    auto sorted = pipeline.addresses;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    const census::SnapshotIndex oracle(sorted);
    const scan::SampledScope scope(design);
    const auto result = scope.probe(
        [&](net::Ipv4Address addr) { return oracle.contains(addr); });
    const auto estimate = core::estimate_from_sample(result,
                                                     pipeline.ranking);
    std::uint64_t truth = 0;
    for (const auto& row : design.cells) {
      truth += oracle.count_responsive(net::Interval::of(row.prefix));
    }
    std::printf("estimated hosts: %.0f (95%% CI [%.0f, %.0f])\n",
                estimate.estimated_hosts, estimate.hosts_low,
                estimate.hosts_high);
    const double error =
        truth == 0 ? 0.0
                   : std::abs(estimate.estimated_hosts -
                              static_cast<double>(truth)) /
                         static_cast<double>(truth);
    std::fprintf(stderr,
                 "seed truth: %llu responsive in the sampled frame; "
                 "estimate error %.2f%%, CI %s\n",
                 static_cast<unsigned long long>(truth), 100.0 * error,
                 estimate.hosts_ci_covers(static_cast<double>(truth))
                     ? "covers"
                     : "misses");
  } else {
    // The hitlist is the candidate frame: materialise the subsample so
    // the draw counts reflect the per-cell re-cap.
    const scan::SampledScope6 scope(design, pipeline.hitlist,
                                    pipeline.partition);
    std::fprintf(stderr, "drew %zu targets from %zu hitlist candidates\n",
                 scope.target_count(), pipeline.hitlist.size());
  }
  return 0;
}

int cmd_aggregate(const Cli& cli) {
  if (cli.args.empty()) return usage();
  std::ifstream in(cli.args[0]);
  if (!in) throw Error("cannot open " + cli.args[0]);
  std::vector<net::Prefix> prefixes;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    prefixes.push_back(net::Prefix::parse_or_throw(trimmed));
  }
  const auto compact = bgp::aggregate(prefixes);
  for (const net::Prefix prefix : compact) {
    std::printf("%s\n", prefix.to_string().c_str());
  }
  std::fprintf(stderr, "%zu prefixes -> %zu (covering %llu addresses)\n",
               prefixes.size(), compact.size(),
               static_cast<unsigned long long>(bgp::union_size(compact)));
  return 0;
}

template <class Family>
int run_reduce(const Cli& cli) {
  if (cli.args.empty()) return usage();
  std::ifstream in(cli.args[0]);
  if (!in) throw Error("cannot open " + cli.args[0]);
  std::vector<typename Family::Prefix> prefixes;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    prefixes.push_back(Family::Prefix::parse_or_throw(trimmed));
  }

  bgp::ReduceParams params;
  params.max_overshoot = cli.overshoot_pct / 100.0;
  params.min_prefixes = static_cast<std::size_t>(cli.min_prefixes);
  const auto reduced = bgp::reduce<Family>(
      std::span<const typename Family::Prefix>(prefixes), params);

  // Reduced whitelist on stdout, accounting on stderr — same split as
  // `plan`, so the output pipes straight into a scanner whitelist.
  for (const auto& prefix : reduced.prefixes) {
    std::printf("%s\n", prefix.to_string().c_str());
  }
  const char* unit =
      Family::kBits == 32 ? "addresses" : "/64 units";
  std::fprintf(stderr,
               "reduce: %llu prefixes -> %llu aggregated -> %zu reduced "
               "(%.1fx), %llu merges, overshoot %llu %s (%.3f%% of %llu, "
               "cap %.3f%%)\n",
               static_cast<unsigned long long>(reduced.original_prefixes),
               static_cast<unsigned long long>(reduced.aggregated_prefixes),
               reduced.prefixes.size(), reduced.reduction_ratio(),
               static_cast<unsigned long long>(reduced.merges),
               static_cast<unsigned long long>(reduced.overshoot_addresses),
               unit, 100.0 * reduced.overshoot_fraction(),
               static_cast<unsigned long long>(reduced.original_addresses),
               cli.overshoot_pct);
  return 0;
}

template <class Family>
int run_state_build(const Cli& cli) {
  // args: build <routes> <seeds> <out.tsim> [less|more]
  if (cli.args.size() < 4) return usage();
  const core::PrefixMode mode =
      cli.args.size() > 4 ? parse_mode(cli.args[4]) : core::PrefixMode::kMore;
  const std::string& out_path = cli.args[3];

  const auto pipeline = build_pipeline<Family>(cli.args[1], cli.args[2],
                                               mode);
  if constexpr (Family::kBits == 32) {
    state::save_image(out_path, *pipeline.partition, pipeline.ranking);
    const auto image = state::StateImage::load(out_path);
    std::fprintf(stderr,
                 "sealed %zu cells / %zu ranked prefixes into %s (%zu "
                 "bytes, fingerprint %016llx); workers can now mmap it "
                 "instead of rebuilding\n",
                 image.info().cell_count, image.info().ranked_count,
                 out_path.c_str(), image.info().file_bytes,
                 static_cast<unsigned long long>(image.info().fingerprint));
  } else {
    state::save_image(out_path, pipeline.partition, pipeline.ranking);
    const auto image = state::StateImage6::load(out_path);
    std::fprintf(stderr,
                 "sealed %zu cells / %zu ranked prefixes into %s (%zu "
                 "bytes, %s, fingerprint %016llx); workers can now mmap "
                 "it instead of rebuilding\n",
                 image.info().cell_count, image.info().ranked_count,
                 out_path.c_str(), image.info().file_bytes,
                 net::address_family_name(image.info().family).data(),
                 static_cast<unsigned long long>(image.info().fingerprint));
  }
  return 0;
}

void print_state_info(const state::ImageInfo& info) {
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(info.fingerprint));
  char checksum[32];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(info.checksum));
  report::Table out({"field", "value"});
  out.add_row({"version", report::Table::cell(
                              static_cast<std::uint64_t>(info.version))});
  out.add_row(
      {"address family", std::string(net::address_family_name(info.family))});
  out.add_row(
      {"prefix mode", std::string(core::prefix_mode_name(info.mode))});
  out.add_row({"topology fingerprint", fingerprint});
  out.add_row({"payload checksum", checksum});
  out.add_row({"cells", report::Table::cell(
                            static_cast<std::uint64_t>(info.cell_count))});
  out.add_row({"live cells",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.live_cells))});
  out.add_row({"ranked prefixes",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.ranked_count))});
  out.add_row({"total hosts", report::Table::cell(info.total_hosts)});
  out.add_row({"advertised addresses",
               report::Table::cell(info.advertised_addresses)});
  out.add_row({"LPM nodes", report::Table::cell(
                                static_cast<std::uint64_t>(info.lpm_nodes))});
  out.add_row({"LPM leaves",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.lpm_leaves))});
  out.add_row({"file bytes",
               report::Table::cell(
                   static_cast<std::uint64_t>(info.file_bytes))});
  out.add_row({"page backing",
               std::string(util::page_backing_name(info.backing))});
  std::printf("%s", out.to_text().c_str());
  std::fprintf(stderr, "image OK (checksum, bounds and deep audit)\n");
}

int cmd_state_info(const Cli& cli) {
  if (cli.args.size() < 2) return usage();
  // Optional --huge: request hugepage backing for the serving mmap; the
  // "page backing" row then reports whether the request materialised
  // (hugetlb/thp) or fell back to base pages.
  util::MapOptions map_options;
  map_options.huge_pages = cli.huge_pages;
  // Family dispatch by magic: either family's image prints through the
  // same table, with its family named.
  if (state::image_family_of_file(cli.args[1]) == net::AddressFamily::kIpv6) {
    const auto image = state::StateImage6::load(cli.args[1], map_options);
    image.verify();  // deep audit beyond the load-time integrity checks
    print_state_info(image.info());
  } else {
    const auto image = state::StateImage::load(cli.args[1], map_options);
    image.verify();
    print_state_info(image.info());
  }
  return 0;
}

// Family dispatch for the seed-pipeline verbs.
int run_family(int (*v4)(const Cli&), int (*v6)(const Cli&), const Cli& cli) {
  return cli.v6 ? v6(cli) : v4(cli);
}

int cmd_state(const Cli& cli) {
  if (cli.args.empty()) return usage();
  const std::string& verb = cli.args[0];
  if (verb == "build") {
    return run_family(&run_state_build<net::Ipv4Family>,
                      &run_state_build<net::Ipv6Family>, cli);
  }
  if (verb == "build6") {
    std::fprintf(stderr,
                 "note: 'state build6' is deprecated; use 'state build "
                 "--family v6'\n");
    Cli alias = cli;
    alias.v6 = true;
    alias.args[0] = "build";
    return run_state_build<net::Ipv6Family>(alias);
  }
  if (verb == "info") return cmd_state_info(cli);
  return usage();
}

int cmd_inspect(const Cli& cli) {
  if (cli.args.empty()) return usage();
  const auto dump = bgp::load_mrt(cli.args[0]);
  const auto table = bgp::RoutingTable::from_mrt(dump);
  const auto stats = table.stats();
  report::Table out({"field", "value"});
  out.add_row({"collector", dump.collector_id.to_string()});
  out.add_row({"view", dump.view_name});
  out.add_row({"peers", report::Table::cell(
                            static_cast<std::uint64_t>(dump.peers.size()))});
  out.add_row({"rib records",
               report::Table::cell(
                   static_cast<std::uint64_t>(dump.records.size()))});
  out.add_row({"skipped records",
               report::Table::cell(
                   static_cast<std::uint64_t>(dump.skipped_records))});
  out.add_row({"unique prefixes",
               report::Table::cell(
                   static_cast<std::uint64_t>(stats.prefix_count))});
  out.add_row({"m-prefix fraction",
               report::Table::cell(stats.m_prefix_fraction, 3)});
  out.add_row({"advertised addresses",
               report::Table::cell(stats.advertised_addresses)});
  std::printf("%s", out.to_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const Cli cli = parse_cli(argc, argv, 2);
    if (command == "rank") {
      return run_family(&run_rank<net::Ipv4Family>,
                        &run_rank<net::Ipv6Family>, cli);
    }
    if (command == "plan") {
      return run_family(&run_plan<net::Ipv4Family>,
                        &run_plan<net::Ipv6Family>, cli);
    }
    if (command == "sample") {
      return run_family(&run_sample<net::Ipv4Family>,
                        &run_sample<net::Ipv6Family>, cli);
    }
    if (command == "rank6") {
      std::fprintf(stderr,
                   "note: 'rank6' is deprecated; use 'rank --family v6'\n");
      return run_rank<net::Ipv6Family>(cli);
    }
    if (command == "plan6") {
      std::fprintf(stderr,
                   "note: 'plan6' is deprecated; use 'plan --family v6'\n");
      return run_plan<net::Ipv6Family>(cli);
    }
    if (command == "aggregate") return cmd_aggregate(cli);
    if (command == "reduce") {
      return run_family(&run_reduce<net::Ipv4Family>,
                        &run_reduce<net::Ipv6Family>, cli);
    }
    if (command == "inspect") return cmd_inspect(cli);
    if (command == "state") return cmd_state(cli);
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
