// Quickstart: the TASS pipeline in ~50 lines.
//
//   1. Build (or load) a routing table and derive the scanning partitions.
//   2. Obtain a seed scan (here: one synthetic census snapshot).
//   3. Rank prefixes by density and select for a target host coverage.
//   4. The selection is the scope of every repeated scan cycle.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/tass.hpp"

int main() {
  using namespace tass;

  // 1. A small synthetic Internet (use topology_from_table() to start from
  //    a real CAIDA pfx2as file instead).
  census::TopologyParams topo_params;
  topo_params.seed = 1;
  topo_params.l_prefix_count = 1000;
  const auto topology = census::generate_topology(topo_params);
  std::printf("announced: %zu prefixes, %.2fB addresses\n",
              topology->table.size(),
              static_cast<double>(topology->advertised_addresses) / 1e9);

  // 2. Seed scan: the t0 ground truth for HTTP.
  census::SeriesParams series_params;
  series_params.months = 1;
  series_params.host_scale = 0.005;
  const auto series = census::CensusSeries::generate(
      topology, census::Protocol::kHttp, series_params);
  const census::Snapshot& seed = series.month(0);
  std::printf("seed scan: %llu responsive HTTP hosts (hitrate %.2f%%)\n",
              static_cast<unsigned long long>(seed.total_hosts()),
              100.0 * static_cast<double>(seed.total_hosts()) /
                  static_cast<double>(topology->advertised_addresses));

  // 3. Density ranking over deaggregated more-specific prefixes, then the
  //    paper's selection rule: smallest k with cumulative coverage > phi.
  const auto ranking =
      core::rank_by_density(seed, core::PrefixMode::kMore);
  core::SelectionParams params;
  params.phi = 0.95;
  const auto selection = core::select_by_density(ranking, params);

  std::printf(
      "TASS selection: k=%zu prefixes cover %.1f%% of hosts using %.1f%% "
      "of the announced space\n",
      selection.k(), 100.0 * selection.host_coverage(),
      100.0 * selection.space_coverage());

  // 4. The selected prefixes are the periodic scan scope.
  std::printf("first selected prefixes (densest first):\n");
  for (std::size_t i = 0; i < selection.prefixes.size() && i < 5; ++i) {
    std::printf("  %-18s density=%.4f\n",
                selection.prefixes[i].to_string().c_str(),
                ranking.ranked[i].density);
  }
  return 0;
}
