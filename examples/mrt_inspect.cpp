// mrt_inspect: round-trip a TABLE_DUMP_V2 RIB dump through the MRT codec
// (the libbgpdump replacement) and print it in libbgpdump's one-line
// format, then derive the routing table and its l/m classification.
//
// Run:  ./mrt_inspect [path.mrt]
//       With no argument, a small synthetic dump is written to ./demo.mrt
//       first and then inspected.
#include <cstdio>
#include <string>

#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "census/topology.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

// Builds a small synthetic RIB dump: two peers, routes from a generated
// topology, AS paths of random transit hops ending in the origin AS.
bgp::MrtRibDump make_demo_dump() {
  bgp::MrtRibDump dump;
  dump.timestamp = 1441584000;  // 2015-09-07, the paper's CAIDA snapshot
  dump.collector_id = net::Ipv4Address::parse_or_throw("198.32.160.10");
  dump.view_name = "rib.20150907";
  dump.peers.push_back({net::Ipv4Address::parse_or_throw("203.0.113.1"),
                        net::Ipv4Address::parse_or_throw("203.0.113.1"),
                        6447});
  dump.peers.push_back({net::Ipv4Address::parse_or_throw("198.51.100.2"),
                        net::Ipv4Address::parse_or_throw("198.51.100.2"),
                        3356});

  census::TopologyParams params;
  params.seed = 7;
  params.l_prefix_count = 40;
  const auto topology = census::generate_topology(params);

  util::Rng rng(11);
  std::uint32_t sequence = 0;
  for (const bgp::RouteEntry& route : topology->table.routes()) {
    bgp::MrtRibRecord record;
    record.sequence = sequence++;
    record.prefix = route.prefix;
    for (std::uint16_t peer = 0; peer < 2; ++peer) {
      bgp::MrtRibEntry entry;
      entry.peer_index = peer;
      entry.originated_time = dump.timestamp - 86400;
      entry.origin = bgp::BgpOrigin::kIgp;
      bgp::AsPathSegment path;
      path.kind = bgp::AsPathSegment::Kind::kAsSequence;
      path.asns.push_back(dump.peers[peer].asn);
      path.asns.push_back(rng.uniform_u32(100, 64000));
      path.asns.push_back(route.origins.front());
      entry.as_path.push_back(std::move(path));
      entry.next_hop = dump.peers[peer].address;
      record.entries.push_back(std::move(entry));
    }
    dump.records.push_back(std::move(record));
  }
  return dump;
}

std::string format_as_path(const bgp::MrtRibEntry& entry) {
  std::string out;
  for (const bgp::AsPathSegment& segment : entry.as_path) {
    const bool is_set = segment.kind == bgp::AsPathSegment::Kind::kAsSet;
    if (is_set) out += "{";
    for (std::size_t i = 0; i < segment.asns.size(); ++i) {
      if (i != 0) out += is_set ? "," : " ";
      out += std::to_string(segment.asns[i]);
    }
    if (is_set) out += "}";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "demo.mrt";
  if (argc <= 1) {
    bgp::save_mrt(path, make_demo_dump());
    std::printf("wrote synthetic RIB dump to %s\n", path.c_str());
  }

  const bgp::MrtRibDump dump = bgp::load_mrt(path);
  std::printf("collector=%s view=%s peers=%zu routes=%zu skipped=%zu\n\n",
              dump.collector_id.to_string().c_str(),
              dump.view_name.c_str(), dump.peers.size(),
              dump.records.size(), dump.skipped_records);

  // libbgpdump -m style: TABLE_DUMP2|time|B|peer|peer_as|prefix|path|origin
  std::size_t shown = 0;
  for (const bgp::MrtRibRecord& record : dump.records) {
    for (const bgp::MrtRibEntry& entry : record.entries) {
      if (shown++ >= 10) break;
      const bgp::MrtPeer& peer = dump.peers[entry.peer_index];
      std::printf("TABLE_DUMP2|%u|B|%s|%u|%s|%s|IGP\n", dump.timestamp,
                  peer.address.to_string().c_str(), peer.asn,
                  record.prefix.to_string().c_str(),
                  format_as_path(entry).c_str());
    }
    if (shown >= 10) break;
  }

  const auto table = bgp::RoutingTable::from_mrt(dump);
  const auto stats = table.stats();
  std::printf(
      "\nrouting table: %zu prefixes (%zu more-specific, %.1f%%), "
      "advertised %.3fB addresses, m-space %.1f%%\n",
      stats.prefix_count, stats.m_prefix_count,
      100.0 * stats.m_prefix_fraction,
      static_cast<double>(stats.advertised_addresses) / 1e9,
      100.0 * stats.m_prefix_space_fraction);
  return 0;
}
