file(REMOVE_RECURSE
  "CMakeFiles/table1_coverage.dir/bench/table1_coverage.cpp.o"
  "CMakeFiles/table1_coverage.dir/bench/table1_coverage.cpp.o.d"
  "table1_coverage"
  "table1_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
