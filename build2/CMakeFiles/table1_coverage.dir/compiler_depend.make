# Empty compiler generated dependencies file for table1_coverage.
# This may be replaced when dependencies are built.
