file(REMOVE_RECURSE
  "CMakeFiles/ablation_reseed.dir/bench/ablation_reseed.cpp.o"
  "CMakeFiles/ablation_reseed.dir/bench/ablation_reseed.cpp.o.d"
  "ablation_reseed"
  "ablation_reseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
