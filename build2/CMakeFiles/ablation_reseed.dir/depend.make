# Empty dependencies file for ablation_reseed.
# This may be replaced when dependencies are built.
