file(REMOVE_RECURSE
  "CMakeFiles/fig3_host_distribution.dir/bench/fig3_host_distribution.cpp.o"
  "CMakeFiles/fig3_host_distribution.dir/bench/fig3_host_distribution.cpp.o.d"
  "fig3_host_distribution"
  "fig3_host_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_host_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
