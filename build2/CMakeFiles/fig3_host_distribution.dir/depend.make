# Empty dependencies file for fig3_host_distribution.
# This may be replaced when dependencies are built.
