file(REMOVE_RECURSE
  "CMakeFiles/ext_quality_anomaly.dir/bench/ext_quality_anomaly.cpp.o"
  "CMakeFiles/ext_quality_anomaly.dir/bench/ext_quality_anomaly.cpp.o.d"
  "ext_quality_anomaly"
  "ext_quality_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quality_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
