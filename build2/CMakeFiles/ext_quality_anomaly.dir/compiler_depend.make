# Empty compiler generated dependencies file for ext_quality_anomaly.
# This may be replaced when dependencies are built.
