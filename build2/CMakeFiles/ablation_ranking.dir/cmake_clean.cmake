file(REMOVE_RECURSE
  "CMakeFiles/ablation_ranking.dir/bench/ablation_ranking.cpp.o"
  "CMakeFiles/ablation_ranking.dir/bench/ablation_ranking.cpp.o.d"
  "ablation_ranking"
  "ablation_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
