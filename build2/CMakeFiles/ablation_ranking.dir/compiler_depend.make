# Empty compiler generated dependencies file for ablation_ranking.
# This may be replaced when dependencies are built.
