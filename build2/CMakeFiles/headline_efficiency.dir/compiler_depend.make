# Empty compiler generated dependencies file for headline_efficiency.
# This may be replaced when dependencies are built.
