file(REMOVE_RECURSE
  "CMakeFiles/headline_efficiency.dir/bench/headline_efficiency.cpp.o"
  "CMakeFiles/headline_efficiency.dir/bench/headline_efficiency.cpp.o.d"
  "headline_efficiency"
  "headline_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
