# Empty dependencies file for micro_parallel_engine.
# This may be replaced when dependencies are built.
