file(REMOVE_RECURSE
  "CMakeFiles/micro_parallel_engine.dir/bench/micro_parallel_engine.cpp.o"
  "CMakeFiles/micro_parallel_engine.dir/bench/micro_parallel_engine.cpp.o.d"
  "micro_parallel_engine"
  "micro_parallel_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parallel_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
