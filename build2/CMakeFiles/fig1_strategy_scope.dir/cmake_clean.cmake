file(REMOVE_RECURSE
  "CMakeFiles/fig1_strategy_scope.dir/bench/fig1_strategy_scope.cpp.o"
  "CMakeFiles/fig1_strategy_scope.dir/bench/fig1_strategy_scope.cpp.o.d"
  "fig1_strategy_scope"
  "fig1_strategy_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_strategy_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
