# Empty compiler generated dependencies file for fig1_strategy_scope.
# This may be replaced when dependencies are built.
