file(REMOVE_RECURSE
  "CMakeFiles/fig2_deaggregation.dir/bench/fig2_deaggregation.cpp.o"
  "CMakeFiles/fig2_deaggregation.dir/bench/fig2_deaggregation.cpp.o.d"
  "fig2_deaggregation"
  "fig2_deaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_deaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
