# Empty dependencies file for fig2_deaggregation.
# This may be replaced when dependencies are built.
