# Empty compiler generated dependencies file for fig6_tass_decay.
# This may be replaced when dependencies are built.
