file(REMOVE_RECURSE
  "CMakeFiles/fig6_tass_decay.dir/bench/fig6_tass_decay.cpp.o"
  "CMakeFiles/fig6_tass_decay.dir/bench/fig6_tass_decay.cpp.o.d"
  "fig6_tass_decay"
  "fig6_tass_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tass_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
