file(REMOVE_RECURSE
  "CMakeFiles/micro_lpm.dir/bench/micro_lpm.cpp.o"
  "CMakeFiles/micro_lpm.dir/bench/micro_lpm.cpp.o.d"
  "micro_lpm"
  "micro_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
