# Empty compiler generated dependencies file for micro_lpm.
# This may be replaced when dependencies are built.
