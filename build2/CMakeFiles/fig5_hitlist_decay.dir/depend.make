# Empty dependencies file for fig5_hitlist_decay.
# This may be replaced when dependencies are built.
