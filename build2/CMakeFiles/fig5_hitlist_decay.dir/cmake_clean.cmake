file(REMOVE_RECURSE
  "CMakeFiles/fig5_hitlist_decay.dir/bench/fig5_hitlist_decay.cpp.o"
  "CMakeFiles/fig5_hitlist_decay.dir/bench/fig5_hitlist_decay.cpp.o.d"
  "fig5_hitlist_decay"
  "fig5_hitlist_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hitlist_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
