
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/aggregate.cpp" "CMakeFiles/tass.dir/src/bgp/aggregate.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/aggregate.cpp.o.d"
  "/root/repo/src/bgp/deaggregate.cpp" "CMakeFiles/tass.dir/src/bgp/deaggregate.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/deaggregate.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "CMakeFiles/tass.dir/src/bgp/mrt.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/mrt.cpp.o.d"
  "/root/repo/src/bgp/partition.cpp" "CMakeFiles/tass.dir/src/bgp/partition.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/partition.cpp.o.d"
  "/root/repo/src/bgp/pfx2as.cpp" "CMakeFiles/tass.dir/src/bgp/pfx2as.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/pfx2as.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "CMakeFiles/tass.dir/src/bgp/rib.cpp.o" "gcc" "CMakeFiles/tass.dir/src/bgp/rib.cpp.o.d"
  "/root/repo/src/census/churn.cpp" "CMakeFiles/tass.dir/src/census/churn.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/churn.cpp.o.d"
  "/root/repo/src/census/import.cpp" "CMakeFiles/tass.dir/src/census/import.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/import.cpp.o.d"
  "/root/repo/src/census/io.cpp" "CMakeFiles/tass.dir/src/census/io.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/io.cpp.o.d"
  "/root/repo/src/census/population.cpp" "CMakeFiles/tass.dir/src/census/population.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/population.cpp.o.d"
  "/root/repo/src/census/protocol.cpp" "CMakeFiles/tass.dir/src/census/protocol.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/protocol.cpp.o.d"
  "/root/repo/src/census/quality.cpp" "CMakeFiles/tass.dir/src/census/quality.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/quality.cpp.o.d"
  "/root/repo/src/census/series.cpp" "CMakeFiles/tass.dir/src/census/series.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/series.cpp.o.d"
  "/root/repo/src/census/snapshot.cpp" "CMakeFiles/tass.dir/src/census/snapshot.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/snapshot.cpp.o.d"
  "/root/repo/src/census/snapshot_index.cpp" "CMakeFiles/tass.dir/src/census/snapshot_index.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/snapshot_index.cpp.o.d"
  "/root/repo/src/census/topology.cpp" "CMakeFiles/tass.dir/src/census/topology.cpp.o" "gcc" "CMakeFiles/tass.dir/src/census/topology.cpp.o.d"
  "/root/repo/src/core/attribution.cpp" "CMakeFiles/tass.dir/src/core/attribution.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/attribution.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "CMakeFiles/tass.dir/src/core/estimator.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/estimator.cpp.o.d"
  "/root/repo/src/core/evaluate.cpp" "CMakeFiles/tass.dir/src/core/evaluate.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/evaluate.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "CMakeFiles/tass.dir/src/core/ranking.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/ranking.cpp.o.d"
  "/root/repo/src/core/reseed.cpp" "CMakeFiles/tass.dir/src/core/reseed.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/reseed.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "CMakeFiles/tass.dir/src/core/selection.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/selection.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "CMakeFiles/tass.dir/src/core/strategies.cpp.o" "gcc" "CMakeFiles/tass.dir/src/core/strategies.cpp.o.d"
  "/root/repo/src/net/interval.cpp" "CMakeFiles/tass.dir/src/net/interval.cpp.o" "gcc" "CMakeFiles/tass.dir/src/net/interval.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "CMakeFiles/tass.dir/src/net/ipv4.cpp.o" "gcc" "CMakeFiles/tass.dir/src/net/ipv4.cpp.o.d"
  "/root/repo/src/net/ipv6.cpp" "CMakeFiles/tass.dir/src/net/ipv6.cpp.o" "gcc" "CMakeFiles/tass.dir/src/net/ipv6.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "CMakeFiles/tass.dir/src/net/prefix.cpp.o" "gcc" "CMakeFiles/tass.dir/src/net/prefix.cpp.o.d"
  "/root/repo/src/net/special_use.cpp" "CMakeFiles/tass.dir/src/net/special_use.cpp.o" "gcc" "CMakeFiles/tass.dir/src/net/special_use.cpp.o.d"
  "/root/repo/src/report/gnuplot.cpp" "CMakeFiles/tass.dir/src/report/gnuplot.cpp.o" "gcc" "CMakeFiles/tass.dir/src/report/gnuplot.cpp.o.d"
  "/root/repo/src/report/series.cpp" "CMakeFiles/tass.dir/src/report/series.cpp.o" "gcc" "CMakeFiles/tass.dir/src/report/series.cpp.o.d"
  "/root/repo/src/report/table.cpp" "CMakeFiles/tass.dir/src/report/table.cpp.o" "gcc" "CMakeFiles/tass.dir/src/report/table.cpp.o.d"
  "/root/repo/src/scan/blocklist.cpp" "CMakeFiles/tass.dir/src/scan/blocklist.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/blocklist.cpp.o.d"
  "/root/repo/src/scan/engine.cpp" "CMakeFiles/tass.dir/src/scan/engine.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/engine.cpp.o.d"
  "/root/repo/src/scan/packet.cpp" "CMakeFiles/tass.dir/src/scan/packet.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/packet.cpp.o.d"
  "/root/repo/src/scan/ratelimit.cpp" "CMakeFiles/tass.dir/src/scan/ratelimit.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/ratelimit.cpp.o.d"
  "/root/repo/src/scan/scope.cpp" "CMakeFiles/tass.dir/src/scan/scope.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/scope.cpp.o.d"
  "/root/repo/src/scan/target_iterator.cpp" "CMakeFiles/tass.dir/src/scan/target_iterator.cpp.o" "gcc" "CMakeFiles/tass.dir/src/scan/target_iterator.cpp.o.d"
  "/root/repo/src/trie/lpm_index.cpp" "CMakeFiles/tass.dir/src/trie/lpm_index.cpp.o" "gcc" "CMakeFiles/tass.dir/src/trie/lpm_index.cpp.o.d"
  "/root/repo/src/trie/prefix_set.cpp" "CMakeFiles/tass.dir/src/trie/prefix_set.cpp.o" "gcc" "CMakeFiles/tass.dir/src/trie/prefix_set.cpp.o.d"
  "/root/repo/src/util/error.cpp" "CMakeFiles/tass.dir/src/util/error.cpp.o" "gcc" "CMakeFiles/tass.dir/src/util/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/tass.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/tass.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/tass.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/tass.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/tass.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/tass.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
