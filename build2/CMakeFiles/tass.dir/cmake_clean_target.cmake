file(REMOVE_RECURSE
  "libtass.a"
)
