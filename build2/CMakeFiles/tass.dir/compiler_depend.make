# Empty compiler generated dependencies file for tass.
# This may be replaced when dependencies are built.
