# Empty dependencies file for sec34_ftp_stats.
# This may be replaced when dependencies are built.
