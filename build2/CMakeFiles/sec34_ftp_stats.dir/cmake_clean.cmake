file(REMOVE_RECURSE
  "CMakeFiles/sec34_ftp_stats.dir/bench/sec34_ftp_stats.cpp.o"
  "CMakeFiles/sec34_ftp_stats.dir/bench/sec34_ftp_stats.cpp.o.d"
  "sec34_ftp_stats"
  "sec34_ftp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec34_ftp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
