file(REMOVE_RECURSE
  "CMakeFiles/fig4_density_rank.dir/bench/fig4_density_rank.cpp.o"
  "CMakeFiles/fig4_density_rank.dir/bench/fig4_density_rank.cpp.o.d"
  "fig4_density_rank"
  "fig4_density_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_density_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
