# Empty dependencies file for fig4_density_rank.
# This may be replaced when dependencies are built.
