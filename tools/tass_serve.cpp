// tass_serve — resident TASS planning daemon.
//
// Usage:
//   tass_serve [--v4 IMAGE.tsim] [--v6 IMAGE.tsi6] [--bind ADDR]
//              [--port PORT] [--threads N]
//              [--feed SPEC] [--feed-follow] [--feed-table PFX2AS]
//              [--feed-out PATH] [--feed-batch N] [--feed-delay-ms MS]
//              [--feed-as-rate R] [--feed-as-burst B]
//
// At least one image is required. The daemon listens on
// ADDR:PORT (default 127.0.0.1, ephemeral port — the bound port is
// printed on stdout as `listening <addr> <port>` so wrappers can parse
// it), serves rank/plan/locate/tally queries over the serve/wire.hpp
// protocol, and swaps generations without interrupting service:
//
//   SIGHUP          reload every configured image from its current path
//   kReload frame   reload one family, optionally from a new path
//   SIGINT/SIGTERM  graceful stop (also wire kShutdown)
//
// Signals are consumed with sigwait() on the main thread while the
// server runs on a worker thread, so no handler ever runs in
// async-signal context.
//
// --feed attaches the live BGP stream reactor (stream/reactor.hpp) to
// the v4 plan: SPEC is an MRT BGP4MP update source — a file path
// (tailed like `tail -f` with --feed-follow), "fd:N" for an inherited
// pipe, or "tcp:HOST:PORT" for a collector socket. The reactor
// bootstraps from the loaded --v4 image (--feed-table supplies the
// origin sets from a pfx2as dump; without it every prefix is origin 0,
// which only matters for --feed-as-rate pacing), folds churn through
// its coalescing queue, and republishes each re-ranked plan by
// atomically writing --feed-out (default: the --v4 path + ".live") and
// enqueueing a generation swap — queries never wait. Cells invalidated
// by churn score zero until the next full seed scan (the daemon carries
// no prober). --feed-as-rate/--feed-as-burst bound the per-origin-AS
// rescan budget in probes per second (the paper's politeness arm).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bgp/pfx2as.hpp"
#include "serve/server.hpp"
#include "state/image.hpp"
#include "stream/reactor.hpp"
#include "stream/source.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--v4 image.tsim] [--v6 image.tsi6] "
               "[--bind addr] [--port port] [--threads n]\n"
               "       [--feed spec] [--feed-follow] "
               "[--feed-table pfx2as] [--feed-out path]\n"
               "       [--feed-batch n] [--feed-delay-ms ms] "
               "[--feed-as-rate r] [--feed-as-burst b]\n",
               argv0);
  return 2;
}

/// Rebuilds the reactor bootstrap — the sorted (prefix, origins, count)
/// table — from the sealed image the daemon is serving, plus an
/// optional pfx2as dump for the origin sets.
struct Bootstrap {
  std::vector<tass::bgp::Pfx2AsRecord> table;
  std::vector<std::uint32_t> counts;
  tass::core::PrefixMode mode = tass::core::PrefixMode::kMore;
};

Bootstrap bootstrap_from_image(const std::string& image_path,
                               const std::string& table_path) {
  using namespace tass;
  const state::StateImage image = state::StateImage::load(image_path);

  std::map<net::Prefix, std::vector<std::uint32_t>> origin_of;
  if (!table_path.empty()) {
    for (auto& record : bgp::load_pfx2as(table_path, /*strict=*/false)) {
      origin_of[record.prefix] = std::move(record.origins);
    }
  }
  std::map<net::Prefix, std::uint64_t> hosts_of;
  const auto ranking = image.ranking();
  for (const auto& ranked : ranking.ranked) {
    hosts_of[ranked.prefix] = ranked.hosts;
  }

  Bootstrap bootstrap;
  bootstrap.mode = ranking.mode;
  auto live = image.partition().live_prefixes();
  std::sort(live.begin(), live.end());
  bootstrap.table.reserve(live.size());
  bootstrap.counts.reserve(live.size());
  for (const net::Prefix prefix : live) {
    const auto origins = origin_of.find(prefix);
    bootstrap.table.push_back(
        {prefix, origins != origin_of.end() ? origins->second
                                            : std::vector<std::uint32_t>{0}});
    const auto hosts = hosts_of.find(prefix);
    bootstrap.counts.push_back(
        hosts != hosts_of.end() ? static_cast<std::uint32_t>(hosts->second)
                                : 0);
  }
  return bootstrap;
}

/// write + rename so the serving reload never sees a torn image.
void write_atomically(const std::string& path,
                      std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw tass::Error("cannot write plan image: " + tmp);
  }
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw tass::Error("cannot publish plan image: " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tass::serve::ServerOptions options;
  std::string feed_spec;
  bool feed_follow = false;
  std::string feed_table;
  std::string feed_out;
  tass::stream::ReactorOptions reactor_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tass_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--v4") {
      options.v4_image_path = value();
    } else if (arg == "--v6") {
      options.v6_image_path = value();
    } else if (arg == "--bind") {
      options.bind_address = value();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--feed") {
      feed_spec = value();
    } else if (arg == "--feed-follow") {
      feed_follow = true;
    } else if (arg == "--feed-table") {
      feed_table = value();
    } else if (arg == "--feed-out") {
      feed_out = value();
    } else if (arg == "--feed-batch") {
      reactor_options.max_batch =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--feed-delay-ms") {
      reactor_options.max_batch_delay_seconds = std::atof(value()) / 1e3;
    } else if (arg == "--feed-as-rate") {
      reactor_options.as_probes_per_second = std::atof(value());
    } else if (arg == "--feed-as-burst") {
      reactor_options.as_probe_burst = std::atof(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "tass_serve: unknown argument %s\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (options.v4_image_path.empty() && options.v6_image_path.empty()) {
    std::fprintf(stderr, "tass_serve: at least one of --v4/--v6 is "
                         "required\n");
    return usage(argv[0]);
  }
  if (!feed_spec.empty() && options.v4_image_path.empty()) {
    std::fprintf(stderr,
                 "tass_serve: --feed tracks the v4 plan and needs --v4\n");
    return usage(argv[0]);
  }
  if (feed_out.empty()) feed_out = options.v4_image_path + ".live";

  // Block the control signals before any thread exists so every thread
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGHUP);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const std::string bind_address = options.bind_address;
    const std::string v4_path = options.v4_image_path;
    tass::serve::Server server(std::move(options));
    std::printf("listening %s %u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::thread serving([&server] { server.run(); });

    // The live-churn reactor: every sealed plan is written atomically
    // to feed_out and swapped into the serving generation store via the
    // normal reload path (load + validate off the query path, then one
    // atomic install).
    std::unique_ptr<tass::stream::StreamReactor> reactor;
    if (!feed_spec.empty()) {
      Bootstrap bootstrap = bootstrap_from_image(v4_path, feed_table);
      reactor_options.mode = bootstrap.mode;
      std::fprintf(stderr,
                   "tass_serve: feed %s (%zu prefixes, origins %s)\n",
                   feed_spec.c_str(), bootstrap.table.size(),
                   feed_table.empty() ? "defaulted" : feed_table.c_str());
      reactor = std::make_unique<tass::stream::StreamReactor>(
          std::move(bootstrap.table), std::move(bootstrap.counts),
          reactor_options);
      reactor->set_publisher([&server,
                              feed_out](tass::stream::PublishedPlan plan) {
        try {
          write_atomically(feed_out, plan.image);
          server.request_reload(tass::net::AddressFamily::kIpv4, feed_out);
          std::fprintf(stderr,
                       "tass_serve: plan %llu published (%llu updates, "
                       "%.1f ms update->plan)\n",
                       static_cast<unsigned long long>(plan.seq),
                       static_cast<unsigned long long>(plan.batch_updates),
                       plan.update_to_plan_seconds * 1e3);
        } catch (const std::exception& e) {
          // Keep serving the previous generation; the next batch
          // retries the publication path.
          std::fprintf(stderr, "tass_serve: plan %llu not published: %s\n",
                       static_cast<unsigned long long>(plan.seq), e.what());
        }
      });
      reactor->start(tass::stream::make_update_source(feed_spec,
                                                      feed_follow));
    }

    for (;;) {
      int signo = 0;
      if (sigwait(&signals, &signo) != 0) continue;
      if (signo == SIGHUP) {
        std::fprintf(stderr, "tass_serve: SIGHUP: reloading images\n");
        server.request_reload(tass::net::AddressFamily::kIpv4);
        server.request_reload(tass::net::AddressFamily::kIpv6);
        continue;
      }
      std::fprintf(stderr, "tass_serve: signal %d: shutting down\n",
                   signo);
      break;
    }
    if (reactor) {
      reactor->stop();
      const auto stats = reactor->stats();
      std::fprintf(stderr,
                   "tass_serve: feed consumed %llu records (%llu decode "
                   "errors, %llu resyncs), %llu plans published, %llu "
                   "updates folded\n",
                   static_cast<unsigned long long>(stats.framer.records),
                   static_cast<unsigned long long>(
                       stats.framer.decode_errors),
                   static_cast<unsigned long long>(stats.framer.resyncs),
                   static_cast<unsigned long long>(stats.plans_published),
                   static_cast<unsigned long long>(stats.queue.coalesced));
    }
    server.stop();
    serving.join();
    const auto stats = server.stats();
    std::fprintf(stderr,
                 "tass_serve: served %llu requests, %llu batched "
                 "addresses, %llu swaps\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.batched_addresses),
                 static_cast<unsigned long long>(stats.swaps));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tass_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
