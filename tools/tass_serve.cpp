// tass_serve — resident TASS planning daemon.
//
// Usage:
//   tass_serve [--v4 IMAGE.tsim] [--v6 IMAGE.tsi6] [--bind ADDR]
//              [--port PORT] [--threads N]
//
// At least one image is required. The daemon listens on
// ADDR:PORT (default 127.0.0.1, ephemeral port — the bound port is
// printed on stdout as `listening <addr> <port>` so wrappers can parse
// it), serves rank/plan/locate/tally queries over the serve/wire.hpp
// protocol, and swaps generations without interrupting service:
//
//   SIGHUP          reload every configured image from its current path
//   kReload frame   reload one family, optionally from a new path
//   SIGINT/SIGTERM  graceful stop (also wire kShutdown)
//
// Signals are consumed with sigwait() on the main thread while the
// server runs on a worker thread, so no handler ever runs in
// async-signal context.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--v4 image.tsim] [--v6 image.tsi6] "
               "[--bind addr] [--port port] [--threads n]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tass::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tass_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--v4") {
      options.v4_image_path = value();
    } else if (arg == "--v6") {
      options.v6_image_path = value();
    } else if (arg == "--bind") {
      options.bind_address = value();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "tass_serve: unknown argument %s\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (options.v4_image_path.empty() && options.v6_image_path.empty()) {
    std::fprintf(stderr, "tass_serve: at least one of --v4/--v6 is "
                         "required\n");
    return usage(argv[0]);
  }

  // Block the control signals before any thread exists so every thread
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGHUP);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const std::string bind_address = options.bind_address;
    tass::serve::Server server(std::move(options));
    std::printf("listening %s %u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::thread serving([&server] { server.run(); });

    for (;;) {
      int signo = 0;
      if (sigwait(&signals, &signo) != 0) continue;
      if (signo == SIGHUP) {
        std::fprintf(stderr, "tass_serve: SIGHUP: reloading images\n");
        server.request_reload(tass::net::AddressFamily::kIpv4);
        server.request_reload(tass::net::AddressFamily::kIpv6);
        continue;
      }
      std::fprintf(stderr, "tass_serve: signal %d: shutting down\n",
                   signo);
      break;
    }
    server.stop();
    serving.join();
    const auto stats = server.stats();
    std::fprintf(stderr,
                 "tass_serve: served %llu requests, %llu batched "
                 "addresses, %llu swaps\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.batched_addresses),
                 static_cast<unsigned long long>(stats.swaps));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tass_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
