#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json records CI uploads.

Downloads the most recent bench-json artifact produced on `main`,
compares its headline numbers against the JSON files of the current run,
and fails (exit 1) on a regression beyond the threshold. Every problem
that is *not* a measured regression — no baseline yet, expired
artifacts, API errors, missing metrics — degrades to a warning and exit
0, so the gate can never wedge a repository whose history lacks
baselines.

Headline metrics (direction-aware):
  micro_lpm       lpm_lookups_per_sec, lpm_batch_lookups_per_sec,
                  lpm_simd_lookups_per_sec (higher is better; the simd
                  key appears only when the AVX2 kernel ran)
  micro_lpm6      lpm6_lookups_per_sec, lpm6_batch_lookups_per_sec,
                  lpm6_simd_lookups_per_sec (higher is better)
  micro_delta     delta_ms per churn rate (lower is better)
  micro_coldstart load_ms (lower is better), speedup (higher is better)
  micro_serve     qps_per_core (higher is better), p99_us and
                  swap_p99_us (lower is better)
  micro_stream    updates_per_sec_sustained (higher is better),
                  update_to_plan_p99_ms (lower is better)
  micro_sample    sample_probe_efficiency (higher is better; probe
                  reduction achieved at <= 5% estimation error)
  micro_reduce    reduce_ratio_at_5pct (higher is better; prefix-count
                  reduction at the 5% overshoot cap) and
                  scope_build_speedup (higher is better; ScanScope
                  construction from the reduced list vs the original)

Usage (in CI):
  bench_compare.py --repo owner/name --artifact bench-json-gcc \
      --token "$GITHUB_TOKEN" --current BENCH_*.json [--warn-only]

Local use against a saved baseline directory:
  bench_compare.py --baseline-dir old/ --current BENCH_*.json
"""

import argparse
import io
import json
import pathlib
import sys
import urllib.error
import urllib.request
import zipfile

THRESHOLD = 0.25  # fail on >25% throughput regression

API = "https://api.github.com"


def log(message):
    print(f"bench-compare: {message}", file=sys.stderr)


def api_get(url, token):
    request = urllib.request.Request(url)
    request.add_header("Accept", "application/vnd.github+json")
    if token:
        request.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.read()


def fetch_baseline(repo, artifact_name, token, exclude_run_id):
    """Returns {filename: parsed-json} from the newest artifact on main
    (excluding the current run's own upload). Paginates so heavy PR
    traffic between main pushes cannot starve the listing of a main
    artifact."""
    candidates = []
    for page in range(1, 6):
        url = (f"{API}/repos/{repo}/actions/artifacts"
               f"?name={artifact_name}&per_page=100&page={page}")
        listing = json.loads(api_get(url, token))
        artifacts = listing.get("artifacts", [])
        # head_repository_id == repository_id rejects fork-PR uploads
        # whose fork branch happens to be named "main" — only runs of
        # this repository's own main may seed the baseline.
        candidates.extend(
            artifact for artifact in artifacts
            if not artifact.get("expired")
            and artifact.get("workflow_run", {}).get("head_branch") == "main"
            and artifact.get("workflow_run", {}).get("head_repository_id")
            == artifact.get("workflow_run", {}).get("repository_id")
            and str(artifact.get("workflow_run", {}).get("id")) !=
            str(exclude_run_id))
        if candidates or len(artifacts) < 100:
            break
    if not candidates:
        log(f"no usable '{artifact_name}' artifact from main yet")
        return None
    newest = max(candidates, key=lambda artifact: artifact["created_at"])
    log(f"baseline: artifact {newest['id']} from {newest['created_at']}")
    blob = api_get(newest["archive_download_url"], token)
    baseline = {}
    with zipfile.ZipFile(io.BytesIO(blob)) as archive:
        for name in archive.namelist():
            if name.endswith(".json"):
                baseline[pathlib.Path(name).name] = json.loads(
                    archive.read(name))
    return baseline


def load_baseline_dir(path):
    baseline = {}
    for json_path in pathlib.Path(path).glob("*.json"):
        baseline[json_path.name] = json.loads(json_path.read_text())
    return baseline or None


def headline_metrics(record):
    """Yields (metric-name, value, higher_is_better) for one record."""
    bench = record.get("bench")
    if bench == "micro_lpm":
        # lpm_simd_lookups_per_sec is present only when the AVX2 kernel
        # ran; missing-in-baseline is already warn-only, so the key ages
        # in gracefully.
        for key in ("lpm_lookups_per_sec", "lpm_batch_lookups_per_sec",
                    "lpm_simd_lookups_per_sec"):
            if key in record:
                yield key, float(record[key]), True
    elif bench == "micro_lpm6":
        for key in ("lpm6_lookups_per_sec", "lpm6_batch_lookups_per_sec",
                    "lpm6_simd_lookups_per_sec"):
            if key in record:
                yield key, float(record[key]), True
    elif bench == "micro_delta":
        for rate in record.get("rates", []):
            if "delta_ms" in rate:
                yield (f"delta_ms@churn={rate.get('churn')}",
                       float(rate["delta_ms"]), False)
    elif bench == "micro_coldstart":
        if "load_ms" in record:
            yield "load_ms", float(record["load_ms"]), False
        if "speedup" in record:
            yield "speedup", float(record["speedup"]), True
    elif bench == "micro_serve":
        if "qps_per_core" in record:
            yield "qps_per_core", float(record["qps_per_core"]), True
        if "p99_us" in record:
            yield "p99_us", float(record["p99_us"]), False
        if "swap_p99_us" in record:
            yield "swap_p99_us", float(record["swap_p99_us"]), False
    elif bench == "micro_stream":
        if "updates_per_sec_sustained" in record:
            yield ("updates_per_sec_sustained",
                   float(record["updates_per_sec_sustained"]), True)
        if "update_to_plan_p99_ms" in record:
            yield ("update_to_plan_p99_ms",
                   float(record["update_to_plan_p99_ms"]), False)
    elif bench == "micro_sample":
        if "sample_probe_efficiency" in record:
            yield ("sample_probe_efficiency",
                   float(record["sample_probe_efficiency"]), True)
    elif bench == "micro_reduce":
        if "reduce_ratio_at_5pct" in record:
            yield ("reduce_ratio_at_5pct",
                   float(record["reduce_ratio_at_5pct"]), True)
        if "scope_build_speedup" in record:
            yield ("scope_build_speedup",
                   float(record["scope_build_speedup"]), True)


def index_by_bench(files):
    by_bench = {}
    for record in files.values():
        if isinstance(record, dict) and "bench" in record:
            by_bench[record["bench"]] = record
    return by_bench


def compare(baseline_files, current_files):
    """Returns a list of regression strings; logs every comparison."""
    regressions = []
    old_by_bench = index_by_bench(baseline_files)
    new_by_bench = index_by_bench(current_files)
    for bench, new_record in sorted(new_by_bench.items()):
        old_record = old_by_bench.get(bench)
        if old_record is None:
            log(f"{bench}: no baseline record, skipping")
            continue
        old_metrics = dict(
            (name, (value, up))
            for name, value, up in headline_metrics(old_record))
        for name, new_value, higher_better in headline_metrics(new_record):
            if name not in old_metrics:
                log(f"{bench}.{name}: not in baseline, skipping")
                continue
            old_value, _ = old_metrics[name]
            if old_value <= 0 or new_value <= 0:
                log(f"{bench}.{name}: non-positive value, skipping")
                continue
            if higher_better:
                change = (old_value - new_value) / old_value
            else:
                change = (new_value - old_value) / old_value
            verdict = "REGRESSION" if change > THRESHOLD else "ok"
            log(f"{bench}.{name}: {old_value:.6g} -> {new_value:.6g} "
                f"({change:+.1%} toward-worse, {verdict})")
            if change > THRESHOLD:
                regressions.append(
                    f"{bench}.{name}: {old_value:.6g} -> {new_value:.6g} "
                    f"({change:+.1%} worse, threshold {THRESHOLD:.0%})")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", help="owner/name for the GitHub API")
    parser.add_argument("--artifact", help="artifact name holding baseline")
    parser.add_argument("--token", default="", help="GitHub API token")
    parser.add_argument("--exclude-run-id", default="",
                        help="workflow run id whose artifacts are never "
                             "a baseline (the current run)")
    parser.add_argument("--baseline-dir",
                        help="local directory of baseline JSON (no API)")
    parser.add_argument("--current", nargs="+", required=True,
                        help="BENCH_*.json files of this run")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(fork PRs without secrets)")
    args = parser.parse_args()

    current = {}
    for path in args.current:
        try:
            current[pathlib.Path(path).name] = json.loads(
                pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            log(f"cannot read current record {path}: {error}")
    if not current:
        log("no current bench records; nothing to compare")
        return 0

    try:
        if args.baseline_dir:
            baseline = load_baseline_dir(args.baseline_dir)
        elif args.repo and args.artifact:
            baseline = fetch_baseline(args.repo, args.artifact, args.token,
                                      args.exclude_run_id)
        else:
            log("no baseline source configured; skipping")
            return 0
    except (urllib.error.URLError, zipfile.BadZipFile, json.JSONDecodeError,
            OSError, KeyError) as error:
        log(f"cannot fetch baseline ({error}); skipping comparison")
        return 0
    if not baseline:
        log("no baseline available; skipping comparison")
        return 0

    regressions = compare(baseline, current)
    if not regressions:
        log("no regressions beyond threshold")
        return 0
    for regression in regressions:
        log(regression)
    if args.warn_only:
        log("warn-only mode: not failing the job")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
