// Probe pacing: token-bucket rate limiting and scan-cycle scheduling.
//
// Being a good Internet citizen is not only about *what* you probe but
// *how fast*: responsible scanners cap their probe rate and spread a
// cycle over days. This module provides a deterministic token bucket (the
// ZMap -r/--rate mechanism) and a scheduler that splits one scan cycle
// into per-day shards using the permutation's shard support, plus the
// arithmetic for sizing Delta-t against a rate budget.
//
// Time is passed in explicitly (seconds as double) so simulations and
// tests are deterministic; nothing here reads a wall clock.
#pragma once

#include <cstdint>

#include "scan/scope.hpp"
#include "scan/target_iterator.hpp"

namespace tass::scan {

/// Deterministic token bucket: `rate` tokens per second accrue up to
/// `burst`; a probe consumes one token.
class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst);

  /// Attempts to consume `tokens` at time `now`; returns success.
  bool try_consume(double tokens, double now) noexcept;

  /// Earliest time at which `tokens` could be consumed (>= now), under
  /// the same 1e-9 tolerance as try_consume — so
  /// try_consume(t, ready_time(t, now)) always succeeds for any
  /// satisfiable demand. A demand beyond capacity (tokens > burst +
  /// 1e-9) can never succeed and returns +infinity.
  double ready_time(double tokens, double now) noexcept;

  double available(double now) noexcept;
  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void refill(double now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
};

/// Sizing arithmetic for one periodic scan deployment.
struct PacingPlan {
  std::uint64_t targets = 0;       // addresses per cycle
  double probes_per_second = 0;    // rate budget
  double cycle_seconds = 0;        // time to complete one cycle
  int shards = 1;                  // per-day (or per-slot) shards

  /// Cycles that fit in a 30-day month at this rate.
  double cycles_per_month() const noexcept;
};

/// Plans a cycle over `scope_addresses` targets at `probes_per_second`,
/// split into `shards` equal slots (e.g. one per day).
PacingPlan plan_cycle(std::uint64_t scope_addresses,
                      double probes_per_second, int shards);

/// Iterates one shard of a scope's permutation: shard `index` of `count`
/// visits a disjoint ~1/count of the scope, and the union over all shards
/// is exactly the scope (ZMap --shards over a whitelist).
class ShardedScopeIterator {
 public:
  ShardedScopeIterator(const ScanScope& scope, std::uint64_t seed,
                       std::uint32_t shard_index, std::uint32_t shard_count);

  /// Next target address in this shard, or nullopt when exhausted.
  std::optional<net::Ipv4Address> next();

 private:
  net::AddressIndexer indexer_;
  TargetIterator iterator_;
};

}  // namespace tass::scan
