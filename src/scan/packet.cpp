#include "scan/packet.hpp"

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::scan {

namespace {

using util::load_be16;
using util::load_be32;
using util::store_be16;
using util::store_be32;

// One-based big-endian 16-bit word sum with end-around carry.
std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t sum) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += load_be16(std::span<const std::byte, 2>(data.data() + i, 2));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(std::to_integer<std::uint16_t>(
               data[i]))
           << 8;
  }
  return sum;
}

std::uint16_t checksum_fold(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  return checksum_fold(checksum_accumulate(data, 0));
}

void encode_ipv4_header(const Ipv4Header& header,
                        std::span<std::byte, Ipv4Header::kSize> out) noexcept {
  out[0] = std::byte{0x45};  // version 4, IHL 5
  out[1] = std::byte{0x00};  // DSCP/ECN
  store_be16(header.total_length,
             std::span<std::byte, 2>(out.data() + 2, 2));
  store_be16(header.identification,
             std::span<std::byte, 2>(out.data() + 4, 2));
  store_be16(0x4000, std::span<std::byte, 2>(out.data() + 6, 2));  // DF
  out[8] = static_cast<std::byte>(header.ttl);
  out[9] = static_cast<std::byte>(header.protocol);
  out[10] = out[11] = std::byte{0};  // checksum placeholder
  store_be32(header.source.value(),
             std::span<std::byte, 4>(out.data() + 12, 4));
  store_be32(header.destination.value(),
             std::span<std::byte, 4>(out.data() + 16, 4));
  const std::uint16_t checksum = internet_checksum(out);
  store_be16(checksum, std::span<std::byte, 2>(out.data() + 10, 2));
}

void encode_tcp_header(const TcpHeader& header, net::Ipv4Address src,
                       net::Ipv4Address dst,
                       std::span<std::byte, TcpHeader::kSize> out) noexcept {
  store_be16(header.source_port, std::span<std::byte, 2>(out.data(), 2));
  store_be16(header.destination_port,
             std::span<std::byte, 2>(out.data() + 2, 2));
  store_be32(header.sequence, std::span<std::byte, 4>(out.data() + 4, 4));
  store_be32(header.acknowledgement,
             std::span<std::byte, 4>(out.data() + 8, 4));
  out[12] = std::byte{0x50};  // data offset 5 words
  out[13] = static_cast<std::byte>(header.flags);
  store_be16(header.window, std::span<std::byte, 2>(out.data() + 14, 2));
  out[16] = out[17] = std::byte{0};  // checksum placeholder
  out[18] = out[19] = std::byte{0};  // urgent pointer

  // TCP checksum covers the pseudo-header (src, dst, proto, length).
  std::byte pseudo[12];
  store_be32(src.value(), std::span<std::byte, 4>(pseudo, 4));
  store_be32(dst.value(), std::span<std::byte, 4>(pseudo + 4, 4));
  pseudo[8] = std::byte{0};
  pseudo[9] = std::byte{6};  // TCP
  store_be16(TcpHeader::kSize, std::span<std::byte, 2>(pseudo + 10, 2));
  std::uint32_t sum = checksum_accumulate(pseudo, 0);
  sum = checksum_accumulate(out, sum);
  store_be16(checksum_fold(sum),
             std::span<std::byte, 2>(out.data() + 16, 2));
}

ProbeBuilder::ProbeBuilder(net::Ipv4Address source,
                           std::uint16_t target_port,
                           std::uint64_t validation_key)
    : source_(source), target_port_(target_port), key_(validation_key) {}

std::uint16_t ProbeBuilder::source_port_for(
    net::Ipv4Address target) const noexcept {
  // Ephemeral range 32768-61183 (28416 ports), keyed by the target.
  const std::uint64_t mac = util::mix64(key_, target.value());
  return static_cast<std::uint16_t>(32768 + (mac % 28416));
}

std::uint32_t ProbeBuilder::sequence_for(
    net::Ipv4Address target) const noexcept {
  return static_cast<std::uint32_t>(
      util::mix64(key_ ^ 0x5eb1ae9c3ULL, target.value()));
}

ProbePacket ProbeBuilder::build(net::Ipv4Address target) const {
  ProbePacket packet;
  Ipv4Header ip;
  ip.source = source_;
  ip.destination = target;
  ip.total_length = Ipv4Header::kSize + TcpHeader::kSize;
  ip.identification = static_cast<std::uint16_t>(
      util::mix64(key_ ^ 0x1dULL, target.value()));

  TcpHeader tcp;
  tcp.source_port = source_port_for(target);
  tcp.destination_port = target_port_;
  tcp.sequence = sequence_for(target);

  encode_ipv4_header(
      ip, std::span<std::byte, Ipv4Header::kSize>(packet.bytes.data(),
                                                  Ipv4Header::kSize));
  encode_tcp_header(
      tcp, source_, target,
      std::span<std::byte, TcpHeader::kSize>(
          packet.bytes.data() + Ipv4Header::kSize, TcpHeader::kSize));
  return packet;
}

bool ProbeBuilder::validate_response(net::Ipv4Address responder,
                                     std::uint16_t responder_port,
                                     std::uint16_t dst_port,
                                     std::uint32_t ack) const noexcept {
  // A genuine SYN-ACK comes from the probed port, back to the MAC'd
  // source port, acking sequence+1.
  return responder_port == target_port_ &&
         dst_port == source_port_for(responder) &&
         ack == sequence_for(responder) + 1;
}

DecodedProbe decode_probe(std::span<const std::byte> packet) {
  if (packet.size() != Ipv4Header::kSize + TcpHeader::kSize) {
    throw FormatError("probe must be exactly 40 bytes");
  }
  const auto ip_bytes = packet.first(Ipv4Header::kSize);
  if (std::to_integer<std::uint8_t>(ip_bytes[0]) != 0x45) {
    throw FormatError("not an IPv4 header without options");
  }
  if (internet_checksum(ip_bytes) != 0) {
    throw FormatError("IPv4 header checksum mismatch");
  }
  DecodedProbe decoded;
  decoded.ip.total_length =
      load_be16(std::span<const std::byte, 2>(ip_bytes.data() + 2, 2));
  decoded.ip.identification =
      load_be16(std::span<const std::byte, 2>(ip_bytes.data() + 4, 2));
  decoded.ip.ttl = std::to_integer<std::uint8_t>(ip_bytes[8]);
  decoded.ip.protocol = std::to_integer<std::uint8_t>(ip_bytes[9]);
  decoded.ip.source = net::Ipv4Address(
      load_be32(std::span<const std::byte, 4>(ip_bytes.data() + 12, 4)));
  decoded.ip.destination = net::Ipv4Address(
      load_be32(std::span<const std::byte, 4>(ip_bytes.data() + 16, 4)));

  const auto tcp_bytes = packet.subspan(Ipv4Header::kSize);
  // Verify the TCP checksum including the pseudo-header: accumulating the
  // checksummed segment plus pseudo-header must fold to zero.
  std::byte pseudo[12];
  store_be32(decoded.ip.source.value(), std::span<std::byte, 4>(pseudo, 4));
  store_be32(decoded.ip.destination.value(),
             std::span<std::byte, 4>(pseudo + 4, 4));
  pseudo[8] = std::byte{0};
  pseudo[9] = std::byte{6};
  store_be16(TcpHeader::kSize, std::span<std::byte, 2>(pseudo + 10, 2));
  std::uint32_t sum = checksum_accumulate(pseudo, 0);
  sum = checksum_accumulate(tcp_bytes, sum);
  if (checksum_fold(sum) != 0) {
    throw FormatError("TCP checksum mismatch");
  }
  decoded.tcp.source_port =
      load_be16(std::span<const std::byte, 2>(tcp_bytes.data(), 2));
  decoded.tcp.destination_port =
      load_be16(std::span<const std::byte, 2>(tcp_bytes.data() + 2, 2));
  decoded.tcp.sequence =
      load_be32(std::span<const std::byte, 4>(tcp_bytes.data() + 4, 4));
  decoded.tcp.acknowledgement =
      load_be32(std::span<const std::byte, 4>(tcp_bytes.data() + 8, 4));
  decoded.tcp.flags = std::to_integer<std::uint8_t>(tcp_bytes[13]);
  decoded.tcp.window =
      load_be16(std::span<const std::byte, 2>(tcp_bytes.data() + 14, 2));
  return decoded;
}

}  // namespace tass::scan
