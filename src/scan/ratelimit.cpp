#include "scan/ratelimit.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::scan {

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second), burst_(burst), tokens_(burst) {
  TASS_EXPECTS(rate_per_second > 0.0);
  TASS_EXPECTS(burst >= 1.0);
}

void TokenBucket::refill(double now) noexcept {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::try_consume(double tokens, double now) noexcept {
  TASS_EXPECTS(tokens >= 0.0);
  refill(now);
  if (tokens_ + 1e-9 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::ready_time(double tokens, double now) noexcept {
  TASS_EXPECTS(tokens >= 0.0);
  refill(now);
  if (tokens_ >= tokens) return now;
  return now + (tokens - tokens_) / rate_;
}

double TokenBucket::available(double now) noexcept {
  refill(now);
  return tokens_;
}

double PacingPlan::cycles_per_month() const noexcept {
  return cycle_seconds <= 0.0 ? 0.0
                              : (30.0 * 86400.0) / cycle_seconds;
}

PacingPlan plan_cycle(std::uint64_t scope_addresses,
                      double probes_per_second, int shards) {
  TASS_EXPECTS(probes_per_second > 0.0);
  TASS_EXPECTS(shards >= 1);
  PacingPlan plan;
  plan.targets = scope_addresses;
  plan.probes_per_second = probes_per_second;
  plan.cycle_seconds =
      static_cast<double>(scope_addresses) / probes_per_second;
  plan.shards = shards;
  return plan;
}

ShardedScopeIterator::ShardedScopeIterator(const ScanScope& scope,
                                           std::uint64_t seed,
                                           std::uint32_t shard_index,
                                           std::uint32_t shard_count)
    : indexer_(scope.targets()),
      iterator_(TargetIterator::shard(seed, shard_index, shard_count,
                                      std::max<std::uint64_t>(
                                          indexer_.size(), 1))) {}

std::optional<net::Ipv4Address> ShardedScopeIterator::next() {
  if (indexer_.size() == 0) return std::nullopt;
  const auto offset = iterator_.next_value();
  if (!offset) return std::nullopt;
  return indexer_.at(*offset);
}

}  // namespace tass::scan
