#include "scan/ratelimit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tass::scan {

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second), burst_(burst), tokens_(burst) {
  TASS_EXPECTS(rate_per_second > 0.0);
  TASS_EXPECTS(burst >= 1.0);
}

void TokenBucket::refill(double now) noexcept {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::try_consume(double tokens, double now) noexcept {
  TASS_EXPECTS(tokens >= 0.0);
  refill(now);
  if (tokens_ + 1e-9 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::ready_time(double tokens, double now) noexcept {
  TASS_EXPECTS(tokens >= 0.0);
  refill(now);
  // A demand beyond bucket capacity can never be satisfied: refill
  // clamps tokens_ at burst_, so projecting the deficit linearly would
  // hand back a finite instant at which try_consume still refuses.
  if (tokens > burst_ + 1e-9) {
    return std::numeric_limits<double>::infinity();
  }
  // Same 1e-9 tolerance as try_consume: without it, ready_time could
  // report "not yet" (and hand back a future instant) for a demand
  // try_consume would already grant, or — worse — return an instant at
  // which try_consume still refuses because the refill at that instant
  // rounds a hair short. The nextafter loop closes the residual ULP gap
  // for large-magnitude clocks where an absolute 1e-9 is below the
  // representable resolution, so try_consume(t, ready_time(t, now)) is
  // guaranteed to succeed for any satisfiable demand.
  if (tokens_ + 1e-9 >= tokens) return now;
  // tokens_ is as-of last_refill_ (== now unless the clock ran
  // backwards), so project the deficit from there.
  const double base = std::max(now, last_refill_);
  double ready = base + (tokens - tokens_) / rate_;
  while (tokens_ + (ready - last_refill_) * rate_ + 1e-9 < tokens) {
    ready = std::nextafter(ready, std::numeric_limits<double>::infinity());
  }
  return ready;
}

double TokenBucket::available(double now) noexcept {
  refill(now);
  return tokens_;
}

double PacingPlan::cycles_per_month() const noexcept {
  return cycle_seconds <= 0.0 ? 0.0
                              : (30.0 * 86400.0) / cycle_seconds;
}

PacingPlan plan_cycle(std::uint64_t scope_addresses,
                      double probes_per_second, int shards) {
  TASS_EXPECTS(probes_per_second > 0.0);
  TASS_EXPECTS(shards >= 1);
  PacingPlan plan;
  plan.targets = scope_addresses;
  plan.probes_per_second = probes_per_second;
  plan.cycle_seconds =
      static_cast<double>(scope_addresses) / probes_per_second;
  plan.shards = shards;
  return plan;
}

ShardedScopeIterator::ShardedScopeIterator(const ScanScope& scope,
                                           std::uint64_t seed,
                                           std::uint32_t shard_index,
                                           std::uint32_t shard_count)
    : indexer_(scope.targets()),
      iterator_(TargetIterator::shard(seed, shard_index, shard_count,
                                      std::max<std::uint64_t>(
                                          indexer_.size(), 1))) {}

std::optional<net::Ipv4Address> ShardedScopeIterator::next() {
  if (indexer_.size() == 0) return std::nullopt;
  const auto offset = iterator_.next_value();
  if (!offset) return std::nullopt;
  return indexer_.at(*offset);
}

}  // namespace tass::scan
