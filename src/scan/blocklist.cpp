#include "scan/blocklist.hpp"

#include <fstream>
#include <sstream>

#include "net/family.hpp"
#include "net/special_use.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::scan {

Blocklist Blocklist::parse(std::string_view text) {
  net::IntervalSet blocked;
  std::vector<net::Ipv6Prefix> blocked6;
  for (const std::string_view raw : util::split(text, '\n')) {
    std::string_view line = raw;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = util::trim(line);
    if (line.empty()) continue;

    if (const auto dash = line.find('-');
        dash != std::string_view::npos) {
      // Ranges are a v4-only extension (128-bit range-to-CIDR cover is
      // not implemented; the parser says so rather than guessing).
      if (line.find(':') != std::string_view::npos) {
        throw ParseError(
            "IPv6 blocklist ranges are not supported (use prefixes): '" +
            std::string(line) + "'");
      }
      const auto first =
          net::Ipv4Address::parse_or_throw(util::trim(line.substr(0, dash)));
      const auto last =
          net::Ipv4Address::parse_or_throw(util::trim(line.substr(dash + 1)));
      if (last < first) {
        throw ParseError("blocklist range is inverted: '" +
                         std::string(line) + "'");
      }
      blocked.insert(net::Interval{first, last});
    } else {
      // One grammar for both families: a CIDR prefix or a bare address
      // (a full-length block), dispatched by the detected family.
      // IPv6 entries used to fail the v4 grammar; they are first-class
      // now, and malformed lines of either family still throw.
      const auto entry = net::GenericPrefix::parse_or_throw(line);
      if (const auto prefix = entry.v4()) {
        blocked.insert(*prefix);
      } else {
        blocked6.push_back(*entry.v6());
      }
    }
  }
  Blocklist result(std::move(blocked));
  for (const net::Ipv6Prefix prefix : blocked6) result.add(prefix);
  return result;
}

Blocklist Blocklist::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open blocklist file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Blocklist Blocklist::default_blocklist() {
  return Blocklist(net::reserved_space());
}

BlocklistCompaction Blocklist::compact(const bgp::ReduceParams& params) {
  BlocklistCompaction stats;

  const std::vector<net::Prefix> cover = blocked_.to_prefixes();
  stats.v4_before = cover.size();
  if (!cover.empty()) {
    const auto reduced = bgp::reduce(cover, params);
    stats.v4_after = reduced.prefixes.size();
    stats.v4_overshoot_addresses = reduced.overshoot_addresses;
    if (reduced.prefixes.size() < cover.size()) {
      blocked_ = net::IntervalSet::of_prefixes(reduced.prefixes);
      dirty_ = true;
    } else {
      stats.v4_after = cover.size();
    }
  }

  stats.v6_before = blocked6_.size();
  if (!blocked6_.empty()) {
    auto reduced = bgp::reduce(std::span<const net::Ipv6Prefix>(blocked6_),
                               params);
    stats.v6_after = reduced.prefixes.size();
    stats.v6_overshoot_units = reduced.overshoot_addresses;
    // The reduced list can only shrink or stay (aggregation alone drops
    // duplicates/nesting), so installing it is never a regression.
    blocked6_ = std::move(reduced.prefixes);
    dirty6_ = true;
  }
  return stats;
}

}  // namespace tass::scan
