#include "scan/blocklist.hpp"

#include <fstream>
#include <sstream>

#include "net/special_use.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::scan {

Blocklist Blocklist::parse(std::string_view text) {
  net::IntervalSet blocked;
  for (const std::string_view raw : util::split(text, '\n')) {
    std::string_view line = raw;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = util::trim(line);
    if (line.empty()) continue;

    if (line.find('/') != std::string_view::npos) {
      blocked.insert(net::Prefix::parse_or_throw(line));
    } else if (const auto dash = line.find('-');
               dash != std::string_view::npos) {
      const auto first =
          net::Ipv4Address::parse_or_throw(util::trim(line.substr(0, dash)));
      const auto last =
          net::Ipv4Address::parse_or_throw(util::trim(line.substr(dash + 1)));
      if (last < first) {
        throw ParseError("blocklist range is inverted: '" +
                         std::string(line) + "'");
      }
      blocked.insert(net::Interval{first, last});
    } else {
      const auto addr = net::Ipv4Address::parse_or_throw(line);
      blocked.insert(net::Interval{addr, addr});
    }
  }
  return Blocklist(std::move(blocked));
}

Blocklist Blocklist::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open blocklist file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Blocklist Blocklist::default_blocklist() {
  return Blocklist(net::reserved_space());
}

}  // namespace tass::scan
