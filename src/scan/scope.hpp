// ScanScope: the set of addresses a scan cycle will probe — a whitelist of
// prefixes (e.g. a TASS selection, or the whole announced space) minus a
// blocklist. Membership queries resolve through the trie::LpmIndex
// substrate; the IntervalSet stays the enumeration/accounting view the
// engine walks.
#pragma once

#include <span>

#include "bgp/partition.hpp"
#include "bgp/reduce.hpp"
#include "net/interval.hpp"
#include "scan/blocklist.hpp"
#include "trie/lpm_index.hpp"

namespace tass::scan {

class ScanScope {
 public:
  ScanScope() = default;

  /// Scope = union(prefixes) - blocklist.
  ScanScope(std::span<const net::Prefix> prefixes, const Blocklist& blocklist);

  /// Scope from a reduced (overshoot-bounded) selection: the prefix list
  /// is first collapsed by bgp::reduce, then scoped as usual. Fewer
  /// prefixes mean fewer target intervals and a smaller LPM build, at
  /// the price of up to params.max_overshoot extra addresses in scope —
  /// every original address stays in scope (the blocklist is still
  /// subtracted afterwards, so overshoot never resurrects blocked
  /// space). `reduced_out`, when non-null, receives the reduction stats.
  static ScanScope of_reduced(std::span<const net::Prefix> prefixes,
                              const Blocklist& blocklist,
                              const bgp::ReduceParams& params = {},
                              bgp::ReduceResult* reduced_out = nullptr);

  /// Scope over selected live cells of a partition — the rescan scope of
  /// an incremental churn step (core::churn_step): the engine re-probes
  /// exactly the invalidated cells and leaves the untouched world alone.
  /// No blocklist is applied; partition cells were already carved from
  /// filtered space by the caller's pipeline. Precondition: every cell
  /// index is in range and live.
  static ScanScope of_cells(const bgp::PrefixPartition& partition,
                            std::span<const std::uint32_t> cells);

  /// Scope over raw intervals (already exclusion-applied).
  explicit ScanScope(net::IntervalSet targets) : targets_(std::move(targets)) {
    index_ = trie::LpmIndex::from_prefixes(targets_.to_prefixes());
  }

  bool contains(net::Ipv4Address addr) const noexcept {
    return index_.covers(addr);
  }
  std::uint64_t address_count() const noexcept {
    return targets_.address_count();
  }
  const net::IntervalSet& targets() const noexcept { return targets_; }
  bool empty() const noexcept { return targets_.empty(); }

 private:
  net::IntervalSet targets_;
  trie::LpmIndex index_;
};

}  // namespace tass::scan
