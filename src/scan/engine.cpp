#include "scan/engine.hpp"

#include <algorithm>

#include "scan/target_iterator.hpp"
#include "util/thread_pool.hpp"

namespace tass::scan {

std::uint64_t ProbeOracle::count_responsive(net::Interval interval) const {
  std::uint64_t count = 0;
  const std::uint64_t last = interval.last.value();
  for (std::uint64_t value = interval.first.value(); value <= last; ++value) {
    if (responds(net::Ipv4Address(static_cast<std::uint32_t>(value)))) {
      ++count;
    }
  }
  return count;
}

void ProbeOracle::collect_responsive(net::Interval interval,
                                     std::vector<std::uint32_t>& out) const {
  const std::uint64_t last = interval.last.value();
  for (std::uint64_t value = interval.first.value(); value <= last; ++value) {
    const net::Ipv4Address addr(static_cast<std::uint32_t>(value));
    if (responds(addr)) out.push_back(addr.value());
  }
}

ScanResult ScanEngine::run(const ScanScope& scope,
                           const ProbeOracle& oracle) const {
  switch (config_.order) {
    case EngineConfig::Order::kPermutation:
      return run_permutation(scope, oracle);
    case EngineConfig::Order::kEnumerate:
      return run_enumerated(scope, oracle);
    case EngineConfig::Order::kAuto:
      return scope.address_count() <= config_.permutation_threshold
                 ? run_permutation(scope, oracle)
                 : run_enumerated(scope, oracle);
  }
  return {};
}

ScanResult ScanEngine::run_permutation(const ScanScope& scope,
                                       const ProbeOracle& oracle) const {
  ScanResult result;
  if (scope.empty()) return result;
  // Permute the dense scope offsets (ZMap sizes its cyclic group to the
  // whitelist the same way), so cost is linear in the scope, not in the
  // whole address space. Stays sequential: the probe order *is* the
  // semantics of this path.
  const net::AddressIndexer indexer(scope.targets());
  TargetIterator targets(config_.seed, indexer.size());
  while (const auto offset = targets.next_value()) {
    const net::Ipv4Address addr = indexer.at(*offset);
    ++result.stats.probes_sent;
    if (oracle.responds(addr)) {
      ++result.stats.responses;
      result.responsive.push_back(addr.value());
    }
  }
  result.stats.packets =
      config_.cost.packets(result.stats.probes_sent, result.stats.responses);
  std::sort(result.responsive.begin(), result.responsive.end());
  return result;
}

namespace {

// Cumulative address counts: entry i = scope addresses before interval i.
std::vector<std::uint64_t> prefix_counts(
    std::span<const net::Interval> intervals) {
  std::vector<std::uint64_t> cumulative(intervals.size() + 1, 0);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    cumulative[i + 1] = cumulative[i] + intervals[i].size();
  }
  return cumulative;
}

// Visits, in address order, the sub-intervals covering the dense scope
// ranks [lo, hi) — the one place the rank-to-address arithmetic lives;
// both the run (collect) and estimate (count) shards walk through here.
template <typename Fn>
void for_each_subinterval(std::span<const net::Interval> intervals,
                          std::span<const std::uint64_t> cumulative,
                          std::uint64_t lo, std::uint64_t hi, Fn&& fn) {
  std::size_t index = static_cast<std::size_t>(
      std::upper_bound(cumulative.begin(), cumulative.end(), lo) -
      cumulative.begin() - 1);
  std::uint64_t pos = lo;
  while (pos < hi) {
    const net::Interval& interval = intervals[index];
    const std::uint64_t first =
        interval.first.value() + (pos - cumulative[index]);
    const std::uint64_t last =
        std::min<std::uint64_t>(interval.last.value(),
                                interval.first.value() +
                                    (hi - 1 - cumulative[index]));
    fn(net::Interval{net::Ipv4Address(static_cast<std::uint32_t>(first)),
                     net::Ipv4Address(static_cast<std::uint32_t>(last))});
    pos += last - first + 1;
    ++index;
  }
}

}  // namespace

ScanStats ScanEngine::estimate(const ScanScope& scope,
                               const ProbeOracle& oracle) const {
  ScanStats stats;
  const std::uint64_t total = scope.address_count();
  stats.probes_sent = total;
  const std::span<const net::Interval> intervals = scope.targets().intervals();
  const std::size_t shards = util::shard_count_for(
      total, std::max<std::uint64_t>(1, config_.min_addresses_per_shard));

  if (config_.threads == 1 || shards == 1) {
    for (const net::Interval& interval : intervals) {
      stats.responses += oracle.count_responsive(interval);
    }
  } else {
    const auto cumulative = prefix_counts(intervals);
    std::vector<std::uint64_t> slots(shards, 0);
    util::run_chunks(
        config_.threads, 0, total, shards,
        [&](std::size_t shard, std::uint64_t lo, std::uint64_t hi) {
          for_each_subinterval(intervals, cumulative, lo, hi,
                               [&](net::Interval sub) {
                                 slots[shard] +=
                                     oracle.count_responsive(sub);
                               });
        });
    for (const std::uint64_t slot : slots) stats.responses += slot;
  }
  stats.packets = config_.cost.packets(stats.probes_sent, stats.responses);
  return stats;
}

AttributedScanResult ScanEngine::run_attributed(
    const ScanScope& scope, const ProbeOracle& oracle,
    const bgp::PrefixPartition& partition) const {
  AttributedScanResult out;
  out.cell_counts.assign(partition.size(), 0);
  const std::uint64_t total = scope.address_count();
  out.result.stats.probes_sent = total;
  const std::span<const net::Interval> intervals = scope.targets().intervals();

  // Each shard owns a per-cell count vector; shard_count_for_slots caps
  // the fan-out to a fixed slot-memory budget, thread-count invariant.
  const std::size_t shards = util::shard_count_for_slots(
      total, config_.min_addresses_per_shard, partition.size(),
      sizeof(std::uint64_t));

  if (config_.threads == 1 || shards == 1) {
    for (const net::Interval& interval : intervals) {
      oracle.collect_responsive(interval, out.result.responsive);
    }
    partition.tally_cells(out.result.responsive, out.cell_counts,
                          out.attributed, out.unattributed);
  } else {
    struct Slot {
      std::vector<std::uint32_t> responsive;
      std::vector<std::uint64_t> counts;
      std::uint64_t attributed = 0;
      std::uint64_t unattributed = 0;
    };
    const auto cumulative = prefix_counts(intervals);
    std::vector<Slot> slots(shards);
    util::run_chunks(
        config_.threads, 0, total, shards,
        [&](std::size_t shard, std::uint64_t lo, std::uint64_t hi) {
          Slot& slot = slots[shard];
          // First-touch NUMA placement: the count vector is allocated
          // and zero-filled on the worker that will fill it, so its
          // pages land on that worker's node instead of all piling onto
          // the node of the calling thread.
          slot.counts.assign(partition.size(), 0);
          for_each_subinterval(intervals, cumulative, lo, hi,
                               [&](net::Interval sub) {
                                 oracle.collect_responsive(sub,
                                                           slot.responsive);
                               });
          partition.tally_cells(slot.responsive, slot.counts,
                                slot.attributed, slot.unattributed);
        });
    std::size_t found = 0;
    for (const Slot& slot : slots) found += slot.responsive.size();
    out.result.responsive.reserve(found);
    for (const Slot& slot : slots) {
      out.result.responsive.insert(out.result.responsive.end(),
                                   slot.responsive.begin(),
                                   slot.responsive.end());
      out.attributed += slot.attributed;
      out.unattributed += slot.unattributed;
      if (slot.counts.empty()) continue;  // shard never ran (empty chunk)
      for (std::size_t i = 0; i < out.cell_counts.size(); ++i) {
        out.cell_counts[i] += slot.counts[i];
      }
    }
  }
  out.result.stats.responses = out.result.responsive.size();
  if (!std::is_sorted(out.result.responsive.begin(),
                      out.result.responsive.end())) {
    std::sort(out.result.responsive.begin(), out.result.responsive.end());
  }
  out.result.stats.packets = config_.cost.packets(
      out.result.stats.probes_sent, out.result.stats.responses);
  return out;
}

ScanResult ScanEngine::run_enumerated(const ScanScope& scope,
                                      const ProbeOracle& oracle) const {
  ScanResult result;
  const std::uint64_t total = scope.address_count();
  result.stats.probes_sent = total;
  const std::span<const net::Interval> intervals = scope.targets().intervals();
  const std::size_t shards = util::shard_count_for(
      total, std::max<std::uint64_t>(1, config_.min_addresses_per_shard));

  if (config_.threads == 1 || shards == 1) {
    for (const net::Interval& interval : intervals) {
      oracle.collect_responsive(interval, result.responsive);
    }
  } else {
    const auto cumulative = prefix_counts(intervals);
    std::vector<std::vector<std::uint32_t>> slots(shards);
    util::run_chunks(
        config_.threads, 0, total, shards,
        [&](std::size_t shard, std::uint64_t lo, std::uint64_t hi) {
          for_each_subinterval(intervals, cumulative, lo, hi,
                               [&](net::Interval sub) {
                                 oracle.collect_responsive(sub,
                                                           slots[shard]);
                               });
        });
    std::size_t found = 0;
    for (const auto& slot : slots) found += slot.size();
    result.responsive.reserve(found);
    for (const auto& slot : slots) {
      result.responsive.insert(result.responsive.end(), slot.begin(),
                               slot.end());
    }
  }
  result.stats.responses = result.responsive.size();
  // Both branches emit in address order (disjoint ascending intervals /
  // rank-ordered shard slots), so normalising to the documented
  // "ascending addresses" contract is an O(n) check in practice; the sort
  // only runs if an oracle's collect_responsive violates its ordering
  // contract.
  if (!std::is_sorted(result.responsive.begin(), result.responsive.end())) {
    std::sort(result.responsive.begin(), result.responsive.end());
  }
  result.stats.packets =
      config_.cost.packets(result.stats.probes_sent, result.stats.responses);
  return result;
}

}  // namespace tass::scan
