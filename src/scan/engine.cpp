#include "scan/engine.hpp"

#include <algorithm>

#include "scan/target_iterator.hpp"

namespace tass::scan {

ScanResult ScanEngine::run(const ScanScope& scope,
                           const ProbeOracle& oracle) const {
  switch (config_.order) {
    case EngineConfig::Order::kPermutation:
      return run_permutation(scope, oracle);
    case EngineConfig::Order::kEnumerate:
      return run_enumerated(scope, oracle);
    case EngineConfig::Order::kAuto:
      return scope.address_count() <= config_.permutation_threshold
                 ? run_permutation(scope, oracle)
                 : run_enumerated(scope, oracle);
  }
  return {};
}

ScanResult ScanEngine::run_permutation(const ScanScope& scope,
                                       const ProbeOracle& oracle) const {
  ScanResult result;
  if (scope.empty()) return result;
  // Permute the dense scope offsets (ZMap sizes its cyclic group to the
  // whitelist the same way), so cost is linear in the scope, not in the
  // whole address space.
  const net::AddressIndexer indexer(scope.targets());
  TargetIterator targets(config_.seed, indexer.size());
  while (const auto offset = targets.next_value()) {
    const net::Ipv4Address addr = indexer.at(*offset);
    ++result.stats.probes_sent;
    if (oracle.responds(addr)) {
      ++result.stats.responses;
      result.responsive.push_back(addr.value());
    }
  }
  result.stats.packets =
      config_.cost.packets(result.stats.probes_sent, result.stats.responses);
  std::sort(result.responsive.begin(), result.responsive.end());
  return result;
}

ScanResult ScanEngine::run_enumerated(const ScanScope& scope,
                                      const ProbeOracle& oracle) const {
  ScanResult result;
  for (const net::Interval& interval : scope.targets().intervals()) {
    const std::uint64_t first = interval.first.value();
    const std::uint64_t last = interval.last.value();
    for (std::uint64_t value = first; value <= last; ++value) {
      const net::Ipv4Address addr(static_cast<std::uint32_t>(value));
      ++result.stats.probes_sent;
      if (oracle.responds(addr)) {
        ++result.stats.responses;
        result.responsive.push_back(addr.value());
      }
    }
  }
  result.stats.packets =
      config_.cost.packets(result.stats.probes_sent, result.stats.responses);
  return result;
}

}  // namespace tass::scan
