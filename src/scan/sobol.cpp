#include "scan/sobol.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::scan {

std::uint64_t bit_reverse(std::uint64_t value, int bits) noexcept {
  std::uint64_t reversed = 0;
  for (int i = 0; i < bits; ++i) {
    reversed = (reversed << 1) | ((value >> i) & 1);
  }
  return reversed;
}

double radical_inverse(std::uint64_t index) noexcept {
  // Reverse all 64 bits, then scale: the reversed integer is the
  // fraction's bit pattern left-aligned at the radix point.
  return static_cast<double>(bit_reverse(index, 64)) * 0x1.0p-64;
}

std::vector<std::uint64_t> progressive_order(std::uint64_t count) {
  std::vector<std::uint64_t> order;
  order.reserve(static_cast<std::size_t>(count));
  if (count == 0) return order;
  const int bits = count == 1 ? 1 : std::bit_width(count - 1);
  // Walk the 2^bits codes in natural order and emit their reversals;
  // codes reversing past `count` are skipped (at most half of them).
  const std::uint64_t codes = 1ULL << bits;
  for (std::uint64_t code = 0; code < codes; ++code) {
    const std::uint64_t index = bit_reverse(code, bits);
    if (index < count) order.push_back(index);
  }
  return order;
}

std::vector<std::uint64_t> stratified_offsets(std::uint64_t universe,
                                              std::uint64_t draws,
                                              std::uint64_t seed) {
  TASS_EXPECTS(universe > 0);
  if (draws > universe) draws = universe;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(draws));
  for (const std::uint64_t stratum : progressive_order(draws)) {
    // Stratum s covers [s*U/n, (s+1)*U/n) — widths differ by at most
    // one address, partitioning the frame exactly.
    const std::uint64_t begin =
        static_cast<std::uint64_t>((static_cast<__uint128_t>(stratum) *
                                    universe) / draws);
    const std::uint64_t end =
        static_cast<std::uint64_t>((static_cast<__uint128_t>(stratum + 1) *
                                    universe) / draws);
    // One uniform draw per stratum from its own deterministic stream, so
    // the offset of stratum s does not depend on how many strata exist
    // elsewhere or in which order they are visited.
    util::Rng rng(util::mix64(seed, stratum));
    offsets.push_back(begin + rng.bounded(end - begin));
  }
  return offsets;
}

}  // namespace tass::scan
