#include "scan/sampled_scope.hpp"

#include <algorithm>
#include <numeric>

#include "core/selection.hpp"
#include "net/interval.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::scan {

namespace {

// Deterministic largest-remainder split of `amount` across rows
// proportional to `weights` (uniform when all weights are zero); the
// result never exceeds a row's weight share rounded up, and sums to
// exactly `amount` when total weight > 0. Ties break towards the
// earlier (denser) row.
std::vector<std::uint64_t> distribute(std::uint64_t amount,
                                      std::span<const std::uint64_t> weights) {
  std::vector<std::uint64_t> shares(weights.size(), 0);
  if (amount == 0 || weights.empty()) return shares;
  __uint128_t total = 0;
  for (const std::uint64_t weight : weights) total += weight;
  std::vector<std::uint64_t> effective;
  if (total == 0) {
    effective.assign(weights.size(), 1);
    weights = effective;
    total = weights.size();
  }
  std::uint64_t assigned = 0;
  std::vector<std::pair<__uint128_t, std::size_t>> fractions;
  fractions.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const __uint128_t product =
        static_cast<__uint128_t>(amount) * weights[i];
    shares[i] = static_cast<std::uint64_t>(product / total);
    assigned += shares[i];
    fractions.emplace_back(product % total, i);
  }
  std::uint64_t leftover = amount - assigned;
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < fractions.size() && leftover > 0; ++i) {
    ++shares[fractions[i].second];
    --leftover;
  }
  return shares;
}

// Allocates `budget` over `rows` (already truncated to the fundable
// set): floor each, remainder proportional to seed hosts, capped at the
// universe with overflow redistributed into remaining capacity.
template <class Family>
void allocate(std::vector<SampleCellT<Family>>& rows, std::uint64_t budget,
              std::uint64_t floor) {
  const std::size_t k = rows.size();
  if (k == 0 || budget == 0) return;
  std::vector<std::uint64_t> draws(k, 0);
  if (budget <= floor * k) {
    // The floor consumed the whole budget: equal split over the kept
    // rows (the caller already truncated to budget/floor rows).
    std::vector<std::uint64_t> ones(k, 1);
    draws = distribute(budget, ones);
  } else {
    std::vector<std::uint64_t> weights(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
      draws[i] = floor;
      weights[i] = rows[i].seed_hosts;
    }
    const auto extra = distribute(budget - floor * k, weights);
    for (std::size_t i = 0; i < k; ++i) draws[i] += extra[i];
  }
  // Cap at each cell's frame; push the overflow into cells that still
  // have capacity, proportional to that capacity. Converges: every pass
  // either clears the overflow or caps at least one more row.
  for (;;) {
    std::uint64_t overflow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (draws[i] > rows[i].universe) {
        overflow += draws[i] - rows[i].universe;
        draws[i] = rows[i].universe;
      }
    }
    if (overflow == 0) break;
    std::vector<std::uint64_t> capacity(k, 0);
    std::uint64_t total_capacity = 0;
    for (std::size_t i = 0; i < k; ++i) {
      capacity[i] = rows[i].universe - draws[i];
      total_capacity += capacity[i];
    }
    if (total_capacity == 0) break;  // budget exceeds the whole frame
    const auto refill = distribute(std::min(overflow, total_capacity),
                                   capacity);
    for (std::size_t i = 0; i < k; ++i) draws[i] += refill[i];
  }
  for (std::size_t i = 0; i < k; ++i) rows[i].draws = draws[i];
}

}  // namespace

template <class Family>
SampleDesignT<Family> plan_sample(
    const core::DensityRankingViewT<Family>& ranking,
    const SampleParams& params) {
  core::SelectionParams selection_params;
  selection_params.phi = params.phi;
  selection_params.min_density = params.min_density;
  const auto selection = core::select_by_density(ranking, selection_params);

  SampleDesignT<Family> design;
  design.seed = params.seed;
  // The selection's indices are in ranking order; walk both in lockstep
  // to recover size/hosts for each selected cell.
  design.cells.reserve(selection.indices.size());
  std::size_t cursor = 0;
  for (const auto& entry : ranking.ranked) {
    if (cursor >= selection.indices.size()) break;
    if (entry.index != selection.indices[cursor]) continue;
    ++cursor;
    SampleCellT<Family> row;
    row.cell = entry.index;
    row.prefix = entry.prefix;
    // IPv4 samples the prefix's address frame; IPv6 has no enumerable
    // frame, so the seed-host (candidate) count stands in and the scope
    // re-caps it against the actual candidate list.
    if constexpr (Family::kBits == 32) {
      row.universe = entry.size;
    } else {
      row.universe = entry.hosts;
    }
    row.seed_hosts = entry.hosts;
    if (row.universe == 0) continue;
    design.cells.push_back(row);
  }

  const std::uint64_t floor = std::max<std::uint32_t>(1, params.floor);
  if (params.budget < floor * design.cells.size()) {
    // Budget cannot fund the floor everywhere: keep the densest cells
    // (the ranking order) and drop the tail from the frame.
    const std::size_t keep = std::max<std::uint64_t>(
        1, params.budget / floor);
    if (keep < design.cells.size()) design.cells.resize(keep);
  }
  allocate(design.cells, params.budget, floor);

  for (const auto& row : design.cells) {
    design.total_draws += row.draws;
    design.frame_units += row.universe;
  }
  return design;
}

template <class Family>
SampleDesignT<Family> plan_sample(const core::DensityRankingT<Family>& ranking,
                                  const SampleParams& params) {
  core::DensityRankingViewT<Family> view;
  view.mode = ranking.mode;
  view.ranked = ranking.ranked;
  view.total_hosts = ranking.total_hosts;
  view.advertised_addresses = ranking.advertised_addresses;
  return plan_sample(view, params);
}

template SampleDesignT<net::Ipv4Family> plan_sample(
    const core::DensityRankingViewT<net::Ipv4Family>&, const SampleParams&);
template SampleDesignT<net::Ipv6Family> plan_sample(
    const core::DensityRankingViewT<net::Ipv6Family>&, const SampleParams&);
template SampleDesignT<net::Ipv4Family> plan_sample(
    const core::DensityRankingT<net::Ipv4Family>&, const SampleParams&);
template SampleDesignT<net::Ipv6Family> plan_sample(
    const core::DensityRankingT<net::Ipv6Family>&, const SampleParams&);

SampledScopeT<net::Ipv4Family>::SampledScopeT(
    SampleDesignT<net::Ipv4Family> design)
    : design_(std::move(design)) {
  targets_.reserve(static_cast<std::size_t>(design_.total_draws));
  cell_offsets_.reserve(design_.cells.size() + 1);
  cell_offsets_.push_back(0);
  std::vector<net::Interval> singletons;
  singletons.reserve(static_cast<std::size_t>(design_.total_draws));
  for (const auto& row : design_.cells) {
    if (row.draws > 0) {
      auto offsets = stratified_offsets(row.universe, row.draws,
                                        util::mix64(design_.seed, row.cell));
      std::sort(offsets.begin(), offsets.end());
      const std::uint32_t base = row.prefix.first().value();
      for (const std::uint64_t offset : offsets) {
        const net::Ipv4Address addr(
            base + static_cast<std::uint32_t>(offset));
        targets_.push_back(addr);
        singletons.push_back(net::Interval{addr, addr});
      }
    }
    cell_offsets_.push_back(targets_.size());
  }
  scope_ = ScanScope(net::IntervalSet(singletons));
}

SampleResult SampledScopeT<net::Ipv4Family>::result_skeleton() const {
  SampleResult out;
  out.cells.reserve(design_.cells.size());
  for (const auto& row : design_.cells) {
    SampleCellResult cell;
    cell.cell = row.cell;
    cell.universe = row.universe;
    cell.draws = row.draws;
    cell.seed_hosts = row.seed_hosts;
    out.cells.push_back(cell);
  }
  out.probes_sent = design_.total_draws;
  out.frame_units = design_.frame_units;
  return out;
}

SampleResult SampledScopeT<net::Ipv4Family>::attribute(
    std::span<const std::uint64_t> cell_counts) const {
  SampleResult out = result_skeleton();
  for (auto& row : out.cells) {
    TASS_EXPECTS(row.cell < cell_counts.size());
    row.hits = cell_counts[row.cell];
    out.hits += row.hits;
  }
  return out;
}

SampledScopeT<net::Ipv6Family>::SampledScopeT(
    SampleDesignT<net::Ipv6Family> design,
    std::span<const net::Ipv6Address> candidates,
    const bgp::PrefixPartition6& partition)
    : design_(std::move(design)) {
  // Attribute every candidate to its partition cell, then bucket the
  // candidate indices per design cell (in candidate order, so hitlist
  // ordering conventions survive).
  std::vector<std::uint32_t> located(candidates.size());
  if (!candidates.empty()) partition.locate_many(candidates, located);
  std::vector<std::size_t> row_of_cell(partition.size(),
                                       design_.cells.size());
  for (std::size_t i = 0; i < design_.cells.size(); ++i) {
    TASS_EXPECTS(design_.cells[i].cell < partition.size());
    row_of_cell[design_.cells[i].cell] = i;
  }
  std::vector<std::vector<std::uint32_t>> buckets(design_.cells.size());
  for (std::size_t i = 0; i < located.size(); ++i) {
    if (located[i] >= row_of_cell.size()) continue;  // unrouted
    const std::size_t row = row_of_cell[located[i]];
    if (row == design_.cells.size()) continue;  // cell not in the design
    buckets[row].push_back(static_cast<std::uint32_t>(i));
  }

  // Re-cap each cell against its real candidate list and draw.
  design_.total_draws = 0;
  design_.frame_units = 0;
  cell_offsets_.reserve(design_.cells.size() + 1);
  cell_offsets_.push_back(0);
  for (std::size_t i = 0; i < design_.cells.size(); ++i) {
    auto& row = design_.cells[i];
    row.universe = buckets[i].size();
    row.draws = std::min(row.draws, row.universe);
    if (row.draws > 0) {
      auto offsets = stratified_offsets(row.universe, row.draws,
                                        util::mix64(design_.seed, row.cell));
      std::sort(offsets.begin(), offsets.end());
      for (const std::uint64_t offset : offsets) {
        targets_.push_back(
            candidates[buckets[i][static_cast<std::size_t>(offset)]]);
      }
    }
    design_.total_draws += row.draws;
    design_.frame_units += row.universe;
    cell_offsets_.push_back(targets_.size());
  }
}

SampleResult SampledScopeT<net::Ipv6Family>::result_skeleton() const {
  SampleResult out;
  out.cells.reserve(design_.cells.size());
  for (const auto& row : design_.cells) {
    SampleCellResult cell;
    cell.cell = row.cell;
    cell.universe = row.universe;
    cell.draws = row.draws;
    cell.seed_hosts = row.seed_hosts;
    out.cells.push_back(cell);
  }
  out.probes_sent = design_.total_draws;
  out.frame_units = design_.frame_units;
  return out;
}

}  // namespace tass::scan
