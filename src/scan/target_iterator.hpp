// ZMap-style address permutation.
//
// Internet-wide scanners must visit targets in an order that spreads probes
// across networks (to avoid hammering one prefix) while provably covering
// every target exactly once. ZMap achieves this by iterating the cyclic
// multiplicative group of integers modulo a prime p larger than the target
// count: the sequence x_{n+1} = x_n * g (mod p) for a generator g visits
// every element of [1, p-1] exactly once per cycle; elements above the
// universe size are skipped and element x encodes target x - 1.
//
// For a full IPv4 sweep the modulus is the classic p = 2^32 + 15; for
// scoped scans the group is sized to the scope (as ZMap does), which keeps
// the skip overhead bounded. Sharding (ZMap --shards) splits one cycle
// into disjoint interleaved sub-cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace tass::scan {

/// The classic ZMap group modulus: the smallest prime above 2^32.
inline constexpr std::uint64_t kPermutationPrime = (1ULL << 32) + 15;

/// (base^exp) mod modulus with 128-bit intermediates.
std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t modulus) noexcept;

/// (a * b) mod modulus with 128-bit intermediates.
std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                      std::uint64_t modulus) noexcept;

/// Deterministic Miller-Rabin for 64-bit integers.
bool is_prime(std::uint64_t value) noexcept;

/// Least prime strictly greater than `value`.
std::uint64_t least_prime_above(std::uint64_t value);

/// Prime factorisation by trial division (value must be >= 1); returns the
/// distinct prime factors in ascending order.
std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t value);

/// True if g generates the full multiplicative group mod prime p.
/// `factors` are the distinct prime factors of p - 1.
bool is_primitive_root(std::uint64_t g, std::uint64_t p,
                       const std::vector<std::uint64_t>& factors) noexcept;

/// Full-cycle pseudo-random permutation of [0, universe). Deterministic in
/// the seed; different seeds yield different generators and start points.
class TargetIterator {
 public:
  /// Permutation of the full IPv4 address space (universe 2^32, using the
  /// classic 2^32 + 15 modulus).
  explicit TargetIterator(std::uint64_t seed)
      : TargetIterator(seed, 1ULL << 32) {}

  /// Permutation of [0, universe). universe >= 1.
  TargetIterator(std::uint64_t seed, std::uint64_t universe);

  /// Next value in [0, universe), or nullopt when the cycle completes.
  std::optional<std::uint64_t> next_value() noexcept;

  /// Next IPv4 address; only valid for universe == 2^32.
  std::optional<net::Ipv4Address> next() noexcept;

  /// Values already emitted.
  std::uint64_t emitted() const noexcept { return emitted_; }
  bool done() const noexcept { return done_; }
  std::uint64_t universe() const noexcept { return universe_; }

  /// The group generator in use (exposed for tests).
  std::uint64_t generator() const noexcept { return generator_; }
  /// The group modulus in use (exposed for tests).
  std::uint64_t modulus() const noexcept { return prime_; }

  /// Splits the permutation into `shard_count` interleaved shards; shard i
  /// visits elements i, i+n, i+2n, ... of the cycle, so the shards are
  /// disjoint and jointly cover the universe (ZMap's --shards semantics).
  static TargetIterator shard(std::uint64_t seed, std::uint32_t shard_index,
                              std::uint32_t shard_count,
                              std::uint64_t universe = 1ULL << 32);

 private:
  TargetIterator(std::uint64_t seed, std::uint64_t universe,
                 std::uint32_t shard_index, std::uint32_t shard_count);

  std::uint64_t universe_ = 0;
  std::uint64_t prime_ = 0;       // group modulus (> universe)
  std::uint64_t generator_ = 0;   // step multiplier (g or g^shards)
  std::uint64_t current_ = 0;     // current group element
  std::uint64_t remaining_ = 0;   // group elements left to visit
  std::uint64_t emitted_ = 0;
  bool done_ = false;
};

}  // namespace tass::scan
