// SampledScope: the statistical scan mode — probe a low-discrepancy
// sample of the selected cells and estimate the population instead of
// sweeping exhaustively (the footprint-reduction thesis taken to its
// logical extreme; sobscan's approach on the TASS substrate).
//
// The flow is family-generic and mirrors the exhaustive planning API:
//
//   ranking --plan_sample(params)--> SampleDesignT   (budget allocation)
//   design  --SampledScopeT-------> concrete targets (stratified draws)
//   scope   --probe()/ScanEngine--> SampleResult     (per-cell hits)
//   result  --core::estimate_from_sample--> population estimate + CIs
//
// plan_sample allocates the probe budget across the ranked cells
// density-weighted: every selected cell gets a configurable floor (so
// sparse cells stay observable and no uniformity hypothesis is needed —
// the MarkingBias::kSparseBiased lesson from core/estimator.hpp), and
// the remainder is split proportionally to seed hosts, capped at each
// cell's frame with deterministic largest-remainder rounding.
//
// The IPv4 scope materialises its drawn addresses into a regular
// ScanScope, so ScanEngine::run_attributed and every other ScanScope
// consumer work on a sampled scan unchanged; the IPv6 scope subsamples
// the per-cell candidate lists (ScanScope6 semantics — there is no
// enumerable v6 frame). Both expose the ZMap cyclic-group
// permutation/shard contract over the drawn target list.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/partition.hpp"
#include "core/ranking.hpp"
#include "net/family.hpp"
#include "scan/scope.hpp"
#include "scan/sobol.hpp"
#include "scan/target_iterator.hpp"

namespace tass::scan {

/// How to allocate a sampled scan's probe budget over a ranking.
struct SampleParams {
  /// Total probes per cycle across all sampled cells.
  std::uint64_t budget = 100'000;
  /// Minimum draws per selected cell (clamped to >= 1): keeps sparse
  /// cells observable so the estimator never extrapolates from silence.
  /// When the budget cannot fund the floor for every selected cell, the
  /// densest cells are kept and the tail is dropped from the frame.
  std::uint32_t floor = 16;
  /// Master seed for the stratified draws (per-cell streams derive from
  /// it; same seed -> bit-identical target lists).
  std::uint64_t seed = 1;
  /// Which cells participate: the TASS selection at this coverage
  /// target / density cutoff (phi = 1 samples every responsive cell).
  double phi = 1.0;
  double min_density = 0.0;
};

/// One cell's slice of the budget.
template <class Family>
struct SampleCellT {
  std::uint32_t cell = 0;  // partition cell index
  typename Family::Prefix prefix;
  /// Sampling-frame size: addresses for IPv4; for IPv6 the seed-host
  /// (hitlist candidate) count — re-capped to the actual candidate list
  /// by the scope, since 2^64 addresses per /64 are not enumerable.
  std::uint64_t universe = 0;
  std::uint64_t draws = 0;       // probes allocated to this cell
  std::uint64_t seed_hosts = 0;  // c_i from the ranking (the weight)
};

/// The budget allocation over a ranking — what tass_serve returns for a
/// kSample request, and what a SampledScopeT turns into targets.
template <class Family>
struct SampleDesignT {
  std::vector<SampleCellT<Family>> cells;  // ranking (density) order
  std::uint64_t total_draws = 0;           // sum of draws (<= budget)
  std::uint64_t frame_units = 0;           // sum of universes
  std::uint64_t seed = 1;

  /// Probes an exhaustive sweep of the same frame would need, per probe
  /// actually sent.
  double probe_reduction() const noexcept {
    return total_draws == 0 ? 0.0
                            : static_cast<double>(frame_units) /
                                  static_cast<double>(total_draws);
  }
};

using SampleCell = SampleCellT<net::Ipv4Family>;
using SampleCell6 = SampleCellT<net::Ipv6Family>;
using SampleDesign = SampleDesignT<net::Ipv4Family>;
using SampleDesign6 = SampleDesignT<net::Ipv6Family>;

/// Allocates params.budget across the ranking: selection by
/// (phi, min_density), then floor + density-weighted largest-remainder
/// split, capped at each cell's universe with deterministic
/// redistribution of the overflow. Pure function of (ranking, params).
template <class Family>
SampleDesignT<Family> plan_sample(
    const core::DensityRankingViewT<Family>& ranking,
    const SampleParams& params);

/// As above over an owned ranking.
template <class Family>
SampleDesignT<Family> plan_sample(const core::DensityRankingT<Family>& ranking,
                                  const SampleParams& params);

/// Per-cell outcome of probing a sampled scope. Family-free: only counts
/// survive the probes, and core::estimate_from_sample consumes them
/// identically for both families.
struct SampleCellResult {
  std::uint32_t cell = 0;
  std::uint64_t universe = 0;     // frame the draws were taken from
  std::uint64_t draws = 0;        // probes sent into this cell
  std::uint64_t hits = 0;         // responsive among the draws
  std::uint64_t marked_hits = 0;  // marked (e.g. vulnerable) among hits
  std::uint64_t seed_hosts = 0;   // the design's weight, for diagnostics
};

struct SampleResult {
  std::vector<SampleCellResult> cells;
  std::uint64_t probes_sent = 0;
  std::uint64_t hits = 0;
  std::uint64_t marked_hits = 0;
  std::uint64_t frame_units = 0;  // exhaustive cost of the same frame
};

template <class Family>
class SampledScopeT;

/// IPv4: draws stratified offsets inside each design cell's prefix and
/// materialises them into a ScanScope, so the sampled scan runs through
/// the exact same engine entry points as an exhaustive one.
template <>
class SampledScopeT<net::Ipv4Family> {
 public:
  SampledScopeT() = default;
  explicit SampledScopeT(SampleDesignT<net::Ipv4Family> design);

  const SampleDesignT<net::Ipv4Family>& design() const noexcept {
    return design_;
  }

  /// The drawn targets as a regular ScanScope — feed it to
  /// ScanEngine::run/run_attributed/estimate unchanged.
  const ScanScope& scope() const noexcept { return scope_; }

  /// The drawn targets, grouped by design cell (ascending inside a
  /// group), for direct iteration.
  std::span<const net::Ipv4Address> targets() const noexcept {
    return targets_;
  }
  std::size_t target_count() const noexcept { return targets_.size(); }
  net::Ipv4Address target(std::size_t index) const noexcept {
    TASS_EXPECTS(index < targets_.size());
    return targets_[index];
  }
  /// Targets of design cell `i` (an index into design().cells).
  std::span<const net::Ipv4Address> cell_targets(std::size_t i) const {
    TASS_EXPECTS(i + 1 < cell_offsets_.size());
    return std::span(targets_).subspan(cell_offsets_[i],
                                       cell_offsets_[i + 1] -
                                           cell_offsets_[i]);
  }

  /// ZMap cyclic-group permutation over the drawn target list —
  /// identical contract to ScanScope6::permutation/shard.
  TargetIterator permutation(std::uint64_t seed) const {
    TASS_EXPECTS(!targets_.empty());
    return TargetIterator(seed, targets_.size());
  }
  TargetIterator permutation_shard(std::uint64_t seed,
                                   std::uint32_t shard_index,
                                   std::uint32_t shard_count) const {
    TASS_EXPECTS(!targets_.empty());
    return TargetIterator::shard(seed, shard_index, shard_count,
                                 targets_.size());
  }
  std::optional<net::Ipv4Address> next_target(TargetIterator& it) const {
    const auto value = it.next_value();
    if (!value) return std::nullopt;
    return target(static_cast<std::size_t>(*value));
  }

  /// Probes every drawn target through `responds` (bool(Ipv4Address));
  /// `marked` flags the interesting subpopulation among the hits.
  template <class RespondFn, class MarkedFn>
  SampleResult probe(RespondFn&& responds, MarkedFn&& marked) const {
    SampleResult out = result_skeleton();
    for (std::size_t i = 0; i < design_.cells.size(); ++i) {
      SampleCellResult& row = out.cells[i];
      for (const net::Ipv4Address addr : cell_targets(i)) {
        if (!responds(addr)) continue;
        ++row.hits;
        if (marked(addr)) ++row.marked_hits;
      }
      out.hits += row.hits;
      out.marked_hits += row.marked_hits;
    }
    return out;
  }
  template <class RespondFn>
  SampleResult probe(RespondFn&& responds) const {
    return probe(std::forward<RespondFn>(responds),
                 [](net::Ipv4Address) { return false; });
  }

  /// Folds an engine run over scope() back into per-cell sample rows:
  /// `cell_counts` is AttributedScanResult.cell_counts for the same
  /// partition the design's ranking was built over.
  SampleResult attribute(std::span<const std::uint64_t> cell_counts) const;

 private:
  SampleResult result_skeleton() const;

  SampleDesignT<net::Ipv4Family> design_;
  std::vector<net::Ipv4Address> targets_;  // grouped by design cell
  std::vector<std::size_t> cell_offsets_;  // cells.size() + 1 fenceposts
  ScanScope scope_;
};

/// IPv6: subsamples the candidate set (hitlist) per design cell — the
/// candidates are attributed to cells through the partition, each cell's
/// universe is re-capped to its actual candidate count, and the draws
/// pick candidate indices via the same stratified machinery.
template <>
class SampledScopeT<net::Ipv6Family> {
 public:
  SampledScopeT() = default;
  SampledScopeT(SampleDesignT<net::Ipv6Family> design,
                std::span<const net::Ipv6Address> candidates,
                const bgp::PrefixPartition6& partition);

  const SampleDesignT<net::Ipv6Family>& design() const noexcept {
    return design_;
  }

  std::span<const net::Ipv6Address> targets() const noexcept {
    return targets_;
  }
  std::size_t target_count() const noexcept { return targets_.size(); }
  net::Ipv6Address target(std::size_t index) const noexcept {
    TASS_EXPECTS(index < targets_.size());
    return targets_[index];
  }
  std::span<const net::Ipv6Address> cell_targets(std::size_t i) const {
    TASS_EXPECTS(i + 1 < cell_offsets_.size());
    return std::span(targets_).subspan(cell_offsets_[i],
                                       cell_offsets_[i + 1] -
                                           cell_offsets_[i]);
  }

  TargetIterator permutation(std::uint64_t seed) const {
    TASS_EXPECTS(!targets_.empty());
    return TargetIterator(seed, targets_.size());
  }
  TargetIterator permutation_shard(std::uint64_t seed,
                                   std::uint32_t shard_index,
                                   std::uint32_t shard_count) const {
    TASS_EXPECTS(!targets_.empty());
    return TargetIterator::shard(seed, shard_index, shard_count,
                                 targets_.size());
  }
  std::optional<net::Ipv6Address> next_target(TargetIterator& it) const {
    const auto value = it.next_value();
    if (!value) return std::nullopt;
    return target(static_cast<std::size_t>(*value));
  }

  template <class RespondFn, class MarkedFn>
  SampleResult probe(RespondFn&& responds, MarkedFn&& marked) const {
    SampleResult out = result_skeleton();
    for (std::size_t i = 0; i < design_.cells.size(); ++i) {
      SampleCellResult& row = out.cells[i];
      for (const net::Ipv6Address addr : cell_targets(i)) {
        if (!responds(addr)) continue;
        ++row.hits;
        if (marked(addr)) ++row.marked_hits;
      }
      out.hits += row.hits;
      out.marked_hits += row.marked_hits;
    }
    return out;
  }
  template <class RespondFn>
  SampleResult probe(RespondFn&& responds) const {
    return probe(std::forward<RespondFn>(responds),
                 [](net::Ipv6Address) { return false; });
  }

 private:
  SampleResult result_skeleton() const;

  SampleDesignT<net::Ipv6Family> design_;
  std::vector<net::Ipv6Address> targets_;  // grouped by design cell
  std::vector<std::size_t> cell_offsets_;
};

using SampledScope = SampledScopeT<net::Ipv4Family>;
using SampledScope6 = SampledScopeT<net::Ipv6Family>;

}  // namespace tass::scan
