// Scanner blocklists (ZMap's blacklist.conf format, extended with ranges).
//
// A blocklist line is one of
//   192.0.2.0/24        # a CIDR prefix
//   198.51.100.7        # a single address
//   10.0.0.0-10.255.9.1 # an inclusive range
// with '#' comments and blank lines ignored. The default blocklist is the
// IANA special-use registry — what every good Internet citizen excludes
// before probing anything.
#pragma once

#include <string>
#include <string_view>

#include "net/interval.hpp"

namespace tass::scan {

class Blocklist {
 public:
  Blocklist() = default;
  explicit Blocklist(net::IntervalSet blocked) : blocked_(std::move(blocked)) {}

  /// Parses blocklist text. Throws tass::ParseError on malformed lines.
  static Blocklist parse(std::string_view text);

  /// Loads a blocklist file. Throws tass::Error if unreadable.
  static Blocklist load(const std::string& path);

  /// The RFC special-use registry blocklist.
  static Blocklist default_blocklist();

  void add(net::Prefix prefix) { blocked_.insert(prefix); }
  void add(net::Interval interval) { blocked_.insert(interval); }

  bool blocks(net::Ipv4Address addr) const noexcept {
    return blocked_.contains(addr);
  }
  const net::IntervalSet& blocked() const noexcept { return blocked_; }
  std::uint64_t blocked_addresses() const noexcept {
    return blocked_.address_count();
  }

 private:
  net::IntervalSet blocked_;
};

}  // namespace tass::scan
