// Scanner blocklists (ZMap's blacklist.conf format, extended with ranges
// and IPv6 entries).
//
// A blocklist line is one of
//   192.0.2.0/24        # a CIDR prefix
//   198.51.100.7        # a single address
//   10.0.0.0-10.255.9.1 # an inclusive range
//   2001:db8::/32       # an IPv6 CIDR prefix
//   2001:db8::7         # a single IPv6 address (a /128 block)
// with '#' comments and blank lines ignored. The default blocklist is the
// IANA special-use registry — what every good Internet citizen excludes
// before probing anything. Both families are first-class: v4 entries
// populate the interval set and v4 index, v6 entries the v6 prefix list
// and index, and malformed lines of either family throw (parse-or-throw;
// nothing is ever silently dropped). IPv6 ranges ("a-b") are not
// supported — 128-bit range-to-CIDR cover is not implemented; use
// prefixes (the parser says so explicitly rather than guessing).
//
// The membership check rides on the trie::BasicLpmIndex substrate, so
// blocks() costs a couple of dependent loads on the scan hot path; the
// IntervalSet remains the authority for v4 set algebra and accounting.
// The indexes are rebuilt lazily on the first query after a mutation (so
// an add() loop is O(n), not O(n^2)); mutation and the first query after
// it must not race with concurrent queries — queries on a settled
// blocklist are const-thread-safe.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/reduce.hpp"
#include "net/interval.hpp"
#include "net/ipv6.hpp"
#include "trie/lpm_index.hpp"
#include "trie/lpm_index6.hpp"

namespace tass::scan {

/// What Blocklist::compact did, per family: minimal-cover prefix counts
/// before and after, and the extra space now blocked (v4 addresses; v6
/// /64 units).
struct BlocklistCompaction {
  std::size_t v4_before = 0;
  std::size_t v4_after = 0;
  std::uint64_t v4_overshoot_addresses = 0;
  std::size_t v6_before = 0;
  std::size_t v6_after = 0;
  std::uint64_t v6_overshoot_units = 0;
};

class Blocklist {
 public:
  Blocklist() = default;
  explicit Blocklist(net::IntervalSet blocked)
      : blocked_(std::move(blocked)) {
    refresh();
  }

  /// Parses blocklist text (both families). Throws tass::ParseError on
  /// malformed lines.
  static Blocklist parse(std::string_view text);

  /// Loads a blocklist file. Throws tass::Error if unreadable.
  static Blocklist load(const std::string& path);

  /// The RFC special-use registry blocklist (IPv4 registry).
  static Blocklist default_blocklist();

  void add(net::Prefix prefix) {
    blocked_.insert(prefix);
    dirty_ = true;
  }
  void add(net::Interval interval) {
    blocked_.insert(interval);
    dirty_ = true;
  }
  void add(net::Ipv6Prefix prefix) {
    blocked6_.push_back(prefix);
    dirty6_ = true;
  }

  /// Compacts both families' entries with bgp::reduce before the next
  /// index rebuild: the blocked sets may only GROW (over-blocking is the
  /// polite direction — every previously blocked address stays blocked,
  /// and up to params.max_overshoot extra space is excluded with them),
  /// in exchange for smaller LpmIndex builds and shorter exported ACLs.
  /// Returns the per-family before/after stats.
  BlocklistCompaction compact(const bgp::ReduceParams& params = {});

  bool blocks(net::Ipv4Address addr) const {
    if (dirty_) refresh();
    return index_.covers(addr);
  }
  bool blocks(net::Ipv6Address addr) const {
    if (dirty6_) refresh6();
    return index6_.covers(addr);
  }
  const net::IntervalSet& blocked() const noexcept { return blocked_; }
  /// The IPv6 entries, in insertion order (not deduplicated; membership
  /// queries resolve through the index, which handles nesting).
  std::span<const net::Ipv6Prefix> blocked6() const noexcept {
    return blocked6_;
  }
  std::uint64_t blocked_addresses() const noexcept {
    return blocked_.address_count();
  }

 private:
  void refresh() const {
    index_ = trie::LpmIndex::from_prefixes(blocked_.to_prefixes());
    dirty_ = false;
  }
  void refresh6() const {
    index6_ = trie::LpmIndex6::from_prefixes(blocked6_);
    dirty6_ = false;
  }

  net::IntervalSet blocked_;
  std::vector<net::Ipv6Prefix> blocked6_;
  mutable trie::LpmIndex index_;
  mutable trie::LpmIndex6 index6_;
  mutable bool dirty_ = false;
  mutable bool dirty6_ = false;
};

}  // namespace tass::scan
