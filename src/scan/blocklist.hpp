// Scanner blocklists (ZMap's blacklist.conf format, extended with ranges).
//
// A blocklist line is one of
//   192.0.2.0/24        # a CIDR prefix
//   198.51.100.7        # a single address
//   10.0.0.0-10.255.9.1 # an inclusive range
// with '#' comments and blank lines ignored. The default blocklist is the
// IANA special-use registry — what every good Internet citizen excludes
// before probing anything.
//
// The membership check rides on the trie::LpmIndex substrate, so blocks()
// costs a couple of dependent loads on the scan hot path; the IntervalSet
// remains the authority for set algebra and accounting. The index is
// rebuilt lazily on the first query after a mutation (so an add() loop is
// O(n), not O(n^2)); mutation and the first query after it must not race
// with concurrent queries — queries on a settled blocklist are
// const-thread-safe.
#pragma once

#include <string>
#include <string_view>

#include "net/interval.hpp"
#include "trie/lpm_index.hpp"

namespace tass::scan {

class Blocklist {
 public:
  Blocklist() = default;
  explicit Blocklist(net::IntervalSet blocked)
      : blocked_(std::move(blocked)) {
    refresh();
  }

  /// Parses blocklist text. Throws tass::ParseError on malformed lines.
  static Blocklist parse(std::string_view text);

  /// Loads a blocklist file. Throws tass::Error if unreadable.
  static Blocklist load(const std::string& path);

  /// The RFC special-use registry blocklist.
  static Blocklist default_blocklist();

  void add(net::Prefix prefix) {
    blocked_.insert(prefix);
    dirty_ = true;
  }
  void add(net::Interval interval) {
    blocked_.insert(interval);
    dirty_ = true;
  }

  bool blocks(net::Ipv4Address addr) const {
    if (dirty_) refresh();
    return index_.covers(addr);
  }
  const net::IntervalSet& blocked() const noexcept { return blocked_; }
  std::uint64_t blocked_addresses() const noexcept {
    return blocked_.address_count();
  }

 private:
  void refresh() const {
    index_ = trie::LpmIndex::from_prefixes(blocked_.to_prefixes());
    dirty_ = false;
  }

  net::IntervalSet blocked_;
  mutable trie::LpmIndex index_;
  mutable bool dirty_ = false;
};

}  // namespace tass::scan
