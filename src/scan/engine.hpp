// Simulated scan engine.
//
// Plays the role of ZMap + application-layer follow-up (zgrab) in the
// paper's methodology: it walks a scan scope, asks a ProbeOracle (the
// ground-truth census snapshot) whether each target responds, and accounts
// for probes, hits and packets. Two target orders are provided:
//
//   * kPermutation — the ZMap multiplicative-group permutation sized to
//     the scope (faithful probe ordering: spreads load across networks);
//     one modular multiplication + indexer lookup per probe.
//   * kEnumerate — walks the scope's intervals in address order; same
//     results, cheapest per probe. The default above a scope-size
//     threshold where probe order does not matter for simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "census/protocol.hpp"
#include "census/snapshot.hpp"
#include "net/ipv4.hpp"
#include "scan/scope.hpp"

namespace tass::scan {

/// Answers probe simulations. Implementations must be cheap: the engine
/// calls this once per in-scope address.
class ProbeOracle {
 public:
  virtual ~ProbeOracle() = default;
  virtual bool responds(net::Ipv4Address addr) const = 0;
};

/// Oracle backed by a census ground-truth snapshot.
class SnapshotOracle final : public ProbeOracle {
 public:
  explicit SnapshotOracle(const census::Snapshot& snapshot)
      : snapshot_(&snapshot) {}
  bool responds(net::Ipv4Address addr) const override {
    return snapshot_->contains(addr);
  }

 private:
  const census::Snapshot* snapshot_;
};

/// Packet accounting for one scan cycle. Defaults model a SYN scan with
/// one retry budget amortised (ZMap sends 1 probe/target by default) and a
/// protocol-dependent handshake on success.
struct CostModel {
  double probe_packets_per_target = 1.0;
  double handshake_packets_per_hit = 6.0;

  double packets(std::uint64_t probes, std::uint64_t hits) const noexcept {
    return probe_packets_per_target * static_cast<double>(probes) +
           handshake_packets_per_hit * static_cast<double>(hits);
  }

  static CostModel for_protocol(census::Protocol protocol) noexcept {
    return CostModel{
        1.0, census::protocol_profile(protocol).handshake_packets};
  }
};

struct ScanStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;
  double packets = 0.0;

  /// Fraction of probed addresses that answered (the paper's headline
  /// "hitrates are very often under two percent").
  double hitrate() const noexcept {
    return probes_sent == 0
               ? 0.0
               : static_cast<double>(responses) /
                     static_cast<double>(probes_sent);
  }

  /// Estimated wall-clock seconds at a given probe rate.
  double duration_seconds(double probes_per_second) const noexcept {
    return probes_per_second <= 0.0
               ? 0.0
               : static_cast<double>(probes_sent) / probes_per_second;
  }
};

struct ScanResult {
  ScanStats stats;
  std::vector<std::uint32_t> responsive;  // ascending addresses
};

struct EngineConfig {
  enum class Order { kAuto, kPermutation, kEnumerate };
  Order order = Order::kAuto;
  std::uint64_t seed = 1;
  /// kAuto switches to kEnumerate above this scope size (the permutation
  /// always pays one group step per address of the full space).
  std::uint64_t permutation_threshold = 1ULL << 22;
  CostModel cost;
};

class ScanEngine {
 public:
  explicit ScanEngine(EngineConfig config = {}) : config_(config) {}

  /// Simulates one scan cycle over the scope.
  ScanResult run(const ScanScope& scope, const ProbeOracle& oracle) const;

  const EngineConfig& config() const noexcept { return config_; }

 private:
  ScanResult run_permutation(const ScanScope& scope,
                             const ProbeOracle& oracle) const;
  ScanResult run_enumerated(const ScanScope& scope,
                            const ProbeOracle& oracle) const;

  EngineConfig config_;
};

}  // namespace tass::scan
