// Simulated scan engine.
//
// Plays the role of ZMap + application-layer follow-up (zgrab) in the
// paper's methodology: it walks a scan scope, asks a ProbeOracle (the
// ground-truth census snapshot) whether each target responds, and accounts
// for probes, hits and packets. Two target orders are provided:
//
//   * kPermutation — the ZMap multiplicative-group permutation sized to
//     the scope (faithful probe ordering: spreads load across networks);
//     one modular multiplication + indexer lookup per probe. Always
//     sequential, so the probe order stays exactly the ZMap cycle.
//   * kEnumerate — walks the scope's intervals in address order through
//     the oracle's *batched* interval API; same results, cheapest per
//     probe. The default above a scope-size threshold where probe order
//     does not matter for simulation.
//
// The enumerate path is sharded: the scope is cut into address chunks
// whose boundaries depend only on the scope (never on the thread count),
// each shard accumulates into its own ScanResult slot, and the slots are
// merged in shard order — so the ScanResult is bit-identical for 1 thread
// and N threads. Oracles must be const-thread-safe when threads != 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/partition.hpp"
#include "census/protocol.hpp"
#include "census/snapshot.hpp"
#include "census/snapshot_index.hpp"
#include "net/interval.hpp"
#include "net/ipv4.hpp"
#include "scan/scope.hpp"

namespace tass::scan {

/// Answers probe simulations. The engine prefers the batched interval
/// queries on its hot path; the per-address defaults below keep simple
/// oracles (one virtual call per probe) working unchanged. Implementations
/// must be cheap, and const-thread-safe if the engine runs multi-threaded.
class ProbeOracle {
 public:
  virtual ~ProbeOracle() = default;
  virtual bool responds(net::Ipv4Address addr) const = 0;

  /// Number of responsive addresses in the inclusive interval. Default:
  /// one responds() call per address.
  virtual std::uint64_t count_responsive(net::Interval interval) const;

  /// Appends the responsive addresses of the inclusive interval to `out`
  /// in ascending order. Default: one responds() call per address.
  virtual void collect_responsive(net::Interval interval,
                                  std::vector<std::uint32_t>& out) const;
};

/// Oracle backed by a census ground-truth snapshot. Builds a
/// census::SnapshotIndex bitmap once so batched interval queries are
/// masked popcount word scans instead of per-address binary searches.
class SnapshotOracle final : public ProbeOracle {
 public:
  explicit SnapshotOracle(const census::Snapshot& snapshot)
      : snapshot_(&snapshot), index_(snapshot) {}

  bool responds(net::Ipv4Address addr) const override {
    return index_.contains(addr);
  }
  std::uint64_t count_responsive(net::Interval interval) const override {
    return index_.count_responsive(interval);
  }
  void collect_responsive(net::Interval interval,
                          std::vector<std::uint32_t>& out) const override {
    index_.collect_responsive(interval, out);
  }

  const census::Snapshot& snapshot() const noexcept { return *snapshot_; }
  const census::SnapshotIndex& index() const noexcept { return index_; }

 private:
  const census::Snapshot* snapshot_;
  census::SnapshotIndex index_;
};

/// Packet accounting for one scan cycle. Defaults model a SYN scan with
/// one retry budget amortised (ZMap sends 1 probe/target by default) and a
/// protocol-dependent handshake on success.
struct CostModel {
  double probe_packets_per_target = 1.0;
  double handshake_packets_per_hit = 6.0;

  double packets(std::uint64_t probes, std::uint64_t hits) const noexcept {
    return probe_packets_per_target * static_cast<double>(probes) +
           handshake_packets_per_hit * static_cast<double>(hits);
  }

  static CostModel for_protocol(census::Protocol protocol) noexcept {
    return CostModel{
        1.0, census::protocol_profile(protocol).handshake_packets};
  }
};

struct ScanStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;
  double packets = 0.0;

  /// Fraction of probed addresses that answered (the paper's headline
  /// "hitrates are very often under two percent").
  double hitrate() const noexcept {
    return probes_sent == 0
               ? 0.0
               : static_cast<double>(responses) /
                     static_cast<double>(probes_sent);
  }

  /// Estimated wall-clock seconds at a given probe rate.
  double duration_seconds(double probes_per_second) const noexcept {
    return probes_per_second <= 0.0
               ? 0.0
               : static_cast<double>(probes_sent) / probes_per_second;
  }
};

struct ScanResult {
  ScanStats stats;
  std::vector<std::uint32_t> responsive;  // ascending addresses
};

/// A scan cycle fused with per-cell attribution of the hits (paper §3.1
/// step 1 without a separate pass over the result list).
struct AttributedScanResult {
  ScanResult result;
  std::vector<std::uint64_t> cell_counts;  // responsive per partition cell
  std::uint64_t attributed = 0;            // hits inside the partition
  std::uint64_t unattributed = 0;          // hits outside (unrouted space)
};

struct EngineConfig {
  enum class Order { kAuto, kPermutation, kEnumerate };
  Order order = Order::kAuto;
  std::uint64_t seed = 1;
  /// kAuto switches to kEnumerate above this scope size (the permutation
  /// always pays one group step per address of the full space).
  std::uint64_t permutation_threshold = 1ULL << 22;
  CostModel cost;

  /// Enumerate-path parallelism: 1 runs on the calling thread only (safe
  /// for oracles with mutable per-probe state, e.g. probe counters);
  /// 0 uses the process-wide pool sized to the hardware; N > 1 runs on a
  /// dedicated pool of N threads. Results are identical for every value.
  unsigned threads = 1;

  /// Sharding grain for the enumerate path. Shard boundaries depend only
  /// on the scope and this value — never on `threads` — which is what
  /// keeps parallel results bit-identical to sequential ones.
  std::uint64_t min_addresses_per_shard = 1ULL << 16;
};

class ScanEngine {
 public:
  explicit ScanEngine(EngineConfig config = {}) : config_(config) {}

  /// Simulates one scan cycle over the scope.
  ScanResult run(const ScanScope& scope, const ProbeOracle& oracle) const;

  /// One enumerated scan cycle plus attribution: each shard resolves its
  /// freshly collected hits against `partition` through the batched
  /// LpmIndex path while the block is still cache-hot, so no second pass
  /// over the responsive list is needed. Identical responsive list and
  /// stats to run() on the enumerate path, and cell_counts identical to
  /// attributing the result afterwards — for any thread count.
  AttributedScanResult run_attributed(const ScanScope& scope,
                                      const ProbeOracle& oracle,
                                      const bgp::PrefixPartition& partition)
      const;

  /// Probe/hit/packet accounting for one cycle without materialising the
  /// responsive-address list: pure count_responsive() sums over the scope
  /// (sharded like the enumerate path). Same stats as run(), cheaper when
  /// only the totals matter (planning, capacity estimates).
  ScanStats estimate(const ScanScope& scope, const ProbeOracle& oracle) const;

  const EngineConfig& config() const noexcept { return config_; }

 private:
  ScanResult run_permutation(const ScanScope& scope,
                             const ProbeOracle& oracle) const;
  ScanResult run_enumerated(const ScanScope& scope,
                            const ProbeOracle& oracle) const;

  EngineConfig config_;
};

}  // namespace tass::scan
