// Probe packet synthesis: the wire format of a ZMap-style TCP SYN scan.
//
// A scanner's footprint is ultimately measured in packets on the wire;
// this module builds them. It implements IPv4 and TCP header construction
// with correct internet checksums (RFC 1071, including the TCP
// pseudo-header), plus ZMap's stateless-validation trick: the probe's
// source port and TCP sequence number encode a MAC of the target, so a
// response (SYN-ACK) can be validated without keeping per-target state.
//
// Everything is pure value manipulation over byte buffers — no sockets —
// so the whole path is unit-testable and usable for pcap generation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace tass::scan {

/// RFC 1071 Internet checksum over a byte span (pads odd length with 0).
std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// IPv4 header fields we synthesise (no options; IHL = 5).
struct Ipv4Header {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;  // TCP
  std::uint16_t identification = 0;
  net::Ipv4Address source;
  net::Ipv4Address destination;
  std::uint16_t total_length = 0;  // filled by the builder

  static constexpr std::size_t kSize = 20;
};

/// TCP header fields for a SYN probe (no options beyond MSS).
struct TcpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t acknowledgement = 0;
  std::uint8_t flags = 0x02;  // SYN
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kFlagSyn = 0x02;
  static constexpr std::uint8_t kFlagAck = 0x10;
  static constexpr std::uint8_t kFlagRst = 0x04;
};

/// A fully encoded probe (IPv4 + TCP, 40 bytes).
struct ProbePacket {
  std::array<std::byte, Ipv4Header::kSize + TcpHeader::kSize> bytes{};

  std::span<const std::byte> ip_header() const noexcept {
    return std::span(bytes).first(Ipv4Header::kSize);
  }
  std::span<const std::byte> tcp_header() const noexcept {
    return std::span(bytes).subspan(Ipv4Header::kSize);
  }
};

/// Builds probes with stateless response validation a la ZMap: source
/// port and sequence number are a keyed hash of (destination, probe
/// port), so any SYN-ACK can be checked against the key alone.
class ProbeBuilder {
 public:
  /// `source` is the scanner address; `validation_key` seeds the MAC.
  ProbeBuilder(net::Ipv4Address source, std::uint16_t target_port,
               std::uint64_t validation_key);

  /// Synthesises the SYN probe for one target.
  ProbePacket build(net::Ipv4Address target) const;

  /// Validates a response: true iff (source address/port, ack number)
  /// prove the peer echoed one of our probes. `ack` is the TCP ack field
  /// of the response; a well-formed SYN-ACK acks sequence+1.
  bool validate_response(net::Ipv4Address responder,
                         std::uint16_t responder_port, std::uint16_t dst_port,
                         std::uint32_t ack) const noexcept;

  std::uint16_t target_port() const noexcept { return target_port_; }

  /// The (deterministic) source port / sequence the builder would use for
  /// a target; exposed for tests and pcap tooling.
  std::uint16_t source_port_for(net::Ipv4Address target) const noexcept;
  std::uint32_t sequence_for(net::Ipv4Address target) const noexcept;

 private:
  net::Ipv4Address source_;
  std::uint16_t target_port_;
  std::uint64_t key_;
};

/// Encodes headers into wire format with checksums; exposed for tests.
void encode_ipv4_header(const Ipv4Header& header,
                        std::span<std::byte, Ipv4Header::kSize> out) noexcept;
void encode_tcp_header(const TcpHeader& header, net::Ipv4Address src,
                       net::Ipv4Address dst,
                       std::span<std::byte, TcpHeader::kSize> out) noexcept;

/// Decodes and verifies a 40-byte probe (checksums included); throws
/// tass::FormatError on malformed input. Used by tests and pcap readers.
struct DecodedProbe {
  Ipv4Header ip;
  TcpHeader tcp;
};
DecodedProbe decode_probe(std::span<const std::byte> packet);

}  // namespace tass::scan
