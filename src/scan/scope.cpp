#include "scan/scope.hpp"

namespace tass::scan {

ScanScope::ScanScope(std::span<const net::Prefix> prefixes,
                     const Blocklist& blocklist)
    : ScanScope(net::IntervalSet::of_prefixes(prefixes)
                    .subtract(blocklist.blocked())) {}

}  // namespace tass::scan
