#include "scan/scope.hpp"

namespace tass::scan {

ScanScope::ScanScope(std::span<const net::Prefix> prefixes,
                     const Blocklist& blocklist)
    : ScanScope(net::IntervalSet::of_prefixes(prefixes)
                    .subtract(blocklist.blocked())) {}

ScanScope ScanScope::of_reduced(std::span<const net::Prefix> prefixes,
                                const Blocklist& blocklist,
                                const bgp::ReduceParams& params,
                                bgp::ReduceResult* reduced_out) {
  auto reduced = bgp::reduce(prefixes, params);
  ScanScope scope(reduced.prefixes, blocklist);
  if (reduced_out != nullptr) *reduced_out = std::move(reduced);
  return scope;
}

ScanScope ScanScope::of_cells(const bgp::PrefixPartition& partition,
                              std::span<const std::uint32_t> cells) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(cells.size());
  for (const std::uint32_t cell : cells) {
    TASS_EXPECTS(partition.live(cell));
    prefixes.push_back(partition.prefix(cell));
  }
  return ScanScope(net::IntervalSet::of_prefixes(prefixes));
}

}  // namespace tass::scan
