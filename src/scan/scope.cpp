#include "scan/scope.hpp"

namespace tass::scan {

ScanScope::ScanScope(std::span<const net::Prefix> prefixes,
                     const Blocklist& blocklist)
    : ScanScope(net::IntervalSet::of_prefixes(prefixes)
                    .subtract(blocklist.blocked())) {}

ScanScope ScanScope::of_cells(const bgp::PrefixPartition& partition,
                              std::span<const std::uint32_t> cells) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(cells.size());
  for (const std::uint32_t cell : cells) {
    TASS_EXPECTS(partition.live(cell));
    prefixes.push_back(partition.prefix(cell));
  }
  return ScanScope(net::IntervalSet::of_prefixes(prefixes));
}

}  // namespace tass::scan
