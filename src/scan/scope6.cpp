#include "scan/scope6.hpp"

namespace tass::scan {

ScanScope6::ScanScope6(std::span<const net::Ipv6Prefix> prefixes,
                       const Blocklist& blocklist)
    : prefixes_(prefixes.begin(), prefixes.end()),
      whitelist_(trie::LpmIndex6::from_prefixes(prefixes)),
      blocked_(trie::LpmIndex6::from_prefixes(blocklist.blocked6())) {}

ScanScope6 ScanScope6::of_reduced(std::span<const net::Ipv6Prefix> prefixes,
                                  const Blocklist& blocklist,
                                  const bgp::ReduceParams& params,
                                  bgp::ReduceResult6* reduced_out) {
  auto reduced = bgp::reduce(prefixes, params);
  ScanScope6 scope(reduced.prefixes, blocklist);
  if (reduced_out != nullptr) *reduced_out = std::move(reduced);
  return scope;
}

std::size_t ScanScope6::add_candidates(
    std::span<const net::Ipv6Address> addresses) {
  std::size_t admitted = 0;
  for (const net::Ipv6Address address : addresses) {
    if (contains(address)) {
      candidates_.push_back(address);
      ++admitted;
    }
  }
  return admitted;
}

}  // namespace tass::scan
