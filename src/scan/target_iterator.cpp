#include "scan/target_iterator.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::scan {

namespace {

// Degenerate permutation for universe 1 (the group machinery needs
// p - 1 >= 2 to have a generator other than identity; special-case it).
constexpr std::uint64_t kTinyUniverse = 2;

std::uint64_t find_primitive_root(std::uint64_t p,
                                  const std::vector<std::uint64_t>& factors) {
  for (std::uint64_t g = 2;; ++g) {
    if (is_primitive_root(g, p, factors)) return g;
  }
}

}  // namespace

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                      std::uint64_t modulus) noexcept {
  TASS_EXPECTS(modulus != 0);
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % modulus);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t modulus) noexcept {
  TASS_EXPECTS(modulus != 0);
  std::uint64_t result = 1 % modulus;
  base %= modulus;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, modulus);
    base = mul_mod(base, base, modulus);
    exp >>= 1;
  }
  return result;
}

bool is_prime(std::uint64_t value) noexcept {
  if (value < 2) return false;
  for (const std::uint64_t small : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    if (value == small) return true;
    if (value % small == 0) return false;
  }
  // Deterministic Miller-Rabin for 64-bit integers.
  std::uint64_t d = value - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (const std::uint64_t base :
       {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
        31ULL, 37ULL}) {
    if (base % value == 0) continue;  // witness degenerates for tiny values
    std::uint64_t x = pow_mod(base, d, value);
    if (x == 1 || x == value - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mul_mod(x, x, value);
      if (x == value - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t least_prime_above(std::uint64_t value) {
  std::uint64_t candidate = value + 1;
  if (candidate <= 2) return 2;
  if ((candidate & 1) == 0) ++candidate;
  while (!is_prime(candidate)) candidate += 2;
  return candidate;
}

std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t value) {
  TASS_EXPECTS(value >= 1);
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= value; p += (p == 2 ? 1 : 2)) {
    if (value % p == 0) {
      factors.push_back(p);
      while (value % p == 0) value /= p;
    }
  }
  if (value > 1) factors.push_back(value);
  return factors;
}

bool is_primitive_root(std::uint64_t g, std::uint64_t p,
                       const std::vector<std::uint64_t>& factors) noexcept {
  if (g % p == 0) return false;
  const std::uint64_t order = p - 1;
  for (const std::uint64_t factor : factors) {
    if (pow_mod(g, order / factor, p) == 1) return false;
  }
  return true;
}

TargetIterator::TargetIterator(std::uint64_t seed, std::uint64_t universe)
    : TargetIterator(seed, universe, 0, 1) {}

TargetIterator::TargetIterator(std::uint64_t seed, std::uint64_t universe,
                               std::uint32_t shard_index,
                               std::uint32_t shard_count) {
  TASS_EXPECTS(universe >= 1);
  TASS_EXPECTS(shard_count >= 1 && shard_index < shard_count);
  universe_ = universe;
  // The classic modulus for the full space; otherwise the least prime that
  // covers the universe (ZMap sizes its group to the scan the same way).
  prime_ = universe == (1ULL << 32)
               ? kPermutationPrime
               : least_prime_above(std::max(universe, kTinyUniverse));

  util::Rng rng(seed);
  const std::uint64_t order = prime_ - 1;
  const auto factors = distinct_prime_factors(order);
  const std::uint64_t root = find_primitive_root(prime_, factors);

  // Derive a per-seed generator: root^e is a primitive root iff
  // gcd(e, p-1) == 1.
  std::uint64_t exponent = 0;
  do {
    exponent = 1 + rng.bounded(order - 1 > 0 ? order - 1 : 1);
  } while (std::gcd(exponent, order) != 1);
  const std::uint64_t g = pow_mod(root, exponent, prime_);

  // Shard i starts at start * g^i and steps by g^shard_count.
  const std::uint64_t start = 1 + rng.bounded(order);
  generator_ = pow_mod(g, shard_count, prime_);
  current_ = mul_mod(start, pow_mod(g, shard_index, prime_), prime_);
  remaining_ = (order - shard_index + shard_count - 1) / shard_count;
}

TargetIterator TargetIterator::shard(std::uint64_t seed,
                                     std::uint32_t shard_index,
                                     std::uint32_t shard_count,
                                     std::uint64_t universe) {
  return TargetIterator(seed, universe, shard_index, shard_count);
}

std::optional<std::uint64_t> TargetIterator::next_value() noexcept {
  while (remaining_ > 0) {
    const std::uint64_t element = current_;
    current_ = mul_mod(current_, generator_, prime_);
    --remaining_;
    // Element x in [1, p-1] encodes value x-1; x > universe has no target.
    if (element <= universe_) {
      ++emitted_;
      return element - 1;
    }
  }
  done_ = true;
  return std::nullopt;
}

std::optional<net::Ipv4Address> TargetIterator::next() noexcept {
  TASS_EXPECTS(universe_ == (1ULL << 32));
  const auto value = next_value();
  if (!value) return std::nullopt;
  return net::Ipv4Address(static_cast<std::uint32_t>(*value));
}

}  // namespace tass::scan
