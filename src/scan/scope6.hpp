// ScanScope6: the IPv6 scan scope — selected prefixes, a blocklist, and
// the candidate set a cycle will actually probe.
//
// The IPv4 scope materialises its target intervals and the engine sweeps
// them; that is meaningless at 2^128. A v6 cycle instead probes a
// *candidate set*: known-or-conjectured-active addresses (hitlist
// entries, low interface identifiers, aliased-prefix seeds) filtered to
// the selected prefixes minus the blocklist. Membership rides on two
// LpmIndex6 instances (whitelist and blocklist), so contains() stays a
// handful of dependent loads; the candidate list is the enumeration
// view.
//
// Probe ordering reuses the ZMap cyclic-group machinery: permutation()
// sizes the multiplicative group to the candidate count (exactly how
// scoped v4 scans size it to the scope), so a cycle visits every
// candidate exactly once in a network-spreading pseudo-random order and
// sharding (TargetIterator::shard) splits one cycle across probes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/reduce.hpp"
#include "net/ipv6.hpp"
#include "scan/blocklist.hpp"
#include "scan/target_iterator.hpp"
#include "trie/lpm_index6.hpp"

namespace tass::scan {

class ScanScope6 {
 public:
  ScanScope6() = default;

  /// Scope = union(prefixes) - blocklist (the blocklist's v6 side).
  /// Duplicate/nested whitelist prefixes are fine (membership is an LPM
  /// cover test).
  ScanScope6(std::span<const net::Ipv6Prefix> prefixes,
             const Blocklist& blocklist);

  /// Scope from a reduced (overshoot-bounded) selection: the whitelist
  /// is first collapsed by bgp::reduce, shrinking the LpmIndex6 build
  /// and the prefix list carried around, at the price of up to
  /// params.max_overshoot extra admitted space. Every candidate the
  /// unreduced scope admits is still admitted (the blocklist still
  /// applies, so overshoot never resurrects blocked space).
  /// `reduced_out`, when non-null, receives the reduction stats.
  static ScanScope6 of_reduced(std::span<const net::Ipv6Prefix> prefixes,
                               const Blocklist& blocklist,
                               const bgp::ReduceParams& params = {},
                               bgp::ReduceResult6* reduced_out = nullptr);

  /// True if the address is inside a selected prefix and not blocked.
  bool contains(net::Ipv6Address addr) const noexcept {
    return whitelist_.covers(addr) && !blocked_.covers(addr);
  }

  /// Filters `addresses` into the candidate set, in input order,
  /// dropping duplicates of already-admitted candidates is the caller's
  /// concern (hitlists are conventionally deduplicated). Returns how
  /// many were admitted.
  std::size_t add_candidates(std::span<const net::Ipv6Address> addresses);

  std::span<const net::Ipv6Address> candidates() const noexcept {
    return candidates_;
  }
  std::size_t candidate_count() const noexcept { return candidates_.size(); }
  net::Ipv6Address candidate(std::size_t index) const noexcept {
    TASS_EXPECTS(index < candidates_.size());
    return candidates_[index];
  }

  /// The selected prefixes (as given; not deduplicated).
  std::span<const net::Ipv6Prefix> prefixes() const noexcept {
    return prefixes_;
  }
  bool empty() const noexcept { return prefixes_.empty(); }

  /// A full-cycle permutation of the candidate set: the cyclic
  /// multiplicative group sized to candidate_count(), ZMap-style.
  /// Precondition: candidate_count() >= 1. Iterate next_value() and map
  /// through candidate() — see next_target() for the fused form.
  TargetIterator permutation(std::uint64_t seed) const {
    TASS_EXPECTS(!candidates_.empty());
    return TargetIterator(seed, candidates_.size());
  }

  /// One shard of the permutation (TargetIterator::shard semantics):
  /// shards are disjoint and jointly cover every candidate exactly once.
  TargetIterator permutation_shard(std::uint64_t seed,
                                   std::uint32_t shard_index,
                                   std::uint32_t shard_count) const {
    TASS_EXPECTS(!candidates_.empty());
    return TargetIterator::shard(seed, shard_index, shard_count,
                                 candidates_.size());
  }

  /// Draws the next candidate address from a permutation created by
  /// permutation()/permutation_shard().
  std::optional<net::Ipv6Address> next_target(TargetIterator& it) const {
    const auto value = it.next_value();
    if (!value) return std::nullopt;
    return candidate(static_cast<std::size_t>(*value));
  }

 private:
  std::vector<net::Ipv6Prefix> prefixes_;
  std::vector<net::Ipv6Address> candidates_;
  trie::LpmIndex6 whitelist_;
  trie::LpmIndex6 blocked_;
};

}  // namespace tass::scan
