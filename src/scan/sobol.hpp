// Low-discrepancy sampling primitives for sampled scans.
//
// A sampled scan probes n targets out of a cell's N-address frame and
// scales the hit count up (core/estimator.hpp). Two properties decide
// the quality of the draw:
//
//   * unbiasedness — every address must have inclusion probability n/N,
//     or the scale-up estimator is wrong by construction. Deterministic
//     Sobol/bit-reversal point sets violate this for n not a power of
//     two (some strata get probability 0), so the draw here is
//     *randomized* stratified sampling: the frame is cut into n equal
//     strata and one uniform offset is drawn per stratum from a
//     deterministic per-stratum stream.
//   * low discrepancy — hosts cluster (DHCP pools, racks, /24
//     conventions), so spreading the n points evenly over the frame
//     gives a variance at or below the binomial i.i.d. bound
//     (stratification never hurts: sum of per-stratum Bernoulli
//     variances <= n * pbar * (1 - pbar)).
//
// The *visit order* of the strata is the van der Corput bit-reversed
// sequence, so any prefix of the target list is itself near-
// equidistributed over the frame — aborting a sampled scan early still
// leaves a usable (smaller) sample, the same progressive property Sobol
// sequences are used for.
#pragma once

#include <cstdint>
#include <vector>

namespace tass::scan {

/// Reverses the low `bits` bits of `value` (the base-2 radical inverse
/// as an integer). bits in [0, 64].
std::uint64_t bit_reverse(std::uint64_t value, int bits) noexcept;

/// van der Corput radical inverse in base 2: the bit-reversed fraction
/// of `index` in [0, 1).
double radical_inverse(std::uint64_t index) noexcept;

/// The progressive visit order of [0, count): indices in bit-reversed
/// order (non-power-of-two counts skip the out-of-range codes), so every
/// prefix of the returned permutation is near-equidistributed.
std::vector<std::uint64_t> progressive_order(std::uint64_t count);

/// `draws` distinct offsets in [0, universe), at most one per equal
/// stratum, listed in the progressive (bit-reversed) stratum order.
/// Deterministic in (universe, draws, seed). draws > universe is clamped
/// to an exhaustive 0..universe-1 enumeration (in progressive order).
/// Every offset's inclusion probability is exactly draws/universe when
/// draws divides universe evenly, and within one part in
/// floor(universe/draws) otherwise — unbiased enough that the estimator
/// treats the draw as uniform without replacement.
std::vector<std::uint64_t> stratified_offsets(std::uint64_t universe,
                                              std::uint64_t draws,
                                              std::uint64_t seed);

}  // namespace tass::scan
