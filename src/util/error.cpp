#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace tass::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::fprintf(stderr, "%s failure: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace tass::detail
