// Error handling primitives shared by all TASS libraries.
//
// The library uses exceptions at I/O and API boundaries (parse failures,
// malformed binary records) and cheap always-on contract checks for
// programmer errors, following the C++ Core Guidelines (E.2, I.6).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace tass {

/// Base exception for all failures raised by the TASS libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when textual input (pfx2as rows, prefixes, blocklists, CLI
/// arguments) cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when binary input (MRT records, snapshot files) is malformed,
/// truncated, or violates the format specification.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);
}  // namespace detail

}  // namespace tass

/// Precondition check. Violations indicate a caller bug; they terminate via
/// a diagnostic rather than throwing so they are never silently swallowed.
#define TASS_EXPECTS(expr)                                                \
  ((expr) ? static_cast<void>(0)                                          \
          : ::tass::detail::contract_failure("Precondition", #expr,      \
                                             __FILE__, __LINE__))

/// Postcondition / invariant check, same policy as TASS_EXPECTS.
#define TASS_ENSURES(expr)                                                \
  ((expr) ? static_cast<void>(0)                                          \
          : ::tass::detail::contract_failure("Postcondition", #expr,     \
                                             __FILE__, __LINE__))
