#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/numa.hpp"

namespace tass::util {

std::size_t shard_count_for(std::uint64_t total_items,
                            std::uint64_t min_items_per_shard,
                            std::size_t max_shards) noexcept {
  if (total_items == 0 || max_shards <= 1) return 1;
  if (min_items_per_shard == 0) min_items_per_shard = 1;
  const std::uint64_t shards = total_items / min_items_per_shard;
  return static_cast<std::size_t>(
      std::clamp<std::uint64_t>(shards, 1, max_shards));
}

std::size_t shard_count_for_slots(std::uint64_t total_items,
                                  std::uint64_t min_items_per_shard,
                                  std::uint64_t cells,
                                  std::size_t bytes_per_cell) noexcept {
  constexpr std::uint64_t kSlotMemoryBudget = 64ULL << 20;  // bytes
  // Clamp both factors: a zero-cell workload AND a zero-byte slot type
  // (callers sizing for a slot-free reduction) must both yield a valid
  // divisor, not a division by zero.
  const std::uint64_t slot_bytes =
      std::max<std::uint64_t>(1, cells) *
      std::max<std::uint64_t>(1, bytes_per_cell);
  const auto max_shards = static_cast<std::size_t>(
      std::clamp<std::uint64_t>(kSlotMemoryBudget / slot_bytes, 1, 1024));
  return shard_count_for(total_items,
                         std::max<std::uint64_t>(1, min_items_per_shard),
                         max_shards);
}

ThreadPool::ThreadPool(unsigned threads, ThreadPoolOptions options) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread is participant 0 and runs shards like any
  // worker, so it gets the same placement treatment: without this the
  // caller's shards first-touch memory on whatever node the OS left it
  // on while all workers are pinned — an asymmetry that shows up as one
  // slow shard per region.
  if (options.numa_pin) numa::pin_thread_to_node(0);
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    // Pin before entering the loop: the worker's stack and everything
    // it first-touches from then on stay on its node.
    workers_.emplace_back([this, i, options] {
      if (options.numa_pin) numa::pin_thread_to_node(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::run_one_shard(Job& job,
                               const std::function<void(std::size_t)>& fn) {
  const std::size_t shard = job.next.fetch_add(1, std::memory_order_relaxed);
  if (shard >= job.shard_count) return false;
  std::exception_ptr error;
  try {
    fn(shard);
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !job.error) job.error = error;
  if (++job.completed == job.shard_count) job.done_cv.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (stop_) return;
    const std::shared_ptr<Job> job = jobs_.front();
    if (job->next.load(std::memory_order_relaxed) >= job->shard_count) {
      // Exhausted; retire it and look for the next job.
      jobs_.pop_front();
      continue;
    }
    lock.unlock();
    run_one_shard(*job, *job->fn);
    lock.lock();
  }
}

void ThreadPool::for_each_shard(std::size_t shard_count,
                                const std::function<void(std::size_t)>& fn) {
  if (shard_count == 0) return;
  if (workers_.empty() || shard_count == 1) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) fn(shard);
    return;
  }

  const auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->shard_count = shard_count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The caller participates until no shard is left to claim...
  while (run_one_shard(*job, fn)) {
  }

  // ...then waits for shards still in flight on other threads.
  std::unique_lock<std::mutex> lock(mutex_);
  job->done_cv.wait(lock,
                    [&] { return job->completed == job->shard_count; });
  const auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::shared() {
  // Deployments opt the process-wide pool into NUMA pinning with
  // TASS_NUMA_PIN=1; harmless (a no-op) everywhere else.
  static ThreadPool pool(0,
                         ThreadPoolOptions{numa::pin_requested_from_env() &&
                                           numa::available()});
  return pool;
}

void run_shards(unsigned threads, std::size_t shard_count,
                const std::function<void(std::size_t)>& fn) {
  if (threads == 1 || shard_count <= 1) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) fn(shard);
  } else if (threads == 0) {
    ThreadPool::shared().for_each_shard(shard_count, fn);
  } else {
    ThreadPool pool(threads);
    pool.for_each_shard(shard_count, fn);
  }
}

}  // namespace tass::util
