// Fixed-size worker pool for the scan pipeline's data-parallel stages.
//
// The pool deliberately avoids work stealing and dynamic scheduling
// games: a parallel region is a fixed set of shards handed out from an
// atomic counter, and every consumer writes into a result slot addressed
// by shard index. Because shard *boundaries* depend only on the workload
// (never on the pool size or on scheduling), merging the per-shard slots
// in index order reproduces the sequential result bit for bit — the
// property the scan engine, attribution and evaluation stages rely on to
// stay deterministic under any thread count.
//
// The calling thread participates in every region, so a pool constructed
// with 1 thread degenerates to plain inline execution and nested regions
// launched from worker threads always make progress.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tass::util {

/// Deterministic shard count for a workload of `total_items`: grows with
/// the workload, is capped at `max_shards`, and never depends on the pool
/// size — so results merged in shard order are thread-count invariant.
std::size_t shard_count_for(std::uint64_t total_items,
                            std::uint64_t min_items_per_shard,
                            std::size_t max_shards = 1024) noexcept;

/// shard_count_for when every shard owns a dense result slot of `cells`
/// entries of `bytes_per_cell` each (attribution-style count vectors):
/// additionally caps the fan-out so the slot arrays fit a fixed memory
/// budget however large one slot is. Still depends only on the inputs,
/// never on the pool size.
std::size_t shard_count_for_slots(std::uint64_t total_items,
                                  std::uint64_t min_items_per_shard,
                                  std::uint64_t cells,
                                  std::size_t bytes_per_cell) noexcept;

/// The pipeline-wide dispatch convention for a `threads` knob: 1 runs the
/// shards inline on the calling thread, 0 uses the process-wide pool, and
/// N > 1 uses a dedicated pool of N participants. The shard set is the
/// same in every case, so results never depend on the choice.
void run_shards(unsigned threads, std::size_t shard_count,
                const std::function<void(std::size_t)>& fn);

/// Construction knobs beyond the thread count.
struct ThreadPoolOptions {
  /// Pin all participants round-robin across NUMA nodes (execution +
  /// preferred memory policy), so shard scratch first-touched by a
  /// participant stays on its node for the pool's lifetime. The
  /// constructing (caller) thread is participant 0 and is pinned to
  /// node 0 like any worker. No-op when built without libnuma (CMake
  /// TASS_NUMA) or on single-node machines. The shared() pool reads
  /// the TASS_NUMA_PIN environment toggle for this.
  bool numa_pin = false;
};

class ThreadPool {
 public:
  /// A pool with `threads` participants including the calling thread
  /// (i.e. `threads - 1` workers are spawned). 0 means one participant
  /// per hardware thread.
  explicit ThreadPool(unsigned threads = 0, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants, counting the calling thread.
  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invokes fn(shard) exactly once for every shard in [0, shard_count),
  /// distributed over the workers plus the calling thread, and blocks
  /// until all shards finished. The first exception thrown by any shard
  /// is rethrown here (the remaining shards still run). Reentrant: fn may
  /// itself call into the pool.
  void for_each_shard(std::size_t shard_count,
                      const std::function<void(std::size_t)>& fn);

  /// Chunked parallel-for over the index range [begin, end): the range is
  /// split into `shard_count` contiguous chunks with deterministic
  /// boundaries and fn(shard, chunk_begin, chunk_end) runs per chunk.
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::size_t shard_count, Fn&& fn) {
    if (begin >= end) return;
    const std::uint64_t total = end - begin;
    if (shard_count > total) shard_count = static_cast<std::size_t>(total);
    if (shard_count == 0) shard_count = 1;
    for_each_shard(shard_count, [&](std::size_t shard) {
      const auto [lo, hi] = chunk_bounds(begin, total, shard_count, shard);
      fn(shard, lo, hi);
    });
  }

  /// Process-wide pool sized to the hardware, built on first use. Shared
  /// by every pipeline stage that does not get an explicit pool.
  static ThreadPool& shared();

  /// Deterministic chunk boundaries used by parallel_for: chunk `shard`
  /// of `shard_count` over [begin, begin + total). 128-bit intermediates
  /// keep the split exact for any uint64 range.
  static constexpr std::pair<std::uint64_t, std::uint64_t> chunk_bounds(
      std::uint64_t begin, std::uint64_t total, std::size_t shard_count,
      std::size_t shard) noexcept {
    const auto at = [&](std::size_t s) {
      return begin + static_cast<std::uint64_t>(
                         static_cast<__uint128_t>(total) * s / shard_count);
    };
    return {at(shard), at(shard + 1)};
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t shard_count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;        // guarded by ThreadPool::mutex_
    std::exception_ptr error;         // guarded by ThreadPool::mutex_
    std::condition_variable done_cv;
  };

  void worker_loop();
  // Runs one shard and does the completion bookkeeping. Returns false if
  // the job had no shard left to claim.
  bool run_one_shard(Job& job, const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

/// run_shards over chunked index ranges: fn(shard, chunk_begin,
/// chunk_end) with the same deterministic boundaries as
/// ThreadPool::parallel_for.
template <typename Fn>
void run_chunks(unsigned threads, std::uint64_t begin, std::uint64_t end,
                std::size_t shard_count, Fn&& fn) {
  if (begin >= end) return;
  const std::uint64_t total = end - begin;
  if (shard_count > total) shard_count = static_cast<std::size_t>(total);
  if (shard_count == 0) shard_count = 1;
  run_shards(threads, shard_count, [&](std::size_t shard) {
    const auto [lo, hi] =
        ThreadPool::chunk_bounds(begin, total, shard_count, shard);
    fn(shard, lo, hi);
  });
}

}  // namespace tass::util
