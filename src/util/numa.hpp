// Minimal NUMA topology shim for the thread pool.
//
// Two mechanisms keep per-shard engine state node-local during the
// sharded attribution stages, and only one of them needs this header:
//
//   1. First-touch placement (always on, no library needed): the
//      per-shard count vectors are allocated *inside* the shard lambda,
//      on the worker that will fill them, so the kernel's first-touch
//      policy places their pages on that worker's node. See
//      scan::ScanEngine::run_attributed and core::attribute.
//   2. Worker pinning (optional): ThreadPool can pin its workers
//      round-robin across NUMA nodes so a worker — and with it the
//      first-touched scratch — stays put for the pool's lifetime. That
//      needs libnuma, gated behind the TASS_NUMA CMake option; without
//      it (or on single-node machines) every function here degrades to
//      a no-op and the pool behaves exactly as before.
#pragma once

namespace tass::util::numa {

/// True when the build linked libnuma (CMake -DTASS_NUMA=ON and the
/// library was found).
bool compiled() noexcept;

/// True when pinning can do anything: libnuma is compiled in,
/// numa_available() succeeds, and the machine has more than one node.
bool available() noexcept;

/// Configured NUMA nodes (1 when unavailable).
int node_count() noexcept;

/// Pins the calling thread to node (worker_index % node_count()),
/// memory policy included, so its first-touched pages land on the same
/// node it executes on. Returns false (doing nothing) when unavailable.
bool pin_thread_to_node(unsigned worker_index) noexcept;

/// The TASS_NUMA_PIN environment toggle (any value except "" and "0")
/// — how deployments opt the shared pool into pinning without a
/// rebuild. Meaningless unless available().
bool pin_requested_from_env() noexcept;

}  // namespace tass::util::numa
