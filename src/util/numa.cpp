#include "util/numa.hpp"

#include <cstdlib>
#include <cstring>

#if defined(TASS_HAVE_NUMA)
#include <numa.h>
#endif

namespace tass::util::numa {

bool compiled() noexcept {
#if defined(TASS_HAVE_NUMA)
  return true;
#else
  return false;
#endif
}

bool available() noexcept {
#if defined(TASS_HAVE_NUMA)
  return ::numa_available() >= 0 && ::numa_num_configured_nodes() > 1;
#else
  return false;
#endif
}

int node_count() noexcept {
#if defined(TASS_HAVE_NUMA)
  if (::numa_available() < 0) return 1;
  const int nodes = ::numa_num_configured_nodes();
  return nodes > 0 ? nodes : 1;
#else
  return 1;
#endif
}

bool pin_thread_to_node(unsigned worker_index) noexcept {
#if defined(TASS_HAVE_NUMA)
  if (!available()) return false;
  const int node = static_cast<int>(worker_index) % node_count();
  // numa_run_on_node binds execution; the preferred policy makes the
  // worker's first-touch allocations land on the same node even under
  // transient memory pressure elsewhere.
  if (::numa_run_on_node(node) != 0) return false;
  ::numa_set_preferred(node);
  return true;
#else
  (void)worker_index;
  return false;
#endif
}

bool pin_requested_from_env() noexcept {
  const char* value = std::getenv("TASS_NUMA_PIN");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace tass::util::numa
