#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

namespace tass::util {

double Rng::exponential(double lambda) noexcept {
  TASS_EXPECTS(lambda > 0.0);
  // 1 - uniform() is in (0, 1], avoiding log(0).
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::pareto(double xm, double alpha) noexcept {
  TASS_EXPECTS(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; draw both uniforms every call so the consumption pattern is
  // fixed regardless of how results are used.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  TASS_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; clamp at zero.
  const double draw = normal(mean, std::sqrt(mean)) + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  TASS_EXPECTS(k <= n);
  // Floyd's algorithm: k iterations, O(k log k) via the set.
  std::set<std::uint64_t> chosen;
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = bounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (const double w : weights) {
    TASS_EXPECTS(w >= 0.0);
    running += w;
    cumulative_.push_back(running);
  }
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  TASS_EXPECTS(!cumulative_.empty() && cumulative_.back() > 0.0);
  const double needle = rng.uniform() * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), needle);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(idx, cumulative_.size() - 1);
}

}  // namespace tass::util
