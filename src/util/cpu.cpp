#include "util/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tass::util::cpu {

namespace {

bool env_forces_scalar() noexcept {
  const char* value = std::getenv("TASS_FORCE_SCALAR");
  return value != nullptr && *value != '\0' &&
         std::strcmp(value, "0") != 0;
}

bool hardware_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel select_level() noexcept {
  const Features features = probe();
  if (features.forced_scalar || !features.avx2) return SimdLevel::kScalar;
  return SimdLevel::kAvx2;
}

// The cached decision. Encoded as level + 1 so 0 means "not probed yet";
// relaxed ordering suffices — every thread that races the first probe
// computes the same value.
std::atomic<int> g_active{0};

}  // namespace

std::string_view level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Features probe() noexcept {
  Features features;
  features.avx2 = hardware_has_avx2();
  features.forced_scalar = env_forces_scalar();
  return features;
}

SimdLevel active_level() noexcept {
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached == 0) {
    cached = static_cast<int>(select_level()) + 1;
    g_active.store(cached, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(cached - 1);
}

SimdLevel refresh_active_level_for_testing() noexcept {
  const SimdLevel level = select_level();
  g_active.store(static_cast<int>(level) + 1, std::memory_order_relaxed);
  return level;
}

}  // namespace tass::util::cpu
