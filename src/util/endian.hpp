// Byte-order codecs. Big-endian (network byte order) for the MRT binary
// format and the snapshot container; little-endian for the TSIM state
// image, whose payload sections are the in-memory arrays themselves.
// Header-only; all functions are bounds-checked by the caller supplying
// correctly-sized spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace tass::util {

constexpr std::uint16_t load_be16(std::span<const std::byte, 2> in) noexcept {
  return static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(in[0]) << 8) |
      std::to_integer<std::uint16_t>(in[1]));
}

constexpr std::uint32_t load_be32(std::span<const std::byte, 4> in) noexcept {
  return (std::to_integer<std::uint32_t>(in[0]) << 24) |
         (std::to_integer<std::uint32_t>(in[1]) << 16) |
         (std::to_integer<std::uint32_t>(in[2]) << 8) |
         std::to_integer<std::uint32_t>(in[3]);
}

constexpr std::uint64_t load_be64(std::span<const std::byte, 8> in) noexcept {
  std::uint64_t value = 0;
  for (const std::byte b : in) {
    value = (value << 8) | std::to_integer<std::uint64_t>(b);
  }
  return value;
}

constexpr void store_be16(std::uint16_t value,
                          std::span<std::byte, 2> out) noexcept {
  out[0] = static_cast<std::byte>(value >> 8);
  out[1] = static_cast<std::byte>(value & 0xff);
}

constexpr void store_be32(std::uint32_t value,
                          std::span<std::byte, 4> out) noexcept {
  out[0] = static_cast<std::byte>(value >> 24);
  out[1] = static_cast<std::byte>((value >> 16) & 0xff);
  out[2] = static_cast<std::byte>((value >> 8) & 0xff);
  out[3] = static_cast<std::byte>(value & 0xff);
}

constexpr void store_be64(std::uint64_t value,
                          std::span<std::byte, 8> out) noexcept {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((value >> (56 - 8 * i)) & 0xff);
  }
}

constexpr std::uint32_t load_le32(std::span<const std::byte, 4> in) noexcept {
  return std::to_integer<std::uint32_t>(in[0]) |
         (std::to_integer<std::uint32_t>(in[1]) << 8) |
         (std::to_integer<std::uint32_t>(in[2]) << 16) |
         (std::to_integer<std::uint32_t>(in[3]) << 24);
}

constexpr std::uint64_t load_le64(std::span<const std::byte, 8> in) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= std::to_integer<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

constexpr void store_le32(std::uint32_t value,
                          std::span<std::byte, 4> out) noexcept {
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
}

constexpr void store_le64(std::uint64_t value,
                          std::span<std::byte, 8> out) noexcept {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
}

/// Append-only big-endian byte sink used by binary writers.
class ByteWriter {
 public:
  void u8(std::uint8_t value) {
    buffer_.push_back(static_cast<std::byte>(value));
  }
  void u16(std::uint16_t value) {
    std::byte scratch[2];
    store_be16(value, scratch);
    buffer_.insert(buffer_.end(), scratch, scratch + 2);
  }
  void u32(std::uint32_t value) {
    std::byte scratch[4];
    store_be32(value, scratch);
    buffer_.insert(buffer_.end(), scratch, scratch + 4);
  }
  void u64(std::uint64_t value) {
    std::byte scratch[8];
    store_be64(value, scratch);
    buffer_.insert(buffer_.end(), scratch, scratch + 8);
  }
  void bytes(std::span<const std::byte> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Patches a previously written 16-bit length field at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t value) {
    TASS_EXPECTS(offset + 2 <= buffer_.size());
    store_be16(value, std::span<std::byte, 2>(&buffer_[offset], 2));
  }
  /// Patches a previously written 32-bit length field at `offset`.
  void patch_u32(std::size_t offset, std::uint32_t value) {
    TASS_EXPECTS(offset + 4 <= buffer_.size());
    store_be32(value, std::span<std::byte, 4>(&buffer_[offset], 4));
  }

  std::size_t size() const noexcept { return buffer_.size(); }
  std::span<const std::byte> view() const noexcept { return buffer_; }
  std::vector<std::byte> take() && noexcept { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential big-endian reader with explicit bounds checking; throws
/// FormatError on truncation so binary parsers do not need per-field checks.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() { return std::to_integer<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() {
    return load_be16(std::span<const std::byte, 2>(take(2).data(), 2));
  }
  std::uint32_t u32() {
    return load_be32(std::span<const std::byte, 4>(take(4).data(), 4));
  }
  std::uint64_t u64() {
    return load_be64(std::span<const std::byte, 8>(take(8).data(), 8));
  }
  std::span<const std::byte> bytes(std::size_t count) { return take(count); }

  /// Sub-reader over the next `count` bytes (consumed from this reader).
  ByteReader sub(std::size_t count) { return ByteReader(take(count)); }

 private:
  std::span<const std::byte> take(std::size_t count) {
    if (remaining() < count) {
      throw FormatError("truncated input: wanted " + std::to_string(count) +
                        " bytes, have " + std::to_string(remaining()));
    }
    const auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace tass::util
