// Runtime CPU feature detection and SIMD kernel selection.
//
// The batch hot paths (trie::BasicLpmIndex::lookup_many,
// bgp::BasicPrefixPartition::tally_cells) exist in two implementations:
// the scalar reference walk — always compiled, always correct — and
// explicit SIMD kernels compiled into dedicated translation units with
// the matching -m flags. Which implementation runs is decided exactly
// once per process, here: active_level() probes the CPU (CPUID via
// __builtin_cpu_supports on x86) and the TASS_FORCE_SCALAR environment
// override, and every kernel-table accessor keys off the result. The
// binary therefore runs unchanged on any machine — a CPU without AVX2
// simply selects the scalar table — and sanitizer jobs export
// TASS_FORCE_SCALAR=1 so ASan/TSan keep exercising the reference path
// the SIMD kernels are differentially tested against.
//
// Contract shared by every kernel pair: the SIMD kernel is bit-identical
// to the scalar reference on all inputs. The differential suite
// (tests/lpm_differential_test.cpp) and the micro-benches enforce this;
// a kernel that is fast but not bit-identical is a bug, not a trade-off.
#pragma once

#include <string_view>

namespace tass::util::cpu {

/// The kernel tiers the dispatch layer distinguishes. kScalar is the
/// reference implementation; kAvx2 selects the AVX2 gather/mask kernels
/// (and the software-pipelined walks that ride the same dispatch).
enum class SimdLevel { kScalar = 0, kAvx2 = 1 };

std::string_view level_name(SimdLevel level) noexcept;

/// Raw probe results, uncached: what the hardware supports and whether
/// the TASS_FORCE_SCALAR override is set (any value except "" and "0").
struct Features {
  bool avx2 = false;          // hardware + compiled-in kernel support
  bool forced_scalar = false; // TASS_FORCE_SCALAR environment override
};

/// Probes CPUID and the environment. Cheap but not free; hot paths use
/// active_level() instead.
Features probe() noexcept;

/// The level selected by probe() at first call and cached for the
/// process lifetime — the one decision point every kernel table keys
/// off. TASS_FORCE_SCALAR wins over any hardware capability.
SimdLevel active_level() noexcept;

/// Re-runs the probe and replaces the cached level — for tests that
/// toggle TASS_FORCE_SCALAR via setenv and need the round trip to be
/// observable. Not thread-safe against concurrent hot-path dispatch;
/// production code never calls this.
SimdLevel refresh_active_level_for_testing() noexcept;

}  // namespace tass::util::cpu
