// Read-only shared memory mappings (RAII).
//
// The state-image loader (state/image.hpp) maps a file instead of reading
// it so that N worker processes attached to the same image share one
// page-cache copy of the derived scan state: the kernel backs every
// mapping with the same physical pages, so process count does not
// multiply resident memory, and a cold start touches only the pages the
// validation pass actually reads. MAP_SHARED + PROT_READ also means a
// stray write is a segfault in the offending process, never silent
// corruption of a sibling's view.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace tass::util {

/// A read-only, shared, whole-file memory mapping. Move-only; unmaps on
/// destruction. The mapping address is stable for the object's lifetime
/// (moves transfer ownership without remapping), so spans handed out by
/// bytes() stay valid until the owning MmapFile is destroyed.
class MmapFile {
 public:
  /// Maps `path` read-only. Throws tass::Error if the file cannot be
  /// opened, stat'ed, or mapped. An empty file yields an empty bytes()
  /// span and no mapping.
  static MmapFile open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped file contents. Page-aligned base (when non-empty).
  std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::string& path() const noexcept { return path_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace tass::util
