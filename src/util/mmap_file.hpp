// Read-only memory mappings (RAII), with opt-in hugepage backing.
//
// The state-image loader (state/image.hpp) maps a file instead of
// reading it so that N worker processes attached to the same image share
// one page-cache copy of the derived scan state: the kernel backs every
// mapping with the same physical pages, so process count does not
// multiply resident memory, and a cold start touches only the pages the
// validation pass actually reads. MAP_SHARED + PROT_READ also means a
// stray write is a segfault in the offending process, never silent
// corruption of a sibling's view.
//
// Hugepage mode (MapOptions::huge_pages) trades that sharing for TLB
// locality: MAP_HUGETLB cannot back a regular file, so the contents are
// copied once into an anonymous hugepage mapping (explicit 2 MiB pages
// when the pool has them, transparent huge pages via MADV_HUGEPAGE
// otherwise) and then sealed read-only. A hot LPM serving loop walks
// hundreds of megabytes with random access; 2 MiB pages cut its dTLB
// miss rate by ~512x. When neither hugepage flavour is available the
// open degrades silently to the plain shared file mapping — backing()
// reports which mode actually materialised so `state info` and the
// cold-start bench can record it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace tass::util {

/// What physically backs a mapping. kNone: empty file, no mapping.
/// kBase: plain base-page file mapping (the zero-copy default).
/// kTransparentHuge: anonymous copy advised MADV_HUGEPAGE (the kernel
/// assembles 2 MiB pages opportunistically). kHugeTlb: anonymous copy
/// on explicitly reserved MAP_HUGETLB pages.
enum class PageBacking : std::uint8_t {
  kNone,
  kBase,
  kTransparentHuge,
  kHugeTlb,
};

/// Stable lowercase token for logs and bench JSON ("none", "base",
/// "thp", "hugetlb").
std::string_view page_backing_name(PageBacking backing) noexcept;

/// Knobs for MmapFile::open. Default-constructed == the historical
/// zero-copy behaviour.
struct MapOptions {
  /// Request hugepage backing (copy-based; see the header comment for
  /// the trade-off). Falls back to the plain shared mapping when no
  /// hugepage flavour is available — never an error.
  bool huge_pages = false;
};

/// A read-only, whole-file memory mapping. Move-only; unmaps on
/// destruction. The mapping address is stable for the object's lifetime
/// (moves transfer ownership without remapping), so spans handed out by
/// bytes() stay valid until the owning MmapFile is destroyed.
class MmapFile {
 public:
  /// Maps `path` read-only. Throws tass::Error if the file cannot be
  /// opened, stat'ed, or mapped. An empty file yields an empty bytes()
  /// span and no mapping.
  static MmapFile open(const std::string& path, const MapOptions& options);
  static MmapFile open(const std::string& path) { return open(path, {}); }

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped file contents. Page-aligned base (when non-empty).
  std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::string& path() const noexcept { return path_; }

  /// What actually backs this mapping — callers that requested
  /// huge_pages check this to learn whether the request materialised.
  PageBacking backing() const noexcept { return backing_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;      // file bytes (what bytes() exposes)
  std::size_t map_size_ = 0;  // mapped bytes (hugepage-rounded >= size_)
  PageBacking backing_ = PageBacking::kNone;
  std::string path_;
};

}  // namespace tass::util
