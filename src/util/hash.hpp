// FNV-1a 64-bit hashing: content checksums for the snapshot container and
// structural fingerprints (e.g. partition identity). Not cryptographic —
// it guards against corruption and mismatched inputs, not adversaries.
//
// Two constructions live here:
//   * Fnv1a64 / fnv1a64 — the textbook byte-serial form (TSNP snapshots,
//     fingerprints). Its multiply chain caps it at a few hundred MB/s.
//   * fnv1a64_wide — eight interleaved FNV-1a lanes over 64-byte blocks,
//     folded into one digest. The lanes have no cross dependencies, so
//     the multiplies pipeline and the hash runs at memory bandwidth —
//     what the TSIM state image uses so checksumming a multi-megabyte
//     payload does not eat the millisecond cold-start budget.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace tass::util {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr void update(std::uint8_t byte) noexcept {
    state_ = (state_ ^ byte) * kPrime;
  }
  void update(std::span<const std::byte> bytes) noexcept {
    for (const std::byte b : bytes) update(std::to_integer<std::uint8_t>(b));
  }
  constexpr void update_u32(std::uint32_t value) noexcept {
    for (int shift = 24; shift >= 0; shift -= 8) {
      update(static_cast<std::uint8_t>((value >> shift) & 0xff));
    }
  }
  constexpr void update_u64(std::uint64_t value) noexcept {
    for (int shift = 56; shift >= 0; shift -= 8) {
      update(static_cast<std::uint8_t>((value >> shift) & 0xff));
    }
  }

  constexpr std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

inline std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  Fnv1a64 hasher;
  hasher.update(bytes);
  return hasher.digest();
}

/// Wide FNV-1a: eight independent lanes, lane i seeded by folding the
/// byte i into the offset basis, each absorbing every eighth 64-bit
/// little-endian word of the input stream (blocks of 64 bytes, counted
/// from the start of the stream regardless of how the input is chunked
/// into update() calls). The digest folds the lane states, the trailing
/// bytes that do not fill a block, and the total length through a final
/// byte-serial FNV-1a. Endian-stable; same corruption-detection
/// character as FNV-1a, about 20x the throughput — the lanes have no
/// cross dependencies, so the multiplies pipeline to memory bandwidth.
///
/// The streaming form exists so the TSIM loader can interleave
/// checksumming with per-section validation in one cache-hot sweep.
class WideFnv1a64 {
 public:
  WideFnv1a64() noexcept {
    for (std::uint8_t i = 0; i < 8; ++i) {
      lanes_[i] = (Fnv1a64::kOffsetBasis ^ i) * Fnv1a64::kPrime;
    }
  }

  void update(std::span<const std::byte> bytes) noexcept {
    if (bytes.empty()) return;
    total_ += bytes.size();
    if (buffered_ > 0) {
      const std::size_t take = std::min(bytes.size(), 64 - buffered_);
      std::memcpy(buffer_ + buffered_, bytes.data(), take);
      buffered_ += take;
      bytes = bytes.subspan(take);
      if (buffered_ < 64) return;
      process(buffer_);
      buffered_ = 0;
    }
    while (bytes.size() >= 64) {
      process(bytes.data());
      bytes = bytes.subspan(64);
    }
    if (!bytes.empty()) {
      std::memcpy(buffer_, bytes.data(), bytes.size());
      buffered_ = bytes.size();
    }
  }

  std::uint64_t digest() const noexcept {
    Fnv1a64 fold;
    for (std::size_t i = 0; i < 8; ++i) fold.update_u64(lanes_[i]);
    fold.update({reinterpret_cast<const std::byte*>(buffer_), buffered_});
    fold.update_u64(total_);
    return fold.digest();
  }

 private:
  void process(const std::byte* block) noexcept {
    for (std::size_t i = 0; i < 8; ++i) {
      std::uint64_t word;
      std::memcpy(&word, block + 8 * i, 8);
      if constexpr (std::endian::native == std::endian::big) {
        word = __builtin_bswap64(word);
      }
      lanes_[i] = (lanes_[i] ^ word) * Fnv1a64::kPrime;
    }
  }

  std::uint64_t lanes_[8];
  std::byte buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

inline std::uint64_t fnv1a64_wide(std::span<const std::byte> bytes) noexcept {
  WideFnv1a64 hasher;
  hasher.update(bytes);
  return hasher.digest();
}

}  // namespace tass::util
