// FNV-1a 64-bit hashing: content checksums for the snapshot container and
// structural fingerprints (e.g. partition identity). Not cryptographic —
// it guards against corruption and mismatched inputs, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace tass::util {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr void update(std::uint8_t byte) noexcept {
    state_ = (state_ ^ byte) * kPrime;
  }
  void update(std::span<const std::byte> bytes) noexcept {
    for (const std::byte b : bytes) update(std::to_integer<std::uint8_t>(b));
  }
  constexpr void update_u32(std::uint32_t value) noexcept {
    for (int shift = 24; shift >= 0; shift -= 8) {
      update(static_cast<std::uint8_t>((value >> shift) & 0xff));
    }
  }
  constexpr void update_u64(std::uint64_t value) noexcept {
    for (int shift = 56; shift >= 0; shift -= 8) {
      update(static_cast<std::uint8_t>((value >> shift) & 0xff));
    }
  }

  constexpr std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

inline std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  Fnv1a64 hasher;
  hasher.update(bytes);
  return hasher.digest();
}

}  // namespace tass::util
