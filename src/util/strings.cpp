#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace tass::util {

std::string read_text_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open " + std::string(what) + " file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(delimiter, begin);
    if (end == std::string_view::npos) {
      fields.push_back(text.substr(begin));
      return fields;
    }
    fields.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t begin = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > begin) fields.push_back(text.substr(begin, i - begin));
  }
  return fields;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view text) noexcept {
  const auto wide = parse_u64(text);
  if (!wide || *wide > 0xffffffffULL) return std::nullopt;
  return static_cast<std::uint32_t>(*wide);
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string with_thousands(std::uint64_t value) {
  const std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace tass::util
