// Deterministic pseudo-random machinery for reproducible simulations.
//
// The census generator and churn model must produce bit-identical output for
// a given seed on every platform, so we implement both the generator
// (xoshiro256**, seeded via splitmix64) and every distribution we need
// ourselves instead of relying on implementation-defined <random>
// distributions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace tass::util {

/// splitmix64 step; used for seed expansion and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for deriving per-entity seeds
/// (e.g. per-prefix churn streams) from a master seed.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'0000'cafe'f00dULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform draw from [0, bound) via Lemire's method.
  /// bound == 0 is a precondition violation.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    TASS_EXPECTS(bound != 0);
    // 128-bit multiply rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform u32 in [lo, hi] inclusive.
  std::uint32_t uniform_u32(std::uint32_t lo, std::uint32_t hi) noexcept {
    TASS_EXPECTS(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<std::uint32_t>(bounded(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Log-normal via Box-Muller on deterministic uniforms.
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal (Box-Muller; one value per call, no caching so the
  /// stream is position-independent).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Poisson-distributed count. Uses inversion for small means and a
  /// normal approximation above 64 (adequate for simulation workloads).
  std::uint64_t poisson(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Draw k distinct values from [0, n) (k <= n). Uses Floyd's algorithm;
  /// result is sorted.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples an index in [0, weights.size()) proportionally to non-negative
/// weights. Precomputes the cumulative table once; O(log n) per draw.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const noexcept { return cumulative_.size(); }

  /// Total weight (normalisation constant).
  double total() const noexcept {
    return cumulative_.empty() ? 0.0 : cumulative_.back();
  }

  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> cumulative_;
};

}  // namespace tass::util
