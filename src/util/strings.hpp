// Small string utilities used by the text-format parsers (pfx2as,
// blocklists, CLI arguments). All functions operate on string_view and never
// allocate unless they return std::string/vector.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tass::util {

/// Splits on a single-character delimiter. Empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}); an empty input yields one empty field.
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Splits on any amount of ASCII whitespace; empty fields are discarded.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Strict base-10 unsigned parse of the full string; rejects empty input,
/// signs, leading '+', whitespace, and overflow.
std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;

/// As parse_u64 but range-checked to 32 bits.
std::optional<std::uint32_t> parse_u32(std::string_view text) noexcept;

/// Strict double parse of the full string.
std::optional<double> parse_double(std::string_view text) noexcept;

/// True if `text` begins with `prefix`.
constexpr bool starts_with(std::string_view text,
                           std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

/// Slurps a whole file as bytes-in-a-string (the text parsers operate
/// on string_view documents). Throws tass::Error("cannot open <what>
/// file: <path>") if unreadable — `what` names the format for the
/// message ("pfx2as", "hitlist", ...).
std::string read_text_file(const std::string& path, const char* what);

/// Formats a count with thousands separators ("1234567" -> "1,234,567").
std::string with_thousands(std::uint64_t value);

/// Formats a double with fixed precision (no locale surprises).
std::string fixed(double value, int digits);

}  // namespace tass::util
