#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace tass::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw Error(what + " " + path + ": " + std::strerror(errno));
}

// Attempts the copy-based hugepage mapping: an anonymous buffer on
// explicit 2 MiB pages (MAP_HUGETLB) or, failing that, a THP-advised
// anonymous buffer; the file is read into it once and the buffer is
// sealed read-only. Returns false — leaving `file` untouched — when no
// hugepage flavour can be obtained or the copy cannot complete, so the
// caller falls back to the plain shared mapping.
bool map_hugepage_copy(int fd, std::size_t size, void*& data_out,
                       std::size_t& map_size_out,
                       PageBacking& backing_out) {
  constexpr std::size_t kHugeSize = std::size_t{2} << 20;  // 2 MiB
  const std::size_t rounded = (size + kHugeSize - 1) & ~(kHugeSize - 1);
  void* data = MAP_FAILED;
  PageBacking backing = PageBacking::kNone;
#ifdef MAP_HUGETLB
  data = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (data != MAP_FAILED) backing = PageBacking::kHugeTlb;
#endif
#ifdef MADV_HUGEPAGE
  if (data == MAP_FAILED) {
    data = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (data != MAP_FAILED) {
      if (::madvise(data, rounded, MADV_HUGEPAGE) != 0) {
        ::munmap(data, rounded);
        return false;  // THP disabled system-wide; not worth the copy
      }
      backing = PageBacking::kTransparentHuge;
    }
  }
#endif
  if (data == MAP_FAILED) return false;

  // Fill the buffer from the file. A short read (racing truncation,
  // I/O error) abandons the hugepage path; the plain mapping will then
  // surface whatever state the file is really in.
  std::size_t done = 0;
  auto* dst = static_cast<char*>(data);
  while (done < size) {
    const ::ssize_t got =
        ::pread(fd, dst + done, size - done, static_cast<::off_t>(done));
    if (got <= 0) {
      ::munmap(data, rounded);
      return false;
    }
    done += static_cast<std::size_t>(got);
  }
  // Seal: from here the buffer behaves like the PROT_READ file mapping
  // — a stray write is a fault, never silent corruption.
  ::mprotect(data, rounded, PROT_READ);
  data_out = data;
  map_size_out = rounded;
  backing_out = backing;
  return true;
}

}  // namespace

std::string_view page_backing_name(PageBacking backing) noexcept {
  switch (backing) {
    case PageBacking::kNone:
      return "none";
    case PageBacking::kBase:
      return "base";
    case PageBacking::kTransparentHuge:
      return "thp";
    case PageBacking::kHugeTlb:
      return "hugetlb";
  }
  return "unknown";
}

MmapFile MmapFile::open(const std::string& path, const MapOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot stat", path);
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    if (options.huge_pages &&
        map_hugepage_copy(fd, file.size_, file.data_, file.map_size_,
                          file.backing_)) {
      ::close(fd);
      return file;
    }
    // MAP_SHARED so every process mapping this image shares one set of
    // physical pages; PROT_READ makes the view tamper-evident.
    // MAP_POPULATE pre-faults the page tables in one kernel pass — the
    // state-image loader reads every page immediately (checksum), and
    // thousands of individual soft faults would dominate its budget.
    int flags = MAP_SHARED;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void* data = ::mmap(nullptr, file.size_, PROT_READ, flags, fd, 0);
    if (data == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("cannot mmap", path);
    }
    file.data_ = data;
    file.map_size_ = file.size_;
    file.backing_ = PageBacking::kBase;
  }
  ::close(fd);  // the mapping keeps its own reference to the file
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, map_size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_size_(std::exchange(other.map_size_, 0)),
      backing_(std::exchange(other.backing_, PageBacking::kNone)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, map_size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_size_ = std::exchange(other.map_size_, 0);
    backing_ = std::exchange(other.backing_, PageBacking::kNone);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace tass::util
