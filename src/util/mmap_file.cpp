#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace tass::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw Error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

MmapFile MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot stat", path);
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    // MAP_SHARED so every process mapping this image shares one set of
    // physical pages; PROT_READ makes the view tamper-evident.
    // MAP_POPULATE pre-faults the page tables in one kernel pass — the
    // state-image loader reads every page immediately (checksum), and
    // thousands of individual soft faults would dominate its budget.
    int flags = MAP_SHARED;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void* data = ::mmap(nullptr, file.size_, PROT_READ, flags, fd, 0);
    if (data == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("cannot mmap", path);
    }
    file.data_ = data;
  }
  ::close(fd);  // the mapping keeps its own reference to the file
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace tass::util
