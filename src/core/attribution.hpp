// Attribution of raw scan results to prefix partitions.
//
// A real deployment does not get per-cell counts for free: a scan returns
// a bag of responsive addresses (ScanResult), which must be attributed to
// the l- or m-partition before density ranking (paper §3.1 step 1:
// "Count the number of responsive addresses c_i in each responsive
// prefix i"). This module provides that bridge, so the pipeline
//   scan -> attribute -> rank -> select
// works from address lists exactly as it does from census snapshots.
//
// Attribution is embarrassingly parallel: the address list is cut into
// deterministic shards, each shard fills its own per-cell count vector,
// and the vectors are summed — integer sums are associative, so the
// result is identical for any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/partition.hpp"
#include "core/ranking.hpp"

namespace tass::core {

/// Result of attributing addresses onto a partition.
struct Attribution {
  std::vector<std::uint32_t> counts;   // per partition cell
  std::uint64_t attributed = 0;        // addresses inside the partition
  std::uint64_t unattributed = 0;      // addresses outside (unrouted)
};

/// Parallelism knobs for attribute(); the defaults use the process-wide
/// pool once the workload is big enough to pay for the fan-out.
struct AttributionConfig {
  /// 1 = calling thread only; 0 = process-wide pool; N = dedicated pool.
  unsigned threads = 0;
  /// Minimum addresses per shard (shard boundaries depend only on the
  /// input size, so results are thread-count invariant).
  std::uint64_t min_addresses_per_shard = 1ULL << 15;
};

/// Counts responsive addresses per partition cell. Addresses outside the
/// partition (e.g. responses from space that was withdrawn after the scan
/// started) are tallied as unattributed rather than dropped silently.
Attribution attribute(std::span<const std::uint32_t> addresses,
                      const bgp::PrefixPartition& partition,
                      const AttributionConfig& config = {});

/// Convenience: attribute then rank (paper steps 1-3) in one call.
DensityRanking rank_scan_results(std::span<const std::uint32_t> addresses,
                                 const bgp::PrefixPartition& partition,
                                 PrefixMode mode);

}  // namespace tass::core
