// Prefix selection — steps 4-5 of the TASS algorithm (paper §3.1),
// parameterized over the address family.
//
// Given a density ranking, select the smallest k such that the cumulative
// host coverage exceeds the target phi; those k prefixes form the scope of
// every repeated scan until the next reseed. Optional refinements from the
// paper's discussion: a minimum-density cutoff (§3.4 "omitting prefixes
// with a low density") and an address budget. The same stopping rule
// drives IPv6 selections — phi is family-blind; budgets and space
// coverage are in family scan units (addresses for v4, /64s for v6).
#pragma once

#include <optional>

#include "core/ranking.hpp"
#include "net/family.hpp"

namespace tass::core {

struct SelectionParams {
  /// Target host coverage phi in (0, 1]. phi = 1 selects every responsive
  /// prefix (rho > 0).
  double phi = 1.0;
  /// Drop prefixes below this density even if phi is not yet reached.
  double min_density = 0.0;
  /// Stop once the selection would exceed this many scan units
  /// (addresses for v4, /64 subnets for v6).
  std::optional<std::uint64_t> max_addresses;
};

/// The outcome of a TASS selection at seed time.
template <class Family>
struct SelectionT {
  PrefixMode mode = PrefixMode::kLess;
  /// Partition cell indices of the selected prefixes, in ranking order.
  std::vector<std::uint32_t> indices;
  /// Selected prefixes, in ranking order (parallel to indices).
  std::vector<typename Family::Prefix> prefixes;

  std::uint64_t selected_addresses = 0;  // total units of the selection
  std::uint64_t covered_hosts = 0;       // hosts inside at seed time
  std::uint64_t total_hosts = 0;         // N at seed time
  std::uint64_t advertised_addresses = 0;

  std::size_t k() const noexcept { return indices.size(); }
  /// Achieved host coverage at seed time (>= phi unless cut short).
  double host_coverage() const noexcept {
    return total_hosts == 0 ? 0.0
                            : static_cast<double>(covered_hosts) /
                                  static_cast<double>(total_hosts);
  }
  /// Fraction of the announced space to be scanned per cycle — the
  /// quantity Table 1 reports (unit-free: both counts are family units).
  double space_coverage() const noexcept {
    return advertised_addresses == 0
               ? 0.0
               : static_cast<double>(selected_addresses) /
                     static_cast<double>(advertised_addresses);
  }
};

/// The family instantiations under their historical names.
using Selection = SelectionT<net::Ipv4Family>;
using Selection6 = SelectionT<net::Ipv6Family>;

/// Selects prefixes by descending density until the coverage target is
/// met (paper step 4: smallest k with cumulative phi_i exceeding phi).
template <class Family>
SelectionT<Family> select_by_density(const DensityRankingT<Family>& ranking,
                                     const SelectionParams& params);

/// As above, over a borrowed ranking view (e.g. served zero-copy out of
/// a TSIM state image) — selection never needs an owned copy.
template <class Family>
SelectionT<Family> select_by_density(
    const DensityRankingViewT<Family>& ranking,
    const SelectionParams& params);

/// Ablation orderings used by bench/ablation_ranking: identical stopping
/// rule, different sort keys.
enum class RankingOrder {
  kDensity,     // the paper's choice
  kHostCount,   // most hosts first, ignores prefix size
  kRandom,      // random order (seeded)
  kSpaceAscending,  // smallest prefixes first
};

template <class Family>
SelectionT<Family> select_with_order(const DensityRankingT<Family>& ranking,
                                     const SelectionParams& params,
                                     RankingOrder order, std::uint64_t seed);

/// How much a selection changes between two seeds — the operational
/// counterpart of the paper's §3.3 stability analysis: if the host
/// distribution over prefixes is stable, the selected prefix set should
/// be too (so whitelists, ACLs and measurement baselines stay valid).
struct SelectionChurn {
  std::size_t kept = 0;     // prefixes in both selections
  std::size_t added = 0;    // only in the newer selection
  std::size_t removed = 0;  // only in the older selection

  /// Jaccard similarity of the two prefix sets.
  double jaccard() const noexcept {
    const std::size_t unions = kept + added + removed;
    return unions == 0 ? 1.0
                       : static_cast<double>(kept) /
                             static_cast<double>(unions);
  }
};

/// Compares two selections' prefix sets (any modes; exact prefix match).
template <class Family>
SelectionChurn selection_churn(const SelectionT<Family>& older,
                               const SelectionT<Family>& newer);

}  // namespace tass::core
