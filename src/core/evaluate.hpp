// Longitudinal evaluation — the paper's §4 methodology.
//
// "We simulated TASS and an address-based hitlist approach using monthly
// snapshots of full IPv4 scans [...] Then we determined the fraction of
// hosts that TASS and the hitlist approach would have uncovered in each
// scan cycle compared to a periodic full scan." This module does exactly
// that over a CensusSeries: seed the strategy at month 0, replay it
// against every month, and account hitrate, scan volume and efficiency.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "census/series.hpp"
#include "core/strategies.hpp"
#include "scan/engine.hpp"

namespace tass::core {

/// Outcome of one monthly scan cycle.
struct CycleResult {
  int month_index = 0;
  std::string month;             // "09/15" style label
  std::uint64_t found_hosts = 0;
  std::uint64_t total_hosts = 0;   // what a full scan would find
  std::uint64_t scanned_addresses = 0;
  double packets = 0.0;

  /// The paper's hitrate: found / full-scan-found.
  double hitrate() const noexcept {
    return total_hosts == 0 ? 0.0
                            : static_cast<double>(found_hosts) /
                                  static_cast<double>(total_hosts);
  }
};

/// A strategy's full evaluation over a census series.
struct StrategyEvaluation {
  std::string strategy;
  std::vector<CycleResult> cycles;
  std::uint64_t advertised_addresses = 0;

  /// Fraction of the announced space scanned per cycle.
  double space_fraction() const noexcept;
  /// Mean hitrate over all cycles.
  double mean_hitrate() const noexcept;
  /// Scan efficiency relative to a periodic full scan over the whole
  /// series: (found/probed) / (full_found/full_probed). The paper's
  /// headline: TASS is 1.25-10x more efficient over six months.
  double efficiency_vs_full() const noexcept;
};

/// Parallelism knob for evaluate(): months are independent replays, so
/// the cycle loop fans out one shard per month and writes each
/// CycleResult into its month slot (deterministic for any thread count).
/// Strategy implementations must be const-thread-safe; all built-ins are.
struct EvaluationConfig {
  /// 1 = calling thread only; 0 = process-wide pool; N = dedicated pool.
  unsigned threads = 0;
};

/// Replays `strategy` against every month of the series. The packet
/// accounting uses the protocol's handshake cost model.
StrategyEvaluation evaluate(const Strategy& strategy,
                            const census::CensusSeries& series,
                            const EvaluationConfig& config = {});

/// Convenience: evaluates the paper's Figure 5/6 strategy set (full scan,
/// hitlist, TASS l/m at the given phi values) in one call.
struct PaperComparison {
  StrategyEvaluation full;
  StrategyEvaluation hitlist;
  std::vector<StrategyEvaluation> tass;  // one per (mode, phi) pair
};

PaperComparison evaluate_paper_strategies(const census::CensusSeries& series,
                                          std::span<const double> phis,
                                          const EvaluationConfig& config = {});

}  // namespace tass::core
