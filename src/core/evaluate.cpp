#include "core/evaluate.hpp"

#include "util/error.hpp"

namespace tass::core {

double StrategyEvaluation::space_fraction() const noexcept {
  if (cycles.empty() || advertised_addresses == 0) return 0.0;
  return static_cast<double>(cycles.front().scanned_addresses) /
         static_cast<double>(advertised_addresses);
}

double StrategyEvaluation::mean_hitrate() const noexcept {
  if (cycles.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleResult& cycle : cycles) sum += cycle.hitrate();
  return sum / static_cast<double>(cycles.size());
}

double StrategyEvaluation::efficiency_vs_full() const noexcept {
  std::uint64_t found = 0;
  std::uint64_t probed = 0;
  std::uint64_t full_found = 0;
  std::uint64_t full_probed = 0;
  for (const CycleResult& cycle : cycles) {
    found += cycle.found_hosts;
    probed += cycle.scanned_addresses;
    full_found += cycle.total_hosts;
    full_probed += advertised_addresses;
  }
  if (probed == 0 || full_found == 0 || full_probed == 0) return 0.0;
  const double ours = static_cast<double>(found) /
                      static_cast<double>(probed);
  const double full = static_cast<double>(full_found) /
                      static_cast<double>(full_probed);
  return full == 0.0 ? 0.0 : ours / full;
}

StrategyEvaluation evaluate(const Strategy& strategy,
                            const census::CensusSeries& series) {
  StrategyEvaluation evaluation;
  evaluation.strategy = strategy.name();
  evaluation.advertised_addresses =
      series.topology().advertised_addresses;
  const scan::CostModel cost =
      scan::CostModel::for_protocol(series.protocol());

  for (const census::Snapshot& truth : series.months()) {
    CycleResult cycle;
    cycle.month_index = truth.month_index();
    cycle.month = census::month_label(truth.month_index());
    cycle.found_hosts = strategy.found_hosts(truth);
    cycle.total_hosts = truth.total_hosts();
    cycle.scanned_addresses = strategy.scanned_addresses();
    cycle.packets = cost.packets(cycle.scanned_addresses, cycle.found_hosts);
    evaluation.cycles.push_back(std::move(cycle));
  }
  return evaluation;
}

PaperComparison evaluate_paper_strategies(const census::CensusSeries& series,
                                          std::span<const double> phis) {
  TASS_EXPECTS(series.month_count() >= 1);
  const census::Snapshot& seed = series.month(0);

  PaperComparison comparison;
  comparison.full = evaluate(FullScanStrategy(seed), series);
  comparison.hitlist = evaluate(HitlistStrategy(seed), series);
  for (const PrefixMode mode : {PrefixMode::kLess, PrefixMode::kMore}) {
    for (const double phi : phis) {
      SelectionParams params;
      params.phi = phi;
      const TassStrategy tass(seed, mode, params);
      comparison.tass.push_back(evaluate(tass, series));
    }
  }
  return comparison;
}

}  // namespace tass::core
