#include "core/evaluate.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tass::core {

double StrategyEvaluation::space_fraction() const noexcept {
  if (cycles.empty() || advertised_addresses == 0) return 0.0;
  return static_cast<double>(cycles.front().scanned_addresses) /
         static_cast<double>(advertised_addresses);
}

double StrategyEvaluation::mean_hitrate() const noexcept {
  if (cycles.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleResult& cycle : cycles) sum += cycle.hitrate();
  return sum / static_cast<double>(cycles.size());
}

double StrategyEvaluation::efficiency_vs_full() const noexcept {
  std::uint64_t found = 0;
  std::uint64_t probed = 0;
  std::uint64_t full_found = 0;
  std::uint64_t full_probed = 0;
  for (const CycleResult& cycle : cycles) {
    found += cycle.found_hosts;
    probed += cycle.scanned_addresses;
    full_found += cycle.total_hosts;
    full_probed += advertised_addresses;
  }
  if (probed == 0 || full_found == 0 || full_probed == 0) return 0.0;
  const double ours = static_cast<double>(found) /
                      static_cast<double>(probed);
  const double full = static_cast<double>(full_found) /
                      static_cast<double>(full_probed);
  return full == 0.0 ? 0.0 : ours / full;
}

StrategyEvaluation evaluate(const Strategy& strategy,
                            const census::CensusSeries& series,
                            const EvaluationConfig& config) {
  StrategyEvaluation evaluation;
  evaluation.strategy = strategy.name();
  evaluation.advertised_addresses =
      series.topology().advertised_addresses;
  const scan::CostModel cost =
      scan::CostModel::for_protocol(series.protocol());

  // Every month is an independent replay of the same (immutable) strategy
  // against that month's ground truth, so the longitudinal loop fans out
  // one shard per month; each shard fills its own slot.
  const auto months = series.months();
  evaluation.cycles.resize(months.size());
  const auto run_cycle = [&](std::size_t month) {
    const census::Snapshot& truth = months[month];
    CycleResult cycle;
    cycle.month_index = truth.month_index();
    cycle.month = census::month_label(truth.month_index());
    cycle.found_hosts = strategy.found_hosts(truth);
    cycle.total_hosts = truth.total_hosts();
    cycle.scanned_addresses = strategy.scanned_addresses();
    cycle.packets = cost.packets(cycle.scanned_addresses, cycle.found_hosts);
    evaluation.cycles[month] = std::move(cycle);
  };
  util::run_shards(config.threads, months.size(), run_cycle);
  return evaluation;
}

PaperComparison evaluate_paper_strategies(const census::CensusSeries& series,
                                          std::span<const double> phis,
                                          const EvaluationConfig& config) {
  TASS_EXPECTS(series.month_count() >= 1);
  const census::Snapshot& seed = series.month(0);

  PaperComparison comparison;
  comparison.full = evaluate(FullScanStrategy(seed), series, config);
  comparison.hitlist = evaluate(HitlistStrategy(seed), series, config);

  // The TASS grid is a set of independent (mode, phi) seedings; build and
  // evaluate each point in its own slot. Nested parallelism (the inner
  // per-month fan-out of evaluate()) is fine: the pool is reentrant.
  std::vector<std::pair<PrefixMode, double>> grid;
  for (const PrefixMode mode : {PrefixMode::kLess, PrefixMode::kMore}) {
    for (const double phi : phis) grid.emplace_back(mode, phi);
  }
  comparison.tass.resize(grid.size());
  // With a dedicated pool (threads = N > 1) the grid points already
  // occupy all N threads, so the inner per-month loops run inline rather
  // than each spawning another dedicated pool. The shared pool (0) is
  // reentrant and bounded, so nesting is fine there.
  EvaluationConfig inner = config;
  if (config.threads > 1) inner.threads = 1;
  util::run_shards(config.threads, grid.size(), [&](std::size_t point) {
    SelectionParams params;
    params.phi = grid[point].second;
    const TassStrategy tass(seed, grid[point].first, params);
    comparison.tass[point] = evaluate(tass, series, inner);
  });
  return comparison;
}

}  // namespace tass::core
