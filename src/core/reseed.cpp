#include "core/reseed.hpp"

#include <memory>

#include "util/error.hpp"

namespace tass::core {

double ReseedOutcome::mean_hitrate() const noexcept {
  if (cycles.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleResult& cycle : cycles) sum += cycle.hitrate();
  return sum / static_cast<double>(cycles.size());
}

double ReseedOutcome::traffic_vs_monthly_full(
    std::uint64_t advertised) const noexcept {
  if (cycles.empty() || advertised == 0) return 0.0;
  return static_cast<double>(total_probes) /
         (static_cast<double>(advertised) *
          static_cast<double>(cycles.size()));
}

ReseedOutcome evaluate_with_reseed(const census::CensusSeries& series,
                                   PrefixMode mode, SelectionParams params,
                                   ReseedPolicy policy) {
  TASS_EXPECTS(policy.interval_months >= 0);
  const std::uint64_t advertised =
      series.topology().advertised_addresses;
  const scan::CostModel cost =
      scan::CostModel::for_protocol(series.protocol());

  ReseedOutcome outcome;
  std::unique_ptr<TassStrategy> strategy;
  for (int month = 0; month < series.month_count(); ++month) {
    const census::Snapshot& truth = series.month(month);
    const bool reseed =
        strategy == nullptr ||
        (policy.interval_months > 0 &&
         month % policy.interval_months == 0);

    CycleResult cycle;
    cycle.month_index = month;
    cycle.month = census::month_label(month);
    cycle.total_hosts = truth.total_hosts();
    if (reseed) {
      // The seeding cycle IS a full scan: it observes everything and
      // produces the selection used by subsequent cycles.
      strategy = std::make_unique<TassStrategy>(truth, mode, params);
      cycle.found_hosts = truth.total_hosts();
      cycle.scanned_addresses = advertised;
      ++outcome.reseed_count;
    } else {
      cycle.found_hosts = strategy->found_hosts(truth);
      cycle.scanned_addresses = strategy->scanned_addresses();
    }
    cycle.packets = cost.packets(cycle.scanned_addresses, cycle.found_hosts);
    outcome.total_probes += cycle.scanned_addresses;
    outcome.cycles.push_back(std::move(cycle));
  }
  return outcome;
}

}  // namespace tass::core
