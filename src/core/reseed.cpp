#include "core/reseed.hpp"

#include <algorithm>
#include <memory>

#include "scan/scope.hpp"
#include "util/error.hpp"

namespace tass::core {

double ReseedOutcome::mean_hitrate() const noexcept {
  if (cycles.empty()) return 0.0;
  double sum = 0.0;
  for (const CycleResult& cycle : cycles) sum += cycle.hitrate();
  return sum / static_cast<double>(cycles.size());
}

double ReseedOutcome::traffic_vs_monthly_full(
    std::uint64_t advertised) const noexcept {
  if (cycles.empty() || advertised == 0) return 0.0;
  return static_cast<double>(total_probes) /
         (static_cast<double>(advertised) *
          static_cast<double>(cycles.size()));
}

ReseedOutcome evaluate_with_reseed(const census::CensusSeries& series,
                                   PrefixMode mode, SelectionParams params,
                                   ReseedPolicy policy) {
  TASS_EXPECTS(policy.interval_months >= 0);
  const std::uint64_t advertised =
      series.topology().advertised_addresses;
  const scan::CostModel cost =
      scan::CostModel::for_protocol(series.protocol());

  ReseedOutcome outcome;
  std::unique_ptr<TassStrategy> strategy;
  for (int month = 0; month < series.month_count(); ++month) {
    const census::Snapshot& truth = series.month(month);
    const bool reseed =
        strategy == nullptr ||
        (policy.interval_months > 0 &&
         month % policy.interval_months == 0);

    CycleResult cycle;
    cycle.month_index = month;
    cycle.month = census::month_label(month);
    cycle.total_hosts = truth.total_hosts();
    if (reseed) {
      // The seeding cycle IS a full scan: it observes everything and
      // produces the selection used by subsequent cycles.
      strategy = std::make_unique<TassStrategy>(truth, mode, params);
      cycle.found_hosts = truth.total_hosts();
      cycle.scanned_addresses = advertised;
      ++outcome.reseed_count;
    } else {
      cycle.found_hosts = strategy->found_hosts(truth);
      cycle.scanned_addresses = strategy->scanned_addresses();
    }
    cycle.packets = cost.packets(cycle.scanned_addresses, cycle.found_hosts);
    outcome.total_probes += cycle.scanned_addresses;
    outcome.cycles.push_back(std::move(cycle));
  }
  return outcome;
}

ChurnStepStats churn_step(DensityRanking& ranking,
                          std::vector<std::uint32_t>& counts,
                          const bgp::PrefixPartition& partition,
                          const bgp::PartitionApplyResult& delta,
                          const scan::ProbeOracle& oracle,
                          const scan::ScanEngine& engine,
                          std::span<const std::uint32_t> dirty_cells) {
  TASS_EXPECTS(counts.size() == delta.old_cell_count);
  delta.reindex(counts);

  // Rescan scope: the cells the delta created plus the host-churn-dirty
  // ones. The two sets are disjoint by contract; unique() is insurance.
  std::vector<std::uint32_t> rescan(delta.added_cells.begin(),
                                    delta.added_cells.end());
  rescan.insert(rescan.end(), dirty_cells.begin(), dirty_cells.end());
  std::sort(rescan.begin(), rescan.end());
  rescan.erase(std::unique(rescan.begin(), rescan.end()), rescan.end());

  ChurnStepStats stats;
  stats.rescanned_cells = rescan.size();
  if (!rescan.empty()) {
    const scan::ScanScope scope = scan::ScanScope::of_cells(partition, rescan);
    const scan::AttributedScanResult attributed =
        engine.run_attributed(scope, oracle, partition);
    stats.rescanned_addresses = attributed.result.stats.probes_sent;
    stats.rescan_hits = attributed.result.stats.responses;
    // The whole cell was in scope, so its count is exact and final.
    for (const std::uint32_t cell : rescan) {
      counts[cell] = static_cast<std::uint32_t>(attributed.cell_counts[cell]);
    }
  }
  rerank_cells(ranking, counts, partition, delta, dirty_cells);
  return stats;
}

}  // namespace tass::core
