#include "core/selection.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::core {

namespace {

template <class Family>
SelectionT<Family> select_from(
    PrefixMode mode, std::uint64_t total_hosts,
    std::uint64_t advertised_addresses,
    std::span<const RankedPrefixT<Family>> order,
    const SelectionParams& params) {
  TASS_EXPECTS(params.phi > 0.0 && params.phi <= 1.0);
  SelectionT<Family> selection;
  selection.mode = mode;
  selection.total_hosts = total_hosts;
  selection.advertised_addresses = advertised_addresses;

  // Integer threshold: smallest k with covered_hosts >= ceil(phi * N); for
  // phi = 1 this takes every responsive prefix, matching the paper's
  // "selects all prefixes with a non-zero density".
  const auto threshold = static_cast<std::uint64_t>(
      std::ceil(params.phi * static_cast<double>(total_hosts)));

  for (const RankedPrefixT<Family>& entry : order) {
    if (selection.covered_hosts >= threshold) break;
    if (entry.density < params.min_density) break;
    if (params.max_addresses &&
        (entry.size > *params.max_addresses ||
         selection.selected_addresses >
             *params.max_addresses - entry.size)) {
      break;
    }
    selection.indices.push_back(entry.index);
    selection.prefixes.push_back(entry.prefix);
    selection.selected_addresses =
        net::saturating_add(selection.selected_addresses, entry.size);
    selection.covered_hosts += entry.hosts;
  }
  return selection;
}

}  // namespace

template <class Family>
SelectionT<Family> select_by_density(const DensityRankingT<Family>& ranking,
                                     const SelectionParams& params) {
  return select_from<Family>(ranking.mode, ranking.total_hosts,
                             ranking.advertised_addresses,
                             std::span(ranking.ranked), params);
}

template <class Family>
SelectionT<Family> select_by_density(
    const DensityRankingViewT<Family>& ranking,
    const SelectionParams& params) {
  return select_from<Family>(ranking.mode, ranking.total_hosts,
                             ranking.advertised_addresses, ranking.ranked,
                             params);
}

template <class Family>
SelectionChurn selection_churn(const SelectionT<Family>& older,
                               const SelectionT<Family>& newer) {
  using Prefix = typename Family::Prefix;
  std::vector<Prefix> a(older.prefixes.begin(), older.prefixes.end());
  std::vector<Prefix> b(newer.prefixes.begin(), newer.prefixes.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  SelectionChurn churn;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++churn.removed;
      ++ia;
    } else if (*ib < *ia) {
      ++churn.added;
      ++ib;
    } else {
      ++churn.kept;
      ++ia;
      ++ib;
    }
  }
  churn.removed += static_cast<std::size_t>(a.end() - ia);
  churn.added += static_cast<std::size_t>(b.end() - ib);
  return churn;
}

template <class Family>
SelectionT<Family> select_with_order(const DensityRankingT<Family>& ranking,
                                     const SelectionParams& params,
                                     RankingOrder order, std::uint64_t seed) {
  using Ranked = RankedPrefixT<Family>;
  if (order == RankingOrder::kDensity) {
    return select_by_density(ranking, params);
  }
  std::vector<Ranked> reordered(ranking.ranked.begin(),
                                ranking.ranked.end());
  switch (order) {
    case RankingOrder::kHostCount:
      std::sort(reordered.begin(), reordered.end(),
                [](const Ranked& a, const Ranked& b) {
                  if (a.hosts != b.hosts) return a.hosts > b.hosts;
                  return a.index < b.index;
                });
      break;
    case RankingOrder::kSpaceAscending:
      std::sort(reordered.begin(), reordered.end(),
                [](const Ranked& a, const Ranked& b) {
                  if (a.size != b.size) return a.size < b.size;
                  return a.index < b.index;
                });
      break;
    case RankingOrder::kRandom: {
      util::Rng rng(seed);
      rng.shuffle(std::span<Ranked>(reordered));
      break;
    }
    case RankingOrder::kDensity:
      break;
  }
  return select_from<Family>(ranking.mode, ranking.total_hosts,
                             ranking.advertised_addresses,
                             std::span<const Ranked>(reordered), params);
}

#define TASS_INSTANTIATE_SELECTION(FAMILY)                                 \
  template SelectionT<FAMILY> select_by_density(                           \
      const DensityRankingT<FAMILY>&, const SelectionParams&);             \
  template SelectionT<FAMILY> select_by_density(                           \
      const DensityRankingViewT<FAMILY>&, const SelectionParams&);         \
  template SelectionChurn selection_churn(const SelectionT<FAMILY>&,       \
                                          const SelectionT<FAMILY>&);      \
  template SelectionT<FAMILY> select_with_order(                           \
      const DensityRankingT<FAMILY>&, const SelectionParams&,              \
      RankingOrder, std::uint64_t)

TASS_INSTANTIATE_SELECTION(net::Ipv4Family);
TASS_INSTANTIATE_SELECTION(net::Ipv6Family);
#undef TASS_INSTANTIATE_SELECTION

}  // namespace tass::core
