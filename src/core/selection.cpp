#include "core/selection.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::core {

namespace {

Selection select_from(PrefixMode mode, std::uint64_t total_hosts,
                      std::uint64_t advertised_addresses,
                      std::span<const RankedPrefix> order,
                      const SelectionParams& params) {
  TASS_EXPECTS(params.phi > 0.0 && params.phi <= 1.0);
  Selection selection;
  selection.mode = mode;
  selection.total_hosts = total_hosts;
  selection.advertised_addresses = advertised_addresses;

  // Integer threshold: smallest k with covered_hosts >= ceil(phi * N); for
  // phi = 1 this takes every responsive prefix, matching the paper's
  // "selects all prefixes with a non-zero density".
  const auto threshold = static_cast<std::uint64_t>(
      std::ceil(params.phi * static_cast<double>(total_hosts)));

  for (const RankedPrefix& entry : order) {
    if (selection.covered_hosts >= threshold) break;
    if (entry.density < params.min_density) break;
    if (params.max_addresses &&
        selection.selected_addresses + entry.size > *params.max_addresses) {
      break;
    }
    selection.indices.push_back(entry.index);
    selection.prefixes.push_back(entry.prefix);
    selection.selected_addresses += entry.size;
    selection.covered_hosts += entry.hosts;
  }
  return selection;
}

}  // namespace

Selection select_by_density(const DensityRanking& ranking,
                            const SelectionParams& params) {
  return select_from(ranking.mode, ranking.total_hosts,
                     ranking.advertised_addresses, ranking.ranked, params);
}

Selection select_by_density(const DensityRankingView& ranking,
                            const SelectionParams& params) {
  return select_from(ranking.mode, ranking.total_hosts,
                     ranking.advertised_addresses, ranking.ranked, params);
}

SelectionChurn selection_churn(const Selection& older,
                               const Selection& newer) {
  std::vector<net::Prefix> a(older.prefixes.begin(), older.prefixes.end());
  std::vector<net::Prefix> b(newer.prefixes.begin(), newer.prefixes.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  SelectionChurn churn;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++churn.removed;
      ++ia;
    } else if (*ib < *ia) {
      ++churn.added;
      ++ib;
    } else {
      ++churn.kept;
      ++ia;
      ++ib;
    }
  }
  churn.removed += static_cast<std::size_t>(a.end() - ia);
  churn.added += static_cast<std::size_t>(b.end() - ib);
  return churn;
}

Selection select_with_order(const DensityRanking& ranking,
                            const SelectionParams& params, RankingOrder order,
                            std::uint64_t seed) {
  if (order == RankingOrder::kDensity) {
    return select_by_density(ranking, params);
  }
  std::vector<RankedPrefix> reordered(ranking.ranked.begin(),
                                      ranking.ranked.end());
  switch (order) {
    case RankingOrder::kHostCount:
      std::sort(reordered.begin(), reordered.end(),
                [](const RankedPrefix& a, const RankedPrefix& b) {
                  if (a.hosts != b.hosts) return a.hosts > b.hosts;
                  return a.index < b.index;
                });
      break;
    case RankingOrder::kSpaceAscending:
      std::sort(reordered.begin(), reordered.end(),
                [](const RankedPrefix& a, const RankedPrefix& b) {
                  if (a.size != b.size) return a.size < b.size;
                  return a.index < b.index;
                });
      break;
    case RankingOrder::kRandom: {
      util::Rng rng(seed);
      rng.shuffle(std::span<RankedPrefix>(reordered));
      break;
    }
    case RankingOrder::kDensity:
      break;
  }
  return select_from(ranking.mode, ranking.total_hosts,
                     ranking.advertised_addresses, reordered, params);
}

}  // namespace tass::core
