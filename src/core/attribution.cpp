#include "core/attribution.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace tass::core {

namespace {

// Sequential kernel shared by the one-thread path and each shard: the
// partition's blocked locate_many + tally kernel.
void attribute_range(std::span<const std::uint32_t> addresses,
                     const bgp::PrefixPartition& partition,
                     Attribution& out) {
  partition.tally_cells(addresses, out.counts, out.attributed,
                        out.unattributed);
}

}  // namespace

Attribution attribute(std::span<const std::uint32_t> addresses,
                      const bgp::PrefixPartition& partition,
                      const AttributionConfig& config) {
  Attribution result;
  result.counts.assign(partition.size(), 0);

  // Each shard owns a dense per-cell count vector, and the merge costs
  // O(shards * cells); shard_count_for_slots caps the fan-out so the slot
  // arrays stay within a fixed memory budget however large the partition
  // is, keeping results thread-count invariant.
  const std::size_t shards = util::shard_count_for_slots(
      addresses.size(), config.min_addresses_per_shard, partition.size(),
      sizeof(std::uint32_t));
  if (config.threads == 1 || shards == 1) {
    attribute_range(addresses, partition, result);
    return result;
  }

  std::vector<Attribution> slots(shards);
  util::run_chunks(config.threads, 0, addresses.size(), shards,
                   [&](std::size_t shard, std::uint64_t lo,
                       std::uint64_t hi) {
                     // First-touch NUMA placement: allocate the shard's
                     // count vector on the worker that fills it.
                     slots[shard].counts.assign(partition.size(), 0);
                     attribute_range(
                         addresses.subspan(static_cast<std::size_t>(lo),
                                           static_cast<std::size_t>(hi - lo)),
                         partition, slots[shard]);
                   });

  for (const Attribution& slot : slots) {
    result.attributed += slot.attributed;
    result.unattributed += slot.unattributed;
    if (slot.counts.empty()) continue;  // shard never ran (empty chunk)
    for (std::size_t i = 0; i < result.counts.size(); ++i) {
      result.counts[i] += slot.counts[i];
    }
  }
  return result;
}

DensityRanking rank_scan_results(std::span<const std::uint32_t> addresses,
                                 const bgp::PrefixPartition& partition,
                                 PrefixMode mode) {
  const Attribution attribution = attribute(addresses, partition);
  return rank_by_density(attribution.counts, partition, mode);
}

}  // namespace tass::core
