#include "core/attribution.hpp"

namespace tass::core {

Attribution attribute(std::span<const std::uint32_t> addresses,
                      const bgp::PrefixPartition& partition) {
  Attribution result;
  result.counts.assign(partition.size(), 0);
  for (const std::uint32_t address : addresses) {
    if (const auto cell = partition.locate(net::Ipv4Address(address))) {
      ++result.counts[*cell];
      ++result.attributed;
    } else {
      ++result.unattributed;
    }
  }
  return result;
}

DensityRanking rank_scan_results(std::span<const std::uint32_t> addresses,
                                 const bgp::PrefixPartition& partition,
                                 PrefixMode mode) {
  const Attribution attribution = attribute(addresses, partition);
  return rank_by_density(attribution.counts, partition, mode);
}

}  // namespace tass::core
