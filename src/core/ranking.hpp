// Density ranking — steps 1-3 of the TASS algorithm (paper §3.1),
// parameterized over the address family.
//
// Given a seed scan (a census snapshot standing in for the t0 full scan,
// or — for IPv6, where no full scan exists — a hitlist attribution),
// count responsive addresses c_i per prefix, compute densities rho_i and
// relative host coverages phi_i = c_i / N, and sort prefixes by
// descending density. Both prefix granularities are supported:
// l-prefixes (kLess) and deaggregated m-prefixes (kMore).
//
// Density is the family's rho: hosts per address for IPv4 (the paper's
// c_i / 2^(32 - len)), hosts per /64 subnet for IPv6 (the allocation
// unit real v6 scanning targets; see net::Ipv6Family::density). The
// `size` field of a ranked entry is in the same family units.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bgp/partition.hpp"
#include "census/snapshot.hpp"
#include "net/family.hpp"
#include "net/prefix.hpp"

namespace tass::core {

/// Which prefix granularity to rank over (Table 1's "less" / "more").
enum class PrefixMode : std::uint8_t { kLess = 0, kMore = 1 };

std::string_view prefix_mode_name(PrefixMode mode) noexcept;

/// One responsive prefix in the ranking.
template <class Family>
struct RankedPrefixT {
  std::uint32_t index = 0;   // cell index within the chosen partition
  typename Family::Prefix prefix;
  std::uint64_t size = 0;    // scan units in the prefix (family units)
  std::uint64_t hosts = 0;   // responsive addresses (c_i)
  double density = 0.0;      // rho_i (family units)
  double host_share = 0.0;   // phi_i
};

/// The canonical ranking order: density descending, ties broken towards
/// more hosts, then by ascending prefix — a pure function of the scored
/// data, so delta-patched and from-scratch rankings sort identically.
/// Exposed so read-only consumers (the state-image validator, tooling)
/// can check an order without re-sorting.
template <class Family>
bool ranked_before(const RankedPrefixT<Family>& a,
                   const RankedPrefixT<Family>& b) noexcept;

/// The full density ranking of a seed scan. Zero-density prefixes are
/// excluded (the paper plots and selects over rho > 0 only).
template <class Family>
struct DensityRankingT {
  PrefixMode mode = PrefixMode::kLess;
  std::vector<RankedPrefixT<Family>> ranked;  // density descending
  std::uint64_t total_hosts = 0;              // N
  std::uint64_t advertised_addresses = 0;     // announced space (units)

  /// Space covered by all responsive prefixes (the phi = 1 cost), in
  /// family units; saturating for v6.
  std::uint64_t responsive_addresses() const noexcept;
};

/// Read-only view of a density ranking whose entries live in borrowed
/// storage — the zero-copy mode the TSIM state image (state/image.hpp)
/// uses to serve a ranking straight out of a mmap'ed file. The borrowed
/// storage must outlive the view. Selection (core::select_by_density)
/// consumes the owned form; materialize() copies the view out when a
/// mutable ranking is needed (e.g. to keep rerank_cells-ing it).
template <class Family>
struct DensityRankingViewT {
  PrefixMode mode = PrefixMode::kLess;
  std::span<const RankedPrefixT<Family>> ranked;  // density descending
  std::uint64_t total_hosts = 0;                  // N
  std::uint64_t advertised_addresses = 0;         // announced space

  /// Space covered by all responsive prefixes (the phi = 1 cost).
  std::uint64_t responsive_addresses() const noexcept;

  /// An owned, independent copy (bit-identical fields).
  DensityRankingT<Family> materialize() const;
};

/// The IPv4 instantiations under their historical names.
using RankedPrefix = RankedPrefixT<net::Ipv4Family>;
using DensityRanking = DensityRankingT<net::Ipv4Family>;
using DensityRankingView = DensityRankingViewT<net::Ipv4Family>;

/// The IPv6 instantiations: densities are hosts per /64 subnet — the v6
/// analogue of the paper's rho — and rankings are seeded from hitlist
/// attributions over a bgp::PrefixPartition6 (there is no v6 full scan
/// to seed from).
using RankedPrefix6 = RankedPrefixT<net::Ipv6Family>;
using DensityRanking6 = DensityRankingT<net::Ipv6Family>;
using DensityRankingView6 = DensityRankingViewT<net::Ipv6Family>;

/// Builds the ranking from a ground-truth snapshot (which stands in for
/// the t0 full-scan result). IPv4 only — the census model is a v4
/// simulation; v6 rankings are seeded from hitlist attributions via the
/// counts overload below.
DensityRanking rank_by_density(const census::Snapshot& seed, PrefixMode mode);

/// Builds the ranking from an explicit per-cell host count vector over a
/// partition (e.g. produced by a real ScanResult attribution, or a v6
/// hitlist attribution).
template <class Family>
DensityRankingT<Family> rank_by_density(
    std::span<const std::uint32_t> counts,
    const bgp::BasicPrefixPartition<Family>& partition, PrefixMode mode);

/// Incrementally patches `ranking` after `partition` absorbed a delta:
/// entries of removed/re-assigned cells are dropped, the added cells (and
/// any `dirty_cells` whose counts changed, e.g. from host churn) are
/// re-scored from `counts`, totals and host shares are refreshed, and the
/// few new entries are merged into the otherwise still-sorted order.
/// Cost: O(changed cells · log + ranked) versus the full path's
/// O(cells + ranked · log ranked) re-sort — no untouched cell is visited.
///
/// Equivalence contract: bit-identical (every field, float bits included)
/// to rank_by_density(counts, partition, ranking.mode), provided `counts`
/// for cells outside the invalidation set still hold the values the
/// ranking was built from. `counts` must already be in post-delta
/// indexing (PartitionApplyResult::reindex does that), `dirty_cells` must
/// be duplicate-free, live, and disjoint from the delta's added cells.
template <class Family>
void rerank_cells(DensityRankingT<Family>& ranking,
                  std::span<const std::uint32_t> counts,
                  const bgp::BasicPrefixPartition<Family>& partition,
                  const bgp::PartitionApplyResultT<Family>& delta,
                  std::span<const std::uint32_t> dirty_cells = {});

/// One point of the Figure 4 curves.
struct RankCurvePoint {
  std::size_t rank = 0;              // 1-based prefix rank
  double density = 0.0;              // of the prefix at this rank
  double cumulative_hosts = 0.0;     // host coverage up to this rank
  double cumulative_space = 0.0;     // address space coverage up to rank
};

/// Samples the (density, cumulative host coverage, cumulative space
/// coverage) curves at up to `max_points` evenly spaced ranks (always
/// includes the final rank).
template <class Family>
std::vector<RankCurvePoint> rank_curve(const DensityRankingT<Family>& ranking,
                                       std::size_t max_points);

/// Histogram of responsive hosts by prefix length (Figure 3); index =
/// prefix length 0..32. IPv4 census snapshots only.
std::array<std::uint64_t, 33> hosts_by_prefix_length(
    const census::Snapshot& snapshot, PrefixMode mode);

}  // namespace tass::core
