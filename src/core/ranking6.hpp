// IPv6 aliases for the family-generic density ranking (see ranking.hpp).
//
// Densities are hosts per /64 subnet — the v6 analogue of the paper's
// rho — and rankings are seeded from hitlist attributions over a
// bgp::PrefixPartition6 (there is no v6 full scan to seed from).
#pragma once

#include "bgp/partition6.hpp"
#include "core/ranking.hpp"

namespace tass::core {

using RankedPrefix6 = RankedPrefixT<net::Ipv6Family>;
using DensityRanking6 = DensityRankingT<net::Ipv6Family>;
using DensityRankingView6 = DensityRankingViewT<net::Ipv6Family>;

}  // namespace tass::core
