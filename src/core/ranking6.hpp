// DEPRECATED forwarding shim: the IPv6 ranking aliases now live in
// core/ranking.hpp (the family-generic primary). Include that instead.
#pragma once

#include "core/ranking.hpp"  // IWYU pragma: export
