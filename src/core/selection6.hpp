// IPv6 alias for the family-generic TASS selection (see selection.hpp).
#pragma once

#include "core/ranking6.hpp"
#include "core/selection.hpp"

namespace tass::core {

using Selection6 = SelectionT<net::Ipv6Family>;

}  // namespace tass::core
