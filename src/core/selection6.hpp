// DEPRECATED forwarding shim: the IPv6 selection alias now lives in
// core/selection.hpp (the family-generic primary). Include that instead.
#pragma once

#include "core/selection.hpp"  // IWYU pragma: export
