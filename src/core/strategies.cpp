#include "core/strategies.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::core {

namespace {

// Counts how many values the two sorted vectors share.
std::uint64_t count_intersection(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  std::uint64_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

// Implicit index of the /24 blocks overlapping the announced space; allows
// uniform sampling without materialising ~11M block ids.
class BlockIndex {
 public:
  explicit BlockIndex(const net::IntervalSet& space) {
    std::uint64_t running = 0;
    for (const net::Interval& interval : space.intervals()) {
      const std::uint32_t first = interval.first.value() >> 8;
      const std::uint32_t last = interval.last.value() >> 8;
      // Skip a leading block already covered by the previous interval.
      const std::uint32_t begin =
          (!spans_.empty() && spans_.back().second >= first)
              ? spans_.back().second + 1
              : first;
      if (begin > last) continue;
      spans_.emplace_back(begin, last);
      running += last - begin + 1;
      cumulative_.push_back(running);
    }
  }

  std::uint64_t total_blocks() const noexcept {
    return cumulative_.empty() ? 0 : cumulative_.back();
  }

  std::uint32_t block_at(std::uint64_t index) const {
    TASS_EXPECTS(index < total_blocks());
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), index);
    const auto span_index =
        static_cast<std::size_t>(it - cumulative_.begin());
    const std::uint64_t before =
        span_index == 0 ? 0 : cumulative_[span_index - 1];
    return spans_[span_index].first +
           static_cast<std::uint32_t>(index - before);
  }

 private:
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans_;
  std::vector<std::uint64_t> cumulative_;
};

}  // namespace

FullScanStrategy::FullScanStrategy(const census::Snapshot& seed)
    : advertised_(seed.topology().advertised_addresses) {}

std::uint64_t FullScanStrategy::found_hosts(
    const census::Snapshot& truth) const {
  return truth.total_hosts();
}

HitlistStrategy::HitlistStrategy(const census::Snapshot& seed)
    : hitlist_(seed.addresses()) {}

std::uint64_t HitlistStrategy::found_hosts(
    const census::Snapshot& truth) const {
  // A host is found iff one of the hitlist addresses is responsive now.
  return count_intersection(hitlist_, truth.addresses());
}

TassStrategy::TassStrategy(const census::Snapshot& seed, PrefixMode mode,
                           SelectionParams params)
    : mode_(mode), params_(params) {
  const DensityRanking ranking = rank_by_density(seed, mode);
  selection_ = select_by_density(ranking, params_);
  const census::Topology& topo = seed.topology();
  const std::size_t partition_size = mode == PrefixMode::kMore
                                         ? topo.m_partition.size()
                                         : topo.l_partition.size();
  selected_.assign(partition_size, false);
  for (const std::uint32_t index : selection_.indices) {
    selected_[index] = true;
  }
}

std::string TassStrategy::name() const {
  char phi[16];
  std::snprintf(phi, sizeof(phi), "%.2f", params_.phi);
  return std::string("tass-") + std::string(prefix_mode_name(mode_)) +
         "(phi=" + phi + ")";
}

std::uint64_t TassStrategy::found_hosts(const census::Snapshot& truth) const {
  const auto counts = mode_ == PrefixMode::kMore ? truth.counts_per_cell()
                                                 : truth.counts_per_l();
  TASS_EXPECTS(counts.size() == selected_.size());
  std::uint64_t found = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (selected_[i]) found += counts[i];
  }
  return found;
}

RandomSampleStrategy::RandomSampleStrategy(const census::Snapshot& seed,
                                           const RandomSampleParams& params) {
  TASS_EXPECTS(params.block_fraction > 0.0 && params.block_fraction <= 1.0);
  const census::Topology& topo = seed.topology();
  const BlockIndex index(topo.l_partition.to_interval_set());

  // Hosts per responsive /24 block at t0.
  std::unordered_map<std::uint32_t, std::uint32_t> responsive;
  seed.for_each_address(
      [&](net::Ipv4Address addr) { ++responsive[addr.value() >> 8]; });

  const std::uint64_t total_blocks = index.total_blocks();
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params.block_fraction *
                                    static_cast<double>(total_blocks)));
  const auto random_quota = static_cast<std::uint64_t>(
      params.random_share * static_cast<double>(target));
  const auto responsive_quota = static_cast<std::uint64_t>(
      params.responsive_share * static_cast<double>(target));

  util::Rng rng(params.seed);
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(target * 2);

  // 50%: uniformly random blocks of the announced space.
  while (chosen.size() < std::min(random_quota, total_blocks)) {
    chosen.insert(index.block_at(rng.bounded(total_blocks)));
  }

  // 25%: blocks responsive at t0 (random subset).
  std::vector<std::uint32_t> responsive_blocks;
  responsive_blocks.reserve(responsive.size());
  for (const auto& [block, hosts] : responsive) {
    responsive_blocks.push_back(block);
  }
  std::sort(responsive_blocks.begin(), responsive_blocks.end());
  rng.shuffle(std::span<std::uint32_t>(responsive_blocks));
  {
    std::uint64_t picked = 0;
    for (const std::uint32_t block : responsive_blocks) {
      if (picked >= responsive_quota) break;
      if (chosen.insert(block).second) ++picked;
    }
  }

  // 25% ("other policies"): the densest responsive blocks at t0.
  {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> by_density;
    by_density.reserve(responsive.size());
    for (const auto& [block, hosts] : responsive) {
      by_density.emplace_back(hosts, block);
    }
    std::sort(by_density.rbegin(), by_density.rend());
    for (const auto& [hosts, block] : by_density) {
      if (chosen.size() >= target) break;
      chosen.insert(block);
    }
  }

  blocks_.assign(chosen.begin(), chosen.end());
  std::sort(blocks_.begin(), blocks_.end());
}

std::uint64_t RandomSampleStrategy::found_hosts(
    const census::Snapshot& truth) const {
  std::uint64_t found = 0;
  truth.for_each_address([&](net::Ipv4Address addr) {
    if (std::binary_search(blocks_.begin(), blocks_.end(),
                           addr.value() >> 8)) {
      ++found;
    }
  });
  return found;
}

}  // namespace tass::core
