#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::core {

double PopulationEstimate::estimated_hosts() const noexcept {
  return static_cast<double>(observed_hosts) / coverage;
}

double PopulationEstimate::estimated_marked() const noexcept {
  return static_cast<double>(observed_marked) / coverage;
}

double PopulationEstimate::marked_share() const noexcept {
  return observed_hosts == 0 ? 0.0
                             : static_cast<double>(observed_marked) /
                                   static_cast<double>(observed_hosts);
}

double PopulationEstimate::share_stderr() const noexcept {
  if (observed_hosts == 0) return 0.0;
  const double p = marked_share();
  return std::sqrt(p * (1.0 - p) /
                   static_cast<double>(observed_hosts));
}

double PopulationEstimate::marked_low() const noexcept {
  const double share = std::max(0.0, marked_share() - 1.96 * share_stderr());
  return share * estimated_hosts();
}

double PopulationEstimate::marked_high() const noexcept {
  const double share = std::min(1.0, marked_share() + 1.96 * share_stderr());
  return share * estimated_hosts();
}

PopulationEstimate estimate_population(std::uint64_t observed_hosts,
                                       std::uint64_t observed_marked,
                                       double coverage) {
  TASS_EXPECTS(coverage > 0.0 && coverage <= 1.0);
  TASS_EXPECTS(observed_marked <= observed_hosts);
  PopulationEstimate estimate;
  estimate.observed_hosts = observed_hosts;
  estimate.observed_marked = observed_marked;
  estimate.coverage = coverage;
  return estimate;
}

std::uint64_t MarkedCensus::marked_in(const Selection& selection) const {
  TASS_EXPECTS(selection.mode == PrefixMode::kMore);
  std::uint64_t marked = 0;
  for (const std::uint32_t cell : selection.indices) {
    TASS_EXPECTS(cell < marked_per_cell.size());
    marked += marked_per_cell[cell];
  }
  return marked;
}

MarkedCensus mark_hosts(const census::Snapshot& snapshot, double probability,
                        MarkingBias bias, std::uint64_t seed) {
  TASS_EXPECTS(probability >= 0.0 && probability <= 1.0);
  const census::Topology& topo = snapshot.topology();
  const auto counts = snapshot.counts_per_cell();

  // For the sparse-biased mode, scale the marking probability by the
  // cell's density rank: the sparsest occupied third gets 3x the base
  // rate, the densest third 1/3 of it, renormalised to keep the overall
  // marked share close to `probability`.
  std::vector<double> cell_probability(counts.size(), probability);
  if (bias == MarkingBias::kSparseBiased) {
    std::vector<std::pair<double, std::uint32_t>> by_density;
    std::uint64_t total_hosts = 0;
    for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
      if (counts[cell] == 0) continue;
      by_density.emplace_back(
          static_cast<double>(counts[cell]) /
              static_cast<double>(topo.m_partition.prefix(cell).size()),
          cell);
      total_hosts += counts[cell];
    }
    std::sort(by_density.begin(), by_density.end());
    // Assign multipliers by tercile of hosts, then renormalise.
    double weighted = 0.0;
    std::vector<double> multiplier(counts.size(), 1.0);
    std::uint64_t seen = 0;
    for (const auto& [density, cell] : by_density) {
      const double position =
          static_cast<double>(seen) / static_cast<double>(total_hosts);
      multiplier[cell] = position < 1.0 / 3 ? 3.0
                         : position < 2.0 / 3 ? 1.0
                                              : 1.0 / 3;
      weighted += multiplier[cell] * static_cast<double>(counts[cell]);
      seen += counts[cell];
    }
    const double norm =
        weighted == 0.0 ? 1.0 : static_cast<double>(total_hosts) / weighted;
    for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
      cell_probability[cell] =
          std::min(1.0, probability * multiplier[cell] * norm);
    }
  }

  MarkedCensus census;
  census.marked_per_cell.assign(counts.size(), 0);
  util::Rng rng(util::mix64(seed, 0x6d61726bULL));  // "mark"
  for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
    const double p = cell_probability[cell];
    for (std::uint32_t host = 0; host < counts[cell]; ++host) {
      if (rng.chance(p)) {
        ++census.marked_per_cell[cell];
        ++census.total_marked;
      }
    }
  }
  return census;
}

}  // namespace tass::core
