#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <unordered_set>

#include "net/interval.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::core {

double PopulationEstimate::estimated_hosts() const noexcept {
  return static_cast<double>(observed_hosts) / coverage;
}

double PopulationEstimate::estimated_marked() const noexcept {
  return static_cast<double>(observed_marked) / coverage;
}

double PopulationEstimate::marked_share() const noexcept {
  return observed_hosts == 0 ? 0.0
                             : static_cast<double>(observed_marked) /
                                   static_cast<double>(observed_hosts);
}

double PopulationEstimate::share_stderr() const noexcept {
  if (observed_hosts == 0) return 0.0;
  const double p = marked_share();
  return std::sqrt(p * (1.0 - p) /
                   static_cast<double>(observed_hosts));
}

double PopulationEstimate::marked_low() const noexcept {
  const double share = std::max(0.0, marked_share() - 1.96 * share_stderr());
  return share * estimated_hosts();
}

double PopulationEstimate::marked_high() const noexcept {
  const double share = std::min(1.0, marked_share() + 1.96 * share_stderr());
  return share * estimated_hosts();
}

PopulationEstimate estimate_population(std::uint64_t observed_hosts,
                                       std::uint64_t observed_marked,
                                       double coverage) {
  TASS_EXPECTS(coverage > 0.0 && coverage <= 1.0);
  TASS_EXPECTS(observed_marked <= observed_hosts);
  PopulationEstimate estimate;
  estimate.observed_hosts = observed_hosts;
  estimate.observed_marked = observed_marked;
  estimate.coverage = coverage;
  return estimate;
}

std::uint64_t MarkedCensus::marked_in(const Selection& selection) const {
  TASS_EXPECTS(selection.mode == PrefixMode::kMore);
  std::uint64_t marked = 0;
  for (const std::uint32_t cell : selection.indices) {
    TASS_EXPECTS(cell < marked_per_cell.size());
    marked += marked_per_cell[cell];
  }
  return marked;
}

MarkedCensus mark_hosts(const census::Snapshot& snapshot, double probability,
                        MarkingBias bias, std::uint64_t seed) {
  TASS_EXPECTS(probability >= 0.0 && probability <= 1.0);
  const census::Topology& topo = snapshot.topology();
  const auto counts = snapshot.counts_per_cell();

  // For the sparse-biased mode, scale the marking probability by the
  // cell's density rank: the sparsest occupied third gets 3x the base
  // rate, the densest third 1/3 of it, renormalised to keep the overall
  // marked share close to `probability`.
  std::vector<double> cell_probability(counts.size(), probability);
  if (bias == MarkingBias::kSparseBiased) {
    std::vector<std::pair<double, std::uint32_t>> by_density;
    std::uint64_t total_hosts = 0;
    for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
      if (counts[cell] == 0) continue;
      by_density.emplace_back(
          static_cast<double>(counts[cell]) /
              static_cast<double>(topo.m_partition.prefix(cell).size()),
          cell);
      total_hosts += counts[cell];
    }
    std::sort(by_density.begin(), by_density.end());
    // Assign multipliers by tercile of hosts, then renormalise.
    double weighted = 0.0;
    std::vector<double> multiplier(counts.size(), 1.0);
    std::uint64_t seen = 0;
    for (const auto& [density, cell] : by_density) {
      const double position =
          static_cast<double>(seen) / static_cast<double>(total_hosts);
      multiplier[cell] = position < 1.0 / 3 ? 3.0
                         : position < 2.0 / 3 ? 1.0
                                              : 1.0 / 3;
      weighted += multiplier[cell] * static_cast<double>(counts[cell]);
      seen += counts[cell];
    }
    const double norm =
        weighted == 0.0 ? 1.0 : static_cast<double>(total_hosts) / weighted;
    for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
      cell_probability[cell] =
          std::min(1.0, probability * multiplier[cell] * norm);
    }
  }

  MarkedCensus census;
  census.marked_per_cell.assign(counts.size(), 0);
  util::Rng rng(util::mix64(seed, 0x6d61726bULL));  // "mark"
  std::vector<std::uint32_t> merged;
  for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
    const double p = cell_probability[cell];
    // Walk the cell's hosts in ascending address order (stable and
    // volatile offsets merged) so the marked address list comes out
    // globally ascending; the rng.chance() call sequence — one per host
    // in cell order — is unchanged from before addresses were recorded.
    const census::CellPopulation& population = snapshot.cell(cell);
    merged.clear();
    merged.reserve(population.size());
    std::merge(population.stable.begin(), population.stable.end(),
               population.volatile_hosts.begin(),
               population.volatile_hosts.end(), std::back_inserter(merged));
    const std::uint32_t base =
        topo.m_partition.prefix(cell).network().value();
    TASS_EXPECTS(merged.size() == counts[cell]);
    for (const std::uint32_t offset : merged) {
      if (rng.chance(p)) {
        ++census.marked_per_cell[cell];
        ++census.total_marked;
        census.addresses.push_back(base + offset);
      }
    }
  }
  return census;
}

double normal_quantile(double p) {
  TASS_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's rational approximation: two tail regions and a central
  // region, each a ratio of degree-5 polynomials.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

namespace {

// Scale-up of one count (hits or marked hits) in one cell; returns the
// point estimate and accumulates the (unclamped) variance for the total.
double cell_scale_up(std::uint64_t universe, std::uint64_t draws,
                     std::uint64_t count, double z, double& variance,
                     double& low, double& high) {
  const double n_cap = static_cast<double>(universe);
  if (draws == 0) {
    // Nothing was drawn: the cell contributes total uncertainty.
    variance = 0.0;
    low = 0.0;
    high = n_cap;
    return 0.0;
  }
  const double n = static_cast<double>(draws);
  const double estimated =
      n_cap * static_cast<double>(count) / n;
  // Smoothed share keeps zero-count cells from claiming zero variance;
  // the finite-population correction credits draws that exhausted the
  // frame.
  const double share = (static_cast<double>(count) + 0.5) / (n + 1.0);
  const double fpc = std::max(0.0, 1.0 - n / n_cap);
  variance = n_cap * n_cap * share * (1.0 - share) / n * fpc;
  const double half = z * std::sqrt(variance);
  low = std::clamp(estimated - half, 0.0, n_cap);
  high = std::clamp(estimated + half, 0.0, n_cap);
  return estimated;
}

}  // namespace

template <class Family>
SampleEstimate estimate_from_sample(const scan::SampleResult& sample,
                                    const DensityRankingT<Family>& ranking,
                                    double confidence) {
  TASS_EXPECTS(confidence > 0.0 && confidence < 1.0);
  std::unordered_set<std::uint32_t> ranked_cells;
  ranked_cells.reserve(ranking.ranked.size());
  for (const auto& entry : ranking.ranked) ranked_cells.insert(entry.index);

  SampleEstimate estimate;
  estimate.confidence = confidence;
  estimate.probes_sent = sample.probes_sent;
  estimate.frame_units = sample.frame_units;
  const double z = normal_quantile(0.5 * (1.0 + confidence));

  double hosts_variance = 0.0;
  double marked_variance = 0.0;
  estimate.cells.reserve(sample.cells.size());
  for (const scan::SampleCellResult& row : sample.cells) {
    TASS_EXPECTS(ranked_cells.contains(row.cell));
    TASS_EXPECTS(row.hits <= row.draws);
    TASS_EXPECTS(row.marked_hits <= row.hits);
    CellEstimate cell;
    cell.cell = row.cell;
    cell.universe = row.universe;
    cell.draws = row.draws;
    cell.hits = row.hits;
    double variance = 0.0;
    cell.estimated = cell_scale_up(row.universe, row.draws, row.hits, z,
                                   variance, cell.low, cell.high);
    estimate.estimated_hosts += cell.estimated;
    hosts_variance += variance;
    double cell_marked_variance = 0.0;
    double marked_cell_low = 0.0;
    double marked_cell_high = 0.0;
    estimate.estimated_marked +=
        cell_scale_up(row.universe, row.draws, row.marked_hits, z,
                      cell_marked_variance, marked_cell_low,
                      marked_cell_high);
    marked_variance += cell_marked_variance;
    estimate.cells.push_back(cell);
  }
  const double frame = static_cast<double>(estimate.frame_units);
  const double hosts_half = z * std::sqrt(hosts_variance);
  estimate.hosts_low =
      std::clamp(estimate.estimated_hosts - hosts_half, 0.0, frame);
  estimate.hosts_high =
      std::clamp(estimate.estimated_hosts + hosts_half, 0.0, frame);
  const double marked_half = z * std::sqrt(marked_variance);
  estimate.marked_low =
      std::clamp(estimate.estimated_marked - marked_half, 0.0, frame);
  estimate.marked_high =
      std::clamp(estimate.estimated_marked + marked_half, 0.0, frame);
  return estimate;
}

template SampleEstimate estimate_from_sample(
    const scan::SampleResult&, const DensityRankingT<net::Ipv4Family>&,
    double);
template SampleEstimate estimate_from_sample(
    const scan::SampleResult&, const DensityRankingT<net::Ipv6Family>&,
    double);

std::vector<EstimateCurvePoint> estimate_curve(
    const DensityRanking& ranking, const census::SnapshotIndex& oracle,
    std::span<const std::uint64_t> budgets, scan::SampleParams params,
    double confidence) {
  std::vector<EstimateCurvePoint> curve;
  curve.reserve(budgets.size());
  for (const std::uint64_t budget : budgets) {
    params.budget = budget;
    const auto design = scan::plan_sample(ranking, params);
    const scan::SampledScope scope(design);
    const auto result = scope.probe(
        [&](net::Ipv4Address addr) { return oracle.contains(addr); });
    const auto estimate = estimate_from_sample(result, ranking, confidence);

    EstimateCurvePoint point;
    point.budget = budget;
    point.probes_sent = result.probes_sent;
    for (const auto& row : design.cells) {
      point.truth_hosts +=
          oracle.count_responsive(net::Interval::of(row.prefix));
    }
    point.estimated_hosts = estimate.estimated_hosts;
    point.low = estimate.hosts_low;
    point.high = estimate.hosts_high;
    point.error =
        point.truth_hosts == 0
            ? 0.0
            : std::abs(point.estimated_hosts -
                       static_cast<double>(point.truth_hosts)) /
                  static_cast<double>(point.truth_hosts);
    point.probe_reduction = estimate.probe_reduction();
    curve.push_back(point);
  }
  return curve;
}

}  // namespace tass::core
