// Umbrella header: the full TASS public API.
//
//   #include "core/tass.hpp"
//
// pulls in the paper's pipeline end to end: routing-table ingestion
// (pfx2as / MRT), deaggregation, census simulation, density ranking,
// prefix selection, scanning strategies and the longitudinal evaluator.
//
// The hot path runs on a parallel substrate: util::ThreadPool shards
// work deterministically (results are bit-identical for any thread
// count), census::SnapshotIndex turns per-address oracle probes into
// masked-popcount bitmap scans, and the scan engine, attribution and
// evaluation stages all fan out over the process-wide pool. Threading
// knobs: scan::EngineConfig::threads, core::AttributionConfig::threads,
// core::EvaluationConfig::threads (1 = sequential, 0 = hardware).
#pragma once

#include "bgp/aggregate.hpp"
#include "bgp/deaggregate.hpp"
#include "bgp/mrt.hpp"
#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib.hpp"
#include "census/churn.hpp"
#include "census/import.hpp"
#include "census/io.hpp"
#include "census/population.hpp"
#include "census/protocol.hpp"
#include "census/quality.hpp"
#include "census/series.hpp"
#include "census/snapshot.hpp"
#include "census/snapshot_index.hpp"
#include "census/topology.hpp"
#include "core/attribution.hpp"
#include "core/estimator.hpp"
#include "core/evaluate.hpp"
#include "core/ranking.hpp"
#include "core/reseed.hpp"
#include "core/selection.hpp"
#include "core/strategies.hpp"
#include "net/interval.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/prefix.hpp"
#include "net/special_use.hpp"
#include "scan/blocklist.hpp"
#include "scan/engine.hpp"
#include "scan/packet.hpp"
#include "scan/ratelimit.hpp"
#include "scan/scope.hpp"
#include "scan/target_iterator.hpp"
#include "util/thread_pool.hpp"
