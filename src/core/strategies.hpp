// Periodic scanning strategies (the paper's §4 comparison set).
//
// A strategy is seeded once from the t0 full scan and then plans the scope
// of every repeated cycle. Implementations:
//
//   * FullScanStrategy    — rescan the whole announced space (ground truth
//                           and cost ceiling);
//   * HitlistStrategy     — rescan exactly the addresses responsive at t0
//                           (Fan & Heidemann-style address hitlist, §4.1);
//   * TassStrategy        — the paper's contribution: density-selected
//                           prefixes at either granularity (§3.1);
//   * RandomSampleStrategy— Heidemann et al.'s /24-block sampling: 50%
//                           random blocks, 25% previously responsive
//                           blocks, 25% policy-chosen blocks (§2).
//
// For the trace-driven evaluation every strategy exposes its per-cycle
// scan cost (addresses probed) and, given a later ground-truth snapshot,
// the number of hosts it would have found.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "census/snapshot.hpp"
#include "core/selection.hpp"

namespace tass::core {

/// Implementations must be immutable after construction (const methods
/// thread-safe): the longitudinal evaluator replays months concurrently
/// against one strategy instance.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Addresses probed per scan cycle.
  virtual std::uint64_t scanned_addresses() const = 0;

  /// Hosts of `truth` that a cycle scanning this strategy's scope finds.
  virtual std::uint64_t found_hosts(const census::Snapshot& truth) const = 0;
};

class FullScanStrategy final : public Strategy {
 public:
  explicit FullScanStrategy(const census::Snapshot& seed);
  std::string name() const override { return "full-scan"; }
  std::uint64_t scanned_addresses() const override { return advertised_; }
  std::uint64_t found_hosts(const census::Snapshot& truth) const override;

 private:
  std::uint64_t advertised_;
};

class HitlistStrategy final : public Strategy {
 public:
  explicit HitlistStrategy(const census::Snapshot& seed);
  std::string name() const override { return "hitlist"; }
  std::uint64_t scanned_addresses() const override {
    return hitlist_.size();
  }
  std::uint64_t found_hosts(const census::Snapshot& truth) const override;

 private:
  std::vector<std::uint32_t> hitlist_;  // ascending addresses at t0
};

class TassStrategy final : public Strategy {
 public:
  TassStrategy(const census::Snapshot& seed, PrefixMode mode,
               SelectionParams params);

  std::string name() const override;
  std::uint64_t scanned_addresses() const override {
    return selection_.selected_addresses;
  }
  std::uint64_t found_hosts(const census::Snapshot& truth) const override;

  const Selection& selection() const noexcept { return selection_; }
  PrefixMode mode() const noexcept { return mode_; }

 private:
  PrefixMode mode_;
  SelectionParams params_;
  Selection selection_;
  std::vector<bool> selected_;  // by partition cell index
};

struct RandomSampleParams {
  /// Fraction of /24 blocks of the announced space to scan (Heidemann et
  /// al. probed ~1% of the address space).
  double block_fraction = 0.01;
  double random_share = 0.50;      // chosen uniformly at random
  double responsive_share = 0.25;  // blocks responsive at t0
  double policy_share = 0.25;      // densest blocks at t0
  std::uint64_t seed = 99;
};

class RandomSampleStrategy final : public Strategy {
 public:
  RandomSampleStrategy(const census::Snapshot& seed,
                       const RandomSampleParams& params);
  std::string name() const override { return "random-sample"; }
  std::uint64_t scanned_addresses() const override {
    return static_cast<std::uint64_t>(blocks_.size()) * 256;
  }
  std::uint64_t found_hosts(const census::Snapshot& truth) const override;

  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  std::vector<std::uint32_t> blocks_;  // sorted /24 block ids (addr >> 8)
};

}  // namespace tass::core
