// Reseeding policy — step 5 of the TASS algorithm made explicit.
//
// "Scan prefixes 1..k repeatedly until t0 + Delta-t, then start over at
// step 1." The reseed interval Delta-t trades residual accuracy against
// the cost of the periodic full seeding scan. This module evaluates a
// reseeding TASS deployment over a census series: every reseed month runs
// a full scan (full accuracy, full cost) and refreshes the selection; the
// months in between scan only the current selection.
#pragma once

#include <span>
#include <vector>

#include "bgp/partition.hpp"
#include "census/series.hpp"
#include "core/evaluate.hpp"
#include "core/ranking.hpp"

namespace tass::core {

struct ReseedPolicy {
  /// Months between seeding full scans; 0 = seed once at month 0, never
  /// again (the configuration Figure 6 measures over its 7 snapshots).
  int interval_months = 0;
};

struct ReseedOutcome {
  std::vector<CycleResult> cycles;
  int reseed_count = 0;               // full-scan cycles (incl. month 0)
  std::uint64_t total_probes = 0;     // across all cycles

  double mean_hitrate() const noexcept;
  /// Probe traffic relative to running a full scan every month.
  double traffic_vs_monthly_full(std::uint64_t advertised) const noexcept;
};

/// Replays a reseeding TASS deployment over the series.
ReseedOutcome evaluate_with_reseed(const census::CensusSeries& series,
                                   PrefixMode mode, SelectionParams params,
                                   ReseedPolicy policy);

/// Accounting for one incremental churn step (probes saved is the whole
/// point: rescanned_addresses versus the partition's full address_count).
struct ChurnStepStats {
  std::uint64_t rescanned_cells = 0;      // cells re-scored by this step
  std::uint64_t rescanned_addresses = 0;  // probe cost of the rescan
  std::uint64_t rescan_hits = 0;          // responsive addresses found
};

/// Runs one churn step of the incremental pipeline, between reseeds:
/// the caller has already patched `partition` with apply_delta; this
/// re-probes ONLY the invalidated cells (the delta's added cells plus
/// any `dirty_cells` whose host population is known to have changed)
/// through the engine, patches `counts` in place, and rerank_cells()s
/// the ranking — the untouched world is never re-attributed.
///
/// `counts` arrives in pre-delta indexing and leaves in post-delta
/// indexing (PartitionApplyResult::reindex is applied internally).
///
/// Equivalence contract: afterwards, (counts, ranking) are bit-identical
/// to re-scanning the entire partition through the same engine/oracle and
/// ranking from scratch, provided the oracle's population only changed
/// inside dirty_cells and the delta's cells — the churn-replay
/// differential suite enforces this at every step.
ChurnStepStats churn_step(DensityRanking& ranking,
                          std::vector<std::uint32_t>& counts,
                          const bgp::PrefixPartition& partition,
                          const bgp::PartitionApplyResult& delta,
                          const scan::ProbeOracle& oracle,
                          const scan::ScanEngine& engine,
                          std::span<const std::uint32_t> dirty_cells = {});

}  // namespace tass::core
