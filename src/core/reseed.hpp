// Reseeding policy — step 5 of the TASS algorithm made explicit.
//
// "Scan prefixes 1..k repeatedly until t0 + Delta-t, then start over at
// step 1." The reseed interval Delta-t trades residual accuracy against
// the cost of the periodic full seeding scan. This module evaluates a
// reseeding TASS deployment over a census series: every reseed month runs
// a full scan (full accuracy, full cost) and refreshes the selection; the
// months in between scan only the current selection.
#pragma once

#include "census/series.hpp"
#include "core/evaluate.hpp"

namespace tass::core {

struct ReseedPolicy {
  /// Months between seeding full scans; 0 = seed once at month 0, never
  /// again (the configuration Figure 6 measures over its 7 snapshots).
  int interval_months = 0;
};

struct ReseedOutcome {
  std::vector<CycleResult> cycles;
  int reseed_count = 0;               // full-scan cycles (incl. month 0)
  std::uint64_t total_probes = 0;     // across all cycles

  double mean_hitrate() const noexcept;
  /// Probe traffic relative to running a full scan every month.
  double traffic_vs_monthly_full(std::uint64_t advertised) const noexcept;
};

/// Replays a reseeding TASS deployment over the series.
ReseedOutcome evaluate_with_reseed(const census::CensusSeries& series,
                                   PrefixMode mode, SelectionParams params,
                                   ReseedPolicy policy);

}  // namespace tass::core
