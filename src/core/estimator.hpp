// Population estimation from partial (phi < 1) scans — the paper's §5
// research question, implemented.
//
// "In the context of the analysis of security incidents (e.g.,
// Heartbleed) it is important to analyse whether vulnerable servers are
// distributed equally across both selected prefixes and omitted prefixes
// [...] If the distribution was fairly equal then regular estimates of
// vulnerable populations could be obtained with good efficiency and
// accuracy, for example, with phi = 0.5."
//
// This module provides (a) the scale-up estimator with a binomial
// confidence interval and (b) a marked-census generator that plants a
// "vulnerable" subpopulation either uniformly (the paper's hypothesis) or
// biased towards sparse prefixes (the adversarial case), so the
// hypothesis itself can be tested in simulation.
// Sampled scans (scan/sampled_scope.hpp) extend the same module with
// per-cell scale-up: estimate_from_sample() turns a SampleResult's
// per-cell (universe, draws, hits) triples into stratified
// Horvitz-Thompson totals with conservative binomial CIs, and
// estimate_curve() sweeps the probe budget to chart footprint vs
// accuracy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "census/snapshot.hpp"
#include "census/snapshot_index.hpp"
#include "core/selection.hpp"
#include "scan/sampled_scope.hpp"

namespace tass::core {

/// Scale-up estimate of a (sub)population from a partial scan.
struct PopulationEstimate {
  std::uint64_t observed_hosts = 0;   // hosts seen in the scanned scope
  std::uint64_t observed_marked = 0;  // marked (e.g. vulnerable) among them
  double coverage = 1.0;              // host coverage of the scope (phi)

  /// Estimated totals: observed / coverage.
  double estimated_hosts() const noexcept;
  double estimated_marked() const noexcept;

  /// Share of marked hosts among observed, with its binomial standard
  /// error (the share is coverage-invariant when the uniformity
  /// hypothesis holds).
  double marked_share() const noexcept;
  double share_stderr() const noexcept;

  /// 95% normal-approximation CI on estimated_marked().
  double marked_low() const noexcept;
  double marked_high() const noexcept;
};

/// Builds the estimate from observed counts and the selection's seed-time
/// host coverage. coverage must be in (0, 1].
PopulationEstimate estimate_population(std::uint64_t observed_hosts,
                                       std::uint64_t observed_marked,
                                       double coverage);

/// How the marked subpopulation distributes relative to prefix density.
enum class MarkingBias {
  kUniform,        // every host equally likely (the paper's hypothesis)
  kSparseBiased,   // hosts in sparse prefixes ~3x likelier (unmaintained
                   // boxes cluster in low-density space)
};

/// A marked census: per-cell marked-host counts over a snapshot.
struct MarkedCensus {
  std::vector<std::uint32_t> marked_per_cell;
  std::uint64_t total_marked = 0;
  /// The marked addresses themselves, ascending and duplicate-free —
  /// index them (census::SnapshotIndex) to answer "is this hit marked?"
  /// during a sampled scan.
  std::vector<std::uint32_t> addresses;

  /// Marked hosts inside a selection (m-mode selections only).
  std::uint64_t marked_in(const Selection& selection) const;
};

/// Deterministically marks ~probability of the snapshot's hosts.
MarkedCensus mark_hosts(const census::Snapshot& snapshot, double probability,
                        MarkingBias bias, std::uint64_t seed);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9): the z for a given confidence level,
/// z = normal_quantile((1 + confidence) / 2). p must be in (0, 1).
double normal_quantile(double p);

/// Scale-up of one sampled cell: draws `n` of a frame of `N` addresses
/// saw `hits` responsive, so the cell holds ~N*hits/n. The CI is a
/// normal-approximation binomial interval with (k+1/2)/(n+1) smoothing
/// (keeps zero-hit cells honest) and finite-population correction,
/// clamped to the only possible range [0, universe]. Stratified draws
/// make the binomial variance an upper bound, so nominal coverage is
/// conservative.
struct CellEstimate {
  std::uint32_t cell = 0;
  std::uint64_t universe = 0;
  std::uint64_t draws = 0;
  std::uint64_t hits = 0;
  double estimated = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// The full estimate from one sampled scan: per-cell scale-ups plus the
/// totals (sum of per-cell estimates; summed variances for the CI,
/// clamped to [0, frame_units]).
struct SampleEstimate {
  std::vector<CellEstimate> cells;
  double confidence = 0.95;
  std::uint64_t probes_sent = 0;
  std::uint64_t frame_units = 0;

  double estimated_hosts = 0.0;
  double hosts_low = 0.0;
  double hosts_high = 0.0;

  /// Marked (e.g. vulnerable) subpopulation, from the per-cell
  /// marked_hits counts through the same machinery.
  double estimated_marked = 0.0;
  double marked_low = 0.0;
  double marked_high = 0.0;

  double probe_reduction() const noexcept {
    return probes_sent == 0 ? 0.0
                            : static_cast<double>(frame_units) /
                                  static_cast<double>(probes_sent);
  }
  bool hosts_ci_covers(double truth) const noexcept {
    return truth >= hosts_low && truth <= hosts_high;
  }
  bool marked_ci_covers(double truth) const noexcept {
    return truth >= marked_low && truth <= marked_high;
  }
};

/// Builds the per-cell + total estimate from a sampled scan. Every
/// sampled cell must be a cell of `ranking` (the design was planned from
/// it); confidence in (0, 1).
template <class Family>
SampleEstimate estimate_from_sample(const scan::SampleResult& sample,
                                    const DensityRankingT<Family>& ranking,
                                    double confidence = 0.95);

/// One point of the footprint-vs-accuracy curve.
struct EstimateCurvePoint {
  std::uint64_t budget = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t truth_hosts = 0;  // exhaustive count over the same frame
  double estimated_hosts = 0.0;
  double low = 0.0;
  double high = 0.0;
  double error = 0.0;  // |estimated - truth| / truth (0 when truth is 0)
  double probe_reduction = 0.0;
};

/// Sweeps the probe budget: for each entry of `budgets`, plans a sampled
/// scan over the ranking, probes it against the ground-truth index, and
/// compares the estimate to the exhaustive truth over the same frame.
/// Deterministic in (ranking, oracle, budgets, params).
std::vector<EstimateCurvePoint> estimate_curve(
    const DensityRanking& ranking, const census::SnapshotIndex& oracle,
    std::span<const std::uint64_t> budgets, scan::SampleParams params,
    double confidence = 0.95);

}  // namespace tass::core
