// Population estimation from partial (phi < 1) scans — the paper's §5
// research question, implemented.
//
// "In the context of the analysis of security incidents (e.g.,
// Heartbleed) it is important to analyse whether vulnerable servers are
// distributed equally across both selected prefixes and omitted prefixes
// [...] If the distribution was fairly equal then regular estimates of
// vulnerable populations could be obtained with good efficiency and
// accuracy, for example, with phi = 0.5."
//
// This module provides (a) the scale-up estimator with a binomial
// confidence interval and (b) a marked-census generator that plants a
// "vulnerable" subpopulation either uniformly (the paper's hypothesis) or
// biased towards sparse prefixes (the adversarial case), so the
// hypothesis itself can be tested in simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "census/snapshot.hpp"
#include "core/selection.hpp"

namespace tass::core {

/// Scale-up estimate of a (sub)population from a partial scan.
struct PopulationEstimate {
  std::uint64_t observed_hosts = 0;   // hosts seen in the scanned scope
  std::uint64_t observed_marked = 0;  // marked (e.g. vulnerable) among them
  double coverage = 1.0;              // host coverage of the scope (phi)

  /// Estimated totals: observed / coverage.
  double estimated_hosts() const noexcept;
  double estimated_marked() const noexcept;

  /// Share of marked hosts among observed, with its binomial standard
  /// error (the share is coverage-invariant when the uniformity
  /// hypothesis holds).
  double marked_share() const noexcept;
  double share_stderr() const noexcept;

  /// 95% normal-approximation CI on estimated_marked().
  double marked_low() const noexcept;
  double marked_high() const noexcept;
};

/// Builds the estimate from observed counts and the selection's seed-time
/// host coverage. coverage must be in (0, 1].
PopulationEstimate estimate_population(std::uint64_t observed_hosts,
                                       std::uint64_t observed_marked,
                                       double coverage);

/// How the marked subpopulation distributes relative to prefix density.
enum class MarkingBias {
  kUniform,        // every host equally likely (the paper's hypothesis)
  kSparseBiased,   // hosts in sparse prefixes ~3x likelier (unmaintained
                   // boxes cluster in low-density space)
};

/// A marked census: per-cell marked-host counts over a snapshot.
struct MarkedCensus {
  std::vector<std::uint32_t> marked_per_cell;
  std::uint64_t total_marked = 0;

  /// Marked hosts inside a selection (m-mode selections only).
  std::uint64_t marked_in(const Selection& selection) const;
};

/// Deterministically marks ~probability of the snapshot's hosts.
MarkedCensus mark_hosts(const census::Snapshot& snapshot, double probability,
                        MarkingBias bias, std::uint64_t seed);

}  // namespace tass::core
