#include "core/ranking.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::core {

std::string_view prefix_mode_name(PrefixMode mode) noexcept {
  return mode == PrefixMode::kLess ? "less" : "more";
}

std::uint64_t DensityRanking::responsive_addresses() const noexcept {
  std::uint64_t total = 0;
  for (const RankedPrefix& entry : ranked) total += entry.size;
  return total;
}

DensityRanking rank_by_density(std::span<const std::uint32_t> counts,
                               const bgp::PrefixPartition& partition,
                               PrefixMode mode) {
  TASS_EXPECTS(counts.size() == partition.size());
  DensityRanking ranking;
  ranking.mode = mode;
  ranking.advertised_addresses = partition.address_count();

  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    ranking.total_hosts += counts[i];
  }
  ranking.ranked.reserve(counts.size());
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    RankedPrefix entry;
    entry.index = i;
    entry.prefix = partition.prefix(i);
    entry.size = entry.prefix.size();
    entry.hosts = counts[i];
    entry.density =
        static_cast<double>(entry.hosts) / static_cast<double>(entry.size);
    entry.host_share = ranking.total_hosts == 0
                           ? 0.0
                           : static_cast<double>(entry.hosts) /
                                 static_cast<double>(ranking.total_hosts);
    ranking.ranked.push_back(entry);
  }
  // Density descending; ties broken towards more hosts, then stable by
  // index so the ranking is deterministic.
  std::sort(ranking.ranked.begin(), ranking.ranked.end(),
            [](const RankedPrefix& a, const RankedPrefix& b) {
              if (a.density != b.density) return a.density > b.density;
              if (a.hosts != b.hosts) return a.hosts > b.hosts;
              return a.index < b.index;
            });
  return ranking;
}

DensityRanking rank_by_density(const census::Snapshot& seed,
                               PrefixMode mode) {
  const census::Topology& topo = seed.topology();
  if (mode == PrefixMode::kMore) {
    return rank_by_density(seed.counts_per_cell(), topo.m_partition, mode);
  }
  return rank_by_density(seed.counts_per_l(), topo.l_partition, mode);
}

std::vector<RankCurvePoint> rank_curve(const DensityRanking& ranking,
                                       std::size_t max_points) {
  TASS_EXPECTS(max_points >= 2);
  std::vector<RankCurvePoint> curve;
  if (ranking.ranked.empty()) return curve;

  const std::size_t n = ranking.ranked.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);

  std::uint64_t cumulative_hosts = 0;
  std::uint64_t cumulative_space = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cumulative_hosts += ranking.ranked[i].hosts;
    cumulative_space += ranking.ranked[i].size;
    if (i % step == 0 || i + 1 == n) {
      RankCurvePoint point;
      point.rank = i + 1;
      point.density = ranking.ranked[i].density;
      point.cumulative_hosts =
          ranking.total_hosts == 0
              ? 0.0
              : static_cast<double>(cumulative_hosts) /
                    static_cast<double>(ranking.total_hosts);
      point.cumulative_space =
          ranking.advertised_addresses == 0
              ? 0.0
              : static_cast<double>(cumulative_space) /
                    static_cast<double>(ranking.advertised_addresses);
      curve.push_back(point);
    }
  }
  return curve;
}

std::array<std::uint64_t, 33> hosts_by_prefix_length(
    const census::Snapshot& snapshot, PrefixMode mode) {
  std::array<std::uint64_t, 33> histogram{};
  const census::Topology& topo = snapshot.topology();
  if (mode == PrefixMode::kMore) {
    const auto counts = snapshot.counts_per_cell();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      histogram[static_cast<std::size_t>(
          topo.m_partition.prefix(i).length())] += counts[i];
    }
  } else {
    const auto counts = snapshot.counts_per_l();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      histogram[static_cast<std::size_t>(
          topo.l_partition.prefix(i).length())] += counts[i];
    }
  }
  return histogram;
}

}  // namespace tass::core
