#include "core/ranking.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::core {

// Density descending; ties broken towards more hosts, then by ascending
// prefix. The prefix tie-break (rather than the cell index) makes the
// order a pure function of (prefix, hosts, density), so a delta-patched
// partition and a from-scratch rebuild rank identically even when their
// internal cell numbering differs — and since a partition holds each
// prefix at most once, the comparator is a total order and every correct
// sort or merge produces the same sequence.
template <class Family>
bool ranked_before(const RankedPrefixT<Family>& a,
                   const RankedPrefixT<Family>& b) noexcept {
  if (a.density != b.density) return a.density > b.density;
  if (a.hosts != b.hosts) return a.hosts > b.hosts;
  return a.prefix < b.prefix;
}

std::string_view prefix_mode_name(PrefixMode mode) noexcept {
  return mode == PrefixMode::kLess ? "less" : "more";
}

template <class Family>
std::uint64_t DensityRankingT<Family>::responsive_addresses() const noexcept {
  std::uint64_t total = 0;
  for (const RankedPrefixT<Family>& entry : ranked) {
    total = net::saturating_add(total, entry.size);
  }
  return total;
}

template <class Family>
std::uint64_t DensityRankingViewT<Family>::responsive_addresses() const
    noexcept {
  std::uint64_t total = 0;
  for (const RankedPrefixT<Family>& entry : ranked) {
    total = net::saturating_add(total, entry.size);
  }
  return total;
}

template <class Family>
DensityRankingT<Family> DensityRankingViewT<Family>::materialize() const {
  DensityRankingT<Family> owned;
  owned.mode = mode;
  owned.ranked.assign(ranked.begin(), ranked.end());
  owned.total_hosts = total_hosts;
  owned.advertised_addresses = advertised_addresses;
  return owned;
}

template <class Family>
DensityRankingT<Family> rank_by_density(
    std::span<const std::uint32_t> counts,
    const bgp::BasicPrefixPartition<Family>& partition, PrefixMode mode) {
  TASS_EXPECTS(counts.size() == partition.size());
  DensityRankingT<Family> ranking;
  ranking.mode = mode;
  ranking.advertised_addresses = partition.address_count();

  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    ranking.total_hosts += counts[i];
  }
  ranking.ranked.reserve(counts.size());
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    RankedPrefixT<Family> entry;
    entry.index = i;
    entry.prefix = partition.prefix(i);
    entry.size = Family::prefix_units(entry.prefix);
    entry.hosts = counts[i];
    entry.density = Family::density(entry.hosts, entry.prefix);
    entry.host_share = ranking.total_hosts == 0
                           ? 0.0
                           : static_cast<double>(entry.hosts) /
                                 static_cast<double>(ranking.total_hosts);
    ranking.ranked.push_back(entry);
  }
  std::sort(ranking.ranked.begin(), ranking.ranked.end(),
            ranked_before<Family>);
  return ranking;
}

template <class Family>
void rerank_cells(DensityRankingT<Family>& ranking,
                  std::span<const std::uint32_t> counts,
                  const bgp::BasicPrefixPartition<Family>& partition,
                  const bgp::PartitionApplyResultT<Family>& delta,
                  std::span<const std::uint32_t> dirty_cells) {
  TASS_EXPECTS(counts.size() == partition.size());
  using Ranked = RankedPrefixT<Family>;

  // The invalidation set: removed slots hold stale entries, added slots
  // may reuse a freed slot whose old entry is still ranked, dirty cells
  // carry stale counts. Removed and added can share a slot number (free
  // slot reuse), hence the unique().
  std::vector<std::uint32_t> invalid;
  invalid.reserve(delta.removed_cells.size() + delta.added_cells.size() +
                  dirty_cells.size());
  invalid.insert(invalid.end(), delta.removed_cells.begin(),
                 delta.removed_cells.end());
  invalid.insert(invalid.end(), delta.added_cells.begin(),
                 delta.added_cells.end());
  invalid.insert(invalid.end(), dirty_cells.begin(), dirty_cells.end());
  std::sort(invalid.begin(), invalid.end());
  invalid.erase(std::unique(invalid.begin(), invalid.end()), invalid.end());

  // O(1) membership for the two full passes below (a binary search per
  // ranked entry is measurably slower on full-table rankings).
  std::vector<std::uint8_t> invalid_flag(partition.size(), 0);
  for (const std::uint32_t cell : invalid) invalid_flag[cell] = 1;
  const auto is_invalid = [&](std::uint32_t cell) {
    return invalid_flag[cell] != 0;
  };

  // New total first (shares depend on it): stale entries roll out, fresh
  // scores roll in. This pass only reads.
  std::uint64_t total = ranking.total_hosts;
  for (const Ranked& entry : ranking.ranked) {
    if (is_invalid(entry.index)) total -= entry.hosts;
  }

  // Re-score the invalidated cells that are live and populated.
  std::vector<Ranked> fresh;
  for (const std::uint32_t cell : invalid) {
    if (!partition.live(cell) || counts[cell] == 0) continue;
    Ranked entry;
    entry.index = cell;
    entry.prefix = partition.prefix(cell);
    entry.size = Family::prefix_units(entry.prefix);
    entry.hosts = counts[cell];
    entry.density = Family::density(entry.hosts, entry.prefix);
    total += entry.hosts;
    fresh.push_back(entry);
  }
  std::sort(fresh.begin(), fresh.end(), ranked_before<Family>);

  ranking.total_hosts = total;
  ranking.advertised_addresses = partition.address_count();

  // Every host share is a function of the new total, so one full pass is
  // unavoidable; fuse it with the drop + merge into a single rebuild so
  // the ranked array is moved exactly once. Shares are recomputed from
  // the integers (never rescaled) so the floats match the from-scratch
  // path bit for bit.
  const auto share = [total](std::uint64_t hosts) {
    return total == 0
               ? 0.0
               : static_cast<double>(hosts) / static_cast<double>(total);
  };
  for (Ranked& entry : fresh) entry.host_share = share(entry.hosts);
  std::vector<Ranked> next;
  next.reserve(ranking.ranked.size() + fresh.size());
  auto f = fresh.cbegin();
  for (Ranked& entry : ranking.ranked) {
    if (is_invalid(entry.index)) continue;
    entry.host_share = share(entry.hosts);
    while (f != fresh.cend() && ranked_before<Family>(*f, entry)) {
      next.push_back(*f++);
    }
    next.push_back(entry);
  }
  next.insert(next.end(), f, fresh.cend());
  ranking.ranked = std::move(next);
}

DensityRanking rank_by_density(const census::Snapshot& seed,
                               PrefixMode mode) {
  const census::Topology& topo = seed.topology();
  if (mode == PrefixMode::kMore) {
    return rank_by_density(seed.counts_per_cell(), topo.m_partition, mode);
  }
  return rank_by_density(seed.counts_per_l(), topo.l_partition, mode);
}

template <class Family>
std::vector<RankCurvePoint> rank_curve(const DensityRankingT<Family>& ranking,
                                       std::size_t max_points) {
  TASS_EXPECTS(max_points >= 2);
  std::vector<RankCurvePoint> curve;
  if (ranking.ranked.empty()) return curve;

  const std::size_t n = ranking.ranked.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);

  std::uint64_t cumulative_hosts = 0;
  std::uint64_t cumulative_space = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cumulative_hosts += ranking.ranked[i].hosts;
    cumulative_space =
        net::saturating_add(cumulative_space, ranking.ranked[i].size);
    if (i % step == 0 || i + 1 == n) {
      RankCurvePoint point;
      point.rank = i + 1;
      point.density = ranking.ranked[i].density;
      point.cumulative_hosts =
          ranking.total_hosts == 0
              ? 0.0
              : static_cast<double>(cumulative_hosts) /
                    static_cast<double>(ranking.total_hosts);
      point.cumulative_space =
          ranking.advertised_addresses == 0
              ? 0.0
              : static_cast<double>(cumulative_space) /
                    static_cast<double>(ranking.advertised_addresses);
      curve.push_back(point);
    }
  }
  return curve;
}

std::array<std::uint64_t, 33> hosts_by_prefix_length(
    const census::Snapshot& snapshot, PrefixMode mode) {
  std::array<std::uint64_t, 33> histogram{};
  const census::Topology& topo = snapshot.topology();
  if (mode == PrefixMode::kMore) {
    const auto counts = snapshot.counts_per_cell();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      histogram[static_cast<std::size_t>(
          topo.m_partition.prefix(i).length())] += counts[i];
    }
  } else {
    const auto counts = snapshot.counts_per_l();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      histogram[static_cast<std::size_t>(
          topo.l_partition.prefix(i).length())] += counts[i];
    }
  }
  return histogram;
}

// Explicit instantiations for both families (the template definitions
// live here, not in the header, to keep rebuild cost contained).
#define TASS_INSTANTIATE_RANKING(FAMILY)                                   \
  template bool ranked_before<FAMILY>(const RankedPrefixT<FAMILY>&,        \
                                      const RankedPrefixT<FAMILY>&)        \
      noexcept;                                                            \
  template struct DensityRankingT<FAMILY>;                                 \
  template struct DensityRankingViewT<FAMILY>;                             \
  template DensityRankingT<FAMILY> rank_by_density(                        \
      std::span<const std::uint32_t>,                                      \
      const bgp::BasicPrefixPartition<FAMILY>&, PrefixMode);               \
  template void rerank_cells(DensityRankingT<FAMILY>&,                     \
                             std::span<const std::uint32_t>,               \
                             const bgp::BasicPrefixPartition<FAMILY>&,     \
                             const bgp::PartitionApplyResultT<FAMILY>&,    \
                             std::span<const std::uint32_t>);              \
  template std::vector<RankCurvePoint> rank_curve(                         \
      const DensityRankingT<FAMILY>&, std::size_t)

TASS_INSTANTIATE_RANKING(net::Ipv4Family);
TASS_INSTANTIATE_RANKING(net::Ipv6Family);
#undef TASS_INSTANTIATE_RANKING

}  // namespace tass::core
