// TSIM — the zero-copy pipeline state image.
//
// The paper's pipeline (pfx2as -> partition -> density ranking -> scan
// scope) derives everything a scan cycle needs from raw inputs, and that
// derivation is what makes process start expensive: parsing the routing
// table and rebuilding the LpmIndex costs tens of milliseconds per
// process, every time. TSIM persists the *derived* state the way
// census/io persists snapshots, but relocation-free: the payload sections
// of the file are the flat arrays of a built trie::LpmIndex,
// bgp::PrefixPartition and core::DensityRanking, byte for byte
// (fixed-width little-endian, 8-byte aligned). Loading is therefore
// mmap + validate + pointer fixup — no parse, no rebuild — and because
// the mapping is read-only and shared (util::MmapFile), N worker
// processes attached to one image share a single page-cache copy of the
// topology.
//
// Container layout (all integers little-endian):
//
//   0   u32  magic "TSIM"
//   4   u32  version (currently 1)
//   8   u64  payload checksum — util::fnv1a64_wide over every byte from
//            offset 16 to the end of the file, so everything except the
//            magic/version/checksum triple itself is tamper-evident
//   16  u64  topology fingerprint — FNV-1a over the live cell prefixes in
//            slot order, the same digest census::topology_fingerprint
//            produces for a fresh partition, so an image can be bound to
//            the TSNP snapshots of the same topology
//   24  u32  ranking prefix mode (0 = less, 1 = more)
//   28  u32  section count (8 in version 1)
//   32  u64  total hosts (ranking N)
//   40  u64  advertised addresses
//   48  u64  live address count of the partition
//   56  u64  live cell count of the partition
//   64       section table: 8 x {u32 id, u32 element size, u64 element
//            count, u64 byte offset}, in id order
//   256      payload sections, each at an 8-byte-aligned offset with
//            zeroed padding between — the LpmIndex root/node/leaf
//            arrays, the partition prefix/sorted/live/free arrays, and
//            the ranked-prefix array. The LpmIndex entry table is not a
//            section of its own: bgp::SortedCell and LpmIndex::Entry
//            share one byte layout and, by the partition's invariants,
//            identical content (the live cells ascending by prefix), so
//            the loader serves both views out of the sorted section
//
// Validation is two-tier, both throwing tass::FormatError:
//
//   * attach/load — magic, version, section-table geometry, the payload
//     checksum, and every memory-safety bound (node/leaf/root indices,
//     cell indices, prefix lengths), fused with the checksum into one
//     bandwidth-speed sweep. After it, no lookup/locate/tally/selection
//     walk can index out of bounds even on an image whose checksum was
//     deliberately forged — corrupt input parses or throws, never
//     crashes (the sanitizer CI job runs the corrupt-image suite in
//     tests/parser_fuzz_test.cpp to enforce this).
//   * StateImage::verify() — the deep semantic audit (sorted orders,
//     disjointness, entry/ranked-to-cell bindings, population and
//     address totals). These invariants are established by encode_image
//     and integrity-protected by the checksum, so the hot start path
//     does not pay to re-derive them; diagnostic tooling (`tass_cli
//     state info`) and the differential tests do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/partition.hpp"
#include "core/ranking.hpp"
#include "trie/lpm_index.hpp"
#include "util/mmap_file.hpp"

namespace tass::state {

inline constexpr std::uint32_t kImageVersion = 1;

// Header geometry, shared with the corrupt-image tests (which re-seal
// checksums after targeted corruption to reach the deeper validators).
inline constexpr std::size_t kChecksumOffset = 8;
inline constexpr std::size_t kChecksummedFrom = 16;
inline constexpr std::size_t kFingerprintOffset = 16;
inline constexpr std::size_t kSectionTableOffset = 64;
inline constexpr std::size_t kSectionCount = 8;
inline constexpr std::size_t kHeaderSize =
    kSectionTableOffset + kSectionCount * 24;

// The topology fingerprint an image binds to is
// bgp::partition_fingerprint — the same digest census::topology_fingerprint
// wraps, so TSIM images and TSNP snapshots of one topology are mutually
// bindable.

/// Header fields and section tallies of a validated image.
struct ImageInfo {
  std::uint32_t version = 0;
  core::PrefixMode mode = core::PrefixMode::kLess;
  std::uint64_t fingerprint = 0;
  std::uint64_t checksum = 0;
  std::uint64_t total_hosts = 0;
  std::uint64_t advertised_addresses = 0;
  std::uint64_t address_count = 0;
  std::size_t cell_count = 0;   // partition slots (live + free)
  std::size_t live_cells = 0;
  std::size_t ranked_count = 0;
  std::size_t lpm_nodes = 0;
  std::size_t lpm_leaves = 0;
  std::size_t file_bytes = 0;
};

/// Serialises a built partition + ranking into one TSIM byte buffer.
/// The ranking must have been built over `partition` (cell indices,
/// prefixes and totals are cross-checked; throws tass::Error on any
/// inconsistency, so every encoded image is loadable).
std::vector<std::byte> encode_image(const bgp::PrefixPartition& partition,
                                    const core::DensityRanking& ranking);

/// encode_image + atomic-enough file write (truncate + write + flush);
/// throws tass::Error on I/O failure.
void save_image(const std::string& path,
                const bgp::PrefixPartition& partition,
                const core::DensityRanking& ranking);

/// A validated, attached state image: the partition, its LpmIndex and
/// the density ranking served zero-copy out of the underlying bytes.
///
/// Lifetime: partition(), index() and ranking() borrow the image's
/// storage — they are valid exactly as long as this StateImage (and, for
/// attach(), the caller's buffer) stays alive. The borrowed structures
/// answer every const query through their unchanged APIs but reject
/// mutation (update()/apply_delta() throw); processes that need to churn
/// the topology rebuild owned structures from the borrowed views.
class StateImage {
 public:
  /// Maps and validates an image file. Throws tass::Error on I/O
  /// failure, tass::FormatError on any corruption or format violation.
  /// If `expected_fingerprint` is non-zero the image must additionally
  /// be bound to that topology fingerprint.
  static StateImage load(const std::string& path,
                         std::uint64_t expected_fingerprint = 0);

  /// Validates and attaches to an image already in memory (zero-copy;
  /// `data` must outlive the StateImage and be 8-byte aligned).
  static StateImage attach(std::span<const std::byte> data,
                           std::uint64_t expected_fingerprint = 0);

  StateImage(StateImage&&) noexcept = default;
  StateImage& operator=(StateImage&&) noexcept = default;
  StateImage(const StateImage&) = delete;
  StateImage& operator=(const StateImage&) = delete;
  ~StateImage() = default;

  const bgp::PrefixPartition& partition() const noexcept {
    return partition_;
  }
  const trie::LpmIndex& index() const noexcept { return partition_.index(); }
  core::DensityRankingView ranking() const noexcept { return ranking_; }
  const ImageInfo& info() const noexcept { return info_; }

  /// Deep semantic audit beyond the attach-time integrity and bounds
  /// checks: sorted-view and ranking order, live-cell disjointness,
  /// entry/ranked-to-cell bindings, free-list and live-bitmap
  /// consistency, address and host totals. Throws tass::FormatError on
  /// the first violated invariant. Safe to call on any attached image
  /// (it assumes only what attach() has already established).
  void verify() const;

 private:
  StateImage() = default;

  util::MmapFile file_;  // empty when attached to a caller-owned buffer
  bgp::PrefixPartition partition_;
  core::DensityRankingView ranking_;
  ImageInfo info_;
};

}  // namespace tass::state
