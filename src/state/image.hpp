// TSIM — the zero-copy pipeline state image, parameterized over the
// address family.
//
// The paper's pipeline (pfx2as -> partition -> density ranking -> scan
// scope) derives everything a scan cycle needs from raw inputs, and that
// derivation is what makes process start expensive: parsing the routing
// table and rebuilding the LpmIndex costs tens of milliseconds per
// process, every time. TSIM persists the *derived* state the way
// census/io persists snapshots, but relocation-free: the payload sections
// of the file are the flat arrays of a built trie::BasicLpmIndex,
// bgp::BasicPrefixPartition and core::DensityRankingT, byte for byte
// (fixed-width little-endian, 8-byte aligned). Loading is therefore
// mmap + validate + pointer fixup — no parse, no rebuild — and because
// the mapping is read-only and shared (util::MmapFile), N worker
// processes attached to one image share a single page-cache copy of the
// topology. IPv6 state seals and reloads through the exact same path;
// only the per-element widths differ.
//
// Container layout (all integers little-endian):
//
//   0   u32  magic — "TSIM" for IPv4 images, "TSI6" for IPv6. The magic
//            is the primary family discriminator: a v4 loader handed a
//            "TSI6" image throws a typed FormatError naming the right
//            path (and vice versa), never a crash or a silent misread
//   4   u32  version (currently 1)
//   8   u64  payload checksum — util::fnv1a64_wide over every byte from
//            offset 16 to the end of the file, so everything except the
//            magic/version/checksum triple itself is tamper-evident
//   16  u64  topology fingerprint — FNV-1a over the live cell prefixes in
//            slot order, the same digest census::topology_fingerprint
//            produces for a fresh partition, so an image can be bound to
//            the TSNP snapshots of the same topology
//   24  u32  prefix mode and family: low byte = ranking prefix mode
//            (0 = less, 1 = more); byte 1 = the family field (0 for
//            historical IPv4 images, 6 for IPv6); upper bytes zero
//   28  u32  section count (8 in version 1)
//   32  u64  total hosts (ranking N)
//   40  u64  advertised space (family scan units: addresses / /64s)
//   48  u64  live unit count of the partition
//   56  u64  live cell count of the partition
//   64       section table: 8 x {u32 id, u32 element size, u64 element
//            count, u64 byte offset}, in id order. Element sizes are the
//            family's: an IPv6 prefix serialises as hi/lo/len (24
//            bytes), so the same section ids carry wider rows
//   256      payload sections, each at an 8-byte-aligned offset with
//            zeroed padding between — the LpmIndex root/node/leaf
//            arrays, the partition prefix/sorted/live/free arrays, and
//            the ranked-prefix array. The LpmIndex entry table is not a
//            section of its own: the family's SortedCell and
//            LpmIndex Entry share one byte layout and, by the
//            partition's invariants, identical content (the live cells
//            ascending by prefix), so the loader serves both views out
//            of the sorted section
//
// Validation is two-tier, both throwing tass::FormatError:
//
//   * attach/load — magic (including the cross-family case), version,
//     section-table geometry, the payload checksum, and every
//     memory-safety bound (node/leaf/root indices, cell indices, prefix
//     lengths), fused with the checksum into one bandwidth-speed sweep.
//     After it, no lookup/locate/tally/selection walk can index out of
//     bounds even on an image whose checksum was deliberately forged —
//     corrupt input parses or throws, never crashes (the sanitizer CI
//     job runs the corrupt-image suite in tests/parser_fuzz_test.cpp,
//     both families, to enforce this).
//   * verify() — the deep semantic audit (sorted orders, disjointness,
//     entry/ranked-to-cell bindings, population and unit totals). These
//     invariants are established by encode_image and
//     integrity-protected by the checksum, so the hot start path does
//     not pay to re-derive them; diagnostic tooling (`tass_cli state
//     info`) and the differential tests do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/partition.hpp"
#include "core/ranking.hpp"
#include "net/family.hpp"
#include "trie/lpm_index.hpp"
#include "trie/lpm_index6.hpp"
#include "util/mmap_file.hpp"

namespace tass::state {

inline constexpr std::uint32_t kImageVersion = 1;

// Header geometry, shared with the corrupt-image tests (which re-seal
// checksums after targeted corruption to reach the deeper validators).
// Identical for both families; only the magic and element widths differ.
inline constexpr std::size_t kChecksumOffset = 8;
inline constexpr std::size_t kChecksummedFrom = 16;
inline constexpr std::size_t kFingerprintOffset = 16;
inline constexpr std::size_t kSectionTableOffset = 64;
inline constexpr std::size_t kSectionCount = 8;
inline constexpr std::size_t kHeaderSize =
    kSectionTableOffset + kSectionCount * 24;

// The family magics ("TSIM" / "TSI6" as little-endian u32 at offset 0).
inline constexpr std::uint32_t kImageMagic4 = 0x4d495354u;
inline constexpr std::uint32_t kImageMagic6 = 0x36495354u;

// The topology fingerprint an image binds to is
// bgp::partition_fingerprint — the same digest census::topology_fingerprint
// wraps, so TSIM images and TSNP snapshots of one topology are mutually
// bindable.

/// Header fields and section tallies of a validated image.
struct ImageInfo {
  std::uint32_t version = 0;
  net::AddressFamily family = net::AddressFamily::kIpv4;
  core::PrefixMode mode = core::PrefixMode::kLess;
  std::uint64_t fingerprint = 0;
  std::uint64_t checksum = 0;
  std::uint64_t total_hosts = 0;
  std::uint64_t advertised_addresses = 0;  // family scan units
  std::uint64_t address_count = 0;         // family scan units
  std::size_t cell_count = 0;   // partition slots (live + free)
  std::size_t live_cells = 0;
  std::size_t ranked_count = 0;
  std::size_t lpm_nodes = 0;
  std::size_t lpm_leaves = 0;
  std::size_t file_bytes = 0;
  /// What physically backs the mapping serving this image: kBase for
  /// the zero-copy default, kTransparentHuge/kHugeTlb when a hugepage
  /// load request materialised, kNone for attach() (caller-owned
  /// buffer). `state info` and micro_coldstart surface this so every
  /// reported number says which paging configuration produced it.
  util::PageBacking backing = util::PageBacking::kNone;
};

/// Peeks an image's address family from its magic without validating the
/// rest. Throws tass::FormatError if the bytes are not a TASS state
/// image of either family. The file form reads only the header prefix.
net::AddressFamily image_family(std::span<const std::byte> data);
net::AddressFamily image_family_of_file(const std::string& path);

/// Serialises a built partition + ranking into one TSIM byte buffer.
/// The ranking must have been built over `partition` (cell indices,
/// prefixes and totals are cross-checked; throws tass::Error on any
/// inconsistency, so every encoded image is loadable). The overload set
/// covers both families; the family is deduced from the argument types.
template <class Family>
std::vector<std::byte> encode_image(
    const bgp::BasicPrefixPartition<Family>& partition,
    const core::DensityRankingT<Family>& ranking);

/// encode_image + atomic-enough file write (write + rename);
/// throws tass::Error on I/O failure.
template <class Family>
void save_image(const std::string& path,
                const bgp::BasicPrefixPartition<Family>& partition,
                const core::DensityRankingT<Family>& ranking);

/// A validated, attached state image: the partition, its LpmIndex and
/// the density ranking served zero-copy out of the underlying bytes.
///
/// Lifetime: partition(), index() and ranking() borrow the image's
/// storage — they are valid exactly as long as this image (and, for
/// attach(), the caller's buffer) stays alive. The borrowed structures
/// answer every const query through their unchanged APIs but reject
/// mutation (update()/apply_delta() throw); processes that need to churn
/// the topology rebuild owned structures from the borrowed views.
template <class Family>
class BasicStateImage {
 public:
  using Partition = bgp::BasicPrefixPartition<Family>;
  using Index = trie::BasicLpmIndex<Family>;
  using RankingView = core::DensityRankingViewT<Family>;

  /// Maps and validates an image file. Throws tass::Error on I/O
  /// failure, tass::FormatError on any corruption or format violation —
  /// including the cross-family case: loading an image of the other
  /// family fails with a typed FormatError naming the right loader.
  /// If `expected_fingerprint` is non-zero the image must additionally
  /// be bound to that topology fingerprint.
  static BasicStateImage load(const std::string& path,
                              std::uint64_t expected_fingerprint = 0);

  /// As load(), with explicit mapping options — MapOptions::huge_pages
  /// requests (copy-based) hugepage backing for the serving arrays,
  /// falling back to the plain shared mapping when unavailable;
  /// info().backing reports what materialised.
  static BasicStateImage load(const std::string& path,
                              const util::MapOptions& map_options,
                              std::uint64_t expected_fingerprint = 0);

  /// Validates and attaches to an image already in memory (zero-copy;
  /// `data` must outlive the image and be 8-byte aligned).
  static BasicStateImage attach(std::span<const std::byte> data,
                                std::uint64_t expected_fingerprint = 0);

  BasicStateImage(BasicStateImage&&) noexcept = default;
  BasicStateImage& operator=(BasicStateImage&&) noexcept = default;
  BasicStateImage(const BasicStateImage&) = delete;
  BasicStateImage& operator=(const BasicStateImage&) = delete;
  ~BasicStateImage() = default;

  const Partition& partition() const noexcept { return partition_; }
  const Index& index() const noexcept { return partition_.index(); }
  RankingView ranking() const noexcept { return ranking_; }
  const ImageInfo& info() const noexcept { return info_; }

  /// Deep semantic audit beyond the attach-time integrity and bounds
  /// checks: sorted-view and ranking order, live-cell disjointness,
  /// entry/ranked-to-cell bindings, free-list and live-bitmap
  /// consistency, unit and host totals. Throws tass::FormatError on
  /// the first violated invariant. Safe to call on any attached image
  /// (it assumes only what attach() has already established).
  void verify() const;

 private:
  BasicStateImage() = default;

  util::MmapFile file_;  // empty when attached to a caller-owned buffer
  Partition partition_;
  RankingView ranking_;
  ImageInfo info_;
};

/// The family instantiations. StateImage keeps its historical (IPv4)
/// meaning; StateImage6 is the IPv6 twin on the same machinery.
using StateImage = BasicStateImage<net::Ipv4Family>;
using StateImage6 = BasicStateImage<net::Ipv6Family>;

extern template class BasicStateImage<net::Ipv4Family>;
extern template class BasicStateImage<net::Ipv6Family>;

}  // namespace tass::state
