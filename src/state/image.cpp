#include "state/image.hpp"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <type_traits>

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace tass::state {

namespace {

using trie::LpmIndex;
using trie::LpmIndex6;

// Family-specific facts of the container format: the magic pair and the
// header's family field. Everything else (geometry, section ids, the
// validation sweep) is the shared template below.
template <class Family>
struct FamilyFormat;

template <>
struct FamilyFormat<net::Ipv4Family> {
  static constexpr std::uint32_t kMagic = kImageMagic4;
  static constexpr std::uint32_t kOtherMagic = kImageMagic6;
  // Historical v4 images carry no family bits in the mode word.
  static constexpr std::uint32_t kFamilyWord = 0;
  static constexpr const char* kCrossFamilyHint =
      "this is an IPv6 (TSI6) state image; load it through the IPv6 "
      "path (state::StateImage6)";
};

template <>
struct FamilyFormat<net::Ipv6Family> {
  static constexpr std::uint32_t kMagic = kImageMagic6;
  static constexpr std::uint32_t kOtherMagic = kImageMagic4;
  static constexpr std::uint32_t kFamilyWord =
      static_cast<std::uint32_t>(net::AddressFamily::kIpv6);
  static constexpr const char* kCrossFamilyHint =
      "this is an IPv4 (TSIM) state image; load it through the IPv4 "
      "path (state::StateImage)";
};

// Checksum field location: the wide FNV covers every byte from
// kChecksummedFrom to the end of the file, which includes the topology
// fingerprint, the scalars, the section table and all payload — so any
// flipped byte past the magic/version/checksum triple is a checksum
// mismatch.
static_assert(kChecksumOffset + 8 == kChecksummedFrom);
static_assert(kFingerprintOffset >= kChecksummedFrom);

enum SectionId : std::uint32_t {
  kLpmRoot = 1,
  kLpmNodes,
  kLpmLeaves,
  kPartPrefixes,
  kPartSorted,
  kPartLive,
  kPartFree,
  kRankEntries,
};

struct SectionSpec {
  std::uint32_t id = 0;
  std::uint32_t elem_size = 0;
};

// Per-family section table: the ids are shared, the element widths are
// the family's (an IPv6 prefix serialises as hi/lo/len = 24 bytes).
template <class Family>
constexpr std::array<SectionSpec, kSectionCount> section_specs() {
  return {{
      {kLpmRoot, sizeof(std::uint32_t)},
      {kLpmNodes, sizeof(typename trie::BasicLpmIndex<Family>::Node)},
      {kLpmLeaves, sizeof(std::uint32_t)},
      {kPartPrefixes, sizeof(typename Family::Prefix)},
      {kPartSorted, sizeof(bgp::SortedCellT<Family>)},
      {kPartLive, sizeof(std::uint8_t)},
      {kPartFree, sizeof(std::uint32_t)},
      {kRankEntries, sizeof(core::RankedPrefixT<Family>)},
  }};
}

// The sorted section doubles as the LpmIndex entry table: same byte
// layout, same content (live cells ascending by prefix; encode_image
// checks the content identity before writing).
static_assert(sizeof(bgp::SortedCell) == sizeof(LpmIndex::Entry));
static_assert(sizeof(bgp::SortedCell6) == sizeof(LpmIndex6::Entry));

// The payload sections ARE the in-memory arrays, so the wire layout is
// the host layout. Everything the format fixes is asserted here; a port
// to an exotic ABI fails the build (or the runtime probe below) instead
// of producing silently incompatible images.
static_assert(std::endian::native == std::endian::little,
              "TSIM payload sections are little-endian host arrays; a "
              "big-endian port needs a byte-swapping decode path");
static_assert(std::is_trivially_copyable_v<LpmIndex::Node> &&
              std::is_standard_layout_v<LpmIndex::Node>);
static_assert(sizeof(LpmIndex::Node) == 24 &&
              offsetof(LpmIndex::Node, leaf_bits) == 8 &&
              offsetof(LpmIndex::Node, child_base) == 16 &&
              offsetof(LpmIndex::Node, leaf_base) == 20);
// The node shape is family-independent (one template).
static_assert(sizeof(LpmIndex6::Node) == sizeof(LpmIndex::Node));
static_assert(std::is_trivially_copyable_v<net::Prefix> &&
              sizeof(net::Prefix) == 8 && alignof(net::Prefix) <= 8);
static_assert(std::is_trivially_copyable_v<net::Ipv6Prefix> &&
              sizeof(net::Ipv6Prefix) == 24 &&
              alignof(net::Ipv6Prefix) <= 8);
static_assert(std::is_trivially_copyable_v<LpmIndex::Entry> &&
              std::is_standard_layout_v<LpmIndex::Entry> &&
              sizeof(LpmIndex::Entry) == 12 &&
              offsetof(LpmIndex::Entry, value) == 8);
static_assert(std::is_trivially_copyable_v<LpmIndex6::Entry> &&
              std::is_standard_layout_v<LpmIndex6::Entry> &&
              sizeof(LpmIndex6::Entry) == 32 &&
              offsetof(LpmIndex6::Entry, value) == 24);
static_assert(std::is_trivially_copyable_v<bgp::SortedCell> &&
              std::is_standard_layout_v<bgp::SortedCell> &&
              sizeof(bgp::SortedCell) == 12 &&
              offsetof(bgp::SortedCell, slot) == 8);
static_assert(std::is_trivially_copyable_v<bgp::SortedCell6> &&
              std::is_standard_layout_v<bgp::SortedCell6> &&
              sizeof(bgp::SortedCell6) == 32 &&
              offsetof(bgp::SortedCell6, slot) == 24);
static_assert(std::is_trivially_copyable_v<core::RankedPrefix> &&
              std::is_standard_layout_v<core::RankedPrefix> &&
              sizeof(core::RankedPrefix) == 48 &&
              offsetof(core::RankedPrefix, prefix) == 4 &&
              offsetof(core::RankedPrefix, size) == 16 &&
              offsetof(core::RankedPrefix, hosts) == 24 &&
              offsetof(core::RankedPrefix, density) == 32 &&
              offsetof(core::RankedPrefix, host_share) == 40);
static_assert(std::is_trivially_copyable_v<core::RankedPrefix6> &&
              std::is_standard_layout_v<core::RankedPrefix6> &&
              sizeof(core::RankedPrefix6) == 64 &&
              offsetof(core::RankedPrefix6, prefix) == 8 &&
              offsetof(core::RankedPrefix6, size) == 32 &&
              offsetof(core::RankedPrefix6, hosts) == 40 &&
              offsetof(core::RankedPrefix6, density) == 48 &&
              offsetof(core::RankedPrefix6, host_share) == 56);
static_assert(std::numeric_limits<double>::is_iec559 &&
              sizeof(double) == 8);

std::uint32_t get32(std::span<const std::byte> data,
                    std::size_t offset) noexcept {
  return util::load_le32(
      std::span<const std::byte, 4>(data.data() + offset, 4));
}

std::uint64_t get64(std::span<const std::byte> data,
                    std::size_t offset) noexcept {
  return util::load_le64(
      std::span<const std::byte, 8>(data.data() + offset, 8));
}

void put32(std::span<std::byte> data, std::size_t offset,
           std::uint32_t value) noexcept {
  util::store_le32(value, std::span<std::byte, 4>(data.data() + offset, 4));
}

void put64(std::span<std::byte> data, std::size_t offset,
           std::uint64_t value) noexcept {
  util::store_le64(value, std::span<std::byte, 8>(data.data() + offset, 8));
}

void put_prefix(std::span<std::byte> data, std::size_t offset,
                net::Prefix prefix) noexcept {
  put32(data, offset, prefix.network().value());
  data[offset + 4] = static_cast<std::byte>(prefix.length());
  // bytes offset+5..offset+7 stay zero (the buffer is value-initialised)
}

void put_prefix(std::span<std::byte> data, std::size_t offset,
                net::Ipv6Prefix prefix) noexcept {
  put64(data, offset, prefix.network().hi());
  put64(data, offset + 8, prefix.network().lo());
  data[offset + 16] = static_cast<std::byte>(prefix.length());
  // bytes offset+17..offset+23 stay zero
}

bool canonical(net::Prefix prefix) noexcept {
  return prefix.length() <= 32 &&
         (prefix.network().value() & ~net::Prefix::mask(prefix.length())) ==
             0;
}

bool canonical(net::Ipv6Prefix prefix) noexcept {
  return prefix.length() <= 128 &&
         net::Ipv6Prefix(prefix.network(), prefix.length()).network() ==
             prefix.network();
}

std::uint64_t align8(std::uint64_t offset) noexcept {
  return (offset + 7) & ~std::uint64_t{7};
}

[[noreturn]] void bad(const std::string& what) {
  throw FormatError("state image: " + what);
}

// net::Prefix / net::Ipv6Prefix keep their members private, so their
// byte layout is probed at runtime instead of offsetof'ed. Called once
// per encode/attach; the cost is nil.
template <class Family>
void check_prefix_layout() {
  if constexpr (std::same_as<Family, net::Ipv4Family>) {
    const net::Prefix probe(net::Ipv4Address(0x0a0b0c00u), 24);
    std::byte raw[sizeof(net::Prefix)];
    std::memcpy(raw, &probe, sizeof(probe));
    if (util::load_le32(std::span<const std::byte, 4>(raw, 4)) !=
            0x0a0b0c00u ||
        std::to_integer<std::uint8_t>(raw[4]) != 24) {
      throw Error(
          "unsupported ABI: net::Prefix layout differs from the TSIM "
          "wire layout");
    }
  } else {
    const net::Ipv6Prefix probe(
        net::Ipv6Address(0x20010db800000000ULL, 0x00000000000a0b00ULL), 120);
    std::byte raw[sizeof(net::Ipv6Prefix)];
    std::memcpy(raw, &probe, sizeof(probe));
    if (util::load_le64(std::span<const std::byte, 8>(raw, 8)) !=
            0x20010db800000000ULL ||
        util::load_le64(std::span<const std::byte, 8>(raw + 8, 8)) !=
            0x00000000000a0b00ULL ||
        std::to_integer<std::uint8_t>(raw[16]) != 120) {
      throw Error(
          "unsupported ABI: net::Ipv6Prefix layout differs from the TSIM "
          "wire layout");
    }
  }
}

// Hashes one payload section while running `flag` over its elements in
// L1-sized chunks: each chunk's bytes stream through the hasher and are
// immediately re-read cache-hot by the bounds check, so validation rides
// on the checksum's memory bandwidth instead of paying its own sweep.
// `flag` returns nonzero for a violating element and must be branch-free
// (violations are OR-accumulated and raised once per section, which is
// what lets the compiler vectorise the check loop).
template <typename T, typename Flag>
void hash_section(util::WideFnv1a64& hasher,
                  std::span<const std::byte> data, std::uint64_t offset,
                  std::span<const T> elems, Flag&& flag, const char* what) {
  constexpr std::size_t kChunk =
      std::max<std::size_t>(std::size_t{1}, 16384 / sizeof(T));
  std::uint64_t violated = 0;
  std::size_t i = 0;
  while (i < elems.size()) {
    const std::size_t n = std::min(kChunk, elems.size() - i);
    hasher.update(data.subspan(
        static_cast<std::size_t>(offset) + i * sizeof(T), n * sizeof(T)));
    for (std::size_t j = i; j < i + n; ++j) violated |= flag(elems[j]);
    i += n;
  }
  if (violated != 0) bad(what);
}

// Everything validate() hands back; attach() assembles it.
template <class Family>
struct Decoded {
  bgp::BasicPrefixPartition<Family> partition;
  core::DensityRankingViewT<Family> ranking;
  ImageInfo info;
};

template <class Family>
Decoded<Family> validate(std::span<const std::byte> data,
                         std::uint64_t expected_fingerprint) {
  using Format = FamilyFormat<Family>;
  using Index = trie::BasicLpmIndex<Family>;
  using Node = typename Index::Node;
  using Entry = typename Index::Entry;
  using Prefix = typename Family::Prefix;
  using Cell = bgp::SortedCellT<Family>;
  using Ranked = core::RankedPrefixT<Family>;
  constexpr auto kSpecs = section_specs<Family>();

  check_prefix_layout<Family>();
  if (reinterpret_cast<std::uintptr_t>(data.data()) % 8 != 0) {
    bad("attach buffer is not 8-byte aligned");
  }
  if (data.size() < kHeaderSize) bad("too short to hold a header");
  const std::uint32_t magic = data.size() >= 4 ? get32(data, 0) : 0;
  if (magic == Format::kOtherMagic) {
    // The one mistake worth a precise message: a structurally fine image
    // of the other family must fail typed, never crash or misread.
    bad(Format::kCrossFamilyHint);
  }
  if (magic != Format::kMagic) {
    bad("not a TASS state image (bad magic)");
  }
  const std::uint32_t version = get32(data, 4);
  if (version != kImageVersion) {
    bad("unsupported version " + std::to_string(version));
  }
  const std::uint64_t checksum = get64(data, kChecksumOffset);
  const std::uint64_t fingerprint = get64(data, kFingerprintOffset);
  if (expected_fingerprint != 0 && fingerprint != expected_fingerprint) {
    bad("produced for a different topology (fingerprint mismatch)");
  }
  const std::uint32_t mode_word = get32(data, 24);
  if ((mode_word & ~0xffu) != (Format::kFamilyWord << 8)) {
    bad("family field does not match the image magic");
  }
  const std::uint32_t mode_raw = mode_word & 0xffu;
  if (mode_raw > 1) bad("unknown prefix mode " + std::to_string(mode_raw));
  if (get32(data, 28) != kSectionCount) bad("unexpected section count");
  const std::uint64_t total_hosts = get64(data, 32);
  const std::uint64_t advertised = get64(data, 40);
  const std::uint64_t address_count = get64(data, 48);
  const std::uint64_t live_count = get64(data, 56);

  // Section table: ids and element sizes are fixed, offsets must follow
  // the canonical packed-with-8-byte-alignment geometry exactly.
  std::uint64_t counts[kSectionCount];
  std::uint64_t offsets[kSectionCount];
  std::uint64_t expected = kHeaderSize;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t row = kSectionTableOffset + i * 24;
    if (get32(data, row) != kSpecs[i].id) bad("section table out of order");
    if (get32(data, row + 4) != kSpecs[i].elem_size) {
      bad("unexpected section element size");
    }
    counts[i] = get64(data, row + 8);
    offsets[i] = get64(data, row + 16);
    expected = align8(expected);
    if (offsets[i] != expected) {
      bad("misaligned or out-of-order section offset");
    }
    if (expected > data.size() ||
        counts[i] > (data.size() - expected) / kSpecs[i].elem_size) {
      bad("section exceeds file size");
    }
    expected += counts[i] * kSpecs[i].elem_size;
  }
  if (expected != data.size()) bad("trailing bytes after last section");

  const std::size_t cell_count = static_cast<std::size_t>(counts[3]);
  if (cell_count >= Index::kNoMatch) bad("partition too large");
  if (live_count > cell_count) bad("more live cells than slots");
  if (counts[0] != 0 && counts[0] != 65536) {
    bad("LPM root must hold 0 or 65536 words");
  }
  if (counts[0] == 0 &&
      (counts[1] != 0 || counts[2] != 0 || live_count != 0)) {
    bad("empty LPM root with non-empty structures");
  }
  if (counts[4] != live_count) bad("sorted view count != live cell count");
  if (counts[5] != 0 && counts[5] != cell_count) {
    bad("live bitmap must be empty or one byte per slot");
  }
  if (counts[5] == 0 && live_count != cell_count) {
    bad("live bitmap missing while slots are dead");
  }
  if (counts[6] != cell_count - live_count) {
    bad("free slot count != dead slot count");
  }
  if (counts[7] > live_count) bad("more ranked entries than live cells");

  // The sections, in place. The base is 8-byte aligned and every offset
  // is too, so each cast lands on correctly aligned storage; the bytes
  // are only ever read through these typed views. The sorted section is
  // viewed twice — as the partition's sorted cells and as the LpmIndex
  // entry table — which is exactly the content identity encode_image
  // enforced before sealing the image.
  const std::byte* base = data.data();
  const std::span<const std::uint32_t> root{
      reinterpret_cast<const std::uint32_t*>(base + offsets[0]),
      static_cast<std::size_t>(counts[0])};
  const std::span<const Node> nodes{
      reinterpret_cast<const Node*>(base + offsets[1]),
      static_cast<std::size_t>(counts[1])};
  const std::span<const std::uint32_t> leaves{
      reinterpret_cast<const std::uint32_t*>(base + offsets[2]),
      static_cast<std::size_t>(counts[2])};
  const std::span<const Prefix> prefixes{
      reinterpret_cast<const Prefix*>(base + offsets[3]), cell_count};
  const std::span<const Cell> sorted{
      reinterpret_cast<const Cell*>(base + offsets[4]),
      static_cast<std::size_t>(counts[4])};
  const std::span<const Entry> entries{
      reinterpret_cast<const Entry*>(base + offsets[4]),
      static_cast<std::size_t>(counts[4])};
  const std::span<const std::uint8_t> live{
      reinterpret_cast<const std::uint8_t*>(base + offsets[5]),
      static_cast<std::size_t>(counts[5])};
  const std::span<const std::uint32_t> free_slots{
      reinterpret_cast<const std::uint32_t*>(base + offsets[6]),
      static_cast<std::size_t>(counts[6])};
  const std::span<const Ranked> ranked{
      reinterpret_cast<const Ranked*>(base + offsets[7]),
      static_cast<std::size_t>(counts[7])};

  // The attach-time tier: one fused sweep in which every byte of
  // [kChecksummedFrom, end) streams through the wide FNV exactly once,
  // in file order, with each section's *memory-safety* bounds checked
  // right after its bytes pass through the hasher (cache-hot, so the
  // checks ride on the hash's bandwidth instead of paying a second
  // memory sweep). The bounds checks are written to hold on arbitrary
  // bytes: after them, no lookup/locate/tally/selection walk can index
  // out of bounds or shift out of range even on an image whose checksum
  // was deliberately forged. Semantic invariants (orders, bindings,
  // totals) are established by encode_image, integrity-protected by the
  // checksum, and re-derivable on demand via verify().
  // Error precedence is unspecified: a corrupt image may be reported by
  // a bounds validator before the checksum verdict.
  util::WideFnv1a64 hasher;
  const auto hash_through = [&](std::uint64_t from, std::uint64_t to) {
    hasher.update(data.subspan(static_cast<std::size_t>(from),
                               static_cast<std::size_t>(to - from)));
  };
  std::uint64_t ends[kSectionCount];
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    ends[i] = offsets[i] + counts[i] * kSpecs[i].elem_size;
  }
  hash_through(kChecksummedFrom, offsets[0]);

  // LPM read structures: every index a lookup can chase stays in
  // bounds, and every non-child slot is covered by a leaf run at or
  // below it (which makes the rank_inclusive() - 1 addressing safe).
  const std::uint32_t node_count32 = static_cast<std::uint32_t>(counts[1]);
  const std::uint32_t cell_count32 = static_cast<std::uint32_t>(cell_count);
  hash_section(
      hasher, data, offsets[0], root,
      [&](std::uint32_t word) -> std::uint64_t {
        const std::uint64_t is_node = word >> 31;
        const std::uint32_t payload = word & ~Index::kNodeFlag;
        return (is_node & (payload >= node_count32)) |
               (~is_node & 1u & (word != Index::kNoMatch) &
                (word >= cell_count32));
      },
      "LPM root word out of range");
  hash_through(ends[0], offsets[1]);
  hash_section(
      hasher, data, offsets[1], nodes,
      [&](const Node& node) -> std::uint64_t {
        const auto kids =
            static_cast<std::size_t>(std::popcount(node.child_bits));
        const auto runs =
            static_cast<std::size_t>(std::popcount(node.leaf_bits));
        const std::uint64_t oob =
            (node.child_base + kids > nodes.size()) |
            (node.leaf_base + runs > leaves.size());
        const std::uint64_t non_child = ~node.child_bits;
        // First slot that must be a leaf. The clamp keeps the shift in
        // range for the all-children case (countr_zero(0) == 64), whose
        // result the (non_child != 0) factor discards anyway.
        const int first = std::min(std::countr_zero(non_child), 63);
        const std::uint64_t uncovered =
            (non_child != 0) &
            ((node.leaf_bits & ((std::uint64_t{2} << first) - 1)) == 0);
        return oob | uncovered;
      },
      "LPM node references out-of-bounds or uncovered slots");
  hash_through(ends[1], offsets[2]);
  hash_section(
      hasher, data, offsets[2], leaves,
      [&](std::uint32_t value) -> std::uint64_t {
        return (value != Index::kNoMatch) & (value >= cell_count32);
      },
      "LPM leaf value out of range");
  hash_through(ends[2], offsets[3]);
  // Prefix lengths must stay <= the family width everywhere: masking a
  // wild length is a shift out of range on the v4 type, so this bound is
  // a safety property, not just hygiene.
  constexpr std::uint32_t kMaxLength =
      static_cast<std::uint32_t>(Family::kBits);
  hash_section(
      hasher, data, offsets[3], prefixes,
      [&](Prefix prefix) -> std::uint64_t {
        return static_cast<std::uint32_t>(prefix.length()) > kMaxLength;
      },
      "partition prefix length out of range");
  hash_through(ends[3], offsets[4]);
  // One pass covers both views of this section: SortedCell::slot is
  // Entry::value, so the slot bound below is also the entry value bound
  // the lookup structures rely on.
  hash_section(
      hasher, data, offsets[4], sorted,
      [&](const Cell& cell) -> std::uint64_t {
        return (cell.slot >= cell_count32) |
               (static_cast<std::uint32_t>(cell.prefix.length()) >
                kMaxLength);
      },
      "sorted view slot or prefix length out of range");
  hash_through(ends[4], offsets[6]);  // live bytes: any value is safe
  hash_section(
      hasher, data, offsets[6], free_slots,
      [&](std::uint32_t slot) -> std::uint64_t {
        return slot >= cell_count32;
      },
      "free list slot out of range");
  hash_through(ends[6], offsets[7]);
  hash_section(
      hasher, data, offsets[7], ranked,
      [&](const Ranked& entry) -> std::uint64_t {
        return (entry.index >= cell_count32) |
               (static_cast<std::uint32_t>(entry.prefix.length()) >
                kMaxLength);
      },
      "ranked entry index or prefix length out of range");
  hash_through(ends[7], data.size());

  // Depth-aware leaf coverage. The per-node rule above (first non-child
  // slot covered) is what the intermediate levels rely on, but the
  // deepest level is different: lookup() never consults child_bits there
  // ("the last level is always a leaf"), so a node reachable at the
  // final stride level must cover slot 0 with a leaf run outright —
  // otherwise a forged image could park a child-bits-only node at the
  // last level and make rank_inclusive() - 1 wrap below leaf_base. Walk
  // reachability per depth (deduplicated, so adversarial fan-in cannot
  // blow up the walk) and enforce the stronger rule on every final-level
  // node. IPv4 has 3 node levels, IPv6 19 — the walk is the same.
  constexpr int kLevels = Index::kNodeLevels;
  if (!nodes.empty()) {
    std::vector<std::uint8_t> at_depth(nodes.size(), 0);
    std::vector<std::uint32_t> frontier;
    for (const std::uint32_t word : root) {
      if ((word & Index::kNodeFlag) == 0) continue;
      const std::uint32_t index = word & ~Index::kNodeFlag;
      if (at_depth[index] == 0) {
        at_depth[index] = 1;
        frontier.push_back(index);
      }
    }
    std::vector<std::uint32_t> next;
    for (std::uint8_t depth = 2; depth <= kLevels; ++depth) {
      next.clear();
      for (const std::uint32_t index : frontier) {
        const Node& node = nodes[index];
        const auto kids =
            static_cast<std::uint32_t>(std::popcount(node.child_bits));
        for (std::uint32_t k = 0; k < kids; ++k) {
          const std::uint32_t child = node.child_base + k;
          if (at_depth[child] < depth) {
            at_depth[child] = depth;
            next.push_back(child);
          }
        }
      }
      std::swap(frontier, next);
      if (depth == kLevels) {
        for (const std::uint32_t index : frontier) {
          if ((nodes[index].leaf_bits & 1) == 0) {
            bad("final-level LPM node does not start with a leaf run");
          }
        }
      }
    }
  }

  if (hasher.digest() != checksum) {
    bad("checksum mismatch (corrupted file)");
  }

  Decoded<Family> decoded;
  decoded.partition = bgp::BasicPrefixPartition<Family>::from_raw(
      {prefixes, sorted, live, free_slots, address_count, live_count},
      Index::from_raw({root, nodes, leaves, entries}));
  decoded.ranking = {static_cast<core::PrefixMode>(mode_raw), ranked,
                     total_hosts, advertised};
  decoded.info.version = version;
  decoded.info.family = Family::kFamily;
  decoded.info.mode = static_cast<core::PrefixMode>(mode_raw);
  decoded.info.fingerprint = fingerprint;
  decoded.info.checksum = checksum;
  decoded.info.total_hosts = total_hosts;
  decoded.info.advertised_addresses = advertised;
  decoded.info.address_count = address_count;
  decoded.info.cell_count = cell_count;
  decoded.info.live_cells = static_cast<std::size_t>(live_count);
  decoded.info.ranked_count = ranked.size();
  decoded.info.lpm_nodes = nodes.size();
  decoded.info.lpm_leaves = leaves.size();
  decoded.info.file_bytes = data.size();
  return decoded;
}

}  // namespace

net::AddressFamily image_family(std::span<const std::byte> data) {
  if (data.size() < 4) {
    throw FormatError("state image: too short to hold a magic");
  }
  const std::uint32_t magic = get32(data, 0);
  if (magic == kImageMagic4) return net::AddressFamily::kIpv4;
  if (magic == kImageMagic6) return net::AddressFamily::kIpv6;
  throw FormatError("state image: not a TASS state image (bad magic)");
}

net::AddressFamily image_family_of_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open state image: " + path);
  std::byte head[4];
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  if (in.gcount() != sizeof(head)) {
    throw FormatError("state image: too short to hold a magic");
  }
  return image_family(std::span<const std::byte>(head, sizeof(head)));
}

template <class Family>
std::vector<std::byte> encode_image(
    const bgp::BasicPrefixPartition<Family>& partition,
    const core::DensityRankingT<Family>& ranking) {
  using Format = FamilyFormat<Family>;
  using Partition = bgp::BasicPrefixPartition<Family>;
  using Index = trie::BasicLpmIndex<Family>;
  using Prefix = typename Family::Prefix;
  using Cell = bgp::SortedCellT<Family>;
  using Ranked = core::RankedPrefixT<Family>;
  constexpr auto kSpecs = section_specs<Family>();

  check_prefix_layout<Family>();
  const typename Partition::Raw praw = partition.raw();
  const typename Index::Raw lraw = partition.index().raw();

  // Cross-validate so every encoded image passes its own loader; these
  // are API-misuse errors (tass::Error), not file corruption.
  if (ranking.advertised_addresses != praw.address_count) {
    throw Error("encode_image: ranking was built over a different space");
  }
  // The sorted view and the LpmIndex entry table must be the same
  // sequence (live cells ascending by prefix, slot as the value): the
  // image stores them as one section and serves both views from it.
  if (lraw.entries.size() != praw.sorted.size() ||
      lraw.entries.size() != praw.live_count) {
    throw Error("encode_image: partition index out of sync");
  }
  for (std::size_t i = 0; i < lraw.entries.size(); ++i) {
    if (lraw.entries[i].prefix != praw.sorted[i].prefix ||
        lraw.entries[i].value != praw.sorted[i].slot) {
      throw Error("encode_image: partition index out of sync");
    }
  }
  std::uint64_t hosts_sum = 0;
  for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
    const Ranked& entry = ranking.ranked[i];
    if (entry.index >= partition.size() || !partition.live(entry.index) ||
        partition.prefix(entry.index) != entry.prefix ||
        entry.size != Family::prefix_units(entry.prefix) ||
        entry.hosts == 0) {
      throw Error("encode_image: ranking does not match the partition");
    }
    if (i > 0 && !core::ranked_before(ranking.ranked[i - 1], entry)) {
      throw Error("encode_image: ranking out of order");
    }
    hosts_sum += entry.hosts;
  }
  if (hosts_sum != ranking.total_hosts) {
    throw Error("encode_image: ranking host total mismatch");
  }

  const std::uint64_t counts[kSectionCount] = {
      lraw.root.size(),      lraw.nodes.size(),
      lraw.leaves.size(),    praw.prefixes.size(),
      praw.sorted.size(),    praw.live.size(),
      praw.free_slots.size(), ranking.ranked.size()};
  std::uint64_t offsets[kSectionCount];
  std::uint64_t size = kHeaderSize;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    size = align8(size);
    offsets[i] = size;
    size += counts[i] * kSpecs[i].elem_size;
  }

  // Value-initialised buffer: alignment padding and struct padding stay
  // zero, so identical state always encodes to identical bytes.
  std::vector<std::byte> out(static_cast<std::size_t>(size));
  const std::span<std::byte> buf{out};
  put32(buf, 0, Format::kMagic);
  put32(buf, 4, kImageVersion);
  put64(buf, kFingerprintOffset, bgp::partition_fingerprint(partition));
  put32(buf, 24,
        static_cast<std::uint32_t>(ranking.mode) |
            (Format::kFamilyWord << 8));
  put32(buf, 28, kSectionCount);
  put64(buf, 32, ranking.total_hosts);
  put64(buf, 40, ranking.advertised_addresses);
  put64(buf, 48, praw.address_count);
  put64(buf, 56, praw.live_count);
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t row = kSectionTableOffset + i * 24;
    put32(buf, row, kSpecs[i].id);
    put32(buf, row + 4, kSpecs[i].elem_size);
    put64(buf, row + 8, counts[i]);
    put64(buf, row + 16, offsets[i]);
  }

  // Padding-free element types go out as one memcpy; prefix-bearing
  // types are written field by field so their padding bytes stay zero.
  const auto copy_section = [&](std::size_t index, const void* from,
                                std::size_t bytes) {
    if (bytes > 0) std::memcpy(out.data() + offsets[index], from, bytes);
  };
  copy_section(0, lraw.root.data(), lraw.root.size_bytes());
  copy_section(1, lraw.nodes.data(), lraw.nodes.size_bytes());
  copy_section(2, lraw.leaves.data(), lraw.leaves.size_bytes());
  for (std::size_t i = 0; i < praw.prefixes.size(); ++i) {
    put_prefix(buf, offsets[3] + i * sizeof(Prefix), praw.prefixes[i]);
  }
  for (std::size_t i = 0; i < praw.sorted.size(); ++i) {
    const std::size_t at = offsets[4] + i * sizeof(Cell);
    put_prefix(buf, at, praw.sorted[i].prefix);
    put32(buf, at + offsetof(Cell, slot), praw.sorted[i].slot);
  }
  copy_section(5, praw.live.data(), praw.live.size_bytes());
  copy_section(6, praw.free_slots.data(), praw.free_slots.size_bytes());
  for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
    const Ranked& entry = ranking.ranked[i];
    const std::size_t at = offsets[7] + i * sizeof(Ranked);
    put32(buf, at, entry.index);
    put_prefix(buf, at + offsetof(Ranked, prefix), entry.prefix);
    put64(buf, at + offsetof(Ranked, size), entry.size);
    put64(buf, at + offsetof(Ranked, hosts), entry.hosts);
    put64(buf, at + offsetof(Ranked, density),
          std::bit_cast<std::uint64_t>(entry.density));
    put64(buf, at + offsetof(Ranked, host_share),
          std::bit_cast<std::uint64_t>(entry.host_share));
  }

  put64(buf, kChecksumOffset,
        util::fnv1a64_wide(buf.subspan(kChecksummedFrom)));
  return out;
}

template <class Family>
void save_image(const std::string& path,
                const bgp::BasicPrefixPartition<Family>& partition,
                const core::DensityRankingT<Family>& ranking) {
  const auto bytes = encode_image(partition, ranking);
  // Write-then-rename, never truncate in place: workers stay attached to
  // the old image via MAP_SHARED, so the old inode must live on until
  // their mappings go away (truncating under a mapping is a SIGBUS and
  // regrown bytes would mutate beneath already-validated views), and the
  // replacement becomes atomic — a concurrent load() sees either the old
  // or the new image, never a torn one.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot open state image for writing: " + temp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      throw Error("short write to state image: " + temp);
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    std::remove(temp.c_str());
    throw Error("cannot replace state image " + path + ": " +
                std::strerror(saved));
  }
}

template <class Family>
BasicStateImage<Family> BasicStateImage<Family>::attach(
    std::span<const std::byte> data, std::uint64_t expected_fingerprint) {
  Decoded<Family> decoded = validate<Family>(data, expected_fingerprint);
  BasicStateImage image;
  image.partition_ = std::move(decoded.partition);
  image.ranking_ = decoded.ranking;
  image.info_ = decoded.info;
  return image;
}

template <class Family>
BasicStateImage<Family> BasicStateImage<Family>::load(
    const std::string& path, std::uint64_t expected_fingerprint) {
  return load(path, util::MapOptions{}, expected_fingerprint);
}

template <class Family>
BasicStateImage<Family> BasicStateImage<Family>::load(
    const std::string& path, const util::MapOptions& map_options,
    std::uint64_t expected_fingerprint) {
  util::MmapFile file = util::MmapFile::open(path, map_options);
  BasicStateImage image = attach(file.bytes(), expected_fingerprint);
  image.info_.backing = file.backing();
  image.file_ = std::move(file);
  return image;
}

template <class Family>
void BasicStateImage<Family>::verify() const {
  using Prefix = typename Family::Prefix;
  using Cell = bgp::SortedCellT<Family>;
  using Entry = typename Index::Entry;
  using Ranked = core::RankedPrefixT<Family>;

  const typename Partition::Raw praw = partition_.raw();
  const typename Index::Raw lraw = partition_.index().raw();
  const std::span<const Ranked> ranked = ranking_.ranked;
  const auto is_live = [&](std::uint64_t slot) {
    return praw.live.empty() ||
           praw.live[static_cast<std::size_t>(slot)] != 0;
  };

  for (const Prefix prefix : praw.prefixes) {
    if (!canonical(prefix)) bad("non-canonical partition prefix");
  }
  for (std::size_t i = 0; i < lraw.entries.size(); ++i) {
    const Entry& entry = lraw.entries[i];
    if (!canonical(entry.prefix)) bad("non-canonical LPM entry prefix");
    if (!is_live(entry.value) ||
        praw.prefixes[entry.value] != entry.prefix) {
      bad("LPM entry does not map to its live cell");
    }
    if (i > 0 && !(lraw.entries[i - 1].prefix < entry.prefix)) {
      bad("LPM entries out of order");
    }
  }
  net::AddressKey max_last{};
  std::uint64_t address_sum = 0;
  for (std::size_t i = 0; i < praw.sorted.size(); ++i) {
    const Cell& cell = praw.sorted[i];
    if (!is_live(cell.slot) || praw.prefixes[cell.slot] != cell.prefix) {
      bad("sorted view does not match its live cell");
    }
    if (i > 0) {
      if (!(praw.sorted[i - 1].prefix < cell.prefix)) {
        bad("sorted view out of order");
      }
      if (Family::first_key(cell.prefix) <= max_last) {
        bad("live cells overlap");
      }
    }
    max_last = Family::last_key(cell.prefix);
    address_sum = net::saturating_add(address_sum,
                                      Family::prefix_units(cell.prefix));
  }
  if (address_sum != info_.address_count) {
    bad("live unit total mismatch");
  }
  if (info_.advertised_addresses != info_.address_count) {
    bad("ranking advertised space != partition unit count");
  }
  std::uint64_t live_seen = 0;
  for (const std::uint8_t flag : praw.live) {
    if (flag > 1) bad("live bitmap holds a non-boolean");
    live_seen += flag;
  }
  if (!praw.live.empty() && live_seen != info_.live_cells) {
    bad("live bitmap population != live cell count");
  }
  for (std::size_t i = 0; i < praw.free_slots.size(); ++i) {
    if (is_live(praw.free_slots[i])) bad("free list names a live slot");
    if (i > 0 && praw.free_slots[i - 1] >= praw.free_slots[i]) {
      bad("free list out of order");
    }
  }
  std::uint64_t hosts_sum = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const Ranked& entry = ranked[i];
    if (!is_live(entry.index) ||
        praw.prefixes[entry.index] != entry.prefix ||
        entry.size != Family::prefix_units(entry.prefix) ||
        entry.hosts == 0) {
      bad("ranked entry does not match its live cell");
    }
    if (i > 0 && !core::ranked_before(ranked[i - 1], entry)) {
      bad("ranking out of order");
    }
    hosts_sum += entry.hosts;
  }
  if (hosts_sum != info_.total_hosts) bad("ranking host total mismatch");
}

template class BasicStateImage<net::Ipv4Family>;
template class BasicStateImage<net::Ipv6Family>;

template std::vector<std::byte> encode_image(
    const bgp::BasicPrefixPartition<net::Ipv4Family>&,
    const core::DensityRankingT<net::Ipv4Family>&);
template std::vector<std::byte> encode_image(
    const bgp::BasicPrefixPartition<net::Ipv6Family>&,
    const core::DensityRankingT<net::Ipv6Family>&);
template void save_image(const std::string&,
                         const bgp::BasicPrefixPartition<net::Ipv4Family>&,
                         const core::DensityRankingT<net::Ipv4Family>&);
template void save_image(const std::string&,
                         const bgp::BasicPrefixPartition<net::Ipv6Family>&,
                         const core::DensityRankingT<net::Ipv6Family>&);

}  // namespace tass::state
