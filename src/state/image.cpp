#include "state/image.hpp"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <type_traits>

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace tass::state {

namespace {

using bgp::PrefixPartition;
using bgp::SortedCell;
using core::RankedPrefix;
using trie::LpmIndex;

// "TSIM" in file order (the little-endian u32 at offset 0).
constexpr std::uint32_t kMagic = 0x4d495354u;

// Checksum field location: the wide FNV covers every byte from
// kChecksummedFrom to the end of the file, which includes the topology
// fingerprint, the scalars, the section table and all payload — so any
// flipped byte past the magic/version/checksum triple is a checksum
// mismatch.
static_assert(kChecksumOffset + 8 == kChecksummedFrom);
static_assert(kFingerprintOffset >= kChecksummedFrom);

enum SectionId : std::uint32_t {
  kLpmRoot = 1,
  kLpmNodes,
  kLpmLeaves,
  kPartPrefixes,
  kPartSorted,
  kPartLive,
  kPartFree,
  kRankEntries,
};

struct SectionSpec {
  std::uint32_t id = 0;
  std::uint32_t elem_size = 0;
};

constexpr SectionSpec kSpecs[kSectionCount] = {
    {kLpmRoot, sizeof(std::uint32_t)},
    {kLpmNodes, sizeof(LpmIndex::Node)},
    {kLpmLeaves, sizeof(std::uint32_t)},
    {kPartPrefixes, sizeof(net::Prefix)},
    {kPartSorted, sizeof(SortedCell)},
    {kPartLive, sizeof(std::uint8_t)},
    {kPartFree, sizeof(std::uint32_t)},
    {kRankEntries, sizeof(RankedPrefix)},
};

// The sorted section doubles as the LpmIndex entry table: same byte
// layout, same content (live cells ascending by prefix; encode_image
// checks the content identity before writing).
static_assert(sizeof(SortedCell) == sizeof(LpmIndex::Entry));

// The payload sections ARE the in-memory arrays, so the wire layout is
// the host layout. Everything the format fixes is asserted here; a port
// to an exotic ABI fails the build (or the runtime probe below) instead
// of producing silently incompatible images.
static_assert(std::endian::native == std::endian::little,
              "TSIM payload sections are little-endian host arrays; a "
              "big-endian port needs a byte-swapping decode path");
static_assert(std::is_trivially_copyable_v<LpmIndex::Node> &&
              std::is_standard_layout_v<LpmIndex::Node>);
static_assert(sizeof(LpmIndex::Node) == 24 &&
              offsetof(LpmIndex::Node, leaf_bits) == 8 &&
              offsetof(LpmIndex::Node, child_base) == 16 &&
              offsetof(LpmIndex::Node, leaf_base) == 20);
static_assert(std::is_trivially_copyable_v<net::Prefix> &&
              sizeof(net::Prefix) == 8 && alignof(net::Prefix) <= 8);
static_assert(std::is_trivially_copyable_v<LpmIndex::Entry> &&
              std::is_standard_layout_v<LpmIndex::Entry> &&
              sizeof(LpmIndex::Entry) == 12 &&
              offsetof(LpmIndex::Entry, value) == 8);
static_assert(std::is_trivially_copyable_v<SortedCell> &&
              std::is_standard_layout_v<SortedCell> &&
              sizeof(SortedCell) == 12 && offsetof(SortedCell, slot) == 8);
static_assert(std::is_trivially_copyable_v<RankedPrefix> &&
              std::is_standard_layout_v<RankedPrefix> &&
              sizeof(RankedPrefix) == 48 &&
              offsetof(RankedPrefix, prefix) == 4 &&
              offsetof(RankedPrefix, size) == 16 &&
              offsetof(RankedPrefix, hosts) == 24 &&
              offsetof(RankedPrefix, density) == 32 &&
              offsetof(RankedPrefix, host_share) == 40);
static_assert(std::numeric_limits<double>::is_iec559 &&
              sizeof(double) == 8);

// net::Prefix keeps its members private, so its byte layout (network u32
// at 0, length u8 at 4) is probed at runtime instead of offsetof'ed.
// Called once per encode/attach; the cost is nil.
void check_prefix_layout() {
  const net::Prefix probe(net::Ipv4Address(0x0a0b0c00u), 24);
  std::byte raw[sizeof(net::Prefix)];
  std::memcpy(raw, &probe, sizeof(probe));
  if (util::load_le32(std::span<const std::byte, 4>(raw, 4)) !=
          0x0a0b0c00u ||
      std::to_integer<std::uint8_t>(raw[4]) != 24) {
    throw Error(
        "unsupported ABI: net::Prefix layout differs from the TSIM wire "
        "layout");
  }
}

std::uint32_t get32(std::span<const std::byte> data,
                    std::size_t offset) noexcept {
  return util::load_le32(
      std::span<const std::byte, 4>(data.data() + offset, 4));
}

std::uint64_t get64(std::span<const std::byte> data,
                    std::size_t offset) noexcept {
  return util::load_le64(
      std::span<const std::byte, 8>(data.data() + offset, 8));
}

void put32(std::span<std::byte> data, std::size_t offset,
           std::uint32_t value) noexcept {
  util::store_le32(value, std::span<std::byte, 4>(data.data() + offset, 4));
}

void put64(std::span<std::byte> data, std::size_t offset,
           std::uint64_t value) noexcept {
  util::store_le64(value, std::span<std::byte, 8>(data.data() + offset, 8));
}

void put_prefix(std::span<std::byte> data, std::size_t offset,
                net::Prefix prefix) noexcept {
  put32(data, offset, prefix.network().value());
  data[offset + 4] = static_cast<std::byte>(prefix.length());
  // bytes offset+5..offset+7 stay zero (the buffer is value-initialised)
}

bool canonical(net::Prefix prefix) noexcept {
  return prefix.length() <= 32 &&
         (prefix.network().value() & ~net::Prefix::mask(prefix.length())) ==
             0;
}

std::uint64_t align8(std::uint64_t offset) noexcept {
  return (offset + 7) & ~std::uint64_t{7};
}

[[noreturn]] void bad(const std::string& what) {
  throw FormatError("state image: " + what);
}

// Hashes one payload section while running `flag` over its elements in
// L1-sized chunks: each chunk's bytes stream through the hasher and are
// immediately re-read cache-hot by the bounds check, so validation rides
// on the checksum's memory bandwidth instead of paying its own sweep.
// `flag` returns nonzero for a violating element and must be branch-free
// (violations are OR-accumulated and raised once per section, which is
// what lets the compiler vectorise the check loop).
template <typename T, typename Flag>
void hash_section(util::WideFnv1a64& hasher,
                  std::span<const std::byte> data, std::uint64_t offset,
                  std::span<const T> elems, Flag&& flag, const char* what) {
  constexpr std::size_t kChunk =
      std::max<std::size_t>(std::size_t{1}, 16384 / sizeof(T));
  std::uint64_t violated = 0;
  std::size_t i = 0;
  while (i < elems.size()) {
    const std::size_t n = std::min(kChunk, elems.size() - i);
    hasher.update(data.subspan(
        static_cast<std::size_t>(offset) + i * sizeof(T), n * sizeof(T)));
    for (std::size_t j = i; j < i + n; ++j) violated |= flag(elems[j]);
    i += n;
  }
  if (violated != 0) bad(what);
}

// Everything validate() hands back; StateImage::attach assembles it.
struct Decoded {
  PrefixPartition partition;
  core::DensityRankingView ranking;
  ImageInfo info;
};

Decoded validate(std::span<const std::byte> data,
                 std::uint64_t expected_fingerprint) {
  check_prefix_layout();
  if (reinterpret_cast<std::uintptr_t>(data.data()) % 8 != 0) {
    bad("attach buffer is not 8-byte aligned");
  }
  if (data.size() < kHeaderSize) bad("too short to hold a header");
  if (get32(data, 0) != kMagic) bad("not a TASS state image (bad magic)");
  const std::uint32_t version = get32(data, 4);
  if (version != kImageVersion) {
    bad("unsupported version " + std::to_string(version));
  }
  const std::uint64_t checksum = get64(data, kChecksumOffset);
  const std::uint64_t fingerprint = get64(data, kFingerprintOffset);
  if (expected_fingerprint != 0 && fingerprint != expected_fingerprint) {
    bad("produced for a different topology (fingerprint mismatch)");
  }
  const std::uint32_t mode_raw = get32(data, 24);
  if (mode_raw > 1) bad("unknown prefix mode " + std::to_string(mode_raw));
  if (get32(data, 28) != kSectionCount) bad("unexpected section count");
  const std::uint64_t total_hosts = get64(data, 32);
  const std::uint64_t advertised = get64(data, 40);
  const std::uint64_t address_count = get64(data, 48);
  const std::uint64_t live_count = get64(data, 56);

  // Section table: ids and element sizes are fixed, offsets must follow
  // the canonical packed-with-8-byte-alignment geometry exactly.
  std::uint64_t counts[kSectionCount];
  std::uint64_t offsets[kSectionCount];
  std::uint64_t expected = kHeaderSize;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t row = kSectionTableOffset + i * 24;
    if (get32(data, row) != kSpecs[i].id) bad("section table out of order");
    if (get32(data, row + 4) != kSpecs[i].elem_size) {
      bad("unexpected section element size");
    }
    counts[i] = get64(data, row + 8);
    offsets[i] = get64(data, row + 16);
    expected = align8(expected);
    if (offsets[i] != expected) {
      bad("misaligned or out-of-order section offset");
    }
    if (expected > data.size() ||
        counts[i] > (data.size() - expected) / kSpecs[i].elem_size) {
      bad("section exceeds file size");
    }
    expected += counts[i] * kSpecs[i].elem_size;
  }
  if (expected != data.size()) bad("trailing bytes after last section");

  const std::size_t cell_count = static_cast<std::size_t>(counts[3]);
  if (cell_count >= LpmIndex::kNoMatch) bad("partition too large");
  if (live_count > cell_count) bad("more live cells than slots");
  if (counts[0] != 0 && counts[0] != 65536) {
    bad("LPM root must hold 0 or 65536 words");
  }
  if (counts[0] == 0 &&
      (counts[1] != 0 || counts[2] != 0 || live_count != 0)) {
    bad("empty LPM root with non-empty structures");
  }
  if (counts[4] != live_count) bad("sorted view count != live cell count");
  if (counts[5] != 0 && counts[5] != cell_count) {
    bad("live bitmap must be empty or one byte per slot");
  }
  if (counts[5] == 0 && live_count != cell_count) {
    bad("live bitmap missing while slots are dead");
  }
  if (counts[6] != cell_count - live_count) {
    bad("free slot count != dead slot count");
  }
  if (counts[7] > live_count) bad("more ranked entries than live cells");

  // The sections, in place. The base is 8-byte aligned and every offset
  // is too, so each cast lands on correctly aligned storage; the bytes
  // are only ever read through these typed views. The sorted section is
  // viewed twice — as the partition's sorted cells and as the LpmIndex
  // entry table — which is exactly the content identity encode_image
  // enforced before sealing the image.
  const std::byte* base = data.data();
  const std::span<const std::uint32_t> root{
      reinterpret_cast<const std::uint32_t*>(base + offsets[0]),
      static_cast<std::size_t>(counts[0])};
  const std::span<const LpmIndex::Node> nodes{
      reinterpret_cast<const LpmIndex::Node*>(base + offsets[1]),
      static_cast<std::size_t>(counts[1])};
  const std::span<const std::uint32_t> leaves{
      reinterpret_cast<const std::uint32_t*>(base + offsets[2]),
      static_cast<std::size_t>(counts[2])};
  const std::span<const net::Prefix> prefixes{
      reinterpret_cast<const net::Prefix*>(base + offsets[3]), cell_count};
  const std::span<const SortedCell> sorted{
      reinterpret_cast<const SortedCell*>(base + offsets[4]),
      static_cast<std::size_t>(counts[4])};
  const std::span<const LpmIndex::Entry> entries{
      reinterpret_cast<const LpmIndex::Entry*>(base + offsets[4]),
      static_cast<std::size_t>(counts[4])};
  const std::span<const std::uint8_t> live{
      reinterpret_cast<const std::uint8_t*>(base + offsets[5]),
      static_cast<std::size_t>(counts[5])};
  const std::span<const std::uint32_t> free_slots{
      reinterpret_cast<const std::uint32_t*>(base + offsets[6]),
      static_cast<std::size_t>(counts[6])};
  const std::span<const RankedPrefix> ranked{
      reinterpret_cast<const RankedPrefix*>(base + offsets[7]),
      static_cast<std::size_t>(counts[7])};

  // The attach-time tier: one fused sweep in which every byte of
  // [kChecksummedFrom, end) streams through the wide FNV exactly once,
  // in file order, with each section's *memory-safety* bounds checked
  // right after its bytes pass through the hasher (cache-hot, so the
  // checks ride on the hash's bandwidth instead of paying a second
  // memory sweep). The bounds checks are written to hold on arbitrary
  // bytes: after them, no lookup/locate/tally/selection walk can index
  // out of bounds or shift out of range even on an image whose checksum
  // was deliberately forged. Semantic invariants (orders, bindings,
  // totals) are established by encode_image, integrity-protected by the
  // checksum, and re-derivable on demand via StateImage::verify().
  // Error precedence is unspecified: a corrupt image may be reported by
  // a bounds validator before the checksum verdict.
  util::WideFnv1a64 hasher;
  const auto hash_through = [&](std::uint64_t from, std::uint64_t to) {
    hasher.update(data.subspan(static_cast<std::size_t>(from),
                               static_cast<std::size_t>(to - from)));
  };
  std::uint64_t ends[kSectionCount];
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    ends[i] = offsets[i] + counts[i] * kSpecs[i].elem_size;
  }
  hash_through(kChecksummedFrom, offsets[0]);

  // LPM read structures: every index a lookup can chase stays in
  // bounds, and every non-child slot is covered by a leaf run at or
  // below it (which makes the rank_inclusive() - 1 addressing safe).
  const std::uint32_t node_count32 = static_cast<std::uint32_t>(counts[1]);
  const std::uint32_t cell_count32 = static_cast<std::uint32_t>(cell_count);
  hash_section(
      hasher, data, offsets[0], root,
      [&](std::uint32_t word) -> std::uint64_t {
        const std::uint64_t is_node = word >> 31;
        const std::uint32_t payload = word & ~LpmIndex::kNodeFlag;
        return (is_node & (payload >= node_count32)) |
               (~is_node & 1u & (word != LpmIndex::kNoMatch) &
                (word >= cell_count32));
      },
      "LPM root word out of range");
  hash_through(ends[0], offsets[1]);
  hash_section(
      hasher, data, offsets[1], nodes,
      [&](const LpmIndex::Node& node) -> std::uint64_t {
        const auto kids =
            static_cast<std::size_t>(std::popcount(node.child_bits));
        const auto runs =
            static_cast<std::size_t>(std::popcount(node.leaf_bits));
        const std::uint64_t oob =
            (node.child_base + kids > nodes.size()) |
            (node.leaf_base + runs > leaves.size());
        const std::uint64_t non_child = ~node.child_bits;
        // First slot that must be a leaf. The clamp keeps the shift in
        // range for the all-children case (countr_zero(0) == 64), whose
        // result the (non_child != 0) factor discards anyway.
        const int first = std::min(std::countr_zero(non_child), 63);
        const std::uint64_t uncovered =
            (non_child != 0) &
            ((node.leaf_bits & ((std::uint64_t{2} << first) - 1)) == 0);
        return oob | uncovered;
      },
      "LPM node references out-of-bounds or uncovered slots");
  hash_through(ends[1], offsets[2]);
  hash_section(
      hasher, data, offsets[2], leaves,
      [&](std::uint32_t value) -> std::uint64_t {
        return (value != LpmIndex::kNoMatch) & (value >= cell_count32);
      },
      "LPM leaf value out of range");
  hash_through(ends[2], offsets[3]);
  // Prefix lengths must stay <= 32 everywhere: Prefix::mask()/size() on
  // a wild length is a shift out of range, so this bound is a safety
  // property, not just hygiene.
  hash_section(
      hasher, data, offsets[3], prefixes,
      [&](net::Prefix prefix) -> std::uint64_t {
        return prefix.length() > 32;
      },
      "partition prefix length out of range");
  hash_through(ends[3], offsets[4]);
  // One pass covers both views of this section: SortedCell::slot is
  // LpmIndex::Entry::value, so the slot bound below is also the entry
  // value bound the lookup structures rely on.
  hash_section(
      hasher, data, offsets[4], sorted,
      [&](const SortedCell& cell) -> std::uint64_t {
        return (cell.slot >= cell_count32) | (cell.prefix.length() > 32);
      },
      "sorted view slot or prefix length out of range");
  hash_through(ends[4], offsets[6]);  // live bytes: any value is safe
  hash_section(
      hasher, data, offsets[6], free_slots,
      [&](std::uint32_t slot) -> std::uint64_t {
        return slot >= cell_count32;
      },
      "free list slot out of range");
  hash_through(ends[6], offsets[7]);
  hash_section(
      hasher, data, offsets[7], ranked,
      [&](const RankedPrefix& entry) -> std::uint64_t {
        return (entry.index >= cell_count32) |
               (entry.prefix.length() > 32);
      },
      "ranked entry index or prefix length out of range");
  hash_through(ends[7], data.size());

  // Depth-aware leaf coverage. The per-node rule above (first non-child
  // slot covered) is what first- and second-level lookups rely on, but
  // the third level is different: lookup() never consults child_bits
  // there ("the last level is always a leaf"), so a node reachable as a
  // grandchild must cover slot 0 with a leaf run outright — otherwise a
  // forged image could park a child-bits-only node at depth three and
  // make rank_inclusive() - 1 wrap below leaf_base. Walk reachability
  // per depth (deduplicated, so adversarial fan-in cannot blow up the
  // walk) and enforce the stronger rule on every depth-three node.
  if (!nodes.empty()) {
    std::vector<std::uint8_t> at_depth(nodes.size(), 0);
    std::vector<std::uint32_t> frontier;
    for (const std::uint32_t word : root) {
      if ((word & LpmIndex::kNodeFlag) == 0) continue;
      const std::uint32_t index = word & ~LpmIndex::kNodeFlag;
      if (at_depth[index] == 0) {
        at_depth[index] = 1;
        frontier.push_back(index);
      }
    }
    std::vector<std::uint32_t> next;
    for (std::uint8_t depth = 2; depth <= 3; ++depth) {
      next.clear();
      for (const std::uint32_t index : frontier) {
        const LpmIndex::Node& node = nodes[index];
        const auto kids =
            static_cast<std::uint32_t>(std::popcount(node.child_bits));
        for (std::uint32_t k = 0; k < kids; ++k) {
          const std::uint32_t child = node.child_base + k;
          if (at_depth[child] < depth) {
            at_depth[child] = depth;
            next.push_back(child);
          }
        }
      }
      std::swap(frontier, next);
      if (depth == 3) {
        for (const std::uint32_t index : frontier) {
          if ((nodes[index].leaf_bits & 1) == 0) {
            bad("third-level LPM node does not start with a leaf run");
          }
        }
      }
    }
  }

  if (hasher.digest() != checksum) {
    bad("checksum mismatch (corrupted file)");
  }

  Decoded decoded;
  decoded.partition = PrefixPartition::from_raw(
      {prefixes, sorted, live, free_slots, address_count, live_count},
      LpmIndex::from_raw({root, nodes, leaves, entries}));
  decoded.ranking = {static_cast<core::PrefixMode>(mode_raw), ranked,
                     total_hosts, advertised};
  decoded.info.version = version;
  decoded.info.mode = static_cast<core::PrefixMode>(mode_raw);
  decoded.info.fingerprint = fingerprint;
  decoded.info.checksum = checksum;
  decoded.info.total_hosts = total_hosts;
  decoded.info.advertised_addresses = advertised;
  decoded.info.address_count = address_count;
  decoded.info.cell_count = cell_count;
  decoded.info.live_cells = static_cast<std::size_t>(live_count);
  decoded.info.ranked_count = ranked.size();
  decoded.info.lpm_nodes = nodes.size();
  decoded.info.lpm_leaves = leaves.size();
  decoded.info.file_bytes = data.size();
  return decoded;
}

}  // namespace

std::vector<std::byte> encode_image(const bgp::PrefixPartition& partition,
                                    const core::DensityRanking& ranking) {
  check_prefix_layout();
  const PrefixPartition::Raw praw = partition.raw();
  const LpmIndex::Raw lraw = partition.index().raw();

  // Cross-validate so every encoded image passes its own loader; these
  // are API-misuse errors (tass::Error), not file corruption.
  if (ranking.advertised_addresses != praw.address_count) {
    throw Error("encode_image: ranking was built over a different space");
  }
  // The sorted view and the LpmIndex entry table must be the same
  // sequence (live cells ascending by prefix, slot as the value): the
  // image stores them as one section and serves both views from it.
  if (lraw.entries.size() != praw.sorted.size() ||
      lraw.entries.size() != praw.live_count) {
    throw Error("encode_image: partition index out of sync");
  }
  for (std::size_t i = 0; i < lraw.entries.size(); ++i) {
    if (lraw.entries[i].prefix != praw.sorted[i].prefix ||
        lraw.entries[i].value != praw.sorted[i].slot) {
      throw Error("encode_image: partition index out of sync");
    }
  }
  std::uint64_t hosts_sum = 0;
  for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
    const RankedPrefix& entry = ranking.ranked[i];
    if (entry.index >= partition.size() || !partition.live(entry.index) ||
        partition.prefix(entry.index) != entry.prefix ||
        entry.size != entry.prefix.size() || entry.hosts == 0) {
      throw Error("encode_image: ranking does not match the partition");
    }
    if (i > 0 && !core::ranked_before(ranking.ranked[i - 1], entry)) {
      throw Error("encode_image: ranking out of order");
    }
    hosts_sum += entry.hosts;
  }
  if (hosts_sum != ranking.total_hosts) {
    throw Error("encode_image: ranking host total mismatch");
  }

  const std::uint64_t counts[kSectionCount] = {
      lraw.root.size(),      lraw.nodes.size(),
      lraw.leaves.size(),    praw.prefixes.size(),
      praw.sorted.size(),    praw.live.size(),
      praw.free_slots.size(), ranking.ranked.size()};
  std::uint64_t offsets[kSectionCount];
  std::uint64_t size = kHeaderSize;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    size = align8(size);
    offsets[i] = size;
    size += counts[i] * kSpecs[i].elem_size;
  }

  // Value-initialised buffer: alignment padding and struct padding stay
  // zero, so identical state always encodes to identical bytes.
  std::vector<std::byte> out(static_cast<std::size_t>(size));
  const std::span<std::byte> buf{out};
  put32(buf, 0, kMagic);
  put32(buf, 4, kImageVersion);
  put64(buf, kFingerprintOffset, bgp::partition_fingerprint(partition));
  put32(buf, 24, static_cast<std::uint32_t>(ranking.mode));
  put32(buf, 28, kSectionCount);
  put64(buf, 32, ranking.total_hosts);
  put64(buf, 40, ranking.advertised_addresses);
  put64(buf, 48, praw.address_count);
  put64(buf, 56, praw.live_count);
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t row = kSectionTableOffset + i * 24;
    put32(buf, row, kSpecs[i].id);
    put32(buf, row + 4, kSpecs[i].elem_size);
    put64(buf, row + 8, counts[i]);
    put64(buf, row + 16, offsets[i]);
  }

  // Padding-free element types go out as one memcpy; prefix-bearing
  // types are written field by field so their padding bytes stay zero.
  const auto copy_section = [&](std::size_t index, const void* from,
                                std::size_t bytes) {
    if (bytes > 0) std::memcpy(out.data() + offsets[index], from, bytes);
  };
  copy_section(0, lraw.root.data(), lraw.root.size_bytes());
  copy_section(1, lraw.nodes.data(), lraw.nodes.size_bytes());
  copy_section(2, lraw.leaves.data(), lraw.leaves.size_bytes());
  for (std::size_t i = 0; i < praw.prefixes.size(); ++i) {
    put_prefix(buf, offsets[3] + i * sizeof(net::Prefix),
               praw.prefixes[i]);
  }
  for (std::size_t i = 0; i < praw.sorted.size(); ++i) {
    const std::size_t at = offsets[4] + i * sizeof(SortedCell);
    put_prefix(buf, at, praw.sorted[i].prefix);
    put32(buf, at + 8, praw.sorted[i].slot);
  }
  copy_section(5, praw.live.data(), praw.live.size_bytes());
  copy_section(6, praw.free_slots.data(), praw.free_slots.size_bytes());
  for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
    const RankedPrefix& entry = ranking.ranked[i];
    const std::size_t at = offsets[7] + i * sizeof(RankedPrefix);
    put32(buf, at, entry.index);
    put_prefix(buf, at + 4, entry.prefix);
    put64(buf, at + 16, entry.size);
    put64(buf, at + 24, entry.hosts);
    put64(buf, at + 32, std::bit_cast<std::uint64_t>(entry.density));
    put64(buf, at + 40, std::bit_cast<std::uint64_t>(entry.host_share));
  }

  put64(buf, kChecksumOffset,
        util::fnv1a64_wide(buf.subspan(kChecksummedFrom)));
  return out;
}

void save_image(const std::string& path,
                const bgp::PrefixPartition& partition,
                const core::DensityRanking& ranking) {
  const auto bytes = encode_image(partition, ranking);
  // Write-then-rename, never truncate in place: workers stay attached to
  // the old image via MAP_SHARED, so the old inode must live on until
  // their mappings go away (truncating under a mapping is a SIGBUS and
  // regrown bytes would mutate beneath already-validated views), and the
  // replacement becomes atomic — a concurrent load() sees either the old
  // or the new image, never a torn one.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot open state image for writing: " + temp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      throw Error("short write to state image: " + temp);
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    std::remove(temp.c_str());
    throw Error("cannot replace state image " + path + ": " +
                std::strerror(saved));
  }
}

StateImage StateImage::attach(std::span<const std::byte> data,
                              std::uint64_t expected_fingerprint) {
  Decoded decoded = validate(data, expected_fingerprint);
  StateImage image;
  image.partition_ = std::move(decoded.partition);
  image.ranking_ = decoded.ranking;
  image.info_ = decoded.info;
  return image;
}

StateImage StateImage::load(const std::string& path,
                            std::uint64_t expected_fingerprint) {
  util::MmapFile file = util::MmapFile::open(path);
  StateImage image = attach(file.bytes(), expected_fingerprint);
  image.file_ = std::move(file);
  return image;
}

void StateImage::verify() const {
  const PrefixPartition::Raw praw = partition_.raw();
  const LpmIndex::Raw lraw = partition_.index().raw();
  const std::span<const RankedPrefix> ranked = ranking_.ranked;
  const auto is_live = [&](std::uint64_t slot) {
    return praw.live.empty() ||
           praw.live[static_cast<std::size_t>(slot)] != 0;
  };

  for (const net::Prefix prefix : praw.prefixes) {
    if (!canonical(prefix)) bad("non-canonical partition prefix");
  }
  for (std::size_t i = 0; i < lraw.entries.size(); ++i) {
    const LpmIndex::Entry& entry = lraw.entries[i];
    if (!canonical(entry.prefix)) bad("non-canonical LPM entry prefix");
    if (!is_live(entry.value) ||
        praw.prefixes[entry.value] != entry.prefix) {
      bad("LPM entry does not map to its live cell");
    }
    if (i > 0 && !(lraw.entries[i - 1].prefix < entry.prefix)) {
      bad("LPM entries out of order");
    }
  }
  std::uint32_t max_last = 0;
  std::uint64_t address_sum = 0;
  for (std::size_t i = 0; i < praw.sorted.size(); ++i) {
    const SortedCell& cell = praw.sorted[i];
    if (!is_live(cell.slot) || praw.prefixes[cell.slot] != cell.prefix) {
      bad("sorted view does not match its live cell");
    }
    if (i > 0) {
      if (!(praw.sorted[i - 1].prefix < cell.prefix)) {
        bad("sorted view out of order");
      }
      if (cell.prefix.network().value() <= max_last) {
        bad("live cells overlap");
      }
    }
    max_last = cell.prefix.last().value();
    address_sum += cell.prefix.size();
  }
  if (address_sum != info_.address_count) {
    bad("live address total mismatch");
  }
  if (info_.advertised_addresses != info_.address_count) {
    bad("ranking advertised space != partition address count");
  }
  std::uint64_t live_seen = 0;
  for (const std::uint8_t flag : praw.live) {
    if (flag > 1) bad("live bitmap holds a non-boolean");
    live_seen += flag;
  }
  if (!praw.live.empty() && live_seen != info_.live_cells) {
    bad("live bitmap population != live cell count");
  }
  for (std::size_t i = 0; i < praw.free_slots.size(); ++i) {
    if (is_live(praw.free_slots[i])) bad("free list names a live slot");
    if (i > 0 && praw.free_slots[i - 1] >= praw.free_slots[i]) {
      bad("free list out of order");
    }
  }
  std::uint64_t hosts_sum = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const RankedPrefix& entry = ranked[i];
    if (!is_live(entry.index) ||
        praw.prefixes[entry.index] != entry.prefix ||
        entry.size != entry.prefix.size() || entry.hosts == 0) {
      bad("ranked entry does not match its live cell");
    }
    if (i > 0 && !core::ranked_before(ranked[i - 1], entry)) {
      bad("ranking out of order");
    }
    hosts_sum += entry.hosts;
  }
  if (hosts_sum != info_.total_hosts) bad("ranking host total mismatch");
}

}  // namespace tass::state
