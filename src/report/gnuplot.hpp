// Gnuplot script emission: turns a SeriesSet into a self-contained .gp
// script (data inlined via heredoc) so every figure bench can hand the
// user something directly plottable.
#pragma once

#include <string>

#include "report/series.hpp"

namespace tass::report {

struct GnuplotOptions {
  std::string title;
  std::string x_label = "Time [month/year]";
  std::string y_label = "Hitrate";
  double y_min = 0.0;
  double y_max = 1.0;
  std::string terminal = "pngcairo size 900,500";
  std::string output = "figure.png";
};

/// Renders a gnuplot script that plots every series in `set` as a line
/// with points, data inlined (no side files needed).
std::string to_gnuplot(const SeriesSet& set, const GnuplotOptions& options);

}  // namespace tass::report
