#include "report/gnuplot.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::report {

std::string to_gnuplot(const SeriesSet& set, const GnuplotOptions& options) {
  const auto& series = set.series();
  TASS_EXPECTS(!series.empty());
  for (const auto& [name, values] : series) {
    TASS_EXPECTS(values.size() == set.ticks().size());
  }

  std::ostringstream out;
  out << "set terminal " << options.terminal << "\n";
  out << "set output '" << options.output << "'\n";
  if (!options.title.empty()) out << "set title '" << options.title << "'\n";
  out << "set xlabel '" << options.x_label << "'\n";
  out << "set ylabel '" << options.y_label << "'\n";
  out << "set yrange [" << util::fixed(options.y_min, 3) << ":"
      << util::fixed(options.y_max, 3) << "]\n";
  out << "set key outside right\n";
  out << "set grid\n";

  // Inline data block: x index, tic label, one column per series.
  out << "$data << EOD\n";
  for (std::size_t row = 0; row < set.ticks().size(); ++row) {
    out << row << " \"" << set.ticks()[row] << '"';
    for (const auto& [name, values] : series) {
      out << ' ' << util::fixed(values[row], 4);
    }
    out << '\n';
  }
  out << "EOD\n";

  out << "plot ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out << ", \\\n     ";
    out << "$data using 1:" << (i + 3) << ":xtic(2) with linespoints title '"
        << series[i].first << "'";
  }
  out << '\n';
  return out.str();
}

}  // namespace tass::report
