#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::report {

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TASS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TASS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(std::uint64_t value) {
  return util::with_thousands(value);
}

std::string Table::cell(double value, int digits) {
  return util::fixed(value, digits);
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule_width += widths[i] + (i == 0 ? 0 : 2);
  }
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << " | ";
      out << row[i];
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  return out << table.to_text();
}

}  // namespace tass::report
