// Small column-aligned table builder for the bench binaries: plain text
// for terminals, CSV and Markdown for downstream tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tass::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string cell(std::string_view text) { return std::string(text); }
  static std::string cell(std::uint64_t value);
  static std::string cell(double value, int digits = 3);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Space-padded fixed-width text.
  std::string to_text() const;
  /// RFC 4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;
  /// GitHub-flavoured Markdown.
  std::string to_markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& out, const Table& table);

}  // namespace tass::report
