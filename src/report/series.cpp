#include "report/series.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::report {

SeriesSet::SeriesSet(std::string x_label) : x_label_(std::move(x_label)) {}

void SeriesSet::add_series(std::string name, std::vector<double> values) {
  series_.emplace_back(std::move(name), std::move(values));
}

void SeriesSet::set_ticks(std::vector<std::string> ticks) {
  ticks_ = std::move(ticks);
}

std::string SeriesSet::to_tsv() const {
  std::size_t length = ticks_.size();
  for (const auto& [name, values] : series_) {
    TASS_EXPECTS(values.size() == length);
  }

  std::ostringstream out;
  out << x_label_;
  for (const auto& [name, values] : series_) out << '\t' << name;
  out << '\n';
  for (std::size_t row = 0; row < length; ++row) {
    out << ticks_[row];
    for (const auto& [name, values] : series_) {
      out << '\t' << util::fixed(values[row], 4);
    }
    out << '\n';
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const SeriesSet& set) {
  return out << set.to_tsv();
}

}  // namespace tass::report
