// Time-series emitter: gnuplot-friendly TSV with one labelled x column and
// any number of named series (the shape of the paper's Figures 5 and 6).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tass::report {

class SeriesSet {
 public:
  explicit SeriesSet(std::string x_label);

  /// Adds a named series; all series must have equal length when emitted.
  void add_series(std::string name, std::vector<double> values);

  /// Sets the x-axis tick labels (e.g. month labels).
  void set_ticks(std::vector<std::string> ticks);

  /// Tab-separated: header row, then one row per tick.
  std::string to_tsv() const;

  const std::string& x_label() const noexcept { return x_label_; }
  const std::vector<std::string>& ticks() const noexcept { return ticks_; }
  const std::vector<std::pair<std::string, std::vector<double>>>& series()
      const noexcept {
    return series_;
  }

 private:
  std::string x_label_;
  std::vector<std::string> ticks_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

std::ostream& operator<<(std::ostream& out, const SeriesSet& set);

}  // namespace tass::report
