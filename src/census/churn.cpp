#include "census/churn.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::census {

namespace {

using util::Rng;

void sort_unique(std::vector<std::uint32_t>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

}  // namespace

Snapshot advance_month(const Snapshot& previous,
                       const ProtocolProfile& profile, std::uint64_t seed) {
  const auto topology = previous.topology_ptr();
  const Topology& topo = *topology;
  Rng rng(util::mix64(
      util::mix64(seed, static_cast<std::uint64_t>(profile.protocol)),
      static_cast<std::uint64_t>(previous.month_index()) + 1));

  const std::size_t cell_count = topo.m_partition.size();
  const auto prev_counts = previous.counts_per_cell();
  const auto prev_l_counts = previous.counts_per_l();
  const std::uint64_t population = previous.total_hosts();

  std::vector<CellPopulation> next(cell_count);

  // --- Survival, volatility reshuffle ------------------------------------
  std::uint64_t deaths = 0;
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    const CellPopulation& old_cell = previous.cell(cell);
    const std::uint64_t cell_size = topo.m_partition.prefix(cell).size();

    for (const std::uint32_t offset : old_cell.stable) {
      if (rng.chance(profile.monthly_death_rate)) {
        ++deaths;
      } else {
        next[cell].stable.push_back(offset);  // static address persists
      }
    }
    for (const std::uint32_t offset : old_cell.volatile_hosts) {
      (void)offset;  // the old dynamic address is released regardless
      if (rng.chance(profile.monthly_death_rate)) {
        ++deaths;
        continue;
      }
      if (rng.chance(profile.volatile_cross_cell)) {
        // DHCP pool spanning prefixes: re-appear anywhere in the covering
        // l-prefix; picking a uniform address weights cells by size.
        const std::uint32_t l_index = topo.cell_to_l[cell];
        const net::Prefix l_prefix = topo.l_partition.prefix(l_index);
        const net::Ipv4Address addr =
            l_prefix.at(rng.bounded(l_prefix.size()));
        const auto dest = topo.m_partition.locate(addr);
        TASS_ENSURES(dest.has_value());
        next[*dest].volatile_hosts.push_back(static_cast<std::uint32_t>(
            topo.m_partition.prefix(*dest).offset_of(addr)));
      } else {
        next[cell].volatile_hosts.push_back(
            static_cast<std::uint32_t>(rng.bounded(cell_size)));
      }
    }
  }

  // --- Births (stationary population) ------------------------------------
  const std::uint64_t births = deaths;
  auto quota = [&](double rate) {
    return static_cast<std::uint64_t>(
        std::llround(rate * static_cast<double>(population)));
  };
  std::uint64_t births_empty_l =
      std::min(births, quota(profile.empty_l_birth_rate));
  std::uint64_t births_empty_m =
      std::min(births - births_empty_l, quota(profile.empty_m_birth_rate));
  std::uint64_t births_occupied = births - births_empty_l - births_empty_m;

  // Destination pools, judged against the *previous* month.
  std::vector<std::uint32_t> empty_m_cells;    // empty cell, occupied l
  std::vector<double> empty_m_weights;
  std::vector<std::uint32_t> empty_l_cells;    // any cell of an empty l
  std::vector<double> empty_l_weights;
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    if (prev_counts[cell] != 0) continue;
    const std::uint32_t l_index = topo.cell_to_l[cell];
    const auto size =
        static_cast<double>(topo.m_partition.prefix(cell).size());
    if (prev_l_counts[l_index] > 0) {
      empty_m_cells.push_back(cell);
      // Weight by the covering l-prefix's population as well as the cell
      // size: new deployments overwhelmingly appear inside networks that
      // already run the service. Without this, l-prefixes seeded by a
      // single empty-l birth would soak up later empty-m births and the
      // l-granularity decay would overshoot the paper's ~0.3%/month.
      empty_m_weights.push_back(
          size * static_cast<double>(prev_l_counts[l_index]));
    } else {
      empty_l_cells.push_back(cell);
      empty_l_weights.push_back(size);
    }
  }
  if (empty_m_cells.empty()) {
    births_occupied += births_empty_m;
    births_empty_m = 0;
  }
  if (empty_l_cells.empty()) {
    births_occupied += births_empty_l;
    births_empty_l = 0;
  }

  const auto place_birth = [&](std::uint32_t cell) {
    const std::uint64_t cell_size = topo.m_partition.prefix(cell).size();
    const auto offset = static_cast<std::uint32_t>(rng.bounded(cell_size));
    if (rng.chance(profile.volatile_fraction)) {
      next[cell].volatile_hosts.push_back(offset);
    } else {
      next[cell].stable.push_back(offset);
    }
  };

  if (births_occupied > 0) {
    // Preferential attachment: growth proportional to existing density.
    std::vector<double> weights(prev_counts.begin(), prev_counts.end());
    const util::DiscreteSampler sampler(weights);
    if (sampler.total() > 0) {
      for (std::uint64_t i = 0; i < births_occupied; ++i) {
        place_birth(static_cast<std::uint32_t>(sampler.sample(rng)));
      }
    }
  }
  if (births_empty_m > 0) {
    const util::DiscreteSampler sampler(empty_m_weights);
    for (std::uint64_t i = 0; i < births_empty_m; ++i) {
      place_birth(empty_m_cells[sampler.sample(rng)]);
    }
  }
  if (births_empty_l > 0) {
    const util::DiscreteSampler sampler(empty_l_weights);
    for (std::uint64_t i = 0; i < births_empty_l; ++i) {
      place_birth(empty_l_cells[sampler.sample(rng)]);
    }
  }

  // --- Normalise (sorted, duplicate-free, stable wins collisions) --------
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    sort_unique(next[cell].stable);
    sort_unique(next[cell].volatile_hosts);
    if (!next[cell].stable.empty() && !next[cell].volatile_hosts.empty()) {
      std::vector<std::uint32_t> pruned;
      pruned.reserve(next[cell].volatile_hosts.size());
      std::set_difference(next[cell].volatile_hosts.begin(),
                          next[cell].volatile_hosts.end(),
                          next[cell].stable.begin(), next[cell].stable.end(),
                          std::back_inserter(pruned));
      next[cell].volatile_hosts = std::move(pruned);
    }
  }

  return Snapshot(topology, previous.protocol(), previous.month_index() + 1,
                  std::move(next));
}

}  // namespace tass::census
