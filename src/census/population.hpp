// Month-0 host population synthesis.
//
// Places a protocol's hosts over the m-partition so that the Lorenz curve
// of host mass over density-ranked address space matches the protocol's
// calibrated tier table (interpolated from the paper's Table 1), with the
// paper's structural features: a share of the advertised space lies in
// entirely host-free l-prefixes, dense tiers prefer small high-affinity
// cells, and a per-protocol fraction of hosts sits on volatile (dynamic)
// addresses.
#pragma once

#include <memory>

#include "census/protocol.hpp"
#include "census/snapshot.hpp"
#include "census/topology.hpp"

namespace tass::census {

struct PopulationParams {
  /// Scales ProtocolProfile::base_hosts down to simulation size. The
  /// default yields a few hundred thousand hosts per protocol.
  double host_scale = 0.02;
  std::uint64_t seed = 7;
};

/// Generates the t0 snapshot for one protocol. Deterministic in
/// (params.seed, profile.protocol).
Snapshot generate_population(std::shared_ptr<const Topology> topology,
                             const ProtocolProfile& profile,
                             const PopulationParams& params);

}  // namespace tass::census
