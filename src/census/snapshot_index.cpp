#include "census/snapshot_index.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "census/snapshot.hpp"
#include "util/error.hpp"

namespace tass::census {

namespace {

constexpr std::uint64_t kAllOnes = ~0ULL;

// Walks the stored 64-bit words overlapping the inclusive interval,
// passing each word's base address and its contents masked to the
// interval — the one place the page/word/bit boundary arithmetic lives;
// count and collect are both folds over this walk.
template <typename Fn>
void for_each_masked_word(std::span<const std::uint32_t> page_ids,
                          std::span<const std::uint64_t> words,
                          net::Interval interval, Fn&& fn) {
  const std::uint32_t first = interval.first.value();
  const std::uint32_t last = interval.last.value();
  const auto begin =
      std::lower_bound(page_ids.begin(), page_ids.end(),
                       first >> SnapshotIndex::kPageBits);
  for (auto it = begin; it != page_ids.end(); ++it) {
    const std::uint32_t base = *it << SnapshotIndex::kPageBits;
    if (base > last) break;
    const std::uint32_t lo = std::max(first, base);
    const std::uint32_t hi =
        std::min(last, base + (SnapshotIndex::kPageSize - 1));
    const std::uint32_t w_lo = (lo - base) >> 6;
    const std::uint32_t w_hi = (hi - base) >> 6;
    const std::uint64_t* page =
        &words[static_cast<std::size_t>(it - page_ids.begin()) *
               SnapshotIndex::kWordsPerPage];
    for (std::uint32_t w = w_lo; w <= w_hi; ++w) {
      std::uint64_t word = page[w];
      if (w == w_lo) word &= kAllOnes << ((lo - base) & 63);
      if (w == w_hi) word &= kAllOnes >> (63 - ((hi - base) & 63));
      fn(base + (w << 6), word);
    }
  }
}

}  // namespace

SnapshotIndex::SnapshotIndex(const Snapshot& snapshot) {
  insert_sorted(snapshot.addresses());
}

SnapshotIndex::SnapshotIndex(const std::vector<std::uint32_t>& addresses) {
  insert_sorted(addresses);
}

void SnapshotIndex::insert_sorted(const std::vector<std::uint32_t>& addresses) {
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const std::uint32_t addr = addresses[i];
    TASS_EXPECTS(i == 0 || addresses[i - 1] < addr);
    const std::uint32_t page_id = addr >> kPageBits;
    if (page_ids_.empty() || page_ids_.back() != page_id) {
      page_ids_.push_back(page_id);
      words_.resize(words_.size() + kWordsPerPage, 0);
    }
    const std::uint32_t offset = addr & (kPageSize - 1);
    std::uint64_t* page = &words_[(page_ids_.size() - 1) * kWordsPerPage];
    page[offset >> 6] |= 1ULL << (offset & 63);
  }
  total_ = addresses.size();
}

std::size_t SnapshotIndex::page_lower_bound(
    std::uint32_t page_id) const noexcept {
  return static_cast<std::size_t>(
      std::lower_bound(page_ids_.begin(), page_ids_.end(), page_id) -
      page_ids_.begin());
}

bool SnapshotIndex::contains(net::Ipv4Address addr) const noexcept {
  const std::uint32_t page_id = addr.value() >> kPageBits;
  const std::size_t slot = page_lower_bound(page_id);
  if (slot == page_ids_.size() || page_ids_[slot] != page_id) return false;
  const std::uint32_t offset = addr.value() & (kPageSize - 1);
  const std::uint64_t word = words_[slot * kWordsPerPage + (offset >> 6)];
  return (word >> (offset & 63)) & 1;
}

std::uint64_t SnapshotIndex::count_responsive(
    net::Interval interval) const noexcept {
  std::uint64_t total = 0;
  for_each_masked_word(page_ids_, words_, interval,
                       [&](std::uint32_t, std::uint64_t word) {
                         total += static_cast<std::uint64_t>(
                             std::popcount(word));
                       });
  return total;
}

void SnapshotIndex::collect_responsive(net::Interval interval,
                                       std::vector<std::uint32_t>& out) const {
  for_each_masked_word(page_ids_, words_, interval,
                       [&](std::uint32_t word_base, std::uint64_t word) {
                         while (word != 0) {
                           const unsigned bit = static_cast<unsigned>(
                               std::countr_zero(word));
                           out.push_back(word_base + bit);
                           word &= word - 1;
                         }
                       });
}

}  // namespace tass::census
