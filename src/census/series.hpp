// CensusSeries: a sequence of monthly ground-truth snapshots for one
// protocol — the stand-in for the paper's 09/2015–03/2016 censys.io
// snapshot series (7 measurements).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "census/churn.hpp"
#include "census/population.hpp"
#include "census/protocol.hpp"
#include "census/snapshot.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "scan/sampled_scope.hpp"

namespace tass::census {

struct SeriesParams {
  int months = 7;             // the paper uses 7 monthly measurements
  double host_scale = 0.02;   // see PopulationParams
  std::uint64_t seed = 7;
};

class CensusSeries {
 public:
  /// Generates `params.months` monthly snapshots for the protocol over the
  /// shared topology. Deterministic in (params.seed, protocol).
  static CensusSeries generate(std::shared_ptr<const Topology> topology,
                               Protocol protocol, const SeriesParams& params);

  Protocol protocol() const noexcept { return protocol_; }
  const Topology& topology() const noexcept { return *topology_; }
  std::shared_ptr<const Topology> topology_ptr() const noexcept {
    return topology_;
  }

  std::span<const Snapshot> months() const noexcept { return snapshots_; }
  const Snapshot& month(int index) const {
    TASS_EXPECTS(index >= 0 &&
                 static_cast<std::size_t>(index) < snapshots_.size());
    return snapshots_[static_cast<std::size_t>(index)];
  }
  int month_count() const noexcept {
    return static_cast<int>(snapshots_.size());
  }

 private:
  CensusSeries(std::shared_ptr<const Topology> topology, Protocol protocol,
               std::vector<Snapshot> snapshots)
      : topology_(std::move(topology)),
        protocol_(protocol),
        snapshots_(std::move(snapshots)) {}

  std::shared_ptr<const Topology> topology_;
  Protocol protocol_;
  std::vector<Snapshot> snapshots_;
};

/// One month of a sampled trend series: the statistical estimate next to
/// the exhaustive truth over the same sampling frame.
struct SampledTrendPoint {
  int month_index = 0;
  std::uint64_t truth_hosts = 0;  // exhaustive count over the design frame
  double estimated_hosts = 0.0;
  double low = 0.0;   // confidence interval on estimated_hosts
  double high = 0.0;
  std::uint64_t probes_sent = 0;
  std::uint64_t frame_units = 0;  // exhaustive cost of the same frame

  bool ci_covers_truth() const noexcept {
    const double truth = static_cast<double>(truth_hosts);
    return truth >= low && truth <= high;
  }
};

/// Tracks the series' population month over month with sampled scans
/// instead of exhaustive sweeps: the ranking and the budget allocation
/// are planned once from the month-0 snapshot (the paper's seed-census
/// role), and the *same* drawn target list is re-probed against every
/// month — so trend deltas reflect churn, not sampling noise.
/// Deterministic in (series, mode, params).
std::vector<SampledTrendPoint> sampled_trend(const CensusSeries& series,
                                             core::PrefixMode mode,
                                             const scan::SampleParams& params,
                                             double confidence = 0.95);

}  // namespace tass::census
