#include "census/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace tass::census {

Snapshot::Snapshot(std::shared_ptr<const Topology> topology,
                   Protocol protocol, int month_index,
                   std::vector<CellPopulation> cells)
    : topology_(std::move(topology)),
      protocol_(protocol),
      month_index_(month_index),
      cells_(std::move(cells)) {
  TASS_EXPECTS(topology_ != nullptr);
  TASS_EXPECTS(cells_.size() == topology_->m_partition.size());
  for (std::uint32_t index = 0; index < cells_.size(); ++index) {
    const CellPopulation& cell = cells_[index];
    TASS_EXPECTS(std::is_sorted(cell.stable.begin(), cell.stable.end()));
    TASS_EXPECTS(std::is_sorted(cell.volatile_hosts.begin(),
                                cell.volatile_hosts.end()));
    const std::uint64_t cell_size = topology_->m_partition.prefix(index).size();
    TASS_EXPECTS(cell.stable.empty() || cell.stable.back() < cell_size);
    TASS_EXPECTS(cell.volatile_hosts.empty() ||
                 cell.volatile_hosts.back() < cell_size);
    total_hosts_ += cell.size();
  }
}

std::vector<std::uint32_t> Snapshot::counts_per_cell() const {
  std::vector<std::uint32_t> counts(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(cells_[i].size());
  }
  return counts;
}

std::vector<std::uint32_t> Snapshot::counts_per_l() const {
  std::vector<std::uint32_t> counts(topology_->l_partition.size(), 0);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    counts[topology_->cell_to_l[i]] +=
        static_cast<std::uint32_t>(cells_[i].size());
  }
  return counts;
}

bool Snapshot::contains(net::Ipv4Address addr) const {
  const auto cell_index = topology_->m_partition.locate(addr);
  if (!cell_index) return false;
  const std::uint32_t offset = static_cast<std::uint32_t>(
      topology_->m_partition.prefix(*cell_index).offset_of(addr));
  const CellPopulation& cell = cells_[*cell_index];
  return std::binary_search(cell.stable.begin(), cell.stable.end(), offset) ||
         std::binary_search(cell.volatile_hosts.begin(),
                            cell.volatile_hosts.end(), offset);
}

std::vector<std::uint32_t> Snapshot::addresses() const {
  std::vector<std::uint32_t> out;
  out.reserve(total_hosts_);
  for_each_address([&](net::Ipv4Address addr) { out.push_back(addr.value()); });
  std::sort(out.begin(), out.end());
  return out;
}

std::string month_label(int month_index) {
  TASS_EXPECTS(month_index >= 0);
  const int month = (8 + month_index) % 12 + 1;   // September 2015 = index 0
  const int year = 15 + (8 + month_index) / 12;
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%02d/%02d", month, year);
  return buffer;
}

}  // namespace tass::census
