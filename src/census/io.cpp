#include "census/io.hpp"

#include <fstream>

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace tass::census {

namespace {

using util::ByteReader;
using util::ByteWriter;

constexpr std::uint32_t kSnapshotMagic = 0x54534E50;  // "TSNP"
constexpr std::uint32_t kSeriesMagic = 0x54534552;    // "TSER"
constexpr std::uint16_t kVersion = 1;

void write_varint(ByteWriter& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.u8(static_cast<std::uint8_t>(value));
}

std::uint64_t read_varint(ByteReader& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) throw FormatError("varint overflow");
    const std::uint8_t byte = in.u8();
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

// Sorted offsets -> first value + deltas, all varint.
void write_offsets(ByteWriter& out,
                   const std::vector<std::uint32_t>& offsets) {
  write_varint(out, offsets.size());
  std::uint32_t previous = 0;
  bool first = true;
  for (const std::uint32_t offset : offsets) {
    write_varint(out, first ? offset : offset - previous);
    previous = offset;
    first = false;
  }
}

std::vector<std::uint32_t> read_offsets(ByteReader& in,
                                        std::uint64_t cell_size) {
  const std::uint64_t count = read_varint(in);
  if (count > cell_size) {
    throw FormatError("offset list larger than its cell");
  }
  std::vector<std::uint32_t> offsets;
  offsets.reserve(count);
  std::uint64_t current = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t delta = read_varint(in);
    if (i == 0) {
      current = delta;
    } else {
      if (delta == 0) {
        throw FormatError("offsets must be strictly increasing");
      }
      current += delta;
    }
    if (current >= cell_size) {
      throw FormatError("offset out of cell bounds");
    }
    offsets.push_back(static_cast<std::uint32_t>(current));
  }
  return offsets;
}

void encode_snapshot_into(const Snapshot& snapshot, ByteWriter& out) {
  const Topology& topo = snapshot.topology();
  out.u32(kSnapshotMagic);
  out.u16(kVersion);
  out.u8(static_cast<std::uint8_t>(snapshot.protocol()));
  out.u32(static_cast<std::uint32_t>(snapshot.month_index()));
  out.u32(static_cast<std::uint32_t>(snapshot.cell_count()));
  out.u64(topology_fingerprint(topo));

  const std::size_t payload_begin = out.size();
  for (std::uint32_t cell = 0; cell < snapshot.cell_count(); ++cell) {
    write_offsets(out, snapshot.cell(cell).stable);
    write_offsets(out, snapshot.cell(cell).volatile_hosts);
  }
  const std::uint64_t checksum = util::fnv1a64(
      out.view().subspan(payload_begin, out.size() - payload_begin));
  out.u64(snapshot.total_hosts());
  out.u64(checksum);
}

Snapshot decode_snapshot_from(ByteReader& in,
                              std::shared_ptr<const Topology> topology) {
  TASS_EXPECTS(topology != nullptr);
  if (in.u32() != kSnapshotMagic) {
    throw FormatError("not a TASS snapshot (bad magic)");
  }
  if (const std::uint16_t version = in.u16(); version != kVersion) {
    throw FormatError("unsupported snapshot version " +
                      std::to_string(version));
  }
  const std::uint8_t protocol_id = in.u8();
  if (protocol_id >= kProtocolCount) {
    throw FormatError("unknown protocol id " + std::to_string(protocol_id));
  }
  const auto month = static_cast<int>(in.u32());
  const std::uint32_t cell_count = in.u32();
  if (cell_count != topology->m_partition.size()) {
    throw FormatError("snapshot cell count does not match the topology");
  }
  if (in.u64() != topology_fingerprint(*topology)) {
    throw FormatError("snapshot was produced for a different topology");
  }

  // Payload with checksum verification: remember where it starts.
  const std::size_t payload_begin = in.position();
  std::vector<CellPopulation> cells(cell_count);
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    const std::uint64_t cell_size =
        topology->m_partition.prefix(cell).size();
    cells[cell].stable = read_offsets(in, cell_size);
    cells[cell].volatile_hosts = read_offsets(in, cell_size);
  }
  const std::size_t payload_end = in.position();
  const std::uint64_t total = in.u64();
  const std::uint64_t checksum = in.u64();
  (void)payload_begin;
  (void)payload_end;

  Snapshot snapshot(std::move(topology),
                    static_cast<Protocol>(protocol_id), month,
                    std::move(cells));
  if (snapshot.total_hosts() != total) {
    throw FormatError("snapshot host count mismatch");
  }
  (void)checksum;  // verified by the span-level wrappers below
  return snapshot;
}

}  // namespace

std::uint64_t topology_fingerprint(const Topology& topology) {
  // One digest definition for every topology binding: TSNP snapshots
  // and TSIM state images of the same m-partition share it. The shared
  // digest hashes the live cells; census topologies are immutable and
  // always freshly built (every slot live), so this is byte-identical
  // to the historical all-slot digest for every snapshot ever written —
  // and decode_snapshot_from additionally pins the total cell count.
  return bgp::partition_fingerprint(topology.m_partition);
}

std::vector<std::byte> encode_snapshot(const Snapshot& snapshot) {
  ByteWriter out;
  encode_snapshot_into(snapshot, out);
  return std::move(out).take();
}

Snapshot decode_snapshot(std::span<const std::byte> data,
                         std::shared_ptr<const Topology> topology) {
  // Verify the trailing checksum before structural decoding: the payload
  // spans from the fixed 23-byte header to 16 bytes before the end.
  constexpr std::size_t kHeaderSize = 4 + 2 + 1 + 4 + 4 + 8;
  constexpr std::size_t kFooterSize = 16;
  if (data.size() < kHeaderSize + kFooterSize) {
    throw FormatError("snapshot too short");
  }
  const auto payload =
      data.subspan(kHeaderSize, data.size() - kHeaderSize - kFooterSize);
  util::ByteReader footer(data.subspan(data.size() - 8, 8));
  if (util::fnv1a64(payload) != footer.u64()) {
    throw FormatError("snapshot checksum mismatch (corrupted file)");
  }
  ByteReader in(data);
  Snapshot snapshot = decode_snapshot_from(in, std::move(topology));
  if (!in.done()) {
    throw FormatError("trailing bytes after snapshot");
  }
  return snapshot;
}

void save_snapshot(const std::string& path, const Snapshot& snapshot) {
  const auto bytes = encode_snapshot(snapshot);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open snapshot file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("short write to snapshot file: " + path);
}

Snapshot load_snapshot(const std::string& path,
                       std::shared_ptr<const Topology> topology) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open snapshot file: " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return decode_snapshot(std::as_bytes(std::span(raw)), std::move(topology));
}

std::vector<std::byte> encode_series(std::span<const Snapshot> months) {
  TASS_EXPECTS(!months.empty());
  ByteWriter out;
  out.u32(kSeriesMagic);
  out.u16(kVersion);
  out.u32(static_cast<std::uint32_t>(months.size()));
  for (const Snapshot& snapshot : months) {
    const auto encoded = encode_snapshot(snapshot);
    out.u32(static_cast<std::uint32_t>(encoded.size()));
    out.bytes(encoded);
  }
  return std::move(out).take();
}

std::vector<Snapshot> decode_series(std::span<const std::byte> data,
                                    std::shared_ptr<const Topology> topology) {
  ByteReader in(data);
  if (in.u32() != kSeriesMagic) {
    throw FormatError("not a TASS series (bad magic)");
  }
  if (const std::uint16_t version = in.u16(); version != kVersion) {
    throw FormatError("unsupported series version " +
                      std::to_string(version));
  }
  const std::uint32_t count = in.u32();
  std::vector<Snapshot> months;
  months.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = in.u32();
    const auto blob = in.bytes(length);
    months.push_back(decode_snapshot(blob, topology));
  }
  if (!in.done()) throw FormatError("trailing bytes after series");
  return months;
}

}  // namespace tass::census
