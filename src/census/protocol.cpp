#include "census/protocol.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace tass::census {

namespace {

constexpr std::array<Protocol, 4> kPaperProtocols{
    Protocol::kFtp, Protocol::kHttp, Protocol::kHttps, Protocol::kCwmp};

constexpr std::array<Protocol, kProtocolCount> kAllProtocols{
    Protocol::kFtp,  Protocol::kHttp, Protocol::kHttps,
    Protocol::kCwmp, Protocol::kSsh,  Protocol::kTelnet};

// Tier tables interpolate the paper's Table 1 m-prefix column at
// phi = 0.5, 0.7, 0.95, 0.99 and 1.0: the densest `space_share` slice of
// the advertised space carries `host_share` of all hosts. The zero tier is
// implicit (remaining space, zero hosts). empty_l_space_share mirrors the
// l-prefix column at phi = 1 (space inside completely host-free
// l-prefixes). Churn is calibrated against Figures 5/6: hitlist hitrate
// (1-volatile)(1-death)^t, l-TASS decay ~ empty_l rate, m-TASS decay ~
// empty_l + empty_m rates.
constexpr std::array<ProtocolProfile, kProtocolCount> kProfiles{{
    // FTP: Table 1 m: .006/.023/.206/.371/.574; l at phi=1: .762.
    {Protocol::kFtp,
     20e6,
     {{{0.006, 0.50}, {0.017, 0.20}, {0.183, 0.25}, {0.165, 0.04},
       {0.203, 0.01}}},
     0.238,
     {{1.0, 0.7, 0.25, 0.6, 0.05}},
     0.25,
     0.35,
     /*volatile_fraction=*/0.18, /*volatile_cross_cell=*/0.002,
     /*monthly_death_rate=*/0.024,
     /*empty_m_birth_rate=*/0.0004, /*empty_l_birth_rate=*/0.0030,
     /*handshake_packets=*/6},
    // HTTP: Table 1 m: .017/.048/.279/.440/.648; l at phi=1: .828.
    {Protocol::kHttp,
     60e6,
     {{{0.017, 0.50}, {0.031, 0.20}, {0.231, 0.25}, {0.161, 0.04},
       {0.208, 0.01}}},
     0.172,
     {{1.0, 0.8, 0.35, 0.7, 0.10}},
     0.25,
     0.35,
     0.18, 0.002,
     0.023,
     0.0012, 0.0030,
     8},
    // HTTPS: Table 1 m: .020/.052/.262/.427/.645; l at phi=1: .832.
    {Protocol::kHttps,
     45e6,
     {{{0.020, 0.50}, {0.032, 0.20}, {0.210, 0.25}, {0.165, 0.04},
       {0.218, 0.01}}},
     0.168,
     {{1.0, 0.8, 0.30, 0.7, 0.10}},
     0.25,
     0.35,
     0.17, 0.002,
     0.022,
     0.0012, 0.0030,
     12},
    // CWMP: Table 1 m: .021/.037/.085/.113/.332; l at phi=1: .477.
    // Residential gateways: high dynamic-IP churn (Figure 5 drops to .43).
    {Protocol::kCwmp,
     45e6,
     {{{0.021, 0.50}, {0.016, 0.20}, {0.048, 0.25}, {0.028, 0.04},
       {0.219, 0.01}}},
     0.523,
     {{0.02, 0.05, 1.0, 0.02, 0.0}},
     0.20,
     0.35,
     0.35, 0.010,
     0.070,
     0.0038, 0.0030,
     8},
    // SSH (extension; not in the paper's evaluated set).
    {Protocol::kSsh,
     18e6,
     {{{0.008, 0.50}, {0.020, 0.20}, {0.190, 0.25}, {0.160, 0.04},
       {0.200, 0.01}}},
     0.25,
     {{1.0, 0.6, 0.20, 0.8, 0.15}},
     0.25,
     0.35,
     0.20, 0.002,
     0.030,
     0.0006, 0.0030,
     10},
    // Telnet (extension): CPE-heavy deployment, volatile like CWMP.
    {Protocol::kTelnet,
     12e6,
     {{{0.015, 0.50}, {0.018, 0.20}, {0.070, 0.25}, {0.060, 0.04},
       {0.220, 0.01}}},
     0.45,
     {{0.3, 0.4, 1.0, 0.2, 0.3}},
     0.22,
     0.35,
     0.30, 0.008,
     0.055,
     0.0028, 0.0030,
     6},
}};

constexpr std::array<std::string_view, kProtocolCount> kNames{
    "ftp", "http", "https", "cwmp", "ssh", "telnet"};

constexpr std::array<std::uint16_t, kProtocolCount> kPorts{21,   80,  443,
                                                           7547, 22,  23};

constexpr std::array<std::string_view, kNetworkTypeCount> kTypeNames{
    "hosting", "enterprise", "eyeball", "academic", "infrastructure"};

}  // namespace

std::span<const Protocol> paper_protocols() noexcept {
  return kPaperProtocols;
}

std::span<const Protocol> all_protocols() noexcept { return kAllProtocols; }

std::string_view protocol_name(Protocol protocol) noexcept {
  return kNames[static_cast<std::size_t>(protocol)];
}

std::uint16_t protocol_port(Protocol protocol) noexcept {
  return kPorts[static_cast<std::size_t>(protocol)];
}

Protocol parse_protocol(std::string_view name) {
  std::string lowered(name);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == lowered) return static_cast<Protocol>(i);
  }
  throw ParseError("unknown protocol: '" + std::string(name) + "'");
}

std::string_view network_type_name(NetworkType type) noexcept {
  return kTypeNames[static_cast<std::size_t>(type)];
}

const ProtocolProfile& protocol_profile(Protocol protocol) noexcept {
  return kProfiles[static_cast<std::size_t>(protocol)];
}

}  // namespace tass::census
