// IPv6 hitlist ingestion — the v6 pipeline's seed input.
//
// There is no full scan to seed a v6 TASS from (2^128 addresses), so the
// t0 input becomes a *hitlist*: known-active addresses from passive
// measurements, DNS, or prior studies (cf. Plonka & Berger). The format
// is the de-facto hitlist convention: one address per line, '#' comments
// and blank lines ignored. The v4 pipeline's counterpart is
// census::load_address_list.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv6.hpp"

namespace tass::census {

/// Parses hitlist text. `strict` == false skips malformed lines instead
/// of throwing, counting them in `skipped` when provided.
std::vector<net::Ipv6Address> parse_hitlist6(std::string_view text,
                                             bool strict = true,
                                             std::size_t* skipped = nullptr);

/// Reads a hitlist file. Throws tass::Error if unreadable.
std::vector<net::Ipv6Address> load_hitlist6(const std::string& path,
                                            bool strict = true);

}  // namespace tass::census
