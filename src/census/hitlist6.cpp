#include "census/hitlist6.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::census {

std::vector<net::Ipv6Address> parse_hitlist6(std::string_view text,
                                             bool strict,
                                             std::size_t* skipped) {
  std::vector<net::Ipv6Address> addresses;
  std::size_t skip_count = 0;
  for (const std::string_view raw : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto address = net::Ipv6Address::parse(line);
    if (address) {
      addresses.push_back(*address);
    } else if (strict) {
      throw ParseError("invalid IPv6 hitlist address: '" +
                       std::string(line) + "'");
    } else {
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return addresses;
}

std::vector<net::Ipv6Address> load_hitlist6(const std::string& path,
                                            bool strict) {
  return parse_hitlist6(util::read_text_file(path, "hitlist"), strict);
}

}  // namespace tass::census
