#include "census/quality.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::census {

namespace {

// |a intersect b| for sorted vectors.
std::uint64_t intersection_size(const std::vector<std::uint32_t>& a,
                                const std::vector<std::uint32_t>& b) {
  std::uint64_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<std::uint32_t> merged_cell(const CellPopulation& cell) {
  std::vector<std::uint32_t> merged;
  merged.reserve(cell.size());
  std::merge(cell.stable.begin(), cell.stable.end(),
             cell.volatile_hosts.begin(), cell.volatile_hosts.end(),
             std::back_inserter(merged));
  return merged;
}

}  // namespace

QualityReport detect_accumulation(std::span<const Snapshot> months) {
  TASS_EXPECTS(months.size() >= 2);
  QualityReport report;
  for (std::size_t t = 0; t + 1 < months.size(); ++t) {
    const auto current = months[t].addresses();
    const auto next = months[t + 1].addresses();
    const std::uint64_t retained = intersection_size(current, next);
    report.retention.push_back(
        current.empty() ? 0.0
                        : static_cast<double>(retained) /
                              static_cast<double>(current.size()));
    report.growth.push_back(
        current.empty() ? 0.0
                        : static_cast<double>(next.size()) /
                              static_cast<double>(current.size()));
  }
  for (const double r : report.retention) report.mean_retention += r;
  report.mean_retention /= static_cast<double>(report.retention.size());
  for (const double g : report.growth) report.mean_growth += g;
  report.mean_growth /= static_cast<double>(report.growth.size());

  // Honest scans of dynamic address space cannot retain ~everything in
  // place month over month; append-only pipelines retain all of it and
  // only ever grow.
  const bool monotone_growth =
      std::all_of(report.growth.begin(), report.growth.end(),
                  [](double g) { return g >= 1.0; });
  report.accumulation_suspected =
      report.mean_retention > 0.97 && monotone_growth;
  return report;
}

Snapshot inject_accumulation(const Snapshot& carried_over,
                             const Snapshot& fresh) {
  TASS_EXPECTS(&carried_over.topology() == &fresh.topology());
  TASS_EXPECTS(carried_over.protocol() == fresh.protocol());
  std::vector<CellPopulation> cells(fresh.cell_count());
  for (std::uint32_t cell = 0; cell < fresh.cell_count(); ++cell) {
    // Everything ever seen becomes part of the "responsive" set; carried
    // addresses land in the stable pool (they are database rows, not
    // hosts, so they never move again).
    const auto carried = merged_cell(carried_over.cell(cell));
    const CellPopulation& now = fresh.cell(cell);
    std::vector<std::uint32_t> stable;
    stable.reserve(carried.size() + now.stable.size());
    std::merge(carried.begin(), carried.end(), now.stable.begin(),
               now.stable.end(), std::back_inserter(stable));
    stable.erase(std::unique(stable.begin(), stable.end()), stable.end());

    std::vector<std::uint32_t> volatile_hosts;
    std::set_difference(now.volatile_hosts.begin(),
                        now.volatile_hosts.end(), stable.begin(),
                        stable.end(), std::back_inserter(volatile_hosts));
    cells[cell].stable = std::move(stable);
    cells[cell].volatile_hosts = std::move(volatile_hosts);
  }
  return Snapshot(fresh.topology_ptr(), fresh.protocol(),
                  fresh.month_index(), std::move(cells));
}

std::vector<Snapshot> contaminate_series(std::span<const Snapshot> months) {
  TASS_EXPECTS(!months.empty());
  std::vector<Snapshot> contaminated;
  contaminated.reserve(months.size());
  contaminated.push_back(months[0]);
  for (std::size_t t = 1; t < months.size(); ++t) {
    contaminated.push_back(
        inject_accumulation(contaminated.back(), months[t]));
  }
  return contaminated;
}

}  // namespace tass::census
