// Snapshot: the ground-truth set of responsive addresses for one protocol
// at one point in time — the role played by one full censys.io scan in the
// paper's evaluation.
//
// Hosts are stored per m-partition cell as sorted offset vectors, split
// into a *stable* population (static addresses) and a *volatile* one
// (dynamic addresses that re-draw every month; the paper attributes the
// hitlist collapse in Figure 5 and TASS's robustness to exactly this
// within-prefix fluctuation). The split is a persistent host attribute:
// a volatile host stays volatile across months.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "census/protocol.hpp"
#include "census/topology.hpp"
#include "net/ipv4.hpp"

namespace tass::census {

/// Hosts of one m-partition cell. Both vectors are sorted and duplicate-
/// free, and no offset appears in both.
struct CellPopulation {
  std::vector<std::uint32_t> stable;
  std::vector<std::uint32_t> volatile_hosts;

  std::size_t size() const noexcept {
    return stable.size() + volatile_hosts.size();
  }
};

class Snapshot {
 public:
  Snapshot(std::shared_ptr<const Topology> topology, Protocol protocol,
           int month_index, std::vector<CellPopulation> cells);

  const Topology& topology() const noexcept { return *topology_; }
  std::shared_ptr<const Topology> topology_ptr() const noexcept {
    return topology_;
  }
  Protocol protocol() const noexcept { return protocol_; }
  /// 0-based month since the seed scan (the paper's t0 = 09/2015).
  int month_index() const noexcept { return month_index_; }

  const CellPopulation& cell(std::uint32_t index) const {
    TASS_EXPECTS(index < cells_.size());
    return cells_[index];
  }
  std::size_t cell_count() const noexcept { return cells_.size(); }

  /// Host count per m-cell.
  std::vector<std::uint32_t> counts_per_cell() const;
  /// Host count aggregated per l-prefix.
  std::vector<std::uint32_t> counts_per_l() const;

  std::uint64_t total_hosts() const noexcept { return total_hosts_; }

  /// True if the address is responsive in this snapshot.
  bool contains(net::Ipv4Address addr) const;

  /// All responsive addresses, ascending. (This is what an address hitlist
  /// records at t0.)
  std::vector<std::uint32_t> addresses() const;

  /// Visits every responsive address; addresses within a cell are visited
  /// in ascending order, cells in ascending network order.
  template <typename Fn>
  void for_each_address(Fn&& fn) const {
    for (std::uint32_t index = 0; index < cells_.size(); ++index) {
      const std::uint32_t base =
          topology_->m_partition.prefix(index).network().value();
      const CellPopulation& cell = cells_[index];
      auto s = cell.stable.begin();
      auto v = cell.volatile_hosts.begin();
      while (s != cell.stable.end() || v != cell.volatile_hosts.end()) {
        if (v == cell.volatile_hosts.end() ||
            (s != cell.stable.end() && *s < *v)) {
          fn(net::Ipv4Address(base + *s++));
        } else {
          fn(net::Ipv4Address(base + *v++));
        }
      }
    }
  }

 private:
  std::shared_ptr<const Topology> topology_;
  Protocol protocol_;
  int month_index_;
  std::vector<CellPopulation> cells_;
  std::uint64_t total_hosts_ = 0;
};

/// Month label in the paper's axis format; month_index 0 -> "09/15",
/// 6 -> "03/16".
std::string month_label(int month_index);

}  // namespace tass::census
