// SnapshotIndex: a paged bitmap over a snapshot's responsive addresses.
//
// Snapshot::contains() answers one membership query with a partition
// locate plus two binary searches — fine for spot checks, ruinous when a
// simulated scan asks it once per in-scope address (billions of probes
// per cycle). The index flattens the snapshot into one bit per /32,
// stored as 64-bit words grouped into /16 pages that are only allocated
// where hosts exist, so interval queries become masked std::popcount
// word scans: counting a /16 costs 1024 popcounts instead of 65536
// virtual calls.
//
// This is the batched oracle behind the scan engine's enumerate path and
// the same reduce-then-count idiom ipset-style prefix accounting uses.
#pragma once

#include <cstdint>
#include <vector>

#include "net/interval.hpp"
#include "net/ipv4.hpp"

namespace tass::census {

class Snapshot;

class SnapshotIndex {
 public:
  /// Page granularity: one page covers a /16 (65536 bits = 8 KiB).
  static constexpr std::uint32_t kPageBits = 16;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kWordsPerPage = kPageSize / 64;

  SnapshotIndex() = default;

  /// Builds the bitmap from every responsive address of the snapshot.
  explicit SnapshotIndex(const Snapshot& snapshot);

  /// Builds from an ascending, duplicate-free address list.
  explicit SnapshotIndex(const std::vector<std::uint32_t>& addresses);

  /// True if the address bit is set.
  bool contains(net::Ipv4Address addr) const noexcept;

  /// Number of responsive addresses inside the inclusive interval.
  std::uint64_t count_responsive(net::Interval interval) const noexcept;

  /// Appends the responsive addresses inside the inclusive interval to
  /// `out`, in ascending order.
  void collect_responsive(net::Interval interval,
                          std::vector<std::uint32_t>& out) const;

  /// Total set bits.
  std::uint64_t total_responsive() const noexcept { return total_; }

  /// Pages materialised (≈ distinct occupied /16s; exposed for tests and
  /// memory accounting).
  std::size_t page_count() const noexcept { return page_ids_.size(); }

 private:
  void insert_sorted(const std::vector<std::uint32_t>& addresses);
  // Index into page_ids_/words_ of the page covering `page_id`, or
  // page_ids_.size() if absent; lower-bound semantics for range scans.
  std::size_t page_lower_bound(std::uint32_t page_id) const noexcept;

  std::vector<std::uint32_t> page_ids_;  // ascending page numbers (addr>>16)
  std::vector<std::uint64_t> words_;     // kWordsPerPage words per page
  std::uint64_t total_ = 0;
};

}  // namespace tass::census
