// Ingestion of real scan exports.
//
// A downstream user reproduces the paper with *their* data: a censys/ZMap
// export is, at its simplest, one responsive IPv4 address per line (the
// censys.io research exports add CSV columns; we take the first field).
// This module parses such exports and materialises them as Snapshots over
// an existing topology, so every downstream stage (ranking, selection,
// evaluation) works on real data exactly as on the synthetic census.
//
// Imported hosts carry no stable/volatile annotation — they are stored as
// stable; churn simulation is not meaningful for imported data anyway.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "census/snapshot.hpp"

namespace tass::census {

/// Parses an address-list export: one IPv4 address per line, optionally
/// followed by comma-separated extra columns (ignored); '#' comments and
/// blank lines are skipped. strict=false counts malformed lines in
/// `skipped` instead of throwing.
std::vector<std::uint32_t> parse_address_list(std::string_view text,
                                              bool strict = true,
                                              std::size_t* skipped = nullptr);

/// Loads an address-list file. Throws tass::Error if unreadable.
std::vector<std::uint32_t> load_address_list(const std::string& path,
                                             bool strict = true);

/// Statistics of an import: how many addresses landed outside the
/// announced space (and were therefore dropped) and how many were
/// duplicates.
struct ImportStats {
  std::uint64_t imported = 0;
  std::uint64_t outside_topology = 0;
  std::uint64_t duplicates = 0;
};

/// Builds a ground-truth snapshot from raw responsive addresses.
/// Addresses outside the topology's advertised space are dropped (and
/// counted); duplicates are collapsed.
Snapshot snapshot_from_addresses(std::shared_ptr<const Topology> topology,
                                 Protocol protocol, int month_index,
                                 std::span<const std::uint32_t> addresses,
                                 ImportStats* stats = nullptr);

}  // namespace tass::census
