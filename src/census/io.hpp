// Binary serialisation for census snapshots and series.
//
// Full-scan results are expensive to (re)generate — the paper's corpus is
// 4.1 TB — so a reproduction pipeline wants to persist them. The container
// format ("TSNP"):
//
//   header:  magic, version, protocol, month index, cell count,
//            topology fingerprint (FNV-1a over the m-partition), so a
//            snapshot can never be loaded against the wrong topology
//   cells:   per cell, stable and volatile offset lists, sorted,
//            delta-encoded as LEB128 varints (host offsets cluster, so
//            deltas are small; this compresses a snapshot ~4x vs raw u32)
//   footer:  total host count and an FNV-1a checksum of the payload
//
// decode_snapshot validates magic, version, fingerprint, ordering and
// checksum and throws tass::FormatError on any mismatch.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "census/snapshot.hpp"

namespace tass::census {

/// Structural fingerprint of a topology (its m-partition prefixes).
std::uint64_t topology_fingerprint(const Topology& topology);

/// Serialises one snapshot.
std::vector<std::byte> encode_snapshot(const Snapshot& snapshot);

/// Deserialises against an existing topology (whose fingerprint must
/// match the one stored in the header).
Snapshot decode_snapshot(std::span<const std::byte> data,
                         std::shared_ptr<const Topology> topology);

/// File convenience wrappers; throw tass::Error on I/O failure.
void save_snapshot(const std::string& path, const Snapshot& snapshot);
Snapshot load_snapshot(const std::string& path,
                       std::shared_ptr<const Topology> topology);

/// Serialises a whole monthly series (concatenated snapshots with a
/// series header).
std::vector<std::byte> encode_series(std::span<const Snapshot> months);
std::vector<Snapshot> decode_series(std::span<const std::byte> data,
                                    std::shared_ptr<const Topology> topology);

}  // namespace tass::census
