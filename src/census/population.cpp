#include "census/population.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::census {

namespace {

using util::Rng;

// Draws `count` distinct offsets in [0, size), sorted ascending.
std::vector<std::uint32_t> place_hosts(std::uint64_t size,
                                       std::uint64_t count, Rng& rng) {
  TASS_EXPECTS(count <= size);
  if (count == 0) return {};
  if (count * 3 >= size) {
    // Dense cell: Floyd sampling guarantees termination.
    const auto wide = rng.sample_without_replacement(size, count);
    std::vector<std::uint32_t> offsets(wide.size());
    std::transform(wide.begin(), wide.end(), offsets.begin(),
                   [](std::uint64_t v) {
                     return static_cast<std::uint32_t>(v);
                   });
    return offsets;
  }
  // Sparse cell: rejection by dedup converges fast.
  std::vector<std::uint32_t> offsets;
  offsets.reserve(count);
  while (offsets.size() < count) {
    const std::uint64_t missing = count - offsets.size();
    for (std::uint64_t i = 0; i < missing; ++i) {
      offsets.push_back(static_cast<std::uint32_t>(rng.bounded(size)));
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
  }
  return offsets;
}

// Splits sorted offsets into (stable, volatile) with ~volatile_fraction of
// them volatile, chosen uniformly.
CellPopulation split_volatile(std::vector<std::uint32_t> offsets,
                              double volatile_fraction, Rng& rng) {
  CellPopulation cell;
  for (const std::uint32_t offset : offsets) {
    if (rng.chance(volatile_fraction)) {
      cell.volatile_hosts.push_back(offset);
    } else {
      cell.stable.push_back(offset);
    }
  }
  return cell;
}

}  // namespace

Snapshot generate_population(std::shared_ptr<const Topology> topology,
                             const ProtocolProfile& profile,
                             const PopulationParams& params) {
  TASS_EXPECTS(topology != nullptr);
  const Topology& topo = *topology;
  Rng rng(util::mix64(params.seed,
                      static_cast<std::uint64_t>(profile.protocol)));

  const std::uint64_t advertised = topo.advertised_addresses;
  const std::size_t cell_count = topo.m_partition.size();
  const std::size_t l_count = topo.l_partition.size();
  const std::uint64_t target_hosts = static_cast<std::uint64_t>(
      std::llround(profile.base_hosts * params.host_scale));

  const double zero_total =
      1.0 - std::accumulate(profile.tiers.begin(), profile.tiers.end(), 0.0,
                            [](double acc, const DensityTier& t) {
                              return acc + t.space_share;
                            });
  TASS_EXPECTS(profile.empty_l_space_share <= zero_total + 1e-9);

  const auto affinity_of = [&](std::uint32_t l_index) {
    return profile
        .affinity[static_cast<std::size_t>(topo.l_types[l_index])];
  };

  // --- Step 1: entirely host-free l-prefixes -----------------------------
  // Weighted sampling without replacement (Efraimidis-Spirakis with
  // exponential keys): low-affinity l-prefixes go empty first.
  std::vector<std::pair<double, std::uint32_t>> empty_order(l_count);
  for (std::uint32_t i = 0; i < l_count; ++i) {
    const double weight = 1.0 / (affinity_of(i) + 0.02);
    empty_order[i] = {rng.exponential(weight), i};
  }
  std::sort(empty_order.begin(), empty_order.end());

  std::vector<bool> l_empty(l_count, false);
  std::uint64_t empty_l_space = 0;
  const auto empty_l_quota = static_cast<std::uint64_t>(
      profile.empty_l_space_share * static_cast<double>(advertised));
  for (const auto& [key, l_index] : empty_order) {
    if (empty_l_space >= empty_l_quota) break;
    l_empty[l_index] = true;
    empty_l_space += topo.l_partition.prefix(l_index).size();
  }

  // --- Step 2: additional zero cells inside occupied l-prefixes ----------
  std::vector<bool> cell_zero(cell_count, false);
  std::vector<std::uint32_t> l_live_cells(l_count, 0);
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    const std::uint32_t l_index = topo.cell_to_l[cell];
    if (l_empty[l_index]) {
      cell_zero[cell] = true;
    } else {
      ++l_live_cells[l_index];
    }
  }

  const double zero_m_share =
      std::max(0.0, zero_total - static_cast<double>(empty_l_space) /
                                     static_cast<double>(advertised));
  const auto zero_m_quota = static_cast<std::uint64_t>(
      zero_m_share * static_cast<double>(advertised));

  std::vector<std::pair<double, std::uint32_t>> zero_order;
  zero_order.reserve(cell_count);
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    if (cell_zero[cell]) continue;
    const double weight = 1.0 / (affinity_of(topo.cell_to_l[cell]) + 0.02);
    zero_order.emplace_back(rng.exponential(weight), cell);
  }
  std::sort(zero_order.begin(), zero_order.end());
  std::uint64_t zero_m_space = 0;
  for (const auto& [key, cell] : zero_order) {
    if (zero_m_space >= zero_m_quota) break;
    const std::uint32_t l_index = topo.cell_to_l[cell];
    if (l_live_cells[l_index] <= 1) continue;  // keep each l occupied
    cell_zero[cell] = true;
    --l_live_cells[l_index];
    zero_m_space += topo.m_partition.prefix(cell).size();
  }

  // --- Step 3: assign occupied cells to density tiers --------------------
  // Score favours high affinity and (mildly) small cells, so dense tiers
  // land in small prefixes of well-matched network types.
  std::vector<std::pair<double, std::uint32_t>> tier_order;
  tier_order.reserve(cell_count);
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    if (cell_zero[cell]) continue;
    const double affinity = affinity_of(topo.cell_to_l[cell]) + 0.02;
    const double jitter = rng.lognormal(0.0, 0.5);
    const double size_bias = std::pow(
        static_cast<double>(topo.m_partition.prefix(cell).size()),
        profile.small_cell_bias);
    tier_order.emplace_back(-(affinity * jitter / size_bias), cell);
  }
  std::sort(tier_order.begin(), tier_order.end());

  constexpr std::size_t kTierCount =
      std::tuple_size_v<decltype(profile.tiers)>;
  std::array<std::vector<std::uint32_t>, kTierCount> tier_cells;
  {
    std::size_t tier = 0;
    std::uint64_t tier_space = 0;
    for (const auto& [score, cell] : tier_order) {
      while (tier + 1 < kTierCount &&
             static_cast<double>(tier_space) >=
                 profile.tiers[tier].space_share *
                     static_cast<double>(advertised)) {
        ++tier;
        tier_space = 0;
      }
      tier_cells[tier].push_back(cell);
      tier_space += topo.m_partition.prefix(cell).size();
    }
  }

  // --- Step 4: distribute hosts within each tier -------------------------
  std::vector<CellPopulation> cells(cell_count);
  for (std::size_t tier = 0; tier < kTierCount; ++tier) {
    if (tier_cells[tier].empty()) continue;
    const auto tier_hosts = static_cast<std::uint64_t>(
        std::llround(profile.tiers[tier].host_share *
                     static_cast<double>(target_hosts)));
    if (tier_hosts == 0) continue;

    // Per-cell weight: size times log-normal jitter.
    std::vector<double> weights;
    weights.reserve(tier_cells[tier].size());
    double weight_sum = 0.0;
    for (const std::uint32_t cell : tier_cells[tier]) {
      const double w =
          static_cast<double>(topo.m_partition.prefix(cell).size()) *
          rng.lognormal(0.0, profile.density_jitter_sigma);
      weights.push_back(w);
      weight_sum += w;
    }

    // Largest-remainder integerisation so the tier quota is met exactly
    // (up to per-cell capacity).
    std::vector<std::uint64_t> counts(weights.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    remainders.reserve(weights.size());
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double exact = static_cast<double>(tier_hosts) * weights[i] /
                           weight_sum;
      const std::uint64_t cap =
          topo.m_partition.prefix(tier_cells[tier][i]).size();
      counts[i] = std::min(static_cast<std::uint64_t>(exact), cap);
      assigned += counts[i];
      if (counts[i] < cap) {
        remainders.emplace_back(-(exact - std::floor(exact)), i);
      }
    }
    std::sort(remainders.begin(), remainders.end());
    for (const auto& [neg_frac, i] : remainders) {
      if (assigned >= tier_hosts) break;
      const std::uint64_t cap =
          topo.m_partition.prefix(tier_cells[tier][i]).size();
      if (counts[i] < cap) {
        ++counts[i];
        ++assigned;
      }
    }

    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      const std::uint32_t cell = tier_cells[tier][i];
      auto offsets = place_hosts(topo.m_partition.prefix(cell).size(),
                                 counts[i], rng);
      cells[cell] =
          split_volatile(std::move(offsets), profile.volatile_fraction, rng);
    }
  }

  return Snapshot(std::move(topology), profile.protocol, /*month_index=*/0,
                  std::move(cells));
}

}  // namespace tass::census
