#include "census/topology.hpp"

#include <algorithm>
#include <map>

#include "net/special_use.hpp"
#include "util/error.hpp"

namespace tass::census {

namespace {

// l-prefix length distribution (weights). Tuned so the mean l-prefix holds
// ~356k addresses: 8000 prefixes then cover ~2.85B addresses, matching the
// announced-space scale of the paper's measurement period.
struct LengthWeight {
  int length;
  double weight;
};
constexpr std::array<LengthWeight, 17> kLengthWeights{{
    {8, 0.002},  {9, 0.004},  {10, 0.008}, {11, 0.020}, {12, 0.060},
    {13, 0.120}, {14, 0.170}, {15, 0.170}, {16, 0.170}, {17, 0.090},
    {18, 0.070}, {19, 0.050}, {20, 0.030}, {21, 0.020}, {22, 0.012},
    {23, 0.008}, {24, 0.004},
}};

// Depth of announced more-specifics relative to their l-prefix.
constexpr std::array<LengthWeight, 5> kDepthWeights{{
    {1, 0.50}, {2, 0.25}, {3, 0.12}, {4, 0.08}, {5, 0.05},
}};

// Base network-type mix; large prefixes skew towards eyeball (ISP) space.
constexpr std::array<double, kNetworkTypeCount> kTypeWeights{
    0.15, 0.25, 0.35, 0.10, 0.15};

NetworkType draw_network_type(util::Rng& rng, int prefix_length) {
  std::array<double, kNetworkTypeCount> weights = kTypeWeights;
  if (prefix_length <= 12) {
    weights[static_cast<std::size_t>(NetworkType::kEyeball)] *= 2.0;
  }
  const util::DiscreteSampler sampler(weights);
  return static_cast<NetworkType>(sampler.sample(rng));
}

void build_derived(Topology& topo, util::Rng& rng,
                   const std::map<net::Prefix, NetworkType>* types) {
  topo.l_partition = topo.table.l_partition();
  topo.m_partition = topo.table.m_partition();
  topo.advertised_addresses = topo.l_partition.address_count();
  TASS_ENSURES(topo.advertised_addresses ==
               topo.m_partition.address_count());

  const std::size_t l_count = topo.l_partition.size();
  const std::size_t cell_count = topo.m_partition.size();

  topo.cell_to_l.resize(cell_count);
  for (std::size_t i = 0; i < cell_count; ++i) {
    const auto l_index =
        topo.l_partition.locate(topo.m_partition.prefix(i).network());
    TASS_ENSURES(l_index.has_value());
    topo.cell_to_l[i] = *l_index;
  }

  topo.l_types.resize(l_count);
  topo.l_origin_as.resize(l_count);
  for (std::size_t i = 0; i < l_count; ++i) {
    const net::Prefix prefix = topo.l_partition.prefix(i);
    if (types != nullptr) {
      const auto it = types->find(prefix);
      topo.l_types[i] = it != types->end()
                            ? it->second
                            : draw_network_type(rng, prefix.length());
    } else {
      topo.l_types[i] = draw_network_type(rng, prefix.length());
    }
    topo.l_origin_as[i] = rng.uniform_u32(1, 64500);
  }

  // Group m-cells by covering l-cell (counting sort by cell_to_l).
  topo.l_cell_offsets.assign(l_count + 1, 0);
  for (const std::uint32_t l : topo.cell_to_l) {
    ++topo.l_cell_offsets[l + 1];
  }
  for (std::size_t i = 1; i <= l_count; ++i) {
    topo.l_cell_offsets[i] += topo.l_cell_offsets[i - 1];
  }
  topo.l_cells.resize(cell_count);
  std::vector<std::uint32_t> cursor(topo.l_cell_offsets.begin(),
                                    topo.l_cell_offsets.end() - 1);
  for (std::uint32_t cell = 0; cell < cell_count; ++cell) {
    topo.l_cells[cursor[topo.cell_to_l[cell]]++] = cell;
  }
}

}  // namespace

BuddyAllocator::BuddyAllocator(std::span<const net::Prefix> free_blocks) {
  for (const net::Prefix block : free_blocks) {
    free_[static_cast<std::size_t>(block.length())].push_back(
        block.network().value());
  }
}

std::optional<net::Prefix> BuddyAllocator::allocate(int length,
                                                    util::Rng& rng) {
  TASS_EXPECTS(length >= 0 && length <= 32);
  // Find the longest available block length that still fits (closest fit
  // first to limit fragmentation).
  int from = -1;
  for (int len = length; len >= 0; --len) {
    if (!free_[static_cast<std::size_t>(len)].empty()) {
      from = len;
      break;
    }
  }
  if (from < 0) return std::nullopt;

  auto& pool = free_[static_cast<std::size_t>(from)];
  const std::size_t pick = static_cast<std::size_t>(rng.bounded(pool.size()));
  std::swap(pool[pick], pool.back());
  net::Prefix block(net::Ipv4Address(pool.back()), from);
  pool.pop_back();

  while (block.length() < length) {
    // Keep a random half, free the other.
    const net::Prefix lower = block.lower_half();
    const net::Prefix upper = block.upper_half();
    const bool keep_lower = rng.chance(0.5);
    const net::Prefix freed = keep_lower ? upper : lower;
    free_[static_cast<std::size_t>(freed.length())].push_back(
        freed.network().value());
    block = keep_lower ? lower : upper;
  }
  return block;
}

std::uint64_t BuddyAllocator::free_addresses() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t len = 0; len <= 32; ++len) {
    total += static_cast<std::uint64_t>(free_[len].size()) *
             (1ULL << (32 - len));
  }
  return total;
}

std::shared_ptr<const Topology> generate_topology(
    const TopologyParams& params) {
  util::Rng rng(params.seed);

  // Draw l-prefix lengths, biggest first so buddy allocation cannot fail
  // before space genuinely runs out.
  std::vector<double> weights;
  weights.reserve(kLengthWeights.size());
  for (const auto& lw : kLengthWeights) weights.push_back(lw.weight);
  const util::DiscreteSampler length_sampler(weights);

  std::vector<int> lengths;
  lengths.reserve(params.l_prefix_count);
  for (std::size_t i = 0; i < params.l_prefix_count; ++i) {
    lengths.push_back(kLengthWeights[length_sampler.sample(rng)].length);
  }
  std::sort(lengths.begin(), lengths.end());

  BuddyAllocator allocator(net::scannable_space().to_prefixes());
  std::vector<net::Prefix> l_prefixes;
  l_prefixes.reserve(lengths.size());
  for (const int length : lengths) {
    if (const auto block = allocator.allocate(length, rng)) {
      l_prefixes.push_back(*block);
    }
  }

  // Announce more-specifics inside a subset of l-prefixes.
  std::vector<double> depth_weights;
  for (const auto& dw : kDepthWeights) depth_weights.push_back(dw.weight);
  const util::DiscreteSampler depth_sampler(depth_weights);

  std::vector<bgp::Pfx2AsRecord> records;
  std::map<net::Prefix, NetworkType> types;
  records.reserve(l_prefixes.size() * 2);
  for (const net::Prefix l : l_prefixes) {
    const NetworkType type = draw_network_type(rng, l.length());
    types.emplace(l, type);
    const std::uint32_t asn = rng.uniform_u32(1, 64500);
    records.push_back({l, {asn}});

    if (!rng.chance(params.m_prefix_probability) || l.length() >= 30) {
      continue;
    }
    std::size_t m_count = 1;
    while (rng.chance(params.m_count_continuation) && m_count < 8) {
      ++m_count;
    }
    for (std::size_t k = 0; k < m_count; ++k) {
      const int depth = kDepthWeights[depth_sampler.sample(rng)].length;
      const int m_len =
          std::min({l.length() + depth, params.max_prefix_length, 30});
      if (m_len <= l.length()) continue;
      // Random aligned sub-block of l.
      const std::uint64_t blocks = 1ULL << (m_len - l.length());
      const std::uint64_t slot = rng.bounded(blocks);
      const net::Prefix m(
          net::Ipv4Address(l.network().value() +
                           static_cast<std::uint32_t>(
                               slot << (32 - m_len))),
          m_len);
      const std::uint32_t m_asn =
          rng.chance(0.8) ? asn : rng.uniform_u32(1, 64500);
      records.push_back({m, {m_asn}});
    }
  }

  auto topo = std::make_shared<Topology>();
  topo->table = bgp::RoutingTable::from_pfx2as(records);
  build_derived(*topo, rng, &types);
  return topo;
}

std::shared_ptr<const Topology> topology_from_table(bgp::RoutingTable table,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  auto topo = std::make_shared<Topology>();
  topo->table = std::move(table);
  build_derived(*topo, rng, nullptr);
  return topo;
}

}  // namespace tass::census
