// Month-over-month population churn.
//
// Implements the temporal dynamics the paper measures: volatile hosts
// re-draw their (dynamic) address within their prefix every month
// (Figure 5's hitlist collapse), a small stable-host death/birth process
// keeps totals stationary (Figure 3's stability), and a calibrated trickle
// of births lands in previously host-free m-cells and l-prefixes — the
// mechanism behind TASS's 0.3%/month (l) to 0.7%/month (m) accuracy decay
// in Figure 6.
#pragma once

#include "census/protocol.hpp"
#include "census/snapshot.hpp"

namespace tass::census {

/// Produces the next month's snapshot. Deterministic in
/// (seed, previous.month_index(), profile.protocol).
Snapshot advance_month(const Snapshot& previous,
                       const ProtocolProfile& profile, std::uint64_t seed);

}  // namespace tass::census
