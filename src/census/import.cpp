#include "census/import.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::census {

std::vector<std::uint32_t> parse_address_list(std::string_view text,
                                              bool strict,
                                              std::size_t* skipped) {
  std::vector<std::uint32_t> addresses;
  std::size_t skip_count = 0;
  for (const std::string_view raw : util::split(text, '\n')) {
    std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    // CSV exports: the address is the first field.
    if (const auto comma = line.find(','); comma != std::string_view::npos) {
      line = util::trim(line.substr(0, comma));
    }
    if (const auto addr = net::Ipv4Address::parse(line)) {
      addresses.push_back(addr->value());
    } else if (strict) {
      throw ParseError("invalid address in export: '" + std::string(line) +
                       "'");
    } else {
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return addresses;
}

std::vector<std::uint32_t> load_address_list(const std::string& path,
                                             bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open address list: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_address_list(buffer.str(), strict);
}

Snapshot snapshot_from_addresses(std::shared_ptr<const Topology> topology,
                                 Protocol protocol, int month_index,
                                 std::span<const std::uint32_t> addresses,
                                 ImportStats* stats) {
  TASS_EXPECTS(topology != nullptr);
  const Topology& topo = *topology;
  ImportStats local;
  std::vector<CellPopulation> cells(topo.m_partition.size());
  for (const std::uint32_t address : addresses) {
    const auto cell = topo.m_partition.locate(net::Ipv4Address(address));
    if (!cell) {
      ++local.outside_topology;
      continue;
    }
    cells[*cell].stable.push_back(static_cast<std::uint32_t>(
        topo.m_partition.prefix(*cell).offset_of(net::Ipv4Address(address))));
  }
  for (CellPopulation& cell : cells) {
    std::sort(cell.stable.begin(), cell.stable.end());
    const auto unique_end =
        std::unique(cell.stable.begin(), cell.stable.end());
    local.duplicates += static_cast<std::uint64_t>(
        cell.stable.end() - unique_end);
    cell.stable.erase(unique_end, cell.stable.end());
    local.imported += cell.stable.size();
  }
  if (stats != nullptr) *stats = local;
  return Snapshot(std::move(topology), protocol, month_index,
                  std::move(cells));
}

}  // namespace tass::census
