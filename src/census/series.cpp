#include "census/series.hpp"

#include "util/error.hpp"

namespace tass::census {

CensusSeries CensusSeries::generate(std::shared_ptr<const Topology> topology,
                                    Protocol protocol,
                                    const SeriesParams& params) {
  TASS_EXPECTS(topology != nullptr);
  TASS_EXPECTS(params.months >= 1);
  const ProtocolProfile& profile = protocol_profile(protocol);

  std::vector<Snapshot> snapshots;
  snapshots.reserve(static_cast<std::size_t>(params.months));
  snapshots.push_back(generate_population(
      topology, profile,
      PopulationParams{params.host_scale, params.seed}));
  for (int month = 1; month < params.months; ++month) {
    snapshots.push_back(
        advance_month(snapshots.back(), profile, params.seed));
  }
  return CensusSeries(std::move(topology), protocol, std::move(snapshots));
}

}  // namespace tass::census
