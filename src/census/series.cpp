#include "census/series.hpp"

#include "census/snapshot_index.hpp"
#include "core/estimator.hpp"
#include "net/interval.hpp"
#include "util/error.hpp"

namespace tass::census {

CensusSeries CensusSeries::generate(std::shared_ptr<const Topology> topology,
                                    Protocol protocol,
                                    const SeriesParams& params) {
  TASS_EXPECTS(topology != nullptr);
  TASS_EXPECTS(params.months >= 1);
  const ProtocolProfile& profile = protocol_profile(protocol);

  std::vector<Snapshot> snapshots;
  snapshots.reserve(static_cast<std::size_t>(params.months));
  snapshots.push_back(generate_population(
      topology, profile,
      PopulationParams{params.host_scale, params.seed}));
  for (int month = 1; month < params.months; ++month) {
    snapshots.push_back(
        advance_month(snapshots.back(), profile, params.seed));
  }
  return CensusSeries(std::move(topology), protocol, std::move(snapshots));
}

std::vector<SampledTrendPoint> sampled_trend(const CensusSeries& series,
                                             core::PrefixMode mode,
                                             const scan::SampleParams& params,
                                             double confidence) {
  TASS_EXPECTS(series.month_count() >= 1);

  // Plan once from month 0: the seed census both ranks the cells and
  // funds the budget allocation; every later month reuses the frame.
  const core::DensityRanking ranking =
      core::rank_by_density(series.month(0), mode);
  const scan::SampledScope scope(scan::plan_sample(ranking, params));

  std::vector<SampledTrendPoint> points;
  points.reserve(static_cast<std::size_t>(series.month_count()));
  for (int month = 0; month < series.month_count(); ++month) {
    const SnapshotIndex oracle(series.month(month));
    const scan::SampleResult result = scope.probe(
        [&](net::Ipv4Address addr) { return oracle.contains(addr); });
    const core::SampleEstimate estimate =
        core::estimate_from_sample(result, ranking, confidence);

    std::uint64_t truth = 0;
    for (const scan::SampleCell& cell : scope.design().cells) {
      truth += oracle.count_responsive(net::Interval::of(cell.prefix));
    }

    points.push_back(SampledTrendPoint{
        .month_index = month,
        .truth_hosts = truth,
        .estimated_hosts = estimate.estimated_hosts,
        .low = estimate.hosts_low,
        .high = estimate.hosts_high,
        .probes_sent = estimate.probes_sent,
        .frame_units = estimate.frame_units,
    });
  }
  return points;
}

}  // namespace tass::census
