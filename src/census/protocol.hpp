// Protocol registry and per-protocol deployment profiles.
//
// The paper evaluates FTP, HTTP, HTTPS and CWMP (TR-069); SSH and Telnet
// profiles are provided as extensions. Each profile parameterises the
// synthetic census: how many hosts exist, how they concentrate across
// prefixes (the Lorenz/tier table calibrated against Table 1 of the
// paper), which network types deploy the service, and how the population
// churns month over month (calibrated against Figures 5 and 6).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace tass::census {

enum class Protocol : std::uint8_t {
  kFtp = 0,
  kHttp,
  kHttps,
  kCwmp,
  kSsh,
  kTelnet,
};

inline constexpr std::size_t kProtocolCount = 6;

/// The four protocols evaluated in the paper, in its presentation order.
std::span<const Protocol> paper_protocols() noexcept;
/// All protocols with presets (paper four + SSH, Telnet extensions).
std::span<const Protocol> all_protocols() noexcept;

std::string_view protocol_name(Protocol protocol) noexcept;
std::uint16_t protocol_port(Protocol protocol) noexcept;

/// Parses "ftp", "HTTP", ... Throws tass::ParseError on unknown names.
Protocol parse_protocol(std::string_view name);

/// Coarse network classification of an l-prefix; used to correlate where
/// different services deploy (CWMP lives in eyeball space, FTP/HTTP in
/// hosting/enterprise space).
enum class NetworkType : std::uint8_t {
  kHosting = 0,
  kEnterprise,
  kEyeball,
  kAcademic,
  kInfrastructure,
};

inline constexpr std::size_t kNetworkTypeCount = 5;

std::string_view network_type_name(NetworkType type) noexcept;

/// One density tier: `space_share` of the advertised address space holds
/// `host_share` of all responsive hosts. Tiers are listed densest-first
/// and partition both shares (sums are 1 apart from the zero tier, whose
/// host_share is 0). Tier tables are interpolated from the paper's
/// Table 1 (m-prefix column) at phi = 0.5, 0.7, 0.95, 0.99, 1.
struct DensityTier {
  double space_share;
  double host_share;
};

/// Everything the census generator needs to synthesise one protocol.
struct ProtocolProfile {
  Protocol protocol = Protocol::kFtp;

  /// Responsive hosts at scale 1.0 (the paper's order of magnitude).
  double base_hosts = 0;

  /// Density tiers over *occupied* space, densest first; the remainder of
  /// the advertised space up to 1.0 is the zero tier.
  std::array<DensityTier, 5> tiers{};

  /// Fraction of advertised space inside l-prefixes that contain no host
  /// of this protocol at all (Table 1, 1 - l-column at phi = 1). Must not
  /// exceed the zero-tier space share.
  double empty_l_space_share = 0;

  /// Deployment affinity per NetworkType (relative weights; higher means
  /// the protocol preferentially occupies prefixes of that type).
  std::array<double, kNetworkTypeCount> affinity{};

  /// Bias towards placing dense tiers in small partition cells; exponent
  /// on 1/cell_size in the tier-assignment score.
  double small_cell_bias = 0.25;

  /// Multiplicative within-tier density jitter (log-normal sigma).
  double density_jitter_sigma = 0.35;

  // --- churn (per month) -------------------------------------------------
  /// Fraction of hosts on dynamic addresses; they re-draw their address
  /// within their cell every month (kills address hitlists, not TASS).
  double volatile_fraction = 0;
  /// Of the volatile movers, fraction that land in a *different* cell of
  /// the same l-prefix instead of their own cell (hurts m-TASS slightly).
  double volatile_cross_cell = 0;
  /// Fraction of hosts that disappear each month (replaced by births so
  /// the population stays roughly stationary).
  double monthly_death_rate = 0;
  /// Fraction of the population born each month into m-cells that are
  /// currently empty but lie inside occupied l-prefixes (degrades m-TASS;
  /// paper Figure 6a: up to 0.7 %/month).
  double empty_m_birth_rate = 0;
  /// Fraction born into entirely empty l-prefixes (degrades both l- and
  /// m-TASS; paper: about 0.3 %/month).
  double empty_l_birth_rate = 0;

  /// Application-layer packets exchanged on a successful handshake (on
  /// top of the SYN probe); used by the scan cost model.
  double handshake_packets = 6;
};

/// Calibrated preset for a protocol. See DESIGN.md §5 for the targets.
const ProtocolProfile& protocol_profile(Protocol protocol) noexcept;

}  // namespace tass::census
