// Synthetic Internet topology: an announced-prefix table with the
// statistical shape of the real BGP table the paper measures against
// (CAIDA pfx2as of 2015-09-07: 595,644 prefixes, 54% more-specifics
// covering 34.4% of the advertised space; ~2.8B announced addresses out
// of the ~3.7B scannable).
//
// The generator allocates disjoint l-prefixes from the scannable unicast
// space with a buddy allocator, assigns each a network type (hosting /
// enterprise / eyeball / ...) and origin AS, then announces more-specifics
// inside a subset of them. Everything is deterministic in the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/rib.hpp"
#include "census/protocol.hpp"
#include "util/rng.hpp"

namespace tass::census {

struct TopologyParams {
  std::uint64_t seed = 2016;

  /// Number of l-prefixes to draw. The default reproduces ~66% space
  /// coverage (~2.8B addresses) with the built-in length distribution.
  /// Tests use much smaller counts.
  std::size_t l_prefix_count = 8000;

  /// Probability that an l-prefix announces more-specifics, and the
  /// geometric continuation probability for how many (1 + Geom(p)).
  double m_prefix_probability = 0.55;
  double m_count_continuation = 0.58;

  /// Maximum announced prefix length (paper: prefixes longer than /24 are
  /// negligible).
  int max_prefix_length = 24;
};

/// The synthetic topology plus the derived structures every consumer
/// needs: both partitions, the m-cell -> l-prefix mapping, and per-l
/// metadata. Immutable after generation; shared via shared_ptr.
struct Topology {
  bgp::RoutingTable table;
  bgp::PrefixPartition l_partition;
  bgp::PrefixPartition m_partition;

  /// For each m-partition cell, the index of its covering l-partition cell.
  std::vector<std::uint32_t> cell_to_l;

  /// Per l-partition cell: network type and origin AS.
  std::vector<NetworkType> l_types;
  std::vector<std::uint32_t> l_origin_as;

  /// Total announced addresses (= l_partition.address_count()).
  std::uint64_t advertised_addresses = 0;

  /// Cells of each l-prefix, as [begin,end) ranges into a cell index list
  /// sorted by l. cells_of_l(i) yields the m-cell indices of l-cell i.
  std::vector<std::uint32_t> l_cell_offsets;  // size l_count+1
  std::vector<std::uint32_t> l_cells;         // size = m cell count

  std::span<const std::uint32_t> cells_of_l(std::uint32_t l_index) const {
    TASS_EXPECTS(l_index + 1 < l_cell_offsets.size());
    return std::span(l_cells).subspan(
        l_cell_offsets[l_index],
        l_cell_offsets[l_index + 1] - l_cell_offsets[l_index]);
  }
};

/// Generates a synthetic topology. Deterministic in params.seed.
std::shared_ptr<const Topology> generate_topology(const TopologyParams& params);

/// Builds the derived Topology structures from an existing routing table
/// (e.g. parsed from a real CAIDA pfx2as file); network types are inferred
/// pseudo-randomly from the seed since the dump does not carry them.
std::shared_ptr<const Topology> topology_from_table(bgp::RoutingTable table,
                                                    std::uint64_t seed);

/// Buddy allocator over the IPv4 space used to place disjoint l-prefixes.
/// Exposed for tests and for users generating custom layouts.
class BuddyAllocator {
 public:
  /// Free space initialised from the given disjoint prefixes.
  explicit BuddyAllocator(std::span<const net::Prefix> free_blocks);

  /// Allocates a random free block of exactly `length` bits, splitting
  /// larger blocks as needed. Returns nullopt when no space remains.
  std::optional<net::Prefix> allocate(int length, util::Rng& rng);

  /// Total free addresses remaining.
  std::uint64_t free_addresses() const noexcept;

 private:
  // free_[len] holds network addresses of free blocks of that length.
  std::array<std::vector<std::uint32_t>, 33> free_{};
};

}  // namespace tass::census
