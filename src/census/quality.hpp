// Ground-truth data-quality checks (paper §4.2).
//
// "We started a similar investigation of SSH and selected SCADA protocols
// but to our surprise we found that accuracy and densities increased over
// time. Further scrutiny of the ground truth datasets revealed that the
// snapshots for these protocols likely included data from prior scans."
//
// This module reproduces both sides of that incident: an *injector* that
// contaminates a series with prior-scan accumulation (each snapshot also
// carries every earlier response), and a *detector* that flags series
// whose month-over-month address retention is implausibly high for live
// Internet data.
#pragma once

#include <span>
#include <vector>

#include "census/snapshot.hpp"

namespace tass::census {

/// Per-transition statistics of a snapshot series.
struct QualityReport {
  /// retention[t] = |A_t intersect A_{t+1}| / |A_t| for consecutive
  /// months: the fraction of responsive addresses that stay responsive in
  /// place. Dynamic addressing keeps this well below 1 for honest scans.
  std::vector<double> retention;
  /// growth[t] = |A_{t+1}| / |A_t|.
  std::vector<double> growth;

  double mean_retention = 0.0;
  double mean_growth = 0.0;

  /// True when the series looks like accumulated (append-only) data:
  /// near-total retention combined with monotone growth.
  bool accumulation_suspected = false;
};

/// Analyses consecutive snapshots. Requires at least two months.
QualityReport detect_accumulation(std::span<const Snapshot> months);

/// Contaminates `fresh` with everything responsive in `carried_over`
/// (cell-wise union; carried hosts are added to the stable population,
/// which is what an append-only measurement pipeline would produce).
Snapshot inject_accumulation(const Snapshot& carried_over,
                             const Snapshot& fresh);

/// Contaminates a whole series cumulatively (month t carries months
/// 0..t-1), reproducing the corrupted SSH/SCADA corpus end to end.
std::vector<Snapshot> contaminate_series(std::span<const Snapshot> months);

}  // namespace tass::census
