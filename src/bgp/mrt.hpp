// MRT (RFC 6396) TABLE_DUMP_V2 reader and writer.
//
// This module is the drop-in substitute for libbgpdump: it decodes (and,
// for synthesis, encodes) the RIB dump format published by Routeviews /
// RIPE RIS collectors — the upstream source of the CAIDA pfx2as mappings
// the paper relies on. Only the IPv4 unicast subset needed for prefix
// derivation is implemented:
//
//   * PEER_INDEX_TABLE (subtype 1)
//   * RIB_IPV4_UNICAST (subtype 2) with BGP path attributes ORIGIN,
//     AS_PATH (4-byte ASNs, AS_SET / AS_SEQUENCE segments) and NEXT_HOP.
//
// Unknown record subtypes and unknown path attributes are skipped, as a
// robust dump reader must.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace tass::bgp {

/// MRT top-level record types (RFC 6396 §4).
enum class MrtType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,  // live BGP message stream (bgp::rib_delta consumes it)
};

/// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
};

/// BGP4MP subtypes (RFC 6396 §4.4). Only the 4-byte-AS message form is
/// produced and consumed; the others are skipped by readers.
enum class Bgp4mpSubtype : std::uint16_t {
  kMessage = 1,
  kMessageAs4 = 4,
};

/// BGP path attribute type codes (RFC 4271 §5).
enum class PathAttributeType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMultiExitDisc = 4,
};

/// BGP ORIGIN attribute values.
enum class BgpOrigin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// One AS_PATH segment.
struct AsPathSegment {
  enum class Kind : std::uint8_t { kAsSet = 1, kAsSequence = 2 };
  Kind kind = Kind::kAsSequence;
  std::vector<std::uint32_t> asns;

  friend bool operator==(const AsPathSegment&,
                         const AsPathSegment&) = default;
};

/// Peer entry from the PEER_INDEX_TABLE.
struct MrtPeer {
  net::Ipv4Address bgp_id;
  net::Ipv4Address address;
  std::uint32_t asn = 0;

  friend bool operator==(const MrtPeer&, const MrtPeer&) = default;
};

/// One RIB entry (a path to the route's prefix seen from one peer).
struct MrtRibEntry {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  BgpOrigin origin = BgpOrigin::kIgp;
  std::vector<AsPathSegment> as_path;
  std::optional<net::Ipv4Address> next_hop;

  /// Origin AS: the last ASN of the final AS_SEQUENCE segment, or nullopt
  /// for empty paths / paths ending in an AS_SET (CAIDA then reports the
  /// set members — callers use origin_set()).
  std::optional<std::uint32_t> origin_as() const noexcept;

  /// All candidate origin ASNs: {origin_as()} for sequence-terminated
  /// paths, the final set's members otherwise.
  std::vector<std::uint32_t> origin_set() const;

  friend bool operator==(const MrtRibEntry&, const MrtRibEntry&) = default;
};

/// One RIB_IPV4_UNICAST record: a prefix and the paths towards it.
struct MrtRibRecord {
  std::uint32_t sequence = 0;
  net::Prefix prefix;
  std::vector<MrtRibEntry> entries;

  friend bool operator==(const MrtRibRecord&, const MrtRibRecord&) = default;
};

/// A fully decoded TABLE_DUMP_V2 RIB dump.
struct MrtRibDump {
  std::uint32_t timestamp = 0;
  net::Ipv4Address collector_id;
  std::string view_name;
  std::vector<MrtPeer> peers;
  std::vector<MrtRibRecord> records;
  std::size_t skipped_records = 0;  // unknown types/subtypes encountered
};

/// Encodes/decodes the BGP path-attribute block shared by TABLE_DUMP_V2
/// RIB entries and BGP4MP UPDATE messages (ORIGIN, AS_PATH with 4-byte
/// ASNs, NEXT_HOP; unknown attributes are skipped on decode). Exposed so
/// bgp::rib_delta's update-stream codec reuses the one implementation.
std::vector<std::byte> encode_path_attributes(const MrtRibEntry& entry);
void decode_path_attributes(std::span<const std::byte> data,
                            MrtRibEntry& entry);

/// Encodes a RIB dump into MRT wire format (PEER_INDEX_TABLE first, then
/// one RIB_IPV4_UNICAST record per route, in the given order).
std::vector<std::byte> encode_mrt(const MrtRibDump& dump);

/// Decodes an MRT byte stream. Throws tass::FormatError on structural
/// corruption (truncated headers, attribute overruns); unknown record
/// subtypes are counted in skipped_records, not errors.
MrtRibDump decode_mrt(std::span<const std::byte> data);

/// File convenience wrappers. Throw tass::Error on I/O failure.
void save_mrt(const std::string& path, const MrtRibDump& dump);
MrtRibDump load_mrt(const std::string& path);

}  // namespace tass::bgp
