#include "bgp/pfx2as.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::bgp {

namespace {

// Origin field grammar: comma-separated origin alternatives, each either a
// plain ASN or an underscore-joined AS-set. We flatten to the union of ASNs,
// preserving first-seen order.
std::vector<std::uint32_t> parse_origins(std::string_view field) {
  std::vector<std::uint32_t> origins;
  for (const std::string_view alternative : util::split(field, ',')) {
    for (const std::string_view token : util::split(alternative, '_')) {
      const auto asn = util::parse_u32(util::trim(token));
      if (!asn) {
        throw ParseError("invalid ASN in pfx2as origin field: '" +
                         std::string(field) + "'");
      }
      if (std::find(origins.begin(), origins.end(), *asn) == origins.end()) {
        origins.push_back(*asn);
      }
    }
  }
  if (origins.empty()) {
    throw ParseError("empty pfx2as origin field");
  }
  return origins;
}

// Shared document loop: both families skip blanks/comments and apply the
// same strict-vs-skip policy around their line parser.
template <typename Record, typename LineParser>
std::vector<Record> parse_document(std::string_view text, bool strict,
                                   std::size_t* skipped,
                                   LineParser&& parse_line) {
  std::vector<Record> records;
  std::size_t skip_count = 0;
  for (const std::string_view raw : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (strict) {
      records.push_back(parse_line(line));
    } else {
      try {
        records.push_back(parse_line(line));
      } catch (const ParseError&) {
        ++skip_count;
      }
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return records;
}

}  // namespace

Pfx2AsRecord parse_pfx2as_line(std::string_view line) {
  const auto fields = util::split_whitespace(line);
  if (fields.size() != 3) {
    throw ParseError("pfx2as line must have 3 fields, got " +
                     std::to_string(fields.size()) + ": '" +
                     std::string(line) + "'");
  }
  const auto network = net::Ipv4Address::parse(fields[0]);
  if (!network) {
    throw ParseError("invalid network in pfx2as line: '" +
                     std::string(fields[0]) + "'");
  }
  const auto length = util::parse_u32(fields[1]);
  if (!length || *length > 32) {
    throw ParseError("invalid prefix length in pfx2as line: '" +
                     std::string(fields[1]) + "'");
  }
  return Pfx2AsRecord{net::Prefix(*network, static_cast<int>(*length)),
                      parse_origins(fields[2])};
}

std::vector<Pfx2AsRecord> parse_pfx2as(std::string_view text, bool strict,
                                       std::size_t* skipped) {
  return parse_document<Pfx2AsRecord>(text, strict, skipped,
                                      parse_pfx2as_line);
}

std::vector<Pfx2AsRecord> load_pfx2as(const std::string& path, bool strict) {
  return parse_pfx2as(util::read_text_file(path, "pfx2as"), strict);
}

Pfx2As6Record parse_pfx2as6_line(std::string_view line) {
  const auto fields = util::split_whitespace(line);
  if (fields.size() != 3) {
    throw ParseError("pfx2as line must have 3 fields, got " +
                     std::to_string(fields.size()) + ": '" +
                     std::string(line) + "'");
  }
  const auto network = net::Ipv6Address::parse(fields[0]);
  if (!network) {
    throw ParseError("invalid IPv6 network in pfx2as line: '" +
                     std::string(fields[0]) + "'");
  }
  const auto length = util::parse_u32(fields[1]);
  if (!length || *length > 128) {
    throw ParseError("invalid IPv6 prefix length in pfx2as line: '" +
                     std::string(fields[1]) + "'");
  }
  return Pfx2As6Record{
      net::Ipv6Prefix(*network, static_cast<int>(*length)),
      parse_origins(fields[2])};
}

std::vector<Pfx2As6Record> parse_pfx2as6(std::string_view text, bool strict,
                                         std::size_t* skipped) {
  return parse_document<Pfx2As6Record>(text, strict, skipped,
                                       parse_pfx2as6_line);
}

std::vector<Pfx2As6Record> load_pfx2as6(const std::string& path,
                                        bool strict) {
  return parse_pfx2as6(util::read_text_file(path, "pfx2as"), strict);
}

std::string format_pfx2as6(std::span<const Pfx2As6Record> records) {
  std::string out;
  for (const Pfx2As6Record& record : records) {
    out += record.prefix.network().to_string();
    out += '\t';
    out += std::to_string(record.prefix.length());
    out += '\t';
    for (std::size_t i = 0; i < record.origins.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(record.origins[i]);
    }
    out += '\n';
  }
  return out;
}

void save_pfx2as6(const std::string& path,
                  std::span<const Pfx2As6Record> records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open pfx2as file for writing: " + path);
  const std::string text = format_pfx2as6(records);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw Error("short write to pfx2as file: " + path);
}

std::string format_pfx2as(std::span<const Pfx2AsRecord> records) {
  std::string out;
  for (const Pfx2AsRecord& record : records) {
    out += record.prefix.network().to_string();
    out += '\t';
    out += std::to_string(record.prefix.length());
    out += '\t';
    for (std::size_t i = 0; i < record.origins.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(record.origins[i]);
    }
    out += '\n';
  }
  return out;
}

void save_pfx2as(const std::string& path,
                 std::span<const Pfx2AsRecord> records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open pfx2as file for writing: " + path);
  const std::string text = format_pfx2as(records);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw Error("short write to pfx2as file: " + path);
}

}  // namespace tass::bgp
