// Prefix aggregation: the inverse of deaggregation.
//
// TASS selections are lists of partition cells; before feeding them to a
// scanner (target files, router ACLs) it pays to merge sibling and nested
// prefixes back into the minimal equivalent CIDR list. This is also the
// tool for compacting blocklists and for the paper's §5 observation that
// selections can be post-processed without changing their address set.
//
// The implementation is the family-generic BasicAggregate<Family> in
// bgp/reduce.hpp (which also builds the lossy, overshoot-bounded
// reduction on top of it); these free functions are the historical IPv4
// spellings, byte-compatible with the original interval-algebra
// implementation.
#pragma once

#include <span>
#include <vector>

#include "bgp/reduce.hpp"
#include "net/prefix.hpp"

namespace tass::bgp {

/// Returns the minimal sorted list of prefixes covering exactly the same
/// addresses as the input (duplicates, nesting and adjacent siblings are
/// merged). O(n log n).
inline std::vector<net::Prefix> aggregate(
    std::span<const net::Prefix> prefixes) {
  return BasicAggregate<net::Ipv4Family>::aggregate(prefixes);
}

/// Total addresses covered by a prefix list *after* de-duplication (i.e.
/// the size of the union of the prefixes).
inline std::uint64_t union_size(std::span<const net::Prefix> prefixes) {
  return BasicAggregate<net::Ipv4Family>::union_size(prefixes);
}

/// The IPv6 spellings: the same minimal-cover/union contract with totals
/// in /64 scan units (saturating; ::/0 alone clamps to 2^64 - 1).
inline std::vector<net::Ipv6Prefix> aggregate(
    std::span<const net::Ipv6Prefix> prefixes) {
  return BasicAggregate<net::Ipv6Family>::aggregate(prefixes);
}

inline std::uint64_t union_size(std::span<const net::Ipv6Prefix> prefixes) {
  return BasicAggregate<net::Ipv6Family>::union_size(prefixes);
}

}  // namespace tass::bgp
