// Prefix aggregation: the inverse of deaggregation.
//
// TASS selections are lists of partition cells; before feeding them to a
// scanner (target files, router ACLs) it pays to merge sibling and nested
// prefixes back into the minimal equivalent CIDR list. This is also the
// tool for compacting blocklists and for the paper's §5 observation that
// selections can be post-processed without changing their address set.
#pragma once

#include <span>
#include <vector>

#include "net/prefix.hpp"

namespace tass::bgp {

/// Returns the minimal sorted list of prefixes covering exactly the same
/// addresses as the input (duplicates, nesting and adjacent siblings are
/// merged). O(n log n).
std::vector<net::Prefix> aggregate(std::span<const net::Prefix> prefixes);

/// Total addresses covered by a prefix list *after* de-duplication (i.e.
/// the size of the union of the prefixes).
std::uint64_t union_size(std::span<const net::Prefix> prefixes);

}  // namespace tass::bgp
