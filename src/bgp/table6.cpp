#include "bgp/table6.hpp"

#include <algorithm>
#include <map>

#include "bgp/deaggregate.hpp"
#include "net/family.hpp"
#include "util/error.hpp"

namespace tass::bgp {

namespace {

void merge_origins(std::vector<std::uint32_t>& into,
                   std::span<const std::uint32_t> from) {
  for (const std::uint32_t asn : from) {
    if (std::find(into.begin(), into.end(), asn) == into.end()) {
      into.push_back(asn);
    }
  }
}

}  // namespace

RoutingTable6 RoutingTable6::from_pfx2as(
    std::span<const Pfx2As6Record> records) {
  std::map<net::Ipv6Prefix, std::vector<std::uint32_t>> merged;
  for (const Pfx2As6Record& record : records) {
    merge_origins(merged[record.prefix], record.origins);
  }
  RoutingTable6 table;
  table.routes_.reserve(merged.size());
  for (auto& [prefix, origins] : merged) {
    table.routes_.push_back(Route6Entry{prefix, std::move(origins), false});
  }
  table.finalize();
  return table;
}

void RoutingTable6::finalize() {
  std::sort(routes_.begin(), routes_.end(),
            [](const Route6Entry& a, const Route6Entry& b) {
              return a.prefix < b.prefix;
            });

  // In (network, length) order every ancestor sorts before its
  // descendants, so a stack of the current containment chain classifies
  // each route in one pass (the v4 table uses a PrefixSet for this; the
  // sweep is equivalent and allocation-free).
  std::vector<net::Ipv6Prefix> chain;
  for (Route6Entry& route : routes_) {
    while (!chain.empty() && !chain.back().contains(route.prefix)) {
      chain.pop_back();
    }
    route.more_specific = !chain.empty();
    if (!route.more_specific) {
      advertised_units_ = net::saturating_add(
          advertised_units_, net::Ipv6Family::prefix_units(route.prefix));
    }
    chain.push_back(route.prefix);
  }
}

std::vector<net::Ipv6Prefix> RoutingTable6::l_prefixes() const {
  std::vector<net::Ipv6Prefix> out;
  for (const Route6Entry& route : routes_) {
    if (!route.more_specific) out.push_back(route.prefix);
  }
  return out;
}

std::vector<net::Ipv6Prefix> RoutingTable6::m_prefixes() const {
  std::vector<net::Ipv6Prefix> out;
  for (const Route6Entry& route : routes_) {
    if (route.more_specific) out.push_back(route.prefix);
  }
  return out;
}

PrefixPartition6 RoutingTable6::l_partition() const {
  return PrefixPartition6(l_prefixes());
}

PrefixPartition6 RoutingTable6::m_partition() const {
  // Group announced more-specifics under their covering l-prefix, then
  // deaggregate each l-prefix (Figure 2). Routes are sorted, so the
  // more-specifics of an l-prefix immediately follow it.
  std::vector<net::Ipv6Prefix> cells;
  std::size_t i = 0;
  while (i < routes_.size()) {
    TASS_ENSURES(!routes_[i].more_specific);
    const net::Ipv6Prefix covering = routes_[i].prefix;
    std::vector<net::Ipv6Prefix> inside;
    std::size_t j = i + 1;
    while (j < routes_.size() && covering.contains(routes_[j].prefix)) {
      inside.push_back(routes_[j].prefix);
      ++j;
    }
    const auto tiles = deaggregate(covering, inside);
    cells.insert(cells.end(), tiles.begin(), tiles.end());
    i = j;
  }
  return PrefixPartition6(std::move(cells));
}

}  // namespace tass::bgp
