// Deaggregation of loosely aggregated BGP announcements (paper §3.2,
// Figure 2).
//
// BGP tables announce more-specific prefixes (m-prefixes, e.g.
// 100.0.0.0/12) in parallel with covering less-specific prefixes
// (l-prefixes, e.g. 100.0.0.0/8). To "take all routing information into
// account while maintaining a proper partition of the address space", each
// l-prefix is decomposed into the minimal set of prefixes that contains
// every announced more-specific exactly — for the /8-with-/12 example this
// yields {/9, /10, /11, /12-sibling, /12} (Figure 2b).
#pragma once

#include <span>
#include <vector>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace tass::bgp {

/// Decomposes `covering` into the minimal set of disjoint prefixes such
/// that every prefix in `more_specifics` appears as a whole cell (i.e. no
/// output cell properly contains an input more-specific, and the output
/// exactly tiles `covering`). Output ascends by network address.
///
/// `more_specifics` entries must be strictly contained in `covering`;
/// duplicates and nested more-specifics are allowed (nesting recursively
/// refines the partition down to the finest announced granularity).
std::vector<net::Prefix> deaggregate(
    net::Prefix covering, std::span<const net::Prefix> more_specifics);

/// The IPv6 twin — the identical binary tiler on 128-bit prefixes, so
/// the m-partition construction (Figure 2) carries over to announced-v6
/// tables unchanged.
std::vector<net::Ipv6Prefix> deaggregate(
    net::Ipv6Prefix covering,
    std::span<const net::Ipv6Prefix> more_specifics);

}  // namespace tass::bgp
