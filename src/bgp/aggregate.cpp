#include "bgp/aggregate.hpp"

#include "net/interval.hpp"

namespace tass::bgp {

std::vector<net::Prefix> aggregate(std::span<const net::Prefix> prefixes) {
  // Interval algebra does all the work: union the ranges, then emit the
  // minimal CIDR cover. Sibling merges fall out of range coalescing.
  return net::IntervalSet::of_prefixes(prefixes).to_prefixes();
}

std::uint64_t union_size(std::span<const net::Prefix> prefixes) {
  return net::IntervalSet::of_prefixes(prefixes).address_count();
}

}  // namespace tass::bgp
