// DEPRECATED forwarding shim: the IPv6 partition aliases now live in
// bgp/partition.hpp (the family-generic primary). Include that instead.
#pragma once

#include "bgp/partition.hpp"  // IWYU pragma: export
