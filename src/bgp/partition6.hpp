// The IPv6 instantiation of the prefix partition (see partition.hpp).
//
// Identical semantics on 128-bit keys: disjoint announced-v6 cells,
// stable cell indices under churn, batched locate_many over
// Ipv6Address spans, borrowed-storage attach for TSIM images. Space
// accounting is in /64 subnets (the v6 allocation unit) and saturates
// instead of wrapping.
#pragma once

#include "bgp/partition.hpp"
#include "trie/lpm_index6.hpp"

namespace tass::bgp {

using PartitionDelta6 = PartitionDeltaT<net::Ipv6Family>;
using SortedCell6 = SortedCellT<net::Ipv6Family>;
using PartitionApplyResult6 = PartitionApplyResultT<net::Ipv6Family>;
using PrefixPartition6 = BasicPrefixPartition<net::Ipv6Family>;

extern template class BasicPrefixPartition<net::Ipv6Family>;

}  // namespace tass::bgp
