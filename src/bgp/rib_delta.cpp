#include "bgp/rib_delta.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "bgp/mrt.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"

namespace tass::bgp {

namespace {

using util::ByteReader;
using util::ByteWriter;

constexpr std::uint8_t kBgpUpdate = 2;
constexpr std::size_t kBgpMarkerSize = 16;
constexpr std::size_t kBgpHeaderSize = kBgpMarkerSize + 2 + 1;
// Prefixes per UPDATE message; keeps every message far below the 4096-byte
// BGP limit (64 * 5 NLRI bytes + attributes).
constexpr std::size_t kPrefixesPerMessage = 64;

bool record_less(const Pfx2AsRecord& a, const Pfx2AsRecord& b) noexcept {
  return a.prefix < b.prefix;
}

// Sorted copy of a table; throws if two records share a prefix.
std::vector<Pfx2AsRecord> sorted_table(std::span<const Pfx2AsRecord> table,
                                       const char* what) {
  std::vector<Pfx2AsRecord> sorted(table.begin(), table.end());
  std::sort(sorted.begin(), sorted.end(), record_less);
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i].prefix == sorted[i + 1].prefix) {
      throw Error(std::string(what) + ": duplicate prefix " +
                  sorted[i].prefix.to_string());
    }
  }
  return sorted;
}

// BGP NLRI / withdrawn-routes prefix encoding: length byte + the minimal
// number of network bytes.
void encode_wire_prefix(ByteWriter& out, net::Prefix prefix) {
  out.u8(static_cast<std::uint8_t>(prefix.length()));
  const int prefix_bytes = (prefix.length() + 7) / 8;
  const std::uint32_t network = prefix.network().value();
  for (int i = 0; i < prefix_bytes; ++i) {
    out.u8(static_cast<std::uint8_t>((network >> (24 - 8 * i)) & 0xff));
  }
}

net::Prefix decode_wire_prefix(ByteReader& in) {
  const std::uint8_t length = in.u8();
  if (length > 32) {
    throw FormatError("invalid IPv4 prefix length " + std::to_string(length));
  }
  const int prefix_bytes = (length + 7) / 8;
  std::uint32_t network = 0;
  const auto raw = in.bytes(static_cast<std::size_t>(prefix_bytes));
  for (int i = 0; i < prefix_bytes; ++i) {
    network |= std::to_integer<std::uint32_t>(raw[static_cast<std::size_t>(i)])
               << (24 - 8 * i);
  }
  return net::Prefix(net::Ipv4Address(network), length);
}

// Wraps one BGP message into a BGP4MP_MESSAGE_AS4 MRT record.
void encode_bgp4mp_record(ByteWriter& out, std::uint32_t timestamp,
                          std::uint32_t peer_asn,
                          net::Ipv4Address peer_address,
                          std::span<const std::byte> bgp_message) {
  ByteWriter body;
  body.u32(peer_asn);
  body.u32(peer_asn);  // local AS (we synthesise a single-speaker stream)
  body.u16(0);         // interface index
  body.u16(1);         // AFI: IPv4
  body.u32(peer_address.value());
  body.u32(peer_address.value());  // local address
  body.bytes(bgp_message);

  out.u32(timestamp);
  out.u16(static_cast<std::uint16_t>(MrtType::kBgp4mp));
  out.u16(static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4));
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.bytes(body.view());
}

// One BGP UPDATE: the given withdrawals, plus NLRI sharing one attribute
// block (empty attrs when there is nothing to announce).
std::vector<std::byte> encode_update_message(
    std::span<const net::Prefix> withdrawals,
    std::span<const std::byte> attributes,
    std::span<const net::Prefix> nlri) {
  ByteWriter withdrawn;
  for (const net::Prefix prefix : withdrawals) {
    encode_wire_prefix(withdrawn, prefix);
  }

  ByteWriter message;
  for (std::size_t i = 0; i < kBgpMarkerSize; ++i) message.u8(0xff);
  const std::size_t length_offset = message.size();
  message.u16(0);  // patched below
  message.u8(kBgpUpdate);
  message.u16(static_cast<std::uint16_t>(withdrawn.size()));
  message.bytes(withdrawn.view());
  message.u16(static_cast<std::uint16_t>(attributes.size()));
  message.bytes(attributes);
  for (const net::Prefix prefix : nlri) encode_wire_prefix(message, prefix);
  message.patch_u16(length_offset, static_cast<std::uint16_t>(message.size()));
  return std::move(message).take();
}

// Attribute block announcing routes originated by `origins` as seen from
// `peer_asn`: ORIGIN IGP + AS_PATH (single origin ends the sequence; a
// multi-origin set becomes a trailing AS_SET, which is exactly the shape
// MrtRibEntry::origin_set() reports back).
std::vector<std::byte> announcement_attributes(
    std::uint32_t peer_asn, std::span<const std::uint32_t> origins) {
  MrtRibEntry entry;
  entry.origin = BgpOrigin::kIgp;
  AsPathSegment sequence;
  sequence.kind = AsPathSegment::Kind::kAsSequence;
  sequence.asns.push_back(peer_asn);
  if (origins.size() == 1) {
    sequence.asns.push_back(origins.front());
    entry.as_path.push_back(std::move(sequence));
  } else {
    entry.as_path.push_back(std::move(sequence));
    AsPathSegment set;
    set.kind = AsPathSegment::Kind::kAsSet;
    set.asns.assign(origins.begin(), origins.end());
    entry.as_path.push_back(std::move(set));
  }
  return encode_path_attributes(entry);
}

}  // namespace

void RibDelta::validate() const {
  std::vector<std::pair<net::Prefix, int>> seen;  // (prefix, section)
  seen.reserve(change_count());
  for (const Pfx2AsRecord& record : announce) {
    if (record.origins.empty()) {
      throw Error("RibDelta: announce of " + record.prefix.to_string() +
                  " has no origin");
    }
    seen.emplace_back(record.prefix, 0);
  }
  for (const net::Prefix prefix : withdraw) seen.emplace_back(prefix, 1);
  for (const Pfx2AsRecord& record : reorigin) {
    if (record.origins.empty()) {
      throw Error("RibDelta: reorigin of " + record.prefix.to_string() +
                  " has no origin");
    }
    seen.emplace_back(record.prefix, 2);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i + 1 < seen.size(); ++i) {
    if (seen[i].first == seen[i + 1].first) {
      throw Error(seen[i].second == seen[i + 1].second
                      ? "RibDelta: duplicate prefix " +
                            seen[i].first.to_string() + " in one section"
                      : "RibDelta: prefix " + seen[i].first.to_string() +
                            " appears in two sections");
    }
  }
}

RibDelta RibDelta::diff(std::span<const Pfx2AsRecord> from,
                        std::span<const Pfx2AsRecord> to) {
  const auto old_table = sorted_table(from, "RibDelta::diff(from)");
  const auto new_table = sorted_table(to, "RibDelta::diff(to)");

  RibDelta delta;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_table.size() || j < new_table.size()) {
    if (j == new_table.size() ||
        (i < old_table.size() &&
         old_table[i].prefix < new_table[j].prefix)) {
      delta.withdraw.push_back(old_table[i].prefix);
      ++i;
    } else if (i == old_table.size() ||
               new_table[j].prefix < old_table[i].prefix) {
      delta.announce.push_back(new_table[j]);
      ++j;
    } else {
      if (old_table[i].origins != new_table[j].origins) {
        delta.reorigin.push_back(new_table[j]);
      }
      ++i;
      ++j;
    }
  }
  return delta;
}

std::vector<Pfx2AsRecord> RibDelta::apply(
    std::span<const Pfx2AsRecord> table) const {
  validate();
  auto result = sorted_table(table, "RibDelta::apply");

  auto find = [&](net::Prefix prefix) {
    const auto it =
        std::lower_bound(result.begin(), result.end(),
                         Pfx2AsRecord{prefix, {}}, record_less);
    return it != result.end() && it->prefix == prefix ? it : result.end();
  };

  // Withdraw and reorigin patch in place; announcements are collected and
  // merged afterwards so each mutation stays O(log n) per change.
  std::vector<bool> drop(result.size(), false);
  for (const net::Prefix prefix : withdraw) {
    const auto it = find(prefix);
    if (it == result.end()) {
      throw Error("RibDelta::apply: withdrawn prefix " + prefix.to_string() +
                  " not in table");
    }
    drop[static_cast<std::size_t>(it - result.begin())] = true;
  }
  for (const Pfx2AsRecord& record : reorigin) {
    const auto it = find(record.prefix);
    if (it == result.end()) {
      throw Error("RibDelta::apply: reorigined prefix " +
                  record.prefix.to_string() + " not in table");
    }
    it->origins = record.origins;
  }
  for (const Pfx2AsRecord& record : announce) {
    if (find(record.prefix) != result.end()) {
      throw Error("RibDelta::apply: announced prefix " +
                  record.prefix.to_string() + " already in table");
    }
  }

  std::vector<Pfx2AsRecord> merged;
  merged.reserve(result.size() - withdraw.size() + announce.size());
  auto announced = sorted_table(announce, "RibDelta::apply(announce)");
  auto a = announced.cbegin();
  for (std::size_t k = 0; k < result.size(); ++k) {
    if (drop[k]) continue;
    while (a != announced.cend() && a->prefix < result[k].prefix) {
      merged.push_back(*a++);
    }
    merged.push_back(std::move(result[k]));
  }
  merged.insert(merged.end(), a, announced.cend());
  return merged;
}

std::vector<std::byte> encode_mrt_updates(const RibDelta& delta,
                                          std::uint32_t timestamp,
                                          std::uint32_t peer_asn,
                                          net::Ipv4Address peer_address) {
  delta.validate();
  ByteWriter out;

  for (std::size_t offset = 0; offset < delta.withdraw.size();
       offset += kPrefixesPerMessage) {
    const std::size_t count =
        std::min(kPrefixesPerMessage, delta.withdraw.size() - offset);
    const auto message = encode_update_message(
        std::span(delta.withdraw).subspan(offset, count), {}, {});
    encode_bgp4mp_record(out, timestamp, peer_asn, peer_address, message);
  }

  // Announcements (and reorigins, which are re-announcements on the wire)
  // grouped by origin set so each group shares one attribute block.
  std::vector<const Pfx2AsRecord*> routes;
  routes.reserve(delta.announce.size() + delta.reorigin.size());
  for (const Pfx2AsRecord& record : delta.announce) routes.push_back(&record);
  for (const Pfx2AsRecord& record : delta.reorigin) routes.push_back(&record);
  std::stable_sort(routes.begin(), routes.end(),
                   [](const Pfx2AsRecord* a, const Pfx2AsRecord* b) {
                     if (a->origins != b->origins) {
                       return a->origins < b->origins;
                     }
                     return a->prefix < b->prefix;
                   });
  std::size_t group_begin = 0;
  while (group_begin < routes.size()) {
    std::size_t group_end = group_begin;
    while (group_end < routes.size() &&
           routes[group_end]->origins == routes[group_begin]->origins) {
      ++group_end;
    }
    const auto attributes =
        announcement_attributes(peer_asn, routes[group_begin]->origins);
    for (std::size_t offset = group_begin; offset < group_end;
         offset += kPrefixesPerMessage) {
      const std::size_t count =
          std::min(kPrefixesPerMessage, group_end - offset);
      std::vector<net::Prefix> nlri;
      nlri.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        nlri.push_back(routes[offset + k]->prefix);
      }
      const auto message = encode_update_message({}, attributes, nlri);
      encode_bgp4mp_record(out, timestamp, peer_asn, peer_address, message);
    }
    group_begin = group_end;
  }
  return std::move(out).take();
}

RibDelta decode_mrt_updates(std::span<const std::byte> data,
                            std::size_t* skipped) {
  // Stream-ordered actions; the last action per prefix wins, which is how
  // a BGP listener's view converges too.
  struct Action {
    net::Prefix prefix;
    std::optional<std::vector<std::uint32_t>> origins;  // nullopt: withdraw
  };
  std::vector<Action> actions;
  std::size_t skipped_records = 0;

  ByteReader in(data);
  while (!in.done()) {
    in.u32();  // timestamp (unused: deltas are order-defined)
    const std::uint16_t type = in.u16();
    const std::uint16_t subtype = in.u16();
    const std::uint32_t length = in.u32();
    ByteReader body = in.sub(length);
    if (type != static_cast<std::uint16_t>(MrtType::kBgp4mp) ||
        subtype != static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4)) {
      ++skipped_records;
      continue;
    }
    body.u32();  // peer AS
    body.u32();  // local AS
    body.u16();  // interface index
    const std::uint16_t afi = body.u16();
    if (afi != 1) {  // not IPv4: a well-formed record we do not consume
      ++skipped_records;
      continue;
    }
    body.u32();  // peer address
    body.u32();  // local address

    for (std::size_t i = 0; i < kBgpMarkerSize; ++i) {
      if (body.u8() != 0xff) {
        throw FormatError("BGP message with corrupt marker");
      }
    }
    const std::uint16_t message_length = body.u16();
    // message_length covers marker + length field + the remainder.
    if (message_length < kBgpHeaderSize ||
        message_length - (kBgpMarkerSize + 2) != body.remaining()) {
      throw FormatError("BGP message length disagrees with MRT record");
    }
    const std::uint8_t message_type = body.u8();
    if (message_type != kBgpUpdate) {  // OPEN/KEEPALIVE/NOTIFICATION
      ++skipped_records;
      continue;
    }

    const std::uint16_t withdrawn_length = body.u16();
    ByteReader withdrawn = body.sub(withdrawn_length);
    while (!withdrawn.done()) {
      actions.push_back({decode_wire_prefix(withdrawn), std::nullopt});
    }
    const std::uint16_t attribute_length = body.u16();
    MrtRibEntry entry;
    decode_path_attributes(body.bytes(attribute_length), entry);
    const auto origins = entry.origin_set();
    bool saw_nlri = false;
    while (!body.done()) {
      saw_nlri = true;
      actions.push_back({decode_wire_prefix(body), origins});
    }
    if (saw_nlri && origins.empty()) {
      throw FormatError("BGP announcement without an origin AS");
    }
  }
  if (skipped != nullptr) *skipped = skipped_records;

  // Resolve per-prefix history: stable sort keeps stream order within a
  // prefix, the last entry is the surviving action.
  std::stable_sort(actions.begin(), actions.end(),
                   [](const Action& a, const Action& b) {
                     return a.prefix < b.prefix;
                   });
  RibDelta delta;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i + 1 < actions.size() &&
        actions[i].prefix == actions[i + 1].prefix) {
      continue;
    }
    if (actions[i].origins) {
      delta.announce.push_back({actions[i].prefix, *actions[i].origins});
    } else {
      delta.withdraw.push_back(actions[i].prefix);
    }
  }
  return delta;
}

RibDelta rebased(RibDelta delta, std::span<const Pfx2AsRecord> table) {
  const auto current = sorted_table(table, "rebased");
  const auto find = [&](net::Prefix prefix) {
    const auto it =
        std::lower_bound(current.begin(), current.end(),
                         Pfx2AsRecord{prefix, {}}, record_less);
    return it != current.end() && it->prefix == prefix ? &*it : nullptr;
  };

  RibDelta result;
  for (const net::Prefix prefix : delta.withdraw) {
    if (find(prefix) == nullptr) {
      throw Error("rebased: withdrawn prefix " + prefix.to_string() +
                  " not in table");
    }
    result.withdraw.push_back(prefix);
  }
  auto split = [&](std::vector<Pfx2AsRecord>& section) {
    for (Pfx2AsRecord& record : section) {
      if (const Pfx2AsRecord* existing = find(record.prefix)) {
        if (existing->origins != record.origins) {
          result.reorigin.push_back(std::move(record));
        }  // identical re-announcement: drop
      } else {
        result.announce.push_back(std::move(record));
      }
    }
  };
  split(delta.announce);
  split(delta.reorigin);

  const auto by_prefix = [](const Pfx2AsRecord& a, const Pfx2AsRecord& b) {
    return a.prefix < b.prefix;
  };
  std::sort(result.announce.begin(), result.announce.end(), by_prefix);
  std::sort(result.withdraw.begin(), result.withdraw.end());
  std::sort(result.reorigin.begin(), result.reorigin.end(), by_prefix);
  result.validate();
  return result;
}

}  // namespace tass::bgp
