#include "bgp/deaggregate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::bgp {

namespace {

// Recursive tiler. `inside` holds announced prefixes strictly contained in
// `node`, sorted ascending by (network, length). A node with nothing
// strictly inside is a finished cell; otherwise split and recurse. Splitting
// a prefix equal to one half removes it from that half's "strictly inside"
// set by construction (it becomes the half itself).
void tile(net::Prefix node, std::span<const net::Prefix> inside,
          std::vector<net::Prefix>& out) {
  if (inside.empty()) {
    out.push_back(node);
    return;
  }
  TASS_EXPECTS(node.length() < 32);
  const net::Prefix lower = node.lower_half();
  const net::Prefix upper = node.upper_half();

  // `inside` is sorted by network address, so the two halves correspond to
  // a contiguous split around the first prefix belonging to the upper half.
  const auto boundary = std::partition_point(
      inside.begin(), inside.end(),
      [&](net::Prefix p) { return p.network() < upper.network(); });

  auto lower_span = inside.subspan(
      0, static_cast<std::size_t>(boundary - inside.begin()));
  auto upper_span =
      inside.subspan(static_cast<std::size_t>(boundary - inside.begin()));

  // A more-specific equal to the half itself is no longer *strictly*
  // inside that half; it sorts first within its span (shortest length at
  // the lowest network address).
  while (!lower_span.empty() && lower_span.front() == lower) {
    lower_span = lower_span.subspan(1);
  }
  while (!upper_span.empty() && upper_span.front() == upper) {
    upper_span = upper_span.subspan(1);
  }

  tile(lower, lower_span, out);
  tile(upper, upper_span, out);
}

}  // namespace

std::vector<net::Prefix> deaggregate(
    net::Prefix covering, std::span<const net::Prefix> more_specifics) {
  std::vector<net::Prefix> inside(more_specifics.begin(),
                                  more_specifics.end());
  for (const net::Prefix p : inside) {
    if (!(covering.contains(p) && p != covering)) {
      throw Error("deaggregate: " + p.to_string() +
                  " is not strictly contained in " + covering.to_string());
    }
  }
  std::sort(inside.begin(), inside.end());
  inside.erase(std::unique(inside.begin(), inside.end()), inside.end());

  std::vector<net::Prefix> out;
  tile(covering, inside, out);
  return out;
}

}  // namespace tass::bgp
