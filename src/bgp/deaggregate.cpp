#include "bgp/deaggregate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::bgp {

namespace {

// Recursive tiler, generic over the prefix type (both families provide
// lower_half/upper_half/contains and the (network, length) ordering).
// `inside` holds announced prefixes strictly contained in `node`, sorted
// ascending by (network, length). A node with nothing strictly inside is
// a finished cell; otherwise split and recurse. Splitting a prefix equal
// to one half removes it from that half's "strictly inside" set by
// construction (it becomes the half itself).
template <class Prefix>
void tile(Prefix node, std::span<const Prefix> inside,
          std::vector<Prefix>& out, int max_length) {
  if (inside.empty()) {
    out.push_back(node);
    return;
  }
  TASS_EXPECTS(node.length() < max_length);
  const Prefix lower = node.lower_half();
  const Prefix upper = node.upper_half();

  // `inside` is sorted by network address, so the two halves correspond to
  // a contiguous split around the first prefix belonging to the upper half.
  const auto boundary = std::partition_point(
      inside.begin(), inside.end(),
      [&](Prefix p) { return p.network() < upper.network(); });

  auto lower_span = inside.subspan(
      0, static_cast<std::size_t>(boundary - inside.begin()));
  auto upper_span =
      inside.subspan(static_cast<std::size_t>(boundary - inside.begin()));

  // A more-specific equal to the half itself is no longer *strictly*
  // inside that half; it sorts first within its span (shortest length at
  // the lowest network address).
  while (!lower_span.empty() && lower_span.front() == lower) {
    lower_span = lower_span.subspan(1);
  }
  while (!upper_span.empty() && upper_span.front() == upper) {
    upper_span = upper_span.subspan(1);
  }

  tile(lower, lower_span, out, max_length);
  tile(upper, upper_span, out, max_length);
}

template <class Prefix>
std::vector<Prefix> deaggregate_impl(Prefix covering,
                                     std::span<const Prefix> more_specifics,
                                     int max_length) {
  std::vector<Prefix> inside(more_specifics.begin(), more_specifics.end());
  for (const Prefix p : inside) {
    if (!(covering.contains(p) && p != covering)) {
      throw Error("deaggregate: " + p.to_string() +
                  " is not strictly contained in " + covering.to_string());
    }
  }
  std::sort(inside.begin(), inside.end());
  inside.erase(std::unique(inside.begin(), inside.end()), inside.end());

  std::vector<Prefix> out;
  tile(covering, std::span<const Prefix>(inside), out, max_length);
  return out;
}

}  // namespace

std::vector<net::Prefix> deaggregate(
    net::Prefix covering, std::span<const net::Prefix> more_specifics) {
  return deaggregate_impl(covering, more_specifics, 32);
}

std::vector<net::Ipv6Prefix> deaggregate(
    net::Ipv6Prefix covering,
    std::span<const net::Ipv6Prefix> more_specifics) {
  return deaggregate_impl(covering, more_specifics, 128);
}

}  // namespace tass::bgp
