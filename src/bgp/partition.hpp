// PrefixPartition: a set of pairwise-disjoint prefixes with flat-index
// address attribution.
//
// Both prefix granularities the paper studies — the l-prefix view and the
// deaggregated m-prefix view (Figure 2) — are partitions of the advertised
// space. The census model places hosts into partition cells and the TASS
// core attributes scan responses to cells, so this type is the common
// currency between bgp, census, and core. Attribution rides on the
// trie::LpmIndex substrate: locate() is a handful of dependent loads and
// locate_many() resolves a whole shard's addresses in one call.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/interval.hpp"
#include "net/prefix.hpp"
#include "trie/lpm_index.hpp"
#include "util/error.hpp"

namespace tass::bgp {

class PrefixPartition {
 public:
  PrefixPartition() = default;

  /// Builds from disjoint prefixes. Throws tass::Error if any two overlap;
  /// the input order is preserved and becomes the cell index order.
  explicit PrefixPartition(std::vector<net::Prefix> prefixes);

  std::size_t size() const noexcept { return prefixes_.size(); }
  bool empty() const noexcept { return prefixes_.empty(); }

  net::Prefix prefix(std::size_t index) const noexcept {
    TASS_EXPECTS(index < prefixes_.size());
    return prefixes_[index];
  }
  std::span<const net::Prefix> prefixes() const noexcept { return prefixes_; }

  /// Sentinel cell index reported by locate_many for unrouted addresses.
  static constexpr std::uint32_t kNoCell = trie::LpmIndex::kNoMatch;

  /// Index of the cell containing the address, if any.
  std::optional<std::uint32_t> locate(net::Ipv4Address addr) const;

  /// Batched locate: cells[i] = cell index of addresses[i], or kNoCell.
  /// This is the per-shard API of the parallel attribution path.
  /// Precondition: cells.size() >= addresses.size().
  void locate_many(std::span<const std::uint32_t> addresses,
                   std::span<std::uint32_t> cells) const noexcept;

  /// The shared per-shard attribution kernel: resolves `addresses` in
  /// cache-sized blocks through locate_many and tallies them into
  /// counts[cell]; addresses outside the partition increment
  /// `unattributed` instead. Precondition: counts.size() == size().
  template <typename Count>
  void tally_cells(std::span<const std::uint32_t> addresses,
                   std::vector<Count>& counts, std::uint64_t& attributed,
                   std::uint64_t& unattributed) const {
    TASS_EXPECTS(counts.size() == prefixes_.size());
    constexpr std::size_t kBlock = 4096;
    std::array<std::uint32_t, kBlock> cells;
    for (std::size_t offset = 0; offset < addresses.size();
         offset += kBlock) {
      const std::size_t n = std::min(kBlock, addresses.size() - offset);
      locate_many(addresses.subspan(offset, n), std::span(cells).first(n));
      for (std::size_t i = 0; i < n; ++i) {
        if (cells[i] != kNoCell) {
          ++counts[cells[i]];
          ++attributed;
        } else {
          ++unattributed;
        }
      }
    }
  }

  /// Index of the cell equal to `prefix`, if present.
  std::optional<std::uint32_t> index_of(net::Prefix prefix) const;

  /// The underlying match substrate (shared with benches and tests).
  const trie::LpmIndex& index() const noexcept { return index_; }

  /// Total number of addresses covered by the partition.
  std::uint64_t address_count() const noexcept { return address_count_; }

  /// The covered space as an interval set.
  net::IntervalSet to_interval_set() const;

 private:
  std::vector<net::Prefix> prefixes_;
  // Cells sorted by (network, length) for index_of binary search; the
  // second member is the cell index in input order.
  std::vector<std::pair<net::Prefix, std::uint32_t>> sorted_;
  trie::LpmIndex index_;
  std::uint64_t address_count_ = 0;
};

}  // namespace tass::bgp
