// PrefixPartition: a set of pairwise-disjoint prefixes with O(32) address
// attribution.
//
// Both prefix granularities the paper studies — the l-prefix view and the
// deaggregated m-prefix view (Figure 2) — are partitions of the advertised
// space. The census model places hosts into partition cells and the TASS
// core attributes scan responses to cells, so this type is the common
// currency between bgp, census, and core.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/interval.hpp"
#include "net/prefix.hpp"
#include "trie/prefix_trie.hpp"

namespace tass::bgp {

class PrefixPartition {
 public:
  PrefixPartition() = default;

  /// Builds from disjoint prefixes. Throws tass::Error if any two overlap;
  /// the input order is preserved and becomes the cell index order.
  explicit PrefixPartition(std::vector<net::Prefix> prefixes);

  std::size_t size() const noexcept { return prefixes_.size(); }
  bool empty() const noexcept { return prefixes_.empty(); }

  net::Prefix prefix(std::size_t index) const noexcept {
    TASS_EXPECTS(index < prefixes_.size());
    return prefixes_[index];
  }
  std::span<const net::Prefix> prefixes() const noexcept { return prefixes_; }

  /// Index of the cell containing the address, if any.
  std::optional<std::uint32_t> locate(net::Ipv4Address addr) const;

  /// Index of the cell equal to `prefix`, if present.
  std::optional<std::uint32_t> index_of(net::Prefix prefix) const;

  /// Total number of addresses covered by the partition.
  std::uint64_t address_count() const noexcept { return address_count_; }

  /// The covered space as an interval set.
  net::IntervalSet to_interval_set() const;

 private:
  std::vector<net::Prefix> prefixes_;
  trie::PrefixTrie<std::uint32_t> index_;
  std::uint64_t address_count_ = 0;
};

}  // namespace tass::bgp
