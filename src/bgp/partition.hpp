// BasicPrefixPartition: a set of pairwise-disjoint prefixes with
// flat-index address attribution, parameterized over the address family.
//
// Both prefix granularities the paper studies — the l-prefix view and the
// deaggregated m-prefix view (Figure 2) — are partitions of the advertised
// space. The census model places hosts into partition cells and the TASS
// core attributes scan responses to cells, so this type is the common
// currency between bgp, census, and core. Attribution rides on the
// trie::BasicLpmIndex substrate: locate() is a handful of dependent loads
// and locate_many() resolves a whole shard's addresses in one call. The
// IPv6 instantiation (bgp::PrefixPartition6, aliased below) runs the
// same code over 128-bit keys; space accounting is in the family's scan
// units (addresses for v4, /64 subnets for v6) and saturates rather than
// wraps where v6 totals exceed 64 bits.
//
// Churn: apply_delta() patches the partition in place as the BGP table
// evolves. Cell indices are *stable* — surviving cells keep their index
// across any number of deltas, so per-cell state (host counts, rankings)
// carried between scan cycles stays valid without re-attribution. Removed
// cells become free slots that later additions reuse; until reused, a
// dead slot stays in size() with live(i) == false and can never be
// returned by locate()/locate_many().
//
// Storage: like trie::BasicLpmIndex, the per-cell arrays are addressed
// through spans, so a partition either owns them (the build/churn paths)
// or borrows them from caller-owned memory — the zero-copy mode the TSIM
// state image (state/image.hpp) uses to attach N worker processes to one
// mmap'ed topology. A borrowed partition serves every const query through
// the unchanged API but rejects apply_delta().
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bgp/tally_kernels.hpp"
#include "net/family.hpp"
#include "net/interval.hpp"
#include "net/prefix.hpp"
#include "trie/lpm_index.hpp"
#include "trie/lpm_index6.hpp"
#include "util/error.hpp"

namespace tass::bgp {

/// A batch of prefix-level changes to a partition: `remove` lists cells to
/// withdraw (must be present), `add` lists prefixes to announce (must stay
/// disjoint from the surviving cells and from each other). Typically
/// derived from a bgp::RibDelta via partition_delta().
template <class Family>
struct PartitionDeltaT {
  std::vector<typename Family::Prefix> remove;
  std::vector<typename Family::Prefix> add;

  bool empty() const noexcept { return remove.empty() && add.empty(); }
  std::size_t change_count() const noexcept {
    return remove.size() + add.size();
  }
};

/// One row of the sorted live-cell view: the cell's prefix and its slot.
/// A plain standard-layout struct (rather than std::pair) so the state
/// image can serialise the array with an assertable byte layout.
template <class Family>
struct SortedCellT {
  typename Family::Prefix prefix;
  std::uint32_t slot = 0;

  friend constexpr bool operator<(SortedCellT a, SortedCellT b) noexcept {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    return a.slot < b.slot;
  }
};

/// Cell bookkeeping produced by apply_delta — exactly the invalidation
/// set an incremental consumer (core::rerank_cells, core::churn_step)
/// needs to re-score only what the delta touched.
template <class Family>
struct PartitionApplyResultT {
  /// Cells withdrawn by the delta, ascending. Their per-cell state is
  /// stale; the slots were freed (and possibly reused by `added_cells`).
  std::vector<std::uint32_t> removed_cells;
  /// Cells created for added prefixes, ascending: reused free slots first,
  /// then slots appended at the end of the partition.
  std::vector<std::uint32_t> added_cells;
  std::uint32_t old_cell_count = 0;  // size() before the delta
  std::uint32_t new_cell_count = 0;  // size() after the delta

  /// How the LpmIndex absorbed the change (patched vs rebuilt); benches
  /// and tests use this to see which path the cost model chose.
  typename trie::BasicLpmIndex<Family>::UpdateStats index_stats;

  /// Grows a per-cell vector to the post-delta size() and resets the slots
  /// whose cell was removed or re-assigned, leaving untouched cells'
  /// values in place (index stability makes this a pure patch).
  template <typename T>
  void reindex(std::vector<T>& per_cell) const {
    per_cell.resize(new_cell_count);
    for (const std::uint32_t cell : removed_cells) per_cell[cell] = T{};
    for (const std::uint32_t cell : added_cells) per_cell[cell] = T{};
  }
};

template <class Family>
class BasicPrefixPartition {
 public:
  using Address = typename Family::Address;
  using Prefix = typename Family::Prefix;
  using AddressWord = typename Family::AddressWord;
  using Index = trie::BasicLpmIndex<Family>;
  using SortedCell = SortedCellT<Family>;
  using Delta = PartitionDeltaT<Family>;
  using ApplyResult = PartitionApplyResultT<Family>;

  BasicPrefixPartition() = default;

  /// Builds from disjoint prefixes. Throws tass::Error if any two overlap;
  /// the input order is preserved and becomes the cell index order.
  explicit BasicPrefixPartition(std::vector<Prefix> prefixes);

  /// The flat per-cell arrays, as spans. raw() exposes them for
  /// serialisation; from_raw() builds a borrowed partition over them.
  /// `address_count` is in the family's scan units (addresses for v4,
  /// /64 subnets for v6; saturating).
  struct Raw {
    std::span<const Prefix> prefixes;          // one per slot (live + free)
    std::span<const SortedCell> sorted;        // live cells, prefix order
    std::span<const std::uint8_t> live;        // empty == every slot live
    std::span<const std::uint32_t> free_slots; // dead slots, ascending
    std::uint64_t address_count = 0;           // live unit total
    std::uint64_t live_count = 0;              // live slot total
  };

  /// Borrowed-storage partition over caller-owned arrays plus the match
  /// index that resolves into them (typically itself borrowed via
  /// BasicLpmIndex::from_raw). The storage must stay valid and
  /// unmodified for the partition's lifetime, and the arrays must satisfy
  /// the structural invariants of a built partition — from_raw trusts its
  /// input; the state image loader validates before calling. A borrowed
  /// partition rejects apply_delta(); all const queries are unchanged.
  static BasicPrefixPartition from_raw(const Raw& raw, Index index);

  /// The flat arrays of this partition (borrowed or owned). Spans are
  /// invalidated by apply_delta() and by destruction/assignment.
  Raw raw() const noexcept {
    return {prefixes_view_, sorted_view_,     live_view_,
            free_view_,     address_count_,   live_count_};
  }

  /// True if this partition borrows caller-owned storage (from_raw).
  bool borrowed() const noexcept { return borrowed_; }

  // Spans into own storage must be re-anchored on copy (and cleared on
  // move-from), so the special members are user-defined.
  BasicPrefixPartition(const BasicPrefixPartition& other);
  BasicPrefixPartition& operator=(const BasicPrefixPartition& other);
  BasicPrefixPartition(BasicPrefixPartition&& other) noexcept;
  BasicPrefixPartition& operator=(BasicPrefixPartition&& other) noexcept;
  ~BasicPrefixPartition() = default;

  /// Number of cell slots (live + free). Per-cell vectors are sized by
  /// this; free slots simply never receive attributions.
  std::size_t size() const noexcept { return prefixes_view_.size(); }
  bool empty() const noexcept { return prefixes_view_.empty(); }

  /// Live cells (size() minus free slots left by apply_delta).
  std::size_t live_cells() const noexcept { return live_count_; }
  std::size_t free_cells() const noexcept {
    return prefixes_view_.size() - live_count_;
  }

  /// True if the slot currently holds a cell (always true for a freshly
  /// constructed partition; apply_delta may free slots).
  bool live(std::size_t index) const noexcept {
    TASS_EXPECTS(index < prefixes_view_.size());
    return live_view_.empty() || live_view_[index] != 0;
  }

  /// Prefix of the cell at `index`. For a freed slot this returns the
  /// last prefix the slot held — callers walking all slots should gate on
  /// live(i) (attribution never produces counts for freed slots, so
  /// count-driven consumers like core::rank_by_density need no gate).
  Prefix prefix(std::size_t index) const noexcept {
    TASS_EXPECTS(index < prefixes_view_.size());
    return prefixes_view_[index];
  }
  std::span<const Prefix> prefixes() const noexcept {
    return prefixes_view_;
  }

  /// The live prefixes in slot order (== prefixes() for a partition that
  /// never absorbed a delta). This is the prefix set a from-scratch
  /// rebuild of this partition would be built from.
  std::vector<Prefix> live_prefixes() const;

  /// Applies a prefix-level delta in place, patching the LpmIndex rather
  /// than rebuilding it (see trie::BasicLpmIndex::update for the cost
  /// model).
  ///
  /// Index stability contract: cells not named by the delta keep their
  /// index, prefix, and locate() behaviour bit-identically; only the
  /// removed/added cells change. After the call, locate()/locate_many()
  /// and index_of() are bit-identical to a partition freshly built from
  /// the post-delta live prefix set — the delta differential suite
  /// enforces this.
  ///
  /// Validation happens before any mutation (strong guarantee): throws
  /// tass::Error if a removed prefix is not a live cell, is listed twice,
  /// if an added prefix overlaps a surviving cell or another addition, or
  /// if this partition is a borrowed view (from_raw) and so cannot mutate.
  /// A prefix listed in both remove and add is allowed (the cell is
  /// withdrawn and re-announced, landing on a possibly different slot).
  ///
  /// Thread safety: like LpmIndex::update — never concurrent with locate
  /// queries or another apply_delta; deltas apply between scan cycles.
  ApplyResult apply_delta(const Delta& delta);

  /// Sentinel cell index reported by locate_many for unrouted addresses.
  static constexpr std::uint32_t kNoCell = Index::kNoMatch;

  /// Index of the cell containing the address, if any.
  std::optional<std::uint32_t> locate(Address addr) const;

  /// Batched locate: cells[i] = cell index of addresses[i], or kNoCell.
  /// This is the per-shard API of the parallel attribution path.
  /// Precondition: cells.size() >= addresses.size().
  void locate_many(std::span<const AddressWord> addresses,
                   std::span<std::uint32_t> cells) const noexcept;

  /// The shared per-shard attribution kernel: resolves `addresses` in
  /// cache-sized blocks through locate_many and tallies them into
  /// counts[cell]; addresses outside the partition increment
  /// `unattributed` instead. The histogram step runs through the
  /// util::cpu-dispatched tally kernels (bgp/tally_kernels.hpp) for the
  /// two Count widths the pipeline instantiates; any other Count falls
  /// back to the inline scalar loop. Precondition: counts.size() ==
  /// size().
  template <typename Count>
  void tally_cells(std::span<const AddressWord> addresses,
                   std::vector<Count>& counts, std::uint64_t& attributed,
                   std::uint64_t& unattributed) const {
    TASS_EXPECTS(counts.size() == prefixes_view_.size());
    static_assert(detail::kTallyNoCell == kNoCell);
    const detail::TallyKernels& kernels = detail::active_tally_kernels();
    constexpr std::size_t kBlock = 4096;
    std::array<std::uint32_t, kBlock> cells;
    for (std::size_t offset = 0; offset < addresses.size();
         offset += kBlock) {
      const std::size_t n = std::min(kBlock, addresses.size() - offset);
      locate_many(addresses.subspan(offset, n), std::span(cells).first(n));
      if constexpr (std::same_as<Count, std::uint32_t>) {
        kernels.tally_u32(cells.data(), n, counts.data(), attributed,
                          unattributed);
      } else if constexpr (std::same_as<Count, std::uint64_t>) {
        kernels.tally_u64(cells.data(), n, counts.data(), attributed,
                          unattributed);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          if (cells[i] != kNoCell) {
            ++counts[cells[i]];
            ++attributed;
          } else {
            ++unattributed;
          }
        }
      }
    }
  }

  /// Index of the cell equal to `prefix`, if present.
  std::optional<std::uint32_t> index_of(Prefix prefix) const;

  /// The underlying match substrate (shared with benches and tests).
  const Index& index() const noexcept { return index_; }

  /// Total scan-space units covered by the (live) partition cells:
  /// addresses for IPv4 (exact), /64 subnets for IPv6 (saturating — a
  /// ::/0 cell alone overflows 64 bits).
  std::uint64_t address_count() const noexcept { return address_count_; }

  /// The covered space as an interval set (live cells only). IPv4 only:
  /// interval enumeration is the v4 scan engine's walk; v6 scopes
  /// enumerate candidate sets instead (scan::ScanScope6).
  net::IntervalSet to_interval_set() const
      requires std::same_as<Family, net::Ipv4Family>;

 private:
  // Re-anchors the read-side spans on the owned vectors (no-op for a
  // borrowed partition, whose spans point at caller storage).
  void sync_views() noexcept;

  std::vector<Prefix> prefixes_;
  // Live cells sorted by (network, length) for index_of binary search.
  std::vector<SortedCell> sorted_;
  Index index_;
  std::uint64_t address_count_ = 0;
  // Tombstone bookkeeping for apply_delta. live_ stays empty until the
  // first delta frees a slot (the common fresh-build case pays nothing);
  // free_slots_ is kept ascending so reuse is deterministic.
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_slots_;
  // What the const queries actually read: the owned vectors above (synced
  // after every mutation) or borrowed caller storage (from_raw).
  std::span<const Prefix> prefixes_view_;
  std::span<const SortedCell> sorted_view_;
  std::span<const std::uint8_t> live_view_;
  std::span<const std::uint32_t> free_view_;
  bool borrowed_ = false;
  std::size_t live_count_ = 0;
};

/// Prefix-level diff between a partition's live cells and a target prefix
/// set: apply_delta(partition_delta(p, target)) makes p cover exactly
/// `target`. Throws tass::Error if `target` contains duplicates (overlap
/// among the survivors is caught by apply_delta itself).
template <class Family>
PartitionDeltaT<Family> partition_delta(
    const BasicPrefixPartition<Family>& current,
    std::span<const typename Family::Prefix> target);

/// Structural fingerprint: FNV-1a over the live cell count and the live
/// prefixes in slot order. The single digest definition behind both
/// census::topology_fingerprint (TSNP snapshots) and the TSIM state
/// image, so snapshot and image bindings stay interchangeable. The IPv4
/// digest is byte-for-byte the pre-generic one; IPv6 prefixes hash their
/// hi/lo halves, so the two families can never collide by construction
/// (different update widths).
template <class Family>
std::uint64_t partition_fingerprint(
    const BasicPrefixPartition<Family>& partition);

/// The IPv4 instantiations under their historical names — every existing
/// call site compiles unchanged.
using PartitionDelta = PartitionDeltaT<net::Ipv4Family>;
using SortedCell = SortedCellT<net::Ipv4Family>;
using PartitionApplyResult = PartitionApplyResultT<net::Ipv4Family>;
using PrefixPartition = BasicPrefixPartition<net::Ipv4Family>;

extern template class BasicPrefixPartition<net::Ipv4Family>;

/// The IPv6 instantiations: identical semantics on 128-bit keys, space
/// accounting in /64 subnets (the v6 allocation unit), saturating
/// instead of wrapping.
using PartitionDelta6 = PartitionDeltaT<net::Ipv6Family>;
using SortedCell6 = SortedCellT<net::Ipv6Family>;
using PartitionApplyResult6 = PartitionApplyResultT<net::Ipv6Family>;
using PrefixPartition6 = BasicPrefixPartition<net::Ipv6Family>;

extern template class BasicPrefixPartition<net::Ipv6Family>;

}  // namespace tass::bgp
