#include "bgp/reduce.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "util/error.hpp"

namespace tass::bgp {

namespace {

// All width accounting runs on 128-bit address indexes (an IPv4 address
// is the low 32 bits, an IPv6 address the full width) and keeps
// inclusive-bound *spans* (last - first) rather than sizes, mirroring
// net::interval: the full spaces are then exact instead of overflowing.
using u128 = unsigned __int128;

constexpr u128 key_bits(net::AddressKey key) noexcept {
  return (static_cast<u128>(key.hi) << 64) | key.lo;
}

template <class Family>
constexpr u128 index_of(net::AddressKey key) noexcept {
  if constexpr (Family::kBits == 128) return key_bits(key);
  return key_bits(key) >> (128 - Family::kBits);
}

template <class Family>
constexpr net::AddressKey key_of(u128 index) noexcept {
  const u128 bits = Family::kBits == 128
                        ? index
                        : index << (128 - Family::kBits);
  return {static_cast<std::uint64_t>(bits >> 64),
          static_cast<std::uint64_t>(bits)};
}

int leading_zeros(u128 value) noexcept {
  const auto hi = static_cast<std::uint64_t>(value >> 64);
  if (hi != 0) return __builtin_clzll(hi);
  return 64 + __builtin_clzll(static_cast<std::uint64_t>(value));
}

/// Exact addresses -> the family's scan units (IPv4 addresses pass
/// through; IPv6 counts whole /64 subnets). Both fit uint64.
template <class Family>
constexpr std::uint64_t units_of(u128 addresses) noexcept {
  if constexpr (Family::kBits == 128) {
    return static_cast<std::uint64_t>(addresses >> 64);
  }
  return static_cast<std::uint64_t>(addresses);
}

/// True if `a` and `b` (same length > 0) tile their parent exactly.
template <class Family>
bool are_siblings(typename Family::Prefix a,
                  typename Family::Prefix b) noexcept {
  const auto parent = Family::make_prefix(Family::first_key(a),
                                          a.length() - 1);
  return Family::first_key(parent) == Family::first_key(a) &&
         Family::last_key(parent) == Family::last_key(b);
}

template <class Family>
struct Node {
  typename Family::Prefix prefix;
  u128 first = 0;
  u128 span = 0;  // last - first (inclusive width minus one)
  std::int32_t prev = -1;
  std::int32_t next = -1;
  std::uint32_t version = 0;
  bool alive = true;
};

/// A fully planned merge of one adjacent run [leftmost, rightmost]
/// under the smallest common supernet of the seed pair.
template <class Family>
struct Merge {
  typename Family::Prefix supernet;
  u128 first = 0;
  u128 span = 0;
  u128 cost = 0;  // addresses the merge admits that the run lacks
  std::uint32_t leftmost = 0;
  std::uint32_t rightmost = 0;
  std::uint32_t count = 0;  // nodes swallowed
};

/// Plans the merge seeded by the adjacent pair (left, right): the
/// smallest prefix covering both, widened over every current neighbour
/// it already covers (so the admitted addresses are priced once, not
/// re-priced merge by merge).
template <class Family>
Merge<Family> plan_merge(const std::vector<Node<Family>>& nodes,
                         std::uint32_t left, std::uint32_t right) {
  Merge<Family> merge;
  const u128 first = nodes[left].first;
  const u128 last = nodes[right].first + nodes[right].span;
  // The supernet's length is the count of leading key bits the run's
  // first and last addresses share (they differ — the nodes are
  // disjoint), capped nowhere: the differing bit is inside the family
  // width by construction.
  const int length =
      leading_zeros(key_bits(key_of<Family>(first)) ^
                    key_bits(key_of<Family>(last)));
  merge.supernet = Family::make_prefix(key_of<Family>(first), length);
  merge.first = index_of<Family>(Family::first_key(merge.supernet));
  merge.span = index_of<Family>(Family::last_key(merge.supernet)) -
               merge.first;
  // Widen over already-covered neighbours. Nodes are disjoint and
  // sorted, so "first inside the supernet" (left side) or "last inside"
  // (right side) is the whole containment test.
  merge.leftmost = left;
  while (nodes[merge.leftmost].prev >= 0 &&
         nodes[static_cast<std::uint32_t>(nodes[merge.leftmost].prev)]
                 .first >= merge.first) {
    merge.leftmost =
        static_cast<std::uint32_t>(nodes[merge.leftmost].prev);
  }
  merge.rightmost = right;
  while (nodes[merge.rightmost].next >= 0) {
    const auto& next =
        nodes[static_cast<std::uint32_t>(nodes[merge.rightmost].next)];
    if (next.first + next.span > merge.first + merge.span) break;
    merge.rightmost =
        static_cast<std::uint32_t>(nodes[merge.rightmost].next);
  }
  // cost = size(supernet) - sum(size(node)); with inclusive spans that
  // is span_s - sum(span_i) - (count - 1), which never underflows
  // (disjoint nodes inside the supernet) and never overflows u128.
  u128 covered_spans = 0;
  std::uint32_t count = 0;
  for (std::uint32_t cursor = merge.leftmost;; ++count) {
    covered_spans += nodes[cursor].span;
    if (cursor == merge.rightmost) {
      ++count;
      break;
    }
    cursor = static_cast<std::uint32_t>(nodes[cursor].next);
  }
  merge.count = count;
  merge.cost = merge.span - covered_spans - (count - 1);
  return merge;
}

template <class Family>
struct Candidate {
  u128 cost = 0;
  u128 order = 0;  // left node's first address: deterministic tie-break
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::uint32_t left_version = 0;
  std::uint32_t right_version = 0;
};

template <class Family>
struct CandidateAfter {
  bool operator()(const Candidate<Family>& a,
                  const Candidate<Family>& b) const noexcept {
    return std::tie(a.cost, a.order) > std::tie(b.cost, b.order);
  }
};

}  // namespace

template <class Family>
std::vector<typename Family::Prefix> BasicAggregate<Family>::aggregate(
    std::span<const Prefix> prefixes) {
  std::vector<Prefix> sorted(prefixes.begin(), prefixes.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<Prefix> out;
  out.reserve(sorted.size());
  for (const Prefix prefix : sorted) {
    // In (network, length) order a container sorts before its
    // containees, and the kept list is disjoint — so only the last kept
    // entry can cover the next input.
    if (!out.empty() && out.back().contains(prefix)) continue;
    out.push_back(prefix);
    // Cascade: completed sibling pairs collapse into their parent,
    // which may complete the next pair up.
    while (out.size() >= 2) {
      const Prefix a = out[out.size() - 2];
      const Prefix b = out.back();
      if (a.length() != b.length() || a.length() == 0 ||
          !are_siblings<Family>(a, b)) {
        break;
      }
      out.pop_back();
      out.back() = Family::make_prefix(Family::first_key(a),
                                       a.length() - 1);
    }
  }
  return out;
}

template <class Family>
std::uint64_t BasicAggregate<Family>::union_size(
    std::span<const Prefix> prefixes) {
  std::uint64_t total = 0;
  for (const Prefix prefix : aggregate(prefixes)) {
    total = net::saturating_add(total, Family::prefix_units(prefix));
  }
  return total;
}

template <class Family>
BasicReduceResult<Family> reduce(
    std::span<const typename Family::Prefix> prefixes,
    const ReduceParams& params) {
  TASS_EXPECTS(std::isfinite(params.max_overshoot) &&
               params.max_overshoot >= 0.0);
  BasicReduceResult<Family> result;
  result.original_prefixes = prefixes.size();

  auto aggregated = BasicAggregate<Family>::aggregate(prefixes);
  result.aggregated_prefixes = aggregated.size();
  for (const auto prefix : aggregated) {
    result.original_addresses = net::saturating_add(
        result.original_addresses, Family::prefix_units(prefix));
  }
  result.curve.push_back({aggregated.size(), 0});
  if (aggregated.size() <= 1 ||
      (params.min_prefixes != 0 &&
       aggregated.size() <= params.min_prefixes)) {
    result.prefixes = std::move(aggregated);
    return result;
  }

  // The overshoot budget in exact addresses. The union cannot overflow
  // here (a full-space union aggregates to one prefix, returned above).
  std::vector<Node<Family>> nodes(aggregated.size());
  u128 union_addresses = 0;
  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    auto& node = nodes[i];
    node.prefix = aggregated[i];
    node.first = index_of<Family>(Family::first_key(node.prefix));
    node.span =
        index_of<Family>(Family::last_key(node.prefix)) - node.first;
    node.prev = i == 0 ? -1 : static_cast<std::int32_t>(i - 1);
    node.next = i + 1 == aggregated.size()
                    ? -1
                    : static_cast<std::int32_t>(i + 1);
    union_addresses += node.span + 1;
  }
  const long double budget_ld =
      static_cast<long double>(params.max_overshoot) *
      static_cast<long double>(union_addresses);
  const u128 budget = budget_ld >= std::ldexp(1.0L, 127) * 2.0L
                          ? ~u128{0}
                          : static_cast<u128>(budget_ld);

  using Heap =
      std::priority_queue<Candidate<Family>, std::vector<Candidate<Family>>,
                          CandidateAfter<Family>>;
  Heap heap;
  const auto push_candidate = [&](std::uint32_t left, std::uint32_t right) {
    const auto merge = plan_merge<Family>(nodes, left, right);
    heap.push({merge.cost, nodes[left].first, left, right,
               nodes[left].version, nodes[right].version});
  };
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    push_candidate(static_cast<std::uint32_t>(i),
                   static_cast<std::uint32_t>(i + 1));
  }

  std::size_t live = nodes.size();
  u128 overshoot = 0;
  while (!heap.empty() && live > 1) {
    if (params.min_prefixes != 0 && live <= params.min_prefixes) break;
    const auto candidate = heap.top();
    heap.pop();
    const auto& left = nodes[candidate.left];
    const auto& right = nodes[candidate.right];
    if (!left.alive || !right.alive ||
        left.version != candidate.left_version ||
        right.version != candidate.right_version ||
        left.next != static_cast<std::int32_t>(candidate.right)) {
      continue;  // superseded: the merge that changed them re-seeded
    }
    // Re-plan: merges beyond the pair can change what the supernet
    // swallows without touching the pair's versions. A costlier plan
    // goes back on the heap (strictly increasing, so this terminates);
    // a plan at or under its key is executed — it was the cheapest
    // known merge.
    auto merge = plan_merge<Family>(nodes, candidate.left, candidate.right);
    if (merge.cost > candidate.cost) {
      auto repriced = candidate;
      repriced.cost = merge.cost;
      heap.push(repriced);
      continue;
    }
    if (params.min_prefixes != 0 &&
        live - (merge.count - 1) < params.min_prefixes) {
      continue;  // this swallow would land below the floor; smaller
                 // merges may still fit exactly
    }
    if (merge.cost > budget - overshoot) break;  // cap reached

    // Execute: kill the swallowed run, reuse its leftmost slot for the
    // supernet (the list head can never be a non-leftmost member, so
    // node 0 stays alive and anchors the result walk).
    const std::int32_t after = nodes[merge.rightmost].next;
    for (std::int32_t cursor = nodes[merge.leftmost].next;
         cursor != after && cursor >= 0;) {
      auto& node = nodes[static_cast<std::uint32_t>(cursor)];
      node.alive = false;
      ++node.version;
      cursor = node.next;
    }
    auto& merged = nodes[merge.leftmost];
    merged.prefix = merge.supernet;
    merged.first = merge.first;
    merged.span = merge.span;
    merged.next = after;
    ++merged.version;
    if (after >= 0) nodes[static_cast<std::uint32_t>(after)].prev =
        static_cast<std::int32_t>(merge.leftmost);
    live -= merge.count - 1;
    overshoot += merge.cost;
    ++result.merges;
    result.curve.push_back(
        {static_cast<std::uint64_t>(live), units_of<Family>(overshoot)});
    if (merged.prev >= 0) {
      push_candidate(static_cast<std::uint32_t>(merged.prev),
                     merge.leftmost);
    }
    if (merged.next >= 0) {
      push_candidate(merge.leftmost,
                     static_cast<std::uint32_t>(merged.next));
    }
  }

  result.overshoot_addresses = units_of<Family>(overshoot);
  result.prefixes.reserve(live);
  for (std::int32_t cursor = 0; cursor >= 0;
       cursor = nodes[static_cast<std::uint32_t>(cursor)].next) {
    result.prefixes.push_back(
        nodes[static_cast<std::uint32_t>(cursor)].prefix);
  }
  return result;
}

template struct BasicAggregate<net::Ipv4Family>;
template struct BasicAggregate<net::Ipv6Family>;
template BasicReduceResult<net::Ipv4Family> reduce<net::Ipv4Family>(
    std::span<const net::Prefix>, const ReduceParams&);
template BasicReduceResult<net::Ipv6Family> reduce<net::Ipv6Family>(
    std::span<const net::Ipv6Prefix>, const ReduceParams&);

}  // namespace tass::bgp
