#include "bgp/tally_kernels.hpp"

namespace tass::bgp::detail {

namespace {

// The reference loop tally_cells always ran; the kernel seam just moves
// it behind a function pointer.
template <typename Count>
void scalar_tally(const std::uint32_t* cells, std::size_t n, Count* counts,
                  std::uint64_t& attributed, std::uint64_t& unattributed) {
  for (std::size_t i = 0; i < n; ++i) {
    if (cells[i] != kTallyNoCell) {
      ++counts[cells[i]];
      ++attributed;
    } else {
      ++unattributed;
    }
  }
}

}  // namespace

const TallyKernels& tally_kernels(util::cpu::SimdLevel level) noexcept {
  static const TallyKernels kScalarTable{&scalar_tally<std::uint32_t>,
                                         &scalar_tally<std::uint64_t>,
                                         "scalar"};
  static const TallyKernels kSimdTable{
      kAvx2TallyU32 != nullptr ? kAvx2TallyU32 : &scalar_tally<std::uint32_t>,
      kAvx2TallyU64 != nullptr ? kAvx2TallyU64 : &scalar_tally<std::uint64_t>,
      kAvx2TallyU32 != nullptr ? "avx2" : "scalar"};
  return level == util::cpu::SimdLevel::kAvx2 ? kSimdTable : kScalarTable;
}

}  // namespace tass::bgp::detail
