// AVX2 cell-tally kernel: the only bgp/ translation unit compiled with
// -mavx2 (see CMakeLists.txt). Classification is vectorised — eight
// cell indices compare against the no-cell sentinel at once and a
// movemask popcount settles attributed/unattributed per block of eight
// — while the counts[cell] increment iterates the surviving lanes via
// the mask's set bits (a histogram scatter has no profitable AVX2
// form). Bit-identical to the scalar reference in tally_kernels.cpp.
#include "bgp/tally_kernels.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <bit>

namespace tass::bgp::detail {

namespace {

template <typename Count>
void avx2_tally(const std::uint32_t* cells, std::size_t n, Count* counts,
                std::uint64_t& attributed, std::uint64_t& unattributed) {
  const __m256i no_cell = _mm256_set1_epi32(static_cast<int>(kTallyNoCell));
  std::uint64_t hits = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i block = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cells + i));
    auto valid = static_cast<std::uint32_t>(_mm256_movemask_ps(
                     _mm256_castsi256_ps(
                         _mm256_cmpeq_epi32(block, no_cell)))) ^
                 0xffu;
    hits += std::popcount(valid);
    for (; valid != 0; valid &= valid - 1) {
      ++counts[cells[i + static_cast<std::size_t>(
                             std::countr_zero(valid))]];
    }
  }
  for (; i < n; ++i) {
    if (cells[i] != kTallyNoCell) {
      ++counts[cells[i]];
      ++hits;
    }
  }
  attributed += hits;
  unattributed += n - hits;
}

}  // namespace

const TallyKernels::TallyU32Fn kAvx2TallyU32 = &avx2_tally<std::uint32_t>;
const TallyKernels::TallyU64Fn kAvx2TallyU64 = &avx2_tally<std::uint64_t>;

}  // namespace tass::bgp::detail

#else  // !(__AVX2__ && __x86_64__)

namespace tass::bgp::detail {
const TallyKernels::TallyU32Fn kAvx2TallyU32 = nullptr;
const TallyKernels::TallyU64Fn kAvx2TallyU64 = nullptr;
}  // namespace tass::bgp::detail

#endif
