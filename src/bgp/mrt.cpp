#include "bgp/mrt.hpp"

#include <fstream>

#include "util/endian.hpp"
#include "util/error.hpp"

namespace tass::bgp {

namespace {

using util::ByteReader;
using util::ByteWriter;

// Peer type flags (RFC 6396 §4.3.1): bit 0 = IPv6 peer address,
// bit 1 = 4-byte peer AS. We always emit IPv4 peers with 4-byte AS.
constexpr std::uint8_t kPeerTypeAs4 = 0x02;

// BGP attribute flags.
constexpr std::uint8_t kAttrOptional = 0x80;
constexpr std::uint8_t kAttrTransitive = 0x40;
constexpr std::uint8_t kAttrExtendedLength = 0x10;

void encode_common_header(ByteWriter& out, std::uint32_t timestamp,
                          TableDumpV2Subtype subtype,
                          std::span<const std::byte> body) {
  out.u32(timestamp);
  out.u16(static_cast<std::uint16_t>(MrtType::kTableDumpV2));
  out.u16(static_cast<std::uint16_t>(subtype));
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.bytes(body);
}

std::vector<std::byte> encode_peer_index_table(const MrtRibDump& dump) {
  ByteWriter body;
  body.u32(dump.collector_id.value());
  if (dump.view_name.size() > 0xffff) {
    throw FormatError("MRT view name too long");
  }
  body.u16(static_cast<std::uint16_t>(dump.view_name.size()));
  body.bytes(std::as_bytes(std::span(dump.view_name)));
  if (dump.peers.size() > 0xffff) {
    throw FormatError("too many MRT peers");
  }
  body.u16(static_cast<std::uint16_t>(dump.peers.size()));
  for (const MrtPeer& peer : dump.peers) {
    body.u8(kPeerTypeAs4);
    body.u32(peer.bgp_id.value());
    body.u32(peer.address.value());
    body.u32(peer.asn);
  }
  return std::move(body).take();
}

void encode_attribute(ByteWriter& out, std::uint8_t flags,
                      PathAttributeType type,
                      std::span<const std::byte> value) {
  const bool extended = value.size() > 0xff;
  out.u8(static_cast<std::uint8_t>(
      flags | (extended ? kAttrExtendedLength : 0)));
  out.u8(static_cast<std::uint8_t>(type));
  if (extended) {
    out.u16(static_cast<std::uint16_t>(value.size()));
  } else {
    out.u8(static_cast<std::uint8_t>(value.size()));
  }
  out.bytes(value);
}

}  // namespace

std::vector<std::byte> encode_path_attributes(const MrtRibEntry& entry) {
  ByteWriter attrs;

  {
    ByteWriter value;
    value.u8(static_cast<std::uint8_t>(entry.origin));
    encode_attribute(attrs, kAttrTransitive, PathAttributeType::kOrigin,
                     value.view());
  }
  {
    ByteWriter value;
    for (const AsPathSegment& segment : entry.as_path) {
      if (segment.asns.size() > 0xff) {
        throw FormatError("AS_PATH segment too long");
      }
      value.u8(static_cast<std::uint8_t>(segment.kind));
      value.u8(static_cast<std::uint8_t>(segment.asns.size()));
      for (const std::uint32_t asn : segment.asns) value.u32(asn);
    }
    encode_attribute(attrs, kAttrTransitive, PathAttributeType::kAsPath,
                     value.view());
  }
  if (entry.next_hop) {
    ByteWriter value;
    value.u32(entry.next_hop->value());
    encode_attribute(attrs, kAttrTransitive, PathAttributeType::kNextHop,
                     value.view());
  }
  return std::move(attrs).take();
}

namespace {

std::vector<std::byte> encode_rib_record(const MrtRibRecord& record) {
  ByteWriter body;
  body.u32(record.sequence);
  body.u8(static_cast<std::uint8_t>(record.prefix.length()));
  const int prefix_bytes = (record.prefix.length() + 7) / 8;
  const std::uint32_t network = record.prefix.network().value();
  for (int i = 0; i < prefix_bytes; ++i) {
    body.u8(static_cast<std::uint8_t>((network >> (24 - 8 * i)) & 0xff));
  }
  if (record.entries.size() > 0xffff) {
    throw FormatError("too many RIB entries in record");
  }
  body.u16(static_cast<std::uint16_t>(record.entries.size()));
  for (const MrtRibEntry& entry : record.entries) {
    body.u16(entry.peer_index);
    body.u32(entry.originated_time);
    const auto attrs = encode_path_attributes(entry);
    if (attrs.size() > 0xffff) {
      throw FormatError("RIB entry attributes too long");
    }
    body.u16(static_cast<std::uint16_t>(attrs.size()));
    body.bytes(attrs);
  }
  return std::move(body).take();
}

MrtPeer decode_peer(ByteReader& in) {
  MrtPeer peer;
  const std::uint8_t type = in.u8();
  if ((type & 0x01) != 0) {
    throw FormatError("IPv6 MRT peers are not supported");
  }
  peer.bgp_id = net::Ipv4Address(in.u32());
  peer.address = net::Ipv4Address(in.u32());
  peer.asn = (type & kPeerTypeAs4) != 0 ? in.u32() : in.u16();
  return peer;
}

void decode_peer_index_table(ByteReader in, MrtRibDump& dump) {
  dump.collector_id = net::Ipv4Address(in.u32());
  const std::uint16_t name_len = in.u16();
  const auto name_bytes = in.bytes(name_len);
  dump.view_name.assign(reinterpret_cast<const char*>(name_bytes.data()),
                        name_bytes.size());
  const std::uint16_t peer_count = in.u16();
  dump.peers.reserve(peer_count);
  for (std::uint16_t i = 0; i < peer_count; ++i) {
    dump.peers.push_back(decode_peer(in));
  }
}

std::vector<AsPathSegment> decode_as_path(ByteReader in) {
  std::vector<AsPathSegment> segments;
  while (!in.done()) {
    AsPathSegment segment;
    const std::uint8_t kind = in.u8();
    if (kind != 1 && kind != 2) {
      throw FormatError("unknown AS_PATH segment type " +
                        std::to_string(kind));
    }
    segment.kind = static_cast<AsPathSegment::Kind>(kind);
    const std::uint8_t count = in.u8();
    segment.asns.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) segment.asns.push_back(in.u32());
    segments.push_back(std::move(segment));
  }
  return segments;
}

void decode_attributes(ByteReader in, MrtRibEntry& entry) {
  while (!in.done()) {
    const std::uint8_t flags = in.u8();
    const std::uint8_t type = in.u8();
    const std::size_t length =
        (flags & kAttrExtendedLength) != 0 ? in.u16() : in.u8();
    ByteReader value = in.sub(length);
    switch (static_cast<PathAttributeType>(type)) {
      case PathAttributeType::kOrigin: {
        const std::uint8_t origin = value.u8();
        if (origin > 2) {
          throw FormatError("invalid ORIGIN value " + std::to_string(origin));
        }
        entry.origin = static_cast<BgpOrigin>(origin);
        break;
      }
      case PathAttributeType::kAsPath:
        entry.as_path = decode_as_path(value);
        break;
      case PathAttributeType::kNextHop:
        entry.next_hop = net::Ipv4Address(value.u32());
        break;
      default:
        break;  // tolerated: unknown optional/transitive attributes
    }
  }
}

MrtRibRecord decode_rib_record(ByteReader in) {
  MrtRibRecord record;
  record.sequence = in.u32();
  const std::uint8_t prefix_len = in.u8();
  if (prefix_len > 32) {
    throw FormatError("invalid IPv4 prefix length " +
                      std::to_string(prefix_len));
  }
  const int prefix_bytes = (prefix_len + 7) / 8;
  std::uint32_t network = 0;
  const auto raw = in.bytes(static_cast<std::size_t>(prefix_bytes));
  for (int i = 0; i < prefix_bytes; ++i) {
    network |= std::to_integer<std::uint32_t>(raw[static_cast<std::size_t>(i)])
               << (24 - 8 * i);
  }
  record.prefix = net::Prefix(net::Ipv4Address(network), prefix_len);
  const std::uint16_t entry_count = in.u16();
  record.entries.reserve(entry_count);
  for (std::uint16_t i = 0; i < entry_count; ++i) {
    MrtRibEntry entry;
    entry.peer_index = in.u16();
    entry.originated_time = in.u32();
    const std::uint16_t attr_len = in.u16();
    decode_attributes(in.sub(attr_len), entry);
    record.entries.push_back(std::move(entry));
  }
  return record;
}

}  // namespace

void decode_path_attributes(std::span<const std::byte> data,
                            MrtRibEntry& entry) {
  decode_attributes(ByteReader(data), entry);
}

std::optional<std::uint32_t> MrtRibEntry::origin_as() const noexcept {
  if (as_path.empty()) return std::nullopt;
  const AsPathSegment& tail = as_path.back();
  if (tail.kind != AsPathSegment::Kind::kAsSequence || tail.asns.empty()) {
    return std::nullopt;
  }
  return tail.asns.back();
}

std::vector<std::uint32_t> MrtRibEntry::origin_set() const {
  if (const auto single = origin_as()) return {*single};
  if (!as_path.empty() && !as_path.back().asns.empty()) {
    return as_path.back().asns;
  }
  return {};
}

std::vector<std::byte> encode_mrt(const MrtRibDump& dump) {
  ByteWriter out;
  encode_common_header(out, dump.timestamp,
                       TableDumpV2Subtype::kPeerIndexTable,
                       encode_peer_index_table(dump));
  for (const MrtRibRecord& record : dump.records) {
    for (const MrtRibEntry& entry : record.entries) {
      if (entry.peer_index >= dump.peers.size()) {
        throw FormatError("RIB entry references unknown peer index " +
                          std::to_string(entry.peer_index));
      }
    }
    encode_common_header(out, dump.timestamp,
                         TableDumpV2Subtype::kRibIpv4Unicast,
                         encode_rib_record(record));
  }
  return std::move(out).take();
}

MrtRibDump decode_mrt(std::span<const std::byte> data) {
  MrtRibDump dump;
  ByteReader in(data);
  bool saw_peer_table = false;
  while (!in.done()) {
    const std::uint32_t timestamp = in.u32();
    const std::uint16_t type = in.u16();
    const std::uint16_t subtype = in.u16();
    const std::uint32_t length = in.u32();
    ByteReader body = in.sub(length);
    if (type != static_cast<std::uint16_t>(MrtType::kTableDumpV2)) {
      ++dump.skipped_records;
      continue;
    }
    switch (static_cast<TableDumpV2Subtype>(subtype)) {
      case TableDumpV2Subtype::kPeerIndexTable:
        dump.timestamp = timestamp;
        decode_peer_index_table(body, dump);
        saw_peer_table = true;
        break;
      case TableDumpV2Subtype::kRibIpv4Unicast: {
        if (!saw_peer_table) {
          throw FormatError("RIB record before PEER_INDEX_TABLE");
        }
        MrtRibRecord record = decode_rib_record(body);
        for (const MrtRibEntry& entry : record.entries) {
          if (entry.peer_index >= dump.peers.size()) {
            throw FormatError("RIB entry references unknown peer index " +
                              std::to_string(entry.peer_index));
          }
        }
        dump.records.push_back(std::move(record));
        break;
      }
      default:
        ++dump.skipped_records;
        break;
    }
  }
  return dump;
}

void save_mrt(const std::string& path, const MrtRibDump& dump) {
  const auto bytes = encode_mrt(dump);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open MRT file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("short write to MRT file: " + path);
}

MrtRibDump load_mrt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open MRT file: " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return decode_mrt(std::as_bytes(std::span(raw)));
}

}  // namespace tass::bgp
