#include "bgp/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::bgp {

PrefixPartition::PrefixPartition(std::vector<net::Prefix> prefixes)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.size() >= trie::LpmIndex::kNoMatch) {
    throw Error("partition too large");
  }
  sorted_.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    sorted_.emplace_back(prefixes_[i], static_cast<std::uint32_t>(i));
  }
  std::sort(sorted_.begin(), sorted_.end());

  // Disjointness: with cells sorted by network address, an overlap exists
  // exactly when a cell starts at or before the furthest end seen so far
  // (CIDR blocks overlap only by containment, which this detects too).
  bool have_previous = false;
  std::uint32_t max_last = 0;
  std::vector<trie::LpmIndex::Entry> table;
  table.reserve(sorted_.size());
  for (const auto& [prefix, cell] : sorted_) {
    if (have_previous && prefix.network().value() <= max_last) {
      throw Error("partition prefixes overlap at " + prefix.to_string());
    }
    max_last = prefix.last().value();
    have_previous = true;
    table.push_back({prefix, cell});
    address_count_ += prefix.size();
  }
  index_ = trie::LpmIndex(table);
}

std::optional<std::uint32_t> PrefixPartition::locate(
    net::Ipv4Address addr) const {
  const std::uint32_t cell = index_.lookup(addr);
  if (cell == kNoCell) return std::nullopt;
  return cell;
}

void PrefixPartition::locate_many(std::span<const std::uint32_t> addresses,
                                  std::span<std::uint32_t> cells) const
    noexcept {
  index_.lookup_many(addresses, cells);
}

std::optional<std::uint32_t> PrefixPartition::index_of(
    net::Prefix prefix) const {
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), prefix,
      [](const auto& entry, net::Prefix p) { return entry.first < p; });
  if (it == sorted_.end() || it->first != prefix) return std::nullopt;
  return it->second;
}

net::IntervalSet PrefixPartition::to_interval_set() const {
  return net::IntervalSet::of_prefixes(prefixes_);
}

}  // namespace tass::bgp
