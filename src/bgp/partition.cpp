#include "bgp/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::bgp {

PrefixPartition::PrefixPartition(std::vector<net::Prefix> prefixes)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.size() >= trie::LpmIndex::kNoMatch) {
    throw Error("partition too large");
  }
  sorted_.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    sorted_.emplace_back(prefixes_[i], static_cast<std::uint32_t>(i));
  }
  std::sort(sorted_.begin(), sorted_.end());

  // Disjointness: with cells sorted by network address, an overlap exists
  // exactly when a cell starts at or before the furthest end seen so far
  // (CIDR blocks overlap only by containment, which this detects too).
  bool have_previous = false;
  std::uint32_t max_last = 0;
  std::vector<trie::LpmIndex::Entry> table;
  table.reserve(sorted_.size());
  for (const auto& [prefix, cell] : sorted_) {
    if (have_previous && prefix.network().value() <= max_last) {
      throw Error("partition prefixes overlap at " + prefix.to_string());
    }
    max_last = prefix.last().value();
    have_previous = true;
    table.push_back({prefix, cell});
    address_count_ += prefix.size();
  }
  index_ = trie::LpmIndex(table);
  live_count_ = prefixes_.size();
}

PartitionApplyResult PrefixPartition::apply_delta(
    const PartitionDelta& delta) {
  PartitionApplyResult result;
  result.old_cell_count = static_cast<std::uint32_t>(prefixes_.size());

  // ---- validation (all of it before any mutation) --------------------
  result.removed_cells.reserve(delta.remove.size());
  for (const net::Prefix prefix : delta.remove) {
    const auto slot = index_of(prefix);
    if (!slot) {
      throw Error("apply_delta: removed prefix " + prefix.to_string() +
                  " is not a live cell");
    }
    result.removed_cells.push_back(*slot);
  }
  std::sort(result.removed_cells.begin(), result.removed_cells.end());
  if (std::adjacent_find(result.removed_cells.begin(),
                         result.removed_cells.end()) !=
      result.removed_cells.end()) {
    throw Error("apply_delta: prefix removed twice");
  }
  // O(1) removal test: the sorted-view merge below asks it once per cell.
  std::vector<std::uint8_t> removed_flag(prefixes_.size(), 0);
  for (const std::uint32_t slot : result.removed_cells) {
    removed_flag[slot] = 1;
  }
  const auto being_removed = [&](std::uint32_t slot) {
    return removed_flag[slot] != 0;
  };

  {
    // Additions must be pairwise disjoint: with CIDR blocks sorted by
    // (network, length), any overlap is visible as a prefix starting at
    // or before the furthest end seen so far (same sweep as the ctor).
    std::vector<net::Prefix> adds(delta.add.begin(), delta.add.end());
    std::sort(adds.begin(), adds.end());
    bool have_previous = false;
    std::uint32_t max_last = 0;
    for (const net::Prefix prefix : adds) {
      if (have_previous && prefix.network().value() <= max_last) {
        throw Error("apply_delta: added prefixes overlap at " +
                    prefix.to_string());
      }
      max_last = prefix.last().value();
      have_previous = true;
    }
  }
  for (const net::Prefix prefix : delta.add) {
    // The partition is disjoint, so at most one live cell covers the
    // added prefix's network address; any other overlapping live cell
    // must start strictly inside the added prefix.
    if (const auto covering = locate(prefix.network())) {
      if (!being_removed(*covering) &&
          prefixes_[*covering].overlaps(prefix)) {
        throw Error("apply_delta: added prefix " + prefix.to_string() +
                    " overlaps live cell " +
                    prefixes_[*covering].to_string());
      }
    }
    const auto begin = std::lower_bound(
        sorted_.begin(), sorted_.end(), prefix,
        [](const auto& entry, net::Prefix p) { return entry.first < p; });
    for (auto it = begin;
         it != sorted_.end() &&
         it->first.network().value() <= prefix.last().value();
         ++it) {
      if (!being_removed(it->second)) {
        throw Error("apply_delta: added prefix " + prefix.to_string() +
                    " overlaps live cell " + it->first.to_string());
      }
    }
  }
  const std::size_t pool_capacity =
      free_slots_.size() + result.removed_cells.size();
  const std::size_t appended =
      delta.add.size() > pool_capacity ? delta.add.size() - pool_capacity : 0;
  if (prefixes_.size() + appended >= trie::LpmIndex::kNoMatch) {
    throw Error("partition too large");
  }

  // ---- mutation ------------------------------------------------------
  if (live_.empty()) live_.assign(prefixes_.size(), 1);

  std::vector<trie::LpmIndex::Entry> upserts;
  upserts.reserve(delta.add.size());
  std::vector<net::Prefix> erases;
  erases.reserve(result.removed_cells.size());
  for (const std::uint32_t slot : result.removed_cells) {
    live_[slot] = 0;
    address_count_ -= prefixes_[slot].size();
    erases.push_back(prefixes_[slot]);
  }
  live_count_ -= result.removed_cells.size();

  // Free pool: pre-existing free slots plus the ones this delta freed,
  // consumed in ascending order so slot assignment is deterministic.
  std::vector<std::uint32_t> pool;
  pool.reserve(pool_capacity);
  std::merge(free_slots_.begin(), free_slots_.end(),
             result.removed_cells.begin(), result.removed_cells.end(),
             std::back_inserter(pool));
  std::size_t pooled = 0;
  result.added_cells.reserve(delta.add.size());
  for (const net::Prefix prefix : delta.add) {
    std::uint32_t slot;
    if (pooled < pool.size()) {
      slot = pool[pooled++];
      prefixes_[slot] = prefix;
    } else {
      slot = static_cast<std::uint32_t>(prefixes_.size());
      prefixes_.push_back(prefix);
      live_.push_back(0);
    }
    live_[slot] = 1;
    address_count_ += prefix.size();
    result.added_cells.push_back(slot);
    upserts.push_back({prefix, slot});
  }
  live_count_ += delta.add.size();
  free_slots_.assign(pool.begin() + static_cast<std::ptrdiff_t>(pooled),
                     pool.end());
  result.new_cell_count = static_cast<std::uint32_t>(prefixes_.size());

  // Patch the sorted live-cell view: drop removed entries, merge in the
  // added ones (one linear pass; both sequences are prefix-sorted).
  std::vector<std::pair<net::Prefix, std::uint32_t>> added_sorted;
  added_sorted.reserve(delta.add.size());
  for (std::size_t i = 0; i < delta.add.size(); ++i) {
    added_sorted.emplace_back(delta.add[i], result.added_cells[i]);
  }
  std::sort(added_sorted.begin(), added_sorted.end());
  std::vector<std::pair<net::Prefix, std::uint32_t>> next;
  next.reserve(sorted_.size() - result.removed_cells.size() +
               added_sorted.size());
  auto add_it = added_sorted.cbegin();
  for (const auto& entry : sorted_) {
    if (being_removed(entry.second)) continue;
    while (add_it != added_sorted.cend() && add_it->first < entry.first) {
      next.push_back(*add_it++);
    }
    next.push_back(entry);
  }
  next.insert(next.end(), add_it, added_sorted.cend());
  sorted_ = std::move(next);

  // Patch the LpmIndex with the *net* change per prefix: a prefix that is
  // both withdrawn and re-announced is a plain value upsert.
  std::vector<net::Prefix> upserted;
  upserted.reserve(upserts.size());
  for (const auto& entry : upserts) upserted.push_back(entry.prefix);
  std::sort(upserted.begin(), upserted.end());
  std::erase_if(erases, [&](net::Prefix p) {
    return std::binary_search(upserted.begin(), upserted.end(), p);
  });
  result.index_stats = index_.update(upserts, erases);
  return result;
}

std::optional<std::uint32_t> PrefixPartition::locate(
    net::Ipv4Address addr) const {
  const std::uint32_t cell = index_.lookup(addr);
  if (cell == kNoCell) return std::nullopt;
  return cell;
}

void PrefixPartition::locate_many(std::span<const std::uint32_t> addresses,
                                  std::span<std::uint32_t> cells) const
    noexcept {
  index_.lookup_many(addresses, cells);
}

std::optional<std::uint32_t> PrefixPartition::index_of(
    net::Prefix prefix) const {
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), prefix,
      [](const auto& entry, net::Prefix p) { return entry.first < p; });
  if (it == sorted_.end() || it->first != prefix) return std::nullopt;
  return it->second;
}

std::vector<net::Prefix> PrefixPartition::live_prefixes() const {
  if (live_.empty()) {
    return std::vector<net::Prefix>(prefixes_.begin(), prefixes_.end());
  }
  std::vector<net::Prefix> live;
  live.reserve(live_count_);
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (live_[i] != 0) live.push_back(prefixes_[i]);
  }
  return live;
}

net::IntervalSet PrefixPartition::to_interval_set() const {
  if (live_.empty()) return net::IntervalSet::of_prefixes(prefixes_);
  return net::IntervalSet::of_prefixes(live_prefixes());
}

PartitionDelta partition_delta(const PrefixPartition& current,
                               std::span<const net::Prefix> target) {
  std::vector<net::Prefix> want(target.begin(), target.end());
  std::sort(want.begin(), want.end());
  if (std::adjacent_find(want.begin(), want.end()) != want.end()) {
    throw Error("partition_delta: duplicate prefix in target");
  }
  std::vector<net::Prefix> have = current.live_prefixes();
  std::sort(have.begin(), have.end());

  PartitionDelta delta;
  std::set_difference(have.begin(), have.end(), want.begin(), want.end(),
                      std::back_inserter(delta.remove));
  std::set_difference(want.begin(), want.end(), have.begin(), have.end(),
                      std::back_inserter(delta.add));
  return delta;
}

}  // namespace tass::bgp
