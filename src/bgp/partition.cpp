#include "bgp/partition.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace tass::bgp {

template <class Family>
void BasicPrefixPartition<Family>::sync_views() noexcept {
  if (borrowed_) return;
  prefixes_view_ = prefixes_;
  sorted_view_ = sorted_;
  live_view_ = live_;
  free_view_ = free_slots_;
}

template <class Family>
BasicPrefixPartition<Family> BasicPrefixPartition<Family>::from_raw(
    const Raw& raw, Index index) {
  BasicPrefixPartition partition;
  partition.borrowed_ = true;
  partition.prefixes_view_ = raw.prefixes;
  partition.sorted_view_ = raw.sorted;
  partition.live_view_ = raw.live;
  partition.free_view_ = raw.free_slots;
  partition.address_count_ = raw.address_count;
  partition.live_count_ = static_cast<std::size_t>(raw.live_count);
  partition.index_ = std::move(index);
  return partition;
}

template <class Family>
BasicPrefixPartition<Family>::BasicPrefixPartition(
    const BasicPrefixPartition& other)
    : prefixes_(other.prefixes_),
      sorted_(other.sorted_),
      index_(other.index_),
      address_count_(other.address_count_),
      live_(other.live_),
      free_slots_(other.free_slots_),
      borrowed_(other.borrowed_),
      live_count_(other.live_count_) {
  if (borrowed_) {
    // Borrowed views share the caller's storage; the copy does too.
    prefixes_view_ = other.prefixes_view_;
    sorted_view_ = other.sorted_view_;
    live_view_ = other.live_view_;
    free_view_ = other.free_view_;
  } else {
    sync_views();
  }
}

template <class Family>
BasicPrefixPartition<Family>& BasicPrefixPartition<Family>::operator=(
    const BasicPrefixPartition& other) {
  if (this != &other) *this = BasicPrefixPartition(other);
  return *this;
}

template <class Family>
BasicPrefixPartition<Family>::BasicPrefixPartition(
    BasicPrefixPartition&& other) noexcept
    : prefixes_(std::move(other.prefixes_)),
      sorted_(std::move(other.sorted_)),
      index_(std::move(other.index_)),
      address_count_(other.address_count_),
      live_(std::move(other.live_)),
      free_slots_(std::move(other.free_slots_)),
      // Owned vector buffers survive the move at the same addresses, so
      // the source's views stay valid for the new owner; borrowed views
      // point at caller storage and transfer as-is.
      prefixes_view_(other.prefixes_view_),
      sorted_view_(other.sorted_view_),
      live_view_(other.live_view_),
      free_view_(other.free_view_),
      borrowed_(other.borrowed_),
      live_count_(other.live_count_) {
  other.prefixes_view_ = {};
  other.sorted_view_ = {};
  other.live_view_ = {};
  other.free_view_ = {};
  other.address_count_ = 0;
  other.live_count_ = 0;
  other.borrowed_ = false;
}

template <class Family>
BasicPrefixPartition<Family>& BasicPrefixPartition<Family>::operator=(
    BasicPrefixPartition&& other) noexcept {
  if (this != &other) {
    prefixes_ = std::move(other.prefixes_);
    sorted_ = std::move(other.sorted_);
    index_ = std::move(other.index_);
    address_count_ = other.address_count_;
    live_ = std::move(other.live_);
    free_slots_ = std::move(other.free_slots_);
    prefixes_view_ = other.prefixes_view_;
    sorted_view_ = other.sorted_view_;
    live_view_ = other.live_view_;
    free_view_ = other.free_view_;
    borrowed_ = other.borrowed_;
    live_count_ = other.live_count_;
    other.prefixes_view_ = {};
    other.sorted_view_ = {};
    other.live_view_ = {};
    other.free_view_ = {};
    other.address_count_ = 0;
    other.live_count_ = 0;
    other.borrowed_ = false;
  }
  return *this;
}

template <class Family>
BasicPrefixPartition<Family>::BasicPrefixPartition(
    std::vector<Prefix> prefixes)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.size() >= Index::kNoMatch) {
    throw Error("partition too large");
  }
  sorted_.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    sorted_.push_back({prefixes_[i], static_cast<std::uint32_t>(i)});
  }
  std::sort(sorted_.begin(), sorted_.end());

  // Disjointness: with cells sorted by network address, an overlap exists
  // exactly when a cell starts at or before the furthest end seen so far
  // (CIDR blocks overlap only by containment, which this detects too).
  bool have_previous = false;
  net::AddressKey max_last{};
  std::vector<typename Index::Entry> table;
  table.reserve(sorted_.size());
  for (const SortedCell& cell : sorted_) {
    if (have_previous && Family::first_key(cell.prefix) <= max_last) {
      throw Error("partition prefixes overlap at " + cell.prefix.to_string());
    }
    max_last = Family::last_key(cell.prefix);
    have_previous = true;
    table.push_back({cell.prefix, cell.slot});
    address_count_ = net::saturating_add(address_count_,
                                         Family::prefix_units(cell.prefix));
  }
  index_ = Index(table);
  live_count_ = prefixes_.size();
  sync_views();
}

template <class Family>
auto BasicPrefixPartition<Family>::apply_delta(const Delta& delta)
    -> ApplyResult {
  if (borrowed_) {
    throw Error(
        "PrefixPartition::apply_delta on a borrowed view (from_raw): "
        "read-only storage cannot absorb deltas; rebuild an owned "
        "partition instead");
  }
  ApplyResult result;
  result.old_cell_count = static_cast<std::uint32_t>(prefixes_.size());

  // ---- validation (all of it before any mutation) --------------------
  result.removed_cells.reserve(delta.remove.size());
  for (const Prefix prefix : delta.remove) {
    const auto slot = index_of(prefix);
    if (!slot) {
      throw Error("apply_delta: removed prefix " + prefix.to_string() +
                  " is not a live cell");
    }
    result.removed_cells.push_back(*slot);
  }
  std::sort(result.removed_cells.begin(), result.removed_cells.end());
  if (std::adjacent_find(result.removed_cells.begin(),
                         result.removed_cells.end()) !=
      result.removed_cells.end()) {
    throw Error("apply_delta: prefix removed twice");
  }
  // O(1) removal test: the sorted-view merge below asks it once per cell.
  std::vector<std::uint8_t> removed_flag(prefixes_.size(), 0);
  for (const std::uint32_t slot : result.removed_cells) {
    removed_flag[slot] = 1;
  }
  const auto being_removed = [&](std::uint32_t slot) {
    return removed_flag[slot] != 0;
  };

  {
    // Additions must be pairwise disjoint: with CIDR blocks sorted by
    // (network, length), any overlap is visible as a prefix starting at
    // or before the furthest end seen so far (same sweep as the ctor).
    std::vector<Prefix> adds(delta.add.begin(), delta.add.end());
    std::sort(adds.begin(), adds.end());
    bool have_previous = false;
    net::AddressKey max_last{};
    for (const Prefix prefix : adds) {
      if (have_previous && Family::first_key(prefix) <= max_last) {
        throw Error("apply_delta: added prefixes overlap at " +
                    prefix.to_string());
      }
      max_last = Family::last_key(prefix);
      have_previous = true;
    }
  }
  for (const Prefix prefix : delta.add) {
    // The partition is disjoint, so at most one live cell covers the
    // added prefix's network address; any other overlapping live cell
    // must start strictly inside the added prefix.
    if (const auto covering = locate(prefix.network())) {
      if (!being_removed(*covering) &&
          prefixes_[*covering].overlaps(prefix)) {
        throw Error("apply_delta: added prefix " + prefix.to_string() +
                    " overlaps live cell " +
                    prefixes_[*covering].to_string());
      }
    }
    const auto begin = std::lower_bound(
        sorted_.begin(), sorted_.end(), prefix,
        [](const SortedCell& cell, Prefix p) { return cell.prefix < p; });
    for (auto it = begin;
         it != sorted_.end() &&
         Family::first_key(it->prefix) <= Family::last_key(prefix);
         ++it) {
      if (!being_removed(it->slot)) {
        throw Error("apply_delta: added prefix " + prefix.to_string() +
                    " overlaps live cell " + it->prefix.to_string());
      }
    }
  }
  const std::size_t pool_capacity =
      free_slots_.size() + result.removed_cells.size();
  const std::size_t appended =
      delta.add.size() > pool_capacity ? delta.add.size() - pool_capacity : 0;
  if (prefixes_.size() + appended >= Index::kNoMatch) {
    throw Error("partition too large");
  }

  // ---- mutation ------------------------------------------------------
  if (live_.empty()) live_.assign(prefixes_.size(), 1);

  std::vector<typename Index::Entry> upserts;
  upserts.reserve(delta.add.size());
  std::vector<Prefix> erases;
  erases.reserve(result.removed_cells.size());
  for (const std::uint32_t slot : result.removed_cells) {
    live_[slot] = 0;
    address_count_ = net::saturating_sub(
        address_count_, Family::prefix_units(prefixes_[slot]));
    erases.push_back(prefixes_[slot]);
  }
  live_count_ -= result.removed_cells.size();

  // Free pool: pre-existing free slots plus the ones this delta freed,
  // consumed in ascending order so slot assignment is deterministic.
  std::vector<std::uint32_t> pool;
  pool.reserve(pool_capacity);
  std::merge(free_slots_.begin(), free_slots_.end(),
             result.removed_cells.begin(), result.removed_cells.end(),
             std::back_inserter(pool));
  std::size_t pooled = 0;
  result.added_cells.reserve(delta.add.size());
  for (const Prefix prefix : delta.add) {
    std::uint32_t slot;
    if (pooled < pool.size()) {
      slot = pool[pooled++];
      prefixes_[slot] = prefix;
    } else {
      slot = static_cast<std::uint32_t>(prefixes_.size());
      prefixes_.push_back(prefix);
      live_.push_back(0);
    }
    live_[slot] = 1;
    address_count_ =
        net::saturating_add(address_count_, Family::prefix_units(prefix));
    result.added_cells.push_back(slot);
    upserts.push_back({prefix, slot});
  }
  live_count_ += delta.add.size();
  free_slots_.assign(pool.begin() + static_cast<std::ptrdiff_t>(pooled),
                     pool.end());
  result.new_cell_count = static_cast<std::uint32_t>(prefixes_.size());

  // Patch the sorted live-cell view: drop removed entries, merge in the
  // added ones (one linear pass; both sequences are prefix-sorted).
  std::vector<SortedCell> added_sorted;
  added_sorted.reserve(delta.add.size());
  for (std::size_t i = 0; i < delta.add.size(); ++i) {
    added_sorted.push_back({delta.add[i], result.added_cells[i]});
  }
  std::sort(added_sorted.begin(), added_sorted.end());
  std::vector<SortedCell> next;
  next.reserve(sorted_.size() - result.removed_cells.size() +
               added_sorted.size());
  auto add_it = added_sorted.cbegin();
  for (const SortedCell& cell : sorted_) {
    if (being_removed(cell.slot)) continue;
    while (add_it != added_sorted.cend() && add_it->prefix < cell.prefix) {
      next.push_back(*add_it++);
    }
    next.push_back(cell);
  }
  next.insert(next.end(), add_it, added_sorted.cend());
  sorted_ = std::move(next);

  // Patch the LpmIndex with the *net* change per prefix: a prefix that is
  // both withdrawn and re-announced is a plain value upsert.
  std::vector<Prefix> upserted;
  upserted.reserve(upserts.size());
  for (const auto& entry : upserts) upserted.push_back(entry.prefix);
  std::sort(upserted.begin(), upserted.end());
  std::erase_if(erases, [&](Prefix p) {
    return std::binary_search(upserted.begin(), upserted.end(), p);
  });
  result.index_stats = index_.update(upserts, erases);
  sync_views();
  return result;
}

template <class Family>
std::optional<std::uint32_t> BasicPrefixPartition<Family>::locate(
    Address addr) const {
  const std::uint32_t cell = index_.lookup(addr);
  if (cell == kNoCell) return std::nullopt;
  return cell;
}

template <class Family>
void BasicPrefixPartition<Family>::locate_many(
    std::span<const AddressWord> addresses,
    std::span<std::uint32_t> cells) const noexcept {
  index_.lookup_many(addresses, cells);
}

template <class Family>
std::optional<std::uint32_t> BasicPrefixPartition<Family>::index_of(
    Prefix prefix) const {
  const auto it = std::lower_bound(
      sorted_view_.begin(), sorted_view_.end(), prefix,
      [](const SortedCell& cell, Prefix p) { return cell.prefix < p; });
  if (it == sorted_view_.end() || it->prefix != prefix) return std::nullopt;
  return it->slot;
}

template <class Family>
auto BasicPrefixPartition<Family>::live_prefixes() const
    -> std::vector<Prefix> {
  if (live_view_.empty()) {
    return std::vector<Prefix>(prefixes_view_.begin(), prefixes_view_.end());
  }
  std::vector<Prefix> live;
  live.reserve(live_count_);
  for (std::size_t i = 0; i < prefixes_view_.size(); ++i) {
    if (live_view_[i] != 0) live.push_back(prefixes_view_[i]);
  }
  return live;
}

template <class Family>
net::IntervalSet BasicPrefixPartition<Family>::to_interval_set() const
    requires std::same_as<Family, net::Ipv4Family>
{
  if (live_view_.empty()) {
    return net::IntervalSet::of_prefixes(prefixes_view_);
  }
  return net::IntervalSet::of_prefixes(live_prefixes());
}

template <class Family>
PartitionDeltaT<Family> partition_delta(
    const BasicPrefixPartition<Family>& current,
    std::span<const typename Family::Prefix> target) {
  using Prefix = typename Family::Prefix;
  std::vector<Prefix> want(target.begin(), target.end());
  std::sort(want.begin(), want.end());
  if (std::adjacent_find(want.begin(), want.end()) != want.end()) {
    throw Error("partition_delta: duplicate prefix in target");
  }
  std::vector<Prefix> have = current.live_prefixes();
  std::sort(have.begin(), have.end());

  PartitionDeltaT<Family> delta;
  std::set_difference(have.begin(), have.end(), want.begin(), want.end(),
                      std::back_inserter(delta.remove));
  std::set_difference(want.begin(), want.end(), have.begin(), have.end(),
                      std::back_inserter(delta.add));
  return delta;
}

template <class Family>
std::uint64_t partition_fingerprint(
    const BasicPrefixPartition<Family>& partition) {
  util::Fnv1a64 hasher;
  hasher.update_u64(partition.live_cells());
  for (std::size_t i = 0; i < partition.size(); ++i) {
    if (!partition.live(i)) continue;
    const typename Family::Prefix prefix = partition.prefix(i);
    if constexpr (Family::kBits == 32) {
      // The historical v4 digest, byte for byte, so existing TSNP/TSIM
      // bindings stay valid.
      hasher.update_u32(prefix.network().value());
    } else {
      hasher.update_u64(prefix.network().hi());
      hasher.update_u64(prefix.network().lo());
    }
    hasher.update(static_cast<std::uint8_t>(prefix.length()));
  }
  return hasher.digest();
}

template class BasicPrefixPartition<net::Ipv4Family>;
template class BasicPrefixPartition<net::Ipv6Family>;

template PartitionDeltaT<net::Ipv4Family> partition_delta(
    const BasicPrefixPartition<net::Ipv4Family>&,
    std::span<const net::Ipv4Family::Prefix>);
template PartitionDeltaT<net::Ipv6Family> partition_delta(
    const BasicPrefixPartition<net::Ipv6Family>&,
    std::span<const net::Ipv6Family::Prefix>);
template std::uint64_t partition_fingerprint(
    const BasicPrefixPartition<net::Ipv4Family>&);
template std::uint64_t partition_fingerprint(
    const BasicPrefixPartition<net::Ipv6Family>&);

}  // namespace tass::bgp
