#include "bgp/partition.hpp"

#include "util/error.hpp"

namespace tass::bgp {

PrefixPartition::PrefixPartition(std::vector<net::Prefix> prefixes)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.size() > 0xffffffffULL) {
    throw Error("partition too large");
  }
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    const net::Prefix prefix = prefixes_[i];
    // Overlap <=> an ancestor (or exact duplicate) already stored, or a
    // descendant already stored under this prefix.
    if (index_.has_strict_ancestor(prefix) || index_.find(prefix) != nullptr ||
        !index_.entries_within(prefix).empty()) {
      throw Error("partition prefixes overlap at " + prefix.to_string());
    }
    index_.insert(prefix, static_cast<std::uint32_t>(i));
    address_count_ += prefix.size();
  }
}

std::optional<std::uint32_t> PrefixPartition::locate(
    net::Ipv4Address addr) const {
  // Cells are disjoint, so the shortest match is the only match.
  const auto match = index_.shortest_match(addr);
  if (!match) return std::nullopt;
  return match->second;
}

std::optional<std::uint32_t> PrefixPartition::index_of(
    net::Prefix prefix) const {
  const auto* cell = index_.find(prefix);
  if (cell == nullptr) return std::nullopt;
  return *cell;
}

net::IntervalSet PrefixPartition::to_interval_set() const {
  return net::IntervalSet::of_prefixes(prefixes_);
}

}  // namespace tass::bgp
