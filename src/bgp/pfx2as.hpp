// CAIDA Routeviews Prefix-to-AS (pfx2as) text format.
//
// This is the prefix source the paper uses instead of the coarse prefix
// annotations in the censys.io dataset (§3.2). One record per line:
//
//   <network> TAB <prefix length> TAB <origin>
//
// where <origin> is a single ASN ("13335"), a multi-origin list separated
// by commas ("701,1239"), or an AS-set joined by underscores ("4_5_6").
// Comments (#...) and blank lines are ignored by the reader.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace tass::bgp {

/// One pfx2as record: an announced prefix and its origin AS(es).
struct Pfx2AsRecord {
  net::Prefix prefix;
  std::vector<std::uint32_t> origins;  // >= 1 entry

  friend bool operator==(const Pfx2AsRecord&, const Pfx2AsRecord&) = default;
};

/// One IPv6 pfx2as record (CAIDA's routeviews6 dumps share the v4 line
/// grammar; only the network grammar differs).
struct Pfx2As6Record {
  net::Ipv6Prefix prefix;
  std::vector<std::uint32_t> origins;  // >= 1 entry

  friend bool operator==(const Pfx2As6Record&,
                         const Pfx2As6Record&) = default;
};

/// Parses one pfx2as line. Throws tass::ParseError on malformed input.
Pfx2AsRecord parse_pfx2as_line(std::string_view line);

/// Parses a whole pfx2as document (skips blank lines and '#' comments).
/// `strict` == false skips malformed lines instead of throwing, counting
/// them in `skipped` when provided — real CAIDA dumps occasionally carry
/// v6 leakage that callers may want to tolerate.
std::vector<Pfx2AsRecord> parse_pfx2as(std::string_view text,
                                       bool strict = true,
                                       std::size_t* skipped = nullptr);

/// Reads a pfx2as file from disk. Throws tass::Error if unreadable.
std::vector<Pfx2AsRecord> load_pfx2as(const std::string& path,
                                      bool strict = true);

/// Serialises records in the exact CAIDA format (tab-separated, comma for
/// multi-origin, underscore inside AS-sets is not reproduced — records we
/// emit always carry explicit origin lists).
std::string format_pfx2as(std::span<const Pfx2AsRecord> records);

/// Writes records to a file. Throws tass::Error on I/O failure.
void save_pfx2as(const std::string& path,
                 std::span<const Pfx2AsRecord> records);

/// The IPv6 twins: same grammar with an IPv6 network field and prefix
/// lengths up to 128. The v4 readers treat v6 rows as malformed (skipped
/// when strict == false); mixed dumps are split by running both readers.
Pfx2As6Record parse_pfx2as6_line(std::string_view line);
std::vector<Pfx2As6Record> parse_pfx2as6(std::string_view text,
                                         bool strict = true,
                                         std::size_t* skipped = nullptr);
std::vector<Pfx2As6Record> load_pfx2as6(const std::string& path,
                                        bool strict = true);
std::string format_pfx2as6(std::span<const Pfx2As6Record> records);
void save_pfx2as6(const std::string& path,
                  std::span<const Pfx2As6Record> records);

}  // namespace tass::bgp
