#include "bgp/rib.hpp"

#include <algorithm>
#include <map>

#include "bgp/deaggregate.hpp"
#include "util/error.hpp"

namespace tass::bgp {

namespace {

void merge_origins(std::vector<std::uint32_t>& into,
                   std::span<const std::uint32_t> from) {
  for (const std::uint32_t asn : from) {
    if (std::find(into.begin(), into.end(), asn) == into.end()) {
      into.push_back(asn);
    }
  }
}

}  // namespace

RoutingTable RoutingTable::from_pfx2as(std::span<const Pfx2AsRecord> records) {
  std::map<net::Prefix, std::vector<std::uint32_t>> merged;
  for (const Pfx2AsRecord& record : records) {
    merge_origins(merged[record.prefix], record.origins);
  }
  RoutingTable table;
  table.routes_.reserve(merged.size());
  for (auto& [prefix, origins] : merged) {
    table.routes_.push_back(RouteEntry{prefix, std::move(origins), false});
  }
  table.finalize();
  return table;
}

RoutingTable RoutingTable::from_mrt(const MrtRibDump& dump) {
  std::map<net::Prefix, std::vector<std::uint32_t>> merged;
  for (const MrtRibRecord& record : dump.records) {
    auto& origins = merged[record.prefix];
    for (const MrtRibEntry& entry : record.entries) {
      merge_origins(origins, entry.origin_set());
    }
  }
  RoutingTable table;
  table.routes_.reserve(merged.size());
  for (auto& [prefix, origins] : merged) {
    table.routes_.push_back(RouteEntry{prefix, std::move(origins), false});
  }
  table.finalize();
  return table;
}

void RoutingTable::finalize() {
  std::sort(routes_.begin(), routes_.end(),
            [](const RouteEntry& a, const RouteEntry& b) {
              return a.prefix < b.prefix;
            });

  trie::PrefixSet announced;
  for (const RouteEntry& route : routes_) announced.insert(route.prefix);

  for (RouteEntry& route : routes_) {
    route.more_specific = announced.has_strict_ancestor(route.prefix);
    advertised_.insert(route.prefix);
    if (route.more_specific) m_space_.insert(route.prefix);
  }
}

std::vector<net::Prefix> RoutingTable::l_prefixes() const {
  std::vector<net::Prefix> out;
  for (const RouteEntry& route : routes_) {
    if (!route.more_specific) out.push_back(route.prefix);
  }
  return out;
}

std::vector<net::Prefix> RoutingTable::m_prefixes() const {
  std::vector<net::Prefix> out;
  for (const RouteEntry& route : routes_) {
    if (route.more_specific) out.push_back(route.prefix);
  }
  return out;
}

PrefixPartition RoutingTable::l_partition() const {
  return PrefixPartition(l_prefixes());
}

PrefixPartition RoutingTable::m_partition() const {
  // Group announced more-specifics under their covering l-prefix, then
  // deaggregate each l-prefix (Figure 2). Routes are sorted, so the
  // more-specifics of an l-prefix immediately follow it.
  std::vector<net::Prefix> cells;
  std::size_t i = 0;
  while (i < routes_.size()) {
    TASS_ENSURES(!routes_[i].more_specific);
    const net::Prefix covering = routes_[i].prefix;
    std::vector<net::Prefix> inside;
    std::size_t j = i + 1;
    while (j < routes_.size() && covering.contains(routes_[j].prefix)) {
      inside.push_back(routes_[j].prefix);
      ++j;
    }
    const auto tiles = deaggregate(covering, inside);
    cells.insert(cells.end(), tiles.begin(), tiles.end());
    i = j;
  }
  return PrefixPartition(std::move(cells));
}

RibStats RoutingTable::stats() const {
  RibStats stats;
  stats.prefix_count = routes_.size();
  stats.m_prefix_count = static_cast<std::size_t>(
      std::count_if(routes_.begin(), routes_.end(),
                    [](const RouteEntry& r) { return r.more_specific; }));
  stats.advertised_addresses = advertised_.address_count();
  stats.m_prefix_addresses = m_space_.address_count();
  if (stats.prefix_count > 0) {
    stats.m_prefix_fraction =
        static_cast<double>(stats.m_prefix_count) /
        static_cast<double>(stats.prefix_count);
  }
  if (stats.advertised_addresses > 0) {
    stats.m_prefix_space_fraction =
        static_cast<double>(stats.m_prefix_addresses) /
        static_cast<double>(stats.advertised_addresses);
  }
  return stats;
}

std::vector<Pfx2AsRecord> RoutingTable::to_pfx2as() const {
  std::vector<Pfx2AsRecord> records;
  records.reserve(routes_.size());
  for (const RouteEntry& route : routes_) {
    records.push_back(Pfx2AsRecord{route.prefix, route.origins});
  }
  return records;
}

}  // namespace tass::bgp
