// RoutingTable: the announced-prefix view of the Internet used by TASS.
//
// Built from CAIDA pfx2as records or a decoded MRT RIB dump, it classifies
// every announced prefix as less specific (l-prefix: not contained in any
// other announced prefix) or more specific (m-prefix), accounts for the
// advertised address space, and produces the two scanning partitions the
// paper evaluates: the l-partition and the deaggregated m-partition.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/mrt.hpp"
#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "net/interval.hpp"
#include "trie/prefix_set.hpp"

namespace tass::bgp {

/// One announced prefix with merged origin information.
struct RouteEntry {
  net::Prefix prefix;
  std::vector<std::uint32_t> origins;
  bool more_specific = false;  // contained in another announced prefix

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Aggregate statistics, mirroring the §3.2 accounting (e.g. the 2015-09-07
/// CAIDA dump: 595,644 prefixes, 54% m-prefixes, 34.4% of space in them).
struct RibStats {
  std::size_t prefix_count = 0;
  std::size_t m_prefix_count = 0;
  std::uint64_t advertised_addresses = 0;    // union over all prefixes
  std::uint64_t m_prefix_addresses = 0;      // union over m-prefixes only
  double m_prefix_fraction = 0.0;            // by count
  double m_prefix_space_fraction = 0.0;      // by advertised addresses
};

class RoutingTable {
 public:
  RoutingTable() = default;

  /// Builds from pfx2as records. Duplicate prefixes merge their origins.
  static RoutingTable from_pfx2as(std::span<const Pfx2AsRecord> records);

  /// Builds from a decoded MRT RIB dump; per-prefix origins are the union
  /// of origin ASes over all RIB entries (multi-origin prefixes keep all).
  static RoutingTable from_mrt(const MrtRibDump& dump);

  /// Announced routes, ascending by (network, length); classification
  /// already applied.
  std::span<const RouteEntry> routes() const noexcept { return routes_; }
  std::size_t size() const noexcept { return routes_.size(); }
  bool empty() const noexcept { return routes_.empty(); }

  /// All l-prefixes (ascending). Pairwise disjoint by construction.
  std::vector<net::Prefix> l_prefixes() const;
  /// All announced m-prefixes (ascending).
  std::vector<net::Prefix> m_prefixes() const;

  /// The l-partition: one cell per l-prefix.
  PrefixPartition l_partition() const;

  /// The m-partition: every l-prefix deaggregated around its announced
  /// more-specifics (Figure 2); exactly tiles the advertised space.
  PrefixPartition m_partition() const;

  /// The advertised address space (union of all announced prefixes).
  const net::IntervalSet& advertised_space() const noexcept {
    return advertised_;
  }

  RibStats stats() const;

  /// Export back to pfx2as records (for interchange and tests).
  std::vector<Pfx2AsRecord> to_pfx2as() const;

 private:
  void finalize();  // sort, dedupe, classify, account

  std::vector<RouteEntry> routes_;
  net::IntervalSet advertised_;
  net::IntervalSet m_space_;
};

}  // namespace tass::bgp
