// Streaming RIB deltas — the churn currency of the incremental pipeline.
//
// The paper's evaluation is longitudinal: one seed scan, then repeated
// TASS cycles while the BGP topology drifts underneath (Fig. 5/6). A
// RibDelta captures one step of that drift as explicit announce /
// withdraw / reorigin batches, so the downstream structures
// (bgp::PrefixPartition, trie::LpmIndex, core::DensityRanking) can be
// patched instead of rebuilt — see docs/ARCHITECTURE.md for the full
// delta pipeline.
//
// Three sources produce deltas:
//   * diff() between two pfx2as snapshots (e.g. monthly CAIDA tables);
//   * decode_mrt_updates() over an MRT BGP4MP update stream — the format
//     RouteViews / RIPE RIS collectors publish between RIB dumps —
//     followed by rebased() against the current table;
//   * synthetic churn generators in tests and benches.
//
// Equivalence contract: for any table T and valid delta D,
// apply(D, T) == the table a full re-ingest of the post-churn world would
// produce, and the partition/index/ranking patches driven by D are
// bit-identical to rebuilding those structures from apply(D, T) — the
// delta differential suite enforces this end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bgp/pfx2as.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace tass::bgp {

/// One batch of routing-table churn. Sections produced by this module are
/// always ascending by prefix and pairwise disjoint across sections.
struct RibDelta {
  std::vector<Pfx2AsRecord> announce;  // prefixes absent from the base table
  std::vector<net::Prefix> withdraw;   // prefixes present in the base table
  std::vector<Pfx2AsRecord> reorigin;  // prefix stays, origin set changes

  bool empty() const noexcept {
    return announce.empty() && withdraw.empty() && reorigin.empty();
  }
  std::size_t change_count() const noexcept {
    return announce.size() + withdraw.size() + reorigin.size();
  }

  friend bool operator==(const RibDelta&, const RibDelta&) = default;

  /// Structural validity: no duplicate prefix within a section, no prefix
  /// in two sections, every announce/reorigin carries at least one
  /// origin. Throws tass::Error with the offending prefix otherwise.
  /// apply() and the partition patch path call this first, so a corrupt
  /// or duplicated delta can never half-apply.
  void validate() const;

  /// The delta turning `from` into `to`. Both tables must be
  /// duplicate-free (throws tass::Error otherwise); order is irrelevant.
  /// Origin lists are compared verbatim, so a reordered origin list
  /// counts as a reorigin.
  static RibDelta diff(std::span<const Pfx2AsRecord> from,
                       std::span<const Pfx2AsRecord> to);

  /// Applies the delta to a table, returning the patched table ascending
  /// by prefix. validate()s first, then throws tass::Error if a withdraw
  /// or reorigin names a prefix missing from the table, an announce names
  /// one already present, or the table itself carries duplicates.
  std::vector<Pfx2AsRecord> apply(std::span<const Pfx2AsRecord> table) const;
};

/// Encodes the delta as an MRT BGP4MP_MESSAGE_AS4 update stream: UPDATE
/// messages carrying the withdrawals, then one announcement UPDATE per
/// origin group (multi-origin records become a trailing AS_SET, matching
/// how CAIDA derives multi-origin pfx2as rows). Reorigins are encoded as
/// plain re-announcements — that is all BGP puts on the wire; decode +
/// rebased() recovers the three-way split.
std::vector<std::byte> encode_mrt_updates(
    const RibDelta& delta, std::uint32_t timestamp,
    std::uint32_t peer_asn = 64500,
    net::Ipv4Address peer_address = net::Ipv4Address(0xc0000201u));

/// Decodes an MRT BGP4MP update stream into a delta of announcements and
/// withdrawals. Later messages override earlier ones per prefix (streams
/// legitimately re-announce), so the result is duplicate-free and
/// ascending by prefix; reorigin stays empty — the wire cannot tell a
/// re-announcement from a new route, use rebased(). Unknown MRT types,
/// non-UPDATE BGP messages and non-IPv4 updates are counted into
/// `skipped` when provided. Throws tass::FormatError on structural
/// corruption (truncation, bad marker, prefix length > 32, announcements
/// without an origin) — parse or throw, never crash.
RibDelta decode_mrt_updates(std::span<const std::byte> data,
                            std::size_t* skipped = nullptr);

/// Normalises a delta against the table it is about to patch: announces
/// of already-present prefixes become reorigins (or are dropped when the
/// origins match — wire streams re-announce liberally), withdrawals must
/// name present prefixes (throws tass::Error otherwise). Returns a
/// valid() delta with sections ascending by prefix.
RibDelta rebased(RibDelta delta, std::span<const Pfx2AsRecord> table);

}  // namespace tass::bgp
