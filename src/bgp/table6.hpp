// RoutingTable6 — the announced-IPv6 view of a routing table and its two
// partitions (paper §3.2, carried to v6).
//
// The v6 twin of bgp::RoutingTable: merges pfx2as6 records by prefix,
// classifies each announced prefix as an l-prefix (no announced strict
// ancestor) or an m-prefix (announced inside an l-prefix), and derives
// the two partitions the paper evaluates — the l-partition and the
// deaggregated m-partition (Figure 2's tiler, run on 128-bit prefixes).
// Both come back as bgp::PrefixPartition6, ready for hitlist attribution
// through the shared LPM substrate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "net/ipv6.hpp"

namespace tass::bgp {

/// One merged announced-v6 route.
struct Route6Entry {
  net::Ipv6Prefix prefix;
  std::vector<std::uint32_t> origins;
  bool more_specific = false;  // announced inside another announced prefix
};

class RoutingTable6 {
 public:
  RoutingTable6() = default;

  /// Merges records by prefix (multi-origin announcements union their
  /// origin sets) and classifies l/m-prefixes.
  static RoutingTable6 from_pfx2as(std::span<const Pfx2As6Record> records);

  std::span<const Route6Entry> routes() const noexcept { return routes_; }
  std::size_t size() const noexcept { return routes_.size(); }

  /// Least-specific announced prefixes (not contained in any other).
  std::vector<net::Ipv6Prefix> l_prefixes() const;
  /// Announced more-specifics.
  std::vector<net::Ipv6Prefix> m_prefixes() const;

  /// The l-partition: one cell per l-prefix.
  PrefixPartition6 l_partition() const;

  /// The m-partition: every l-prefix deaggregated around its announced
  /// more-specifics (Figure 2) so all routing information is a whole
  /// cell while the cells stay a proper partition.
  PrefixPartition6 m_partition() const;

  /// Announced scan space in /64 subnets (saturating; l-prefixes only,
  /// which equal the whole advertised space by disjointness).
  std::uint64_t advertised_units() const noexcept {
    return advertised_units_;
  }

 private:
  void finalize();

  std::vector<Route6Entry> routes_;  // sorted by (network, length)
  std::uint64_t advertised_units_ = 0;
};

}  // namespace tass::bgp
