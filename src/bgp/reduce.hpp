// Overshoot-bounded prefix reduction: minimal target lists.
//
// The paper's §5 observes that a TASS selection can be post-processed
// into an equivalent — or slightly larger — prefix list without changing
// what gets scanned. Every downstream consumer pays per-prefix costs
// (ScanScope interval/LPM builds, TSIM encoding, blocklist indexes,
// serve replies, exported ACLs), so collapsing a selection into far
// fewer, slightly coarser prefixes is a cross-cutting perf lever. This
// header provides both halves, family-generic over net::Ipv4Family /
// net::Ipv6Family:
//
//   * BasicAggregate<Family> — the exact half: merge duplicates, nested
//     prefixes and sibling pairs into the unique minimal CIDR list
//     covering the same addresses (the family-generic promotion of the
//     historical v4-only bgp::aggregate).
//   * reduce() — the lossy half: starting from the exact aggregate,
//     greedily merge the cheapest adjacent runs under their smallest
//     common supernet, each merge priced by the overshoot addresses it
//     admits, until an address-overshoot cap or a target prefix count
//     is reached. The result always covers every original address;
//     overshoot is extra, never missing.
//
// Accounting follows net::interval's inclusive-bound idiom: widths are
// kept as (last - first) spans in 128-bit arithmetic so the full spaces
// (0.0.0.0/0, ::/0) are exact, and the overshoot budget is enforced in
// exact addresses of the family's bit width. Reported totals use the
// family's scan units (IPv4: addresses; IPv6: /64 subnets, saturating),
// matching Family::prefix_units everywhere else in the pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/family.hpp"

namespace tass::bgp {

/// Family-generic exact aggregation. For Ipv4Family this computes the
/// same minimal cover (byte-identical output) as the historical
/// interval-algebra bgp::aggregate.
template <class Family>
struct BasicAggregate {
  using Prefix = typename Family::Prefix;

  /// The minimal sorted list of prefixes covering exactly the same
  /// addresses as the input (duplicates, nesting and adjacent siblings
  /// are merged). O(n log n), one sort plus a stack sweep — no interval
  /// materialisation, so it runs at either family's width.
  static std::vector<Prefix> aggregate(std::span<const Prefix> prefixes);

  /// Scan units covered by the union of the prefixes (after
  /// de-duplication): addresses for IPv4 (0.0.0.0/0 == 2^32), /64
  /// subnets for IPv6 (saturating — ::/0 alone clamps to 2^64 - 1).
  static std::uint64_t union_size(std::span<const Prefix> prefixes);
};

/// Reduction stopping rule. Merging stops at whichever bound binds
/// first; the defaults reproduce the headline "5% overshoot" operating
/// point.
struct ReduceParams {
  /// Maximum extra address fraction: the reduced list may cover at most
  /// (1 + max_overshoot) times the original union, enforced in exact
  /// addresses. 0 degenerates to exact aggregation. Must be finite and
  /// non-negative.
  double max_overshoot = 0.05;
  /// Floor on the reduced list size (0 = ignore; the overshoot cap is
  /// then the only bound). No greedy merge ever lands below it — though
  /// the exact aggregation stage, which only removes redundancy, may
  /// already produce a smaller list.
  std::size_t min_prefixes = 0;
};

/// One point of the reduction trajectory: the list size and cumulative
/// overshoot after a merge (scan units, like every other total).
struct ReduceCurvePoint {
  std::uint64_t prefixes = 0;
  std::uint64_t overshoot_addresses = 0;
};

template <class Family>
struct BasicReduceResult {
  /// The reduced list: sorted, disjoint, and a superset of every input
  /// address. Free (zero-overshoot) merges always execute before costed
  /// ones, so no sibling pair survives unless the min_prefixes floor
  /// stopped reduction first.
  std::vector<typename Family::Prefix> prefixes;
  std::uint64_t original_prefixes = 0;    // input list size
  std::uint64_t aggregated_prefixes = 0;  // after the exact half
  std::uint64_t original_addresses = 0;   // union of the input, scan units
  std::uint64_t overshoot_addresses = 0;  // extra units the merges admit
  std::uint64_t merges = 0;               // greedy merges executed
  /// Trajectory: point [0] is the exact aggregate (overshoot 0), then
  /// one point per merge. Sizes strictly decrease, overshoot never does.
  std::vector<ReduceCurvePoint> curve;

  /// Input prefixes per output prefix — the headline compaction factor.
  double reduction_ratio() const noexcept {
    return prefixes.empty() ? 1.0
                            : static_cast<double>(original_prefixes) /
                                  static_cast<double>(prefixes.size());
  }
  /// Overshoot relative to the original union (both in scan units).
  double overshoot_fraction() const noexcept {
    return original_addresses == 0
               ? 0.0
               : static_cast<double>(overshoot_addresses) /
                     static_cast<double>(original_addresses);
  }
};

using ReduceResult = BasicReduceResult<net::Ipv4Family>;
using ReduceResult6 = BasicReduceResult<net::Ipv6Family>;

/// Reduces a prefix list under the overshoot budget: exact-aggregate,
/// then greedily execute the cheapest merges (cost = addresses a merge
/// would add) until no affordable merge remains or the target count is
/// reached. Deterministic for a given input. Precondition: params are
/// valid (finite max_overshoot >= 0).
template <class Family>
BasicReduceResult<Family> reduce(
    std::span<const typename Family::Prefix> prefixes,
    const ReduceParams& params = {});

extern template BasicReduceResult<net::Ipv4Family> reduce<net::Ipv4Family>(
    std::span<const net::Prefix>, const ReduceParams&);
extern template BasicReduceResult<net::Ipv6Family> reduce<net::Ipv6Family>(
    std::span<const net::Ipv6Prefix>, const ReduceParams&);
extern template struct BasicAggregate<net::Ipv4Family>;
extern template struct BasicAggregate<net::Ipv6Family>;

/// Deduction-friendly spellings (the template parameter sits in a
/// non-deduced context): reduce(selection.prefixes, params) works for
/// either family's vector.
inline ReduceResult reduce(std::span<const net::Prefix> prefixes,
                           const ReduceParams& params = {}) {
  return reduce<net::Ipv4Family>(prefixes, params);
}
inline ReduceResult6 reduce(std::span<const net::Ipv6Prefix> prefixes,
                            const ReduceParams& params = {}) {
  return reduce<net::Ipv6Family>(prefixes, params);
}

}  // namespace tass::bgp
