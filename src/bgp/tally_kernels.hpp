// Kernel dispatch for the per-block histogram step of
// BasicPrefixPartition::tally_cells — the inner loop of the sharded
// attribution path (ScanEngine::run_attributed, core::attribute).
//
// Same architecture as trie/lpm_kernels.hpp: a table of plain function
// pointers selected at runtime through util::cpu, with the scalar loop
// as the always-compiled reference and the AVX2 variant exported by
// tally_avx2.cpp (the only bgp/ TU compiled with -mavx2; nullptr when
// the build cannot target AVX2). The AVX2 kernel vectorises the
// attributed/unattributed classification (8-wide compare against the
// no-cell sentinel + movemask popcount) and then increments only the
// surviving cells — the histogram write itself is a scatter and stays
// scalar. Bit-identical to the scalar loop for any input.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu.hpp"

namespace tass::bgp::detail {

/// The sentinel the kernels treat as "no covering cell". Must equal
/// BasicPrefixPartition::kNoCell — static_asserted at the call site in
/// partition.hpp (this header cannot name the partition template
/// without dragging the whole index in).
inline constexpr std::uint32_t kTallyNoCell = 0x7fffffffu;

/// One kernel per Count width the pipeline instantiates: uint32 for the
/// per-shard slot vectors, uint64 for merged totals. Both accumulate
/// into the caller's running attributed/unattributed counters.
struct TallyKernels {
  using TallyU32Fn = void (*)(const std::uint32_t* cells, std::size_t n,
                              std::uint32_t* counts, std::uint64_t& attributed,
                              std::uint64_t& unattributed);
  using TallyU64Fn = void (*)(const std::uint32_t* cells, std::size_t n,
                              std::uint64_t* counts, std::uint64_t& attributed,
                              std::uint64_t& unattributed);
  TallyU32Fn tally_u32 = nullptr;
  TallyU64Fn tally_u64 = nullptr;
  const char* name = "scalar";
};

/// The kernel table for `level`; kAvx2 degrades to scalar in builds
/// without AVX2 support. Defined in tally_kernels.cpp.
const TallyKernels& tally_kernels(util::cpu::SimdLevel level) noexcept;

/// The table matching util::cpu's cached probe (hardware capability +
/// TASS_FORCE_SCALAR override).
inline const TallyKernels& active_tally_kernels() noexcept {
  return tally_kernels(util::cpu::active_level());
}

// Exported by tally_avx2.cpp; nullptr when that TU was built without
// AVX2 codegen.
extern const TallyKernels::TallyU32Fn kAvx2TallyU32;
extern const TallyKernels::TallyU64Fn kAvx2TallyU64;

}  // namespace tass::bgp::detail
