#include "net/family.hpp"

#include "util/error.hpp"

namespace tass::net {

std::string_view address_family_name(AddressFamily family) noexcept {
  return family == AddressFamily::kIpv4 ? "IPv4" : "IPv6";
}

std::optional<GenericPrefix> GenericPrefix::parse(
    std::string_view text) noexcept {
  if (text.find(':') != std::string_view::npos) {
    if (text.find('/') != std::string_view::npos) {
      const auto prefix = Ipv6Prefix::parse(text);
      if (!prefix) return std::nullopt;
      return from(*prefix);
    }
    const auto address = Ipv6Address::parse(text);
    if (!address) return std::nullopt;
    return from(Ipv6Prefix(*address, 128));
  }
  if (text.find('/') != std::string_view::npos) {
    const auto prefix = Prefix::parse(text);
    if (!prefix) return std::nullopt;
    return from(*prefix);
  }
  const auto address = Ipv4Address::parse(text);
  if (!address) return std::nullopt;
  return from(Prefix(*address, 32));
}

GenericPrefix GenericPrefix::parse_or_throw(std::string_view text) {
  const auto prefix = parse(text);
  if (!prefix) {
    throw ParseError("invalid prefix (neither family): '" +
                     std::string(text) + "'");
  }
  return *prefix;
}

std::string GenericPrefix::to_string() const {
  if (const auto prefix = v4()) return prefix->to_string();
  return v6()->to_string();
}

}  // namespace tass::net
