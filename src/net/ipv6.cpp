#include "net/ipv6.hpp"

#include <array>
#include <cstdio>
#include <vector>

#include "net/ipv4.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::net {

namespace {

std::optional<std::uint16_t> parse_group(std::string_view text) noexcept {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<std::uint16_t>(value);
}

// Parses a colon-separated group list (no "::" inside) into `groups`,
// allowing a trailing dotted-quad that contributes two groups.
bool parse_group_run(std::string_view text,
                     std::vector<std::uint16_t>& groups) noexcept {
  if (text.empty()) return true;
  const auto tokens = util::split(text, ':');
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].find('.') != std::string_view::npos) {
      // Embedded IPv4: only valid as the final token.
      if (i + 1 != tokens.size()) return false;
      const auto v4 = Ipv4Address::parse(tokens[i]);
      if (!v4) return false;
      groups.push_back(static_cast<std::uint16_t>(v4->value() >> 16));
      groups.push_back(static_cast<std::uint16_t>(v4->value() & 0xffff));
      continue;
    }
    const auto group = parse_group(tokens[i]);
    if (!group) return false;
    groups.push_back(*group);
  }
  return true;
}

Ipv6Address from_groups(const std::array<std::uint16_t, 8>& groups) {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) {
    hi = (hi << 16) | groups[static_cast<std::size_t>(i)];
    lo = (lo << 16) | groups[static_cast<std::size_t>(i + 4)];
  }
  return Ipv6Address(hi, lo);
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) noexcept {
  const std::size_t gap = text.find("::");
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  if (gap == std::string_view::npos) {
    if (!parse_group_run(text, head)) return std::nullopt;
    if (head.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) {
      return std::nullopt;  // at most one "::"
    }
    // An embedded IPv4 tail is only legal at the very end of the address,
    // i.e. never in the run before "::".
    if (text.substr(0, gap).find('.') != std::string_view::npos) {
      return std::nullopt;
    }
    if (!parse_group_run(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_group_run(text.substr(gap + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() > 7) return std::nullopt;
  }

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  return from_groups(groups);
}

Ipv6Address Ipv6Address::parse_or_throw(std::string_view text) {
  if (const auto parsed = parse(text)) return *parsed;
  throw ParseError("invalid IPv6 address: '" + std::string(text) + "'");
}

std::string Ipv6Address::to_string() const {
  // RFC 5952: compress the longest (leftmost on tie) run of >= 2 zero
  // groups; lower-case hex without leading zeros.
  std::array<std::uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i) {
    groups[static_cast<std::size_t>(i)] = group(i);
  }
  int best_start = -1;
  int best_length = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_length) {
      best_start = i;
      best_length = j - i;
    }
    i = j;
  }
  if (best_length < 2) best_start = -1;

  std::string out;
  char buffer[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // "::" both separates and stands for the zero run; a following
      // group needs no extra ':'.
      out += "::";
      i += best_length;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buffer, sizeof(buffer), "%x",
                  groups[static_cast<std::size_t>(i)]);
    out += buffer;
    ++i;
  }
  if (out.empty()) return "::";
  return out;
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv6Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const auto length = util::parse_u32(text.substr(slash + 1));
  if (!length || *length > 128) return std::nullopt;
  return Ipv6Prefix(*address, static_cast<int>(*length));
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse_strict(
    std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv6Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const auto length = util::parse_u32(text.substr(slash + 1));
  if (!length || *length > 128) return std::nullopt;
  const Ipv6Prefix prefix(*address, static_cast<int>(*length));
  if (prefix.network() != *address) return std::nullopt;  // host bits set
  return prefix;
}

Ipv6Prefix Ipv6Prefix::parse_or_throw(std::string_view text) {
  if (const auto parsed = parse(text)) return *parsed;
  throw ParseError("invalid IPv6 prefix: '" + std::string(text) + "'");
}

std::string Ipv6Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace tass::net
