#include "net/prefix.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tass::net {

namespace {

std::optional<std::pair<Ipv4Address, int>> parse_parts(
    std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const auto length = util::parse_u32(text.substr(slash + 1));
  if (!length || *length > 32) return std::nullopt;
  return std::pair{*address, static_cast<int>(*length)};
}

}  // namespace

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto parts = parse_parts(text);
  if (!parts) return std::nullopt;
  return Prefix(parts->first, parts->second);
}

std::optional<Prefix> Prefix::parse_strict(std::string_view text) noexcept {
  const auto parts = parse_parts(text);
  if (!parts) return std::nullopt;
  const Prefix canonical(parts->first, parts->second);
  if (canonical.network() != parts->first) return std::nullopt;
  return canonical;
}

Prefix Prefix::parse_or_throw(std::string_view text) {
  if (const auto parsed = parse(text)) return *parsed;
  throw ParseError("invalid prefix: '" + std::string(text) + "'");
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::vector<Prefix> cover_range(Ipv4Address first, Ipv4Address last) {
  TASS_EXPECTS(first <= last);
  std::vector<Prefix> cover;
  std::uint64_t lo = first.value();
  const std::uint64_t hi = last.value();
  while (lo <= hi) {
    // Largest power-of-two block that is (a) aligned at lo and (b) does not
    // extend past hi.
    const int align_bits =
        lo == 0 ? 32 : std::countr_zero(static_cast<std::uint32_t>(lo));
    const std::uint64_t span = hi - lo + 1;
    const int span_bits = 63 - std::countl_zero(span);
    const int block_bits = std::min(align_bits, span_bits);
    cover.emplace_back(Ipv4Address(static_cast<std::uint32_t>(lo)),
                       32 - block_bits);
    lo += 1ULL << block_bits;
  }
  return cover;
}

}  // namespace tass::net
