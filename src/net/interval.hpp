// Address intervals and disjoint interval sets.
//
// IntervalSet is the workhorse for address-space accounting: advertised
// space, blocklists, scan scopes, and the set algebra behind Figure 1
// (strategy scoping) are all expressed over it. Intervals are inclusive
// [first, last] so the full space [0, 2^32-1] is representable.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace tass::net {

/// Inclusive address interval [first, last].
struct Interval {
  Ipv4Address first;
  Ipv4Address last;

  constexpr std::uint64_t size() const noexcept {
    return static_cast<std::uint64_t>(last.value()) - first.value() + 1;
  }
  constexpr bool contains(Ipv4Address addr) const noexcept {
    return first <= addr && addr <= last;
  }

  static constexpr Interval of(Prefix prefix) noexcept {
    return Interval{prefix.first(), prefix.last()};
  }
  static constexpr Interval full_space() noexcept {
    return Interval{Ipv4Address(0), Ipv4Address(~0u)};
  }

  friend constexpr auto operator<=>(const Interval&,
                                    const Interval&) noexcept = default;
};

/// A set of addresses maintained as sorted, disjoint, non-adjacent
/// inclusive intervals. Regular value type; all mutators keep the invariant.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(std::span<const Interval> intervals);

  static IntervalSet of_prefixes(std::span<const Prefix> prefixes);
  static IntervalSet full_space();

  void insert(Interval interval);
  void insert(Prefix prefix) { insert(Interval::of(prefix)); }
  void remove(Interval interval);
  void remove(Prefix prefix) { remove(Interval::of(prefix)); }

  bool contains(Ipv4Address addr) const noexcept;
  /// True if every address in `interval` is in the set.
  bool contains_all(Interval interval) const noexcept;

  /// Total number of addresses in the set.
  std::uint64_t address_count() const noexcept;

  bool empty() const noexcept { return intervals_.empty(); }
  std::size_t interval_count() const noexcept { return intervals_.size(); }
  std::span<const Interval> intervals() const noexcept { return intervals_; }

  /// Set algebra; each returns a new set.
  IntervalSet union_with(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;
  IntervalSet subtract(const IntervalSet& other) const;
  IntervalSet complement() const;

  /// Minimal CIDR cover of the set, ascending.
  std::vector<Prefix> to_prefixes() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  // Sorted by first; pairwise disjoint with at least one address gap
  // between consecutive intervals (adjacent intervals are coalesced).
  std::vector<Interval> intervals_;
};

/// Random access into the addresses of an IntervalSet: maps a dense index
/// in [0, size()) to the index-th smallest address. Lets scanners permute
/// a scope by permuting [0, size()) (the ZMap whitelist technique).
class AddressIndexer {
 public:
  explicit AddressIndexer(const IntervalSet& set);

  std::uint64_t size() const noexcept {
    return cumulative_.empty() ? 0 : cumulative_.back();
  }

  /// The index-th smallest address. Precondition: index < size().
  Ipv4Address at(std::uint64_t index) const;

 private:
  std::vector<Interval> intervals_;
  std::vector<std::uint64_t> cumulative_;  // running address counts
};

}  // namespace tass::net
