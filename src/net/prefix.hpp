// CIDR prefix value type and ordering helpers.
//
// A Prefix is always canonical: host bits below the mask are zero. The
// paper's terminology is used throughout the codebase:
//   * l-prefix — a least-specific announced prefix (not contained in any
//     other announced prefix);
//   * m-prefix — a more-specific prefix (announced inside an l-prefix, or
//     produced by deaggregating the l-prefix around announced
//     more-specifics, Figure 2 of the paper).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"

namespace tass::net {

/// A canonical IPv4 CIDR prefix (network address + mask length 0..32).
class Prefix {
 public:
  /// Default: 0.0.0.0/0 (the whole address space).
  constexpr Prefix() noexcept = default;

  /// Canonicalising constructor: host bits of `address` below the mask are
  /// cleared, so Prefix(192.0.2.77, 24) == 192.0.2.0/24.
  constexpr Prefix(Ipv4Address address, int length) noexcept
      : address_(Ipv4Address(address.value() & mask(length))),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses "a.b.c.d/len". Host bits below the mask are canonicalised
  /// away (parse("10.0.0.1/8") == 10.0.0.0/8), mirroring how BGP tools
  /// treat sloppy input; use parse_strict to reject non-canonical text
  /// instead. The same contract pair exists on net::Ipv6Prefix.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  /// As parse() but requires the network address to already be canonical
  /// (no host bits set), e.g. rejects "10.0.0.1/8". The v4 twin of
  /// Ipv6Prefix::parse_strict.
  static std::optional<Prefix> parse_strict(std::string_view text) noexcept;

  /// As parse() but throws tass::ParseError on failure.
  static Prefix parse_or_throw(std::string_view text);

  constexpr Ipv4Address network() const noexcept { return address_; }
  constexpr int length() const noexcept { return length_; }

  /// Netmask for a prefix length (mask(8) == 255.0.0.0).
  static constexpr std::uint32_t mask(int length) noexcept {
    return length == 0 ? 0u : ~0u << (32 - length);
  }

  /// Number of addresses covered (2^(32-len)); 64-bit because /0 overflows.
  constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - length_);
  }

  /// First address (== network()).
  constexpr Ipv4Address first() const noexcept { return address_; }
  /// Last (broadcast) address.
  constexpr Ipv4Address last() const noexcept {
    return Ipv4Address(address_.value() | ~mask(length_));
  }

  constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask(length_)) == address_.value();
  }
  /// True if `other` is equal to or more specific than *this.
  constexpr bool contains(Prefix other) const noexcept {
    return other.length_ >= length_ && contains(other.address_);
  }
  /// True if the address ranges intersect (one contains the other).
  constexpr bool overlaps(Prefix other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// The two halves of this prefix. Precondition: length() < 32.
  constexpr Prefix lower_half() const noexcept {
    return Prefix(address_, length_ + 1);
  }
  constexpr Prefix upper_half() const noexcept {
    return Prefix(Ipv4Address(address_.value() | (1u << (31 - length_))),
                  length_ + 1);
  }

  /// The enclosing prefix one bit shorter. Precondition: length() > 0.
  constexpr Prefix parent() const noexcept {
    return Prefix(address_, length_ - 1);
  }

  /// Sibling within the parent. Precondition: length() > 0.
  constexpr Prefix sibling() const noexcept {
    return Prefix(Ipv4Address(address_.value() ^ (1u << (32 - length_))),
                  length_);
  }

  /// The n-th address inside the prefix. Precondition: offset < size().
  constexpr Ipv4Address at(std::uint64_t offset) const noexcept {
    return Ipv4Address(address_.value() +
                       static_cast<std::uint32_t>(offset));
  }
  /// Offset of an address within the prefix. Precondition: contains(addr).
  constexpr std::uint64_t offset_of(Ipv4Address addr) const noexcept {
    return addr.value() - address_.value();
  }

  std::string to_string() const;

  /// Lexicographic (network, length): a prefix sorts immediately before the
  /// more-specific prefixes it contains. This is the canonical ordering for
  /// routing-table dumps and for our deaggregation sweep.
  friend constexpr auto operator<=>(Prefix a, Prefix b) noexcept {
    if (const auto cmp = a.address_ <=> b.address_; cmp != 0) return cmp;
    return a.length_ <=> b.length_;
  }
  friend constexpr bool operator==(Prefix, Prefix) noexcept = default;

 private:
  Ipv4Address address_{};
  std::uint8_t length_ = 0;
};

/// Covers the inclusive address range [first, last] with the minimal list of
/// CIDR prefixes, in ascending address order. This is the primitive behind
/// deaggregation (Figure 2) and blocklist/interval conversion.
std::vector<Prefix> cover_range(Ipv4Address first, Ipv4Address last);

}  // namespace tass::net
