// IPv4 address value type.
//
// Addresses are stored in host byte order as a plain uint32 so ordinary
// integer comparisons give numeric (dotted-quad) ordering. Conversion to
// network byte order happens only at the MRT serialisation boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tass::net {

/// An IPv4 address. Regular value type; totally ordered numerically.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept
      : value_(value) {}

  /// Builds an address from dotted-quad octets (a.b.c.d).
  constexpr static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address((static_cast<std::uint32_t>(a) << 24) |
                       (static_cast<std::uint32_t>(b) << 16) |
                       (static_cast<std::uint32_t>(c) << 8) |
                       static_cast<std::uint32_t>(d));
  }

  /// Parses strict dotted-quad notation ("192.0.2.1"). Rejects leading
  /// zeros ("01.2.3.4"), out-of-range octets, and trailing garbage.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  /// As parse() but throws tass::ParseError on failure.
  static Ipv4Address parse_or_throw(std::string_view text);

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int index) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (24 - 8 * index));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// Total number of IPv4 addresses (2^32), as a 64-bit constant.
inline constexpr std::uint64_t kIpv4SpaceSize = 1ULL << 32;

}  // namespace tass::net
