// IPv6 value types — the 128-bit leg of the family-generic pipeline.
//
// "When IPv6 becomes popular, brute forcing the address space becomes
// infeasible. By then we ought to have better approaches for network
// scanning. Perhaps TASS can offer a blueprint for tackling that
// challenge as well." (§6)
//
// Brute-force enumeration of 2^128 addresses is impossible, so an IPv6
// TASS is seeded from hitlists / passive data rather than a full scan —
// but the prefix machinery (canonical prefixes, containment, density
// over announced prefixes) carries over directly. This header provides
// the 128-bit address/prefix value types with full RFC 4291 / RFC 5952
// text handling; net::Ipv6Family (family.hpp) lifts them into the
// generic LPM/partition/ranking/state pipeline, and
// examples/ipv6_blueprint.cpp runs the whole loop end to end.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tass::net {

/// An IPv6 address as a 128-bit value (two 64-bit halves, big-endian
/// significance: hi() carries the first 8 text groups).
class Ipv6Address {
 public:
  constexpr Ipv6Address() noexcept = default;
  constexpr Ipv6Address(std::uint64_t hi, std::uint64_t lo) noexcept
      : hi_(hi), lo_(lo) {}

  /// Parses RFC 4291 text: full form, "::" compression, mixed trailing
  /// IPv4 dotted-quad ("::ffff:192.0.2.1"). Rejects malformed input.
  static std::optional<Ipv6Address> parse(std::string_view text) noexcept;
  static Ipv6Address parse_or_throw(std::string_view text);

  constexpr std::uint64_t hi() const noexcept { return hi_; }
  constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// The i-th 16-bit group, i in [0, 8).
  constexpr std::uint16_t group(int index) const noexcept {
    const std::uint64_t half = index < 4 ? hi_ : lo_;
    const int shift = 48 - 16 * (index & 3);
    return static_cast<std::uint16_t>(half >> shift);
  }

  /// Bit at position `index` (0 = most significant).
  constexpr int bit(int index) const noexcept {
    return index < 64 ? static_cast<int>((hi_ >> (63 - index)) & 1)
                      : static_cast<int>((lo_ >> (127 - index)) & 1);
  }

  /// RFC 5952 canonical text (lower case, longest zero run compressed).
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv6Address a, Ipv6Address b) noexcept {
    if (const auto cmp = a.hi_ <=> b.hi_; cmp != 0) return cmp;
    return a.lo_ <=> b.lo_;
  }
  friend constexpr bool operator==(Ipv6Address, Ipv6Address) noexcept =
      default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// A canonical IPv6 CIDR prefix (length 0..128; host bits cleared).
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() noexcept = default;
  constexpr Ipv6Prefix(Ipv6Address address, int length) noexcept
      : address_(mask_address(address, length)),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses "addr/len". Host bits below the mask are canonicalised away
  /// (parse("2001:db8::1/64") == 2001:db8::/64), matching the IPv4
  /// Prefix::parse contract; use parse_strict to reject non-canonical
  /// text instead.
  static std::optional<Ipv6Prefix> parse(std::string_view text) noexcept;

  /// As parse() but requires the network address to already be canonical
  /// (no host bits set), e.g. rejects "2001:db8::1/64". The v6 twin of
  /// Prefix::parse_strict.
  static std::optional<Ipv6Prefix> parse_strict(
      std::string_view text) noexcept;

  /// As parse() but throws tass::ParseError on failure.
  static Ipv6Prefix parse_or_throw(std::string_view text);

  constexpr Ipv6Address network() const noexcept { return address_; }
  constexpr int length() const noexcept { return length_; }

  /// First address (== network()).
  constexpr Ipv6Address first() const noexcept { return address_; }
  /// Last address of the prefix (all host bits set).
  constexpr Ipv6Address last() const noexcept {
    if (length_ == 0) return Ipv6Address(~0ULL, ~0ULL);
    if (length_ <= 64) {
      const std::uint64_t host =
          length_ == 64 ? 0 : ~0ULL >> length_;
      return Ipv6Address(address_.hi() | host, ~0ULL);
    }
    if (length_ >= 128) return address_;
    return Ipv6Address(address_.hi(),
                       address_.lo() | (~0ULL >> (length_ - 64)));
  }

  constexpr bool contains(Ipv6Address addr) const noexcept {
    return mask_address(addr, length_) == address_;
  }
  constexpr bool contains(Ipv6Prefix other) const noexcept {
    return other.length_ >= length_ && contains(other.address_);
  }
  /// True if the address ranges intersect (one contains the other).
  constexpr bool overlaps(Ipv6Prefix other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// log2 of the prefix size (sizes themselves overflow any integer).
  constexpr int size_bits() const noexcept { return 128 - length_; }

  /// The two halves of this prefix. Precondition: length() < 128.
  constexpr Ipv6Prefix lower_half() const noexcept {
    return Ipv6Prefix(address_, length_ + 1);
  }
  constexpr Ipv6Prefix upper_half() const noexcept {
    const Ipv6Address flipped =
        length_ < 64
            ? Ipv6Address(address_.hi() | (1ULL << (63 - length_)),
                          address_.lo())
            : Ipv6Address(address_.hi(),
                          address_.lo() | (1ULL << (127 - length_)));
    return Ipv6Prefix(flipped, length_ + 1);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv6Prefix a, Ipv6Prefix b) noexcept {
    if (const auto cmp = a.address_ <=> b.address_; cmp != 0) return cmp;
    return a.length_ <=> b.length_;
  }
  friend constexpr bool operator==(Ipv6Prefix, Ipv6Prefix) noexcept =
      default;

 private:
  static constexpr Ipv6Address mask_address(Ipv6Address addr,
                                            int length) noexcept {
    if (length <= 0) return Ipv6Address();
    if (length >= 128) return addr;
    if (length <= 64) {
      const std::uint64_t mask =
          length == 0 ? 0 : ~0ULL << (64 - length);
      return Ipv6Address(addr.hi() & mask, 0);
    }
    const std::uint64_t mask = ~0ULL << (128 - length);
    return Ipv6Address(addr.hi(), addr.lo() & mask);
  }

  Ipv6Address address_{};
  std::uint8_t length_ = 0;
};

}  // namespace tass::net
