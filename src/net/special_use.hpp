// IANA special-use IPv4 registry (RFC 6890 and successors).
//
// These are the ranges every responsible scanner excludes a priori — the
// first scoping level of Figure 1 ("IANA allocated" vs "/0"). The default
// ZMap-style blocklist is built from this registry.
#pragma once

#include <span>
#include <string_view>

#include "net/interval.hpp"
#include "net/prefix.hpp"

namespace tass::net {

/// One special-use registry entry.
struct SpecialUseRange {
  Prefix prefix;
  std::string_view name;      // registry name, e.g. "Private-Use"
  std::string_view rfc;       // defining document
  bool globally_reachable;    // per the IANA registry column
};

/// The special-use registry, ordered by prefix.
std::span<const SpecialUseRange> special_use_ranges() noexcept;

/// Addresses that can never host a public service (registry entries with
/// globally_reachable == false). This is what "IANA allocated/scannable"
/// subtracts from /0 in Figure 1.
const IntervalSet& reserved_space();

/// The scannable unicast space: full space minus reserved_space().
const IntervalSet& scannable_space();

}  // namespace tass::net
