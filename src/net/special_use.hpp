// IANA special-use IPv4 registry (RFC 6890 and successors).
//
// These are the ranges every responsible scanner excludes a priori — the
// first scoping level of Figure 1 ("IANA allocated" vs "/0"). The default
// ZMap-style blocklist is built from this registry.
#pragma once

#include <span>
#include <string_view>

#include "net/interval.hpp"
#include "net/prefix.hpp"
#include "trie/lpm_index.hpp"

namespace tass::net {

/// One special-use registry entry.
struct SpecialUseRange {
  Prefix prefix;
  std::string_view name;      // registry name, e.g. "Private-Use"
  std::string_view rfc;       // defining document
  bool globally_reachable;    // per the IANA registry column
};

/// The special-use registry, ordered by prefix.
std::span<const SpecialUseRange> special_use_ranges() noexcept;

/// Longest-prefix classification of an address against the registry, via
/// the shared trie::LpmIndex substrate. nullptr if the address is ordinary
/// unicast space. (Not noexcept: the first call builds the static index,
/// which may allocate.)
const SpecialUseRange* classify(Ipv4Address addr);

/// True if the address can never host a public service (it falls in a
/// registry range with globally_reachable == false). Fast path equivalent
/// of reserved_space().contains(addr).
bool is_reserved(Ipv4Address addr);

/// The registry as an LpmIndex mapping an address to its registry entry
/// index (into special_use_ranges()), for callers that batch.
const trie::LpmIndex& special_use_index();

/// Addresses that can never host a public service (registry entries with
/// globally_reachable == false). This is what "IANA allocated/scannable"
/// subtracts from /0 in Figure 1.
const IntervalSet& reserved_space();

/// The scannable unicast space: full space minus reserved_space().
const IntervalSet& scannable_space();

}  // namespace tass::net
