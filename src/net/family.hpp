// Address-family genericity: the trait layer the TASS pipeline is
// parameterized over.
//
// The paper closes (§6) by arguing that TASS — density-ranked announced
// prefixes — is the blueprint for IPv6 scanning, where brute force is
// impossible. Everything past `net/` used to be hardwired to IPv4
// uint32 arithmetic; this header factors the per-family facts into two
// trait types so one pipeline (LPM attribution, partitioning, density
// ranking, selection, scan scoping, state images) serves both families:
//
//   * AddressKey  — a 128-bit, left-aligned lookup key (two 64-bit
//     halves). An IPv4 address occupies the top 32 bits, an IPv6
//     address all 128, so "top 16 bits" (the LPM root stride) and
//     "bits [d, d+s)" (node strides) mean the same thing for both.
//     Strides are chosen so no extraction ever straddles the hi/lo
//     boundary (see trie::BasicLpmIndex).
//   * Ipv4Family / Ipv6Family — the compile-time trait bundling the
//     family's value types (Address, Prefix), bit width, key
//     conversions, and the family-specific scan-space metrics (IPv4
//     counts addresses; IPv6 counts /64 subnets, the allocation unit
//     the paper's rho generalises to).
//   * GenericPrefix — a family-tagged runtime prefix for boundaries
//     that must accept either family from one grammar (blocklists,
//     mixed pfx2as dumps) before dispatching into the typed pipeline.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace tass::net {

/// Runtime address-family tag. Values match the conventional IP version
/// numbers so logs and serialised headers read naturally.
enum class AddressFamily : std::uint8_t { kIpv4 = 4, kIpv6 = 6 };

std::string_view address_family_name(AddressFamily family) noexcept;

/// Saturating uint64 arithmetic for space accounting: IPv6 unit totals
/// can exceed 2^64 (a ::/0 cell alone covers 2^64 /64s), and a clamped
/// total is better than a silently wrapped one.
constexpr std::uint64_t saturating_add(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return a > ~std::uint64_t{0} - b ? ~std::uint64_t{0} : a + b;
}
constexpr std::uint64_t saturating_sub(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return b > a ? 0 : a - b;
}

/// A 128-bit, left-aligned address key: bit 0 is the most significant
/// bit of `hi`. IPv4 addresses occupy hi's top 32 bits (lo == 0), IPv6
/// addresses the full width. All LPM/partition bit arithmetic runs on
/// this type so the structural code is family-blind.
struct AddressKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// The top 16 bits — the direct-indexed LPM root stride.
  constexpr std::uint32_t top16() const noexcept {
    return static_cast<std::uint32_t>(hi >> 48);
  }

  /// Bits [depth, depth + stride), as a slot index. Precondition:
  /// stride in (0, 16] and the range does not straddle the hi/lo
  /// boundary (the stride schedule in trie::BasicLpmIndex guarantees
  /// depth + stride <= 64 or depth >= 64).
  constexpr std::uint32_t slot(int depth, int stride) const noexcept {
    const std::uint32_t mask = (1u << stride) - 1u;
    if (depth + stride <= 64) {
      return static_cast<std::uint32_t>(hi >> (64 - depth - stride)) & mask;
    }
    return static_cast<std::uint32_t>(lo >> (128 - depth - stride)) & mask;
  }

  /// Bit at position `index` (0 = most significant of hi).
  constexpr int bit(int index) const noexcept {
    return index < 64 ? static_cast<int>((hi >> (63 - index)) & 1)
                      : static_cast<int>((lo >> (127 - index)) & 1);
  }

  /// The first key of a /16 root block (block == top16()).
  static constexpr AddressKey of_block(std::uint32_t block) noexcept {
    return {static_cast<std::uint64_t>(block) << 48, 0};
  }

  friend constexpr auto operator<=>(AddressKey a, AddressKey b) noexcept {
    if (const auto cmp = a.hi <=> b.hi; cmp != 0) return cmp;
    return a.lo <=> b.lo;
  }
  friend constexpr bool operator==(AddressKey, AddressKey) noexcept = default;
};

/// IPv4 trait: 32-bit keys in the top half, scan-space measured in
/// addresses (the paper's rho_i = c_i / 2^(32 - len)).
struct Ipv4Family {
  static constexpr AddressFamily kFamily = AddressFamily::kIpv4;
  static constexpr int kBits = 32;
  using Address = Ipv4Address;
  using Prefix = net::Prefix;
  /// Element type of batched lookups (the sharded pipeline's currency).
  using AddressWord = std::uint32_t;

  static constexpr AddressKey key(Address address) noexcept {
    return {static_cast<std::uint64_t>(address.value()) << 32, 0};
  }
  static constexpr AddressKey word_key(AddressWord word) noexcept {
    return {static_cast<std::uint64_t>(word) << 32, 0};
  }
  static constexpr Address word_address(AddressWord word) noexcept {
    return Address(word);
  }
  static constexpr AddressKey first_key(Prefix prefix) noexcept {
    return key(prefix.first());
  }
  static constexpr AddressKey last_key(Prefix prefix) noexcept {
    return key(prefix.last());
  }
  static constexpr Prefix make_prefix(AddressKey k, int length) noexcept {
    return Prefix(Ipv4Address(static_cast<std::uint32_t>(k.hi >> 32)),
                  length);
  }

  /// Scan-space units covered by a prefix: addresses.
  static constexpr std::uint64_t prefix_units(Prefix prefix) noexcept {
    return prefix.size();
  }
  /// The paper's density rho = hosts / 2^(32 - len). Kept as the literal
  /// historical division so rankings (and their float bits in TSIM
  /// images) are unchanged by the family refactor.
  static double density(std::uint64_t hosts, Prefix prefix) noexcept {
    return static_cast<double>(hosts) / static_cast<double>(prefix.size());
  }
  static constexpr const char* name() noexcept { return "IPv4"; }
};

/// IPv6 trait: full-width keys, scan-space measured in /64 subnets (the
/// allocation unit real v6 scanning targets; prefixes longer than /64
/// are fractions of one unit and count as one).
struct Ipv6Family {
  static constexpr AddressFamily kFamily = AddressFamily::kIpv6;
  static constexpr int kBits = 128;
  using Address = Ipv6Address;
  using Prefix = Ipv6Prefix;
  using AddressWord = Ipv6Address;

  static constexpr AddressKey key(Address address) noexcept {
    return {address.hi(), address.lo()};
  }
  static constexpr AddressKey word_key(AddressWord word) noexcept {
    return key(word);
  }
  static constexpr Address word_address(AddressWord word) noexcept {
    return word;
  }
  static constexpr AddressKey first_key(Prefix prefix) noexcept {
    return key(prefix.network());
  }
  static constexpr AddressKey last_key(Prefix prefix) noexcept {
    return key(prefix.last());
  }
  static constexpr Prefix make_prefix(AddressKey k, int length) noexcept {
    return Prefix(Ipv6Address(k.hi, k.lo), length);
  }

  /// Scan-space units: /64 subnets. A ::/0 cell covers 2^64 of them,
  /// which does not fit — the count saturates (callers accumulate with
  /// saturating_add, so totals clamp instead of wrapping).
  static constexpr std::uint64_t prefix_units(Prefix prefix) noexcept {
    const int length = prefix.length();
    if (length == 0) return ~std::uint64_t{0};
    return length <= 64 ? std::uint64_t{1} << (64 - length) : 1;
  }
  /// Density per /64 — the v6 analogue of the paper's rho. Exact for
  /// any length via ldexp (2^-61 .. 2^64 are all representable).
  static double density(std::uint64_t hosts, Prefix prefix) noexcept {
    return std::ldexp(static_cast<double>(hosts), prefix.length() - 64);
  }
  static constexpr const char* name() noexcept { return "IPv6"; }
};

/// A family-tagged prefix for boundaries that accept either family from
/// one textual grammar (blocklist lines, mixed routing-table dumps).
/// Carries the network as a left-aligned AddressKey plus the family tag;
/// convert with v4()/v6() before entering the typed pipeline.
class GenericPrefix {
 public:
  constexpr GenericPrefix() noexcept = default;

  static constexpr GenericPrefix from(net::Prefix prefix) noexcept {
    return GenericPrefix(AddressFamily::kIpv4,
                         Ipv4Family::key(prefix.network()),
                         prefix.length());
  }
  static constexpr GenericPrefix from(Ipv6Prefix prefix) noexcept {
    return GenericPrefix(AddressFamily::kIpv6,
                         Ipv6Family::key(prefix.network()),
                         prefix.length());
  }

  /// Parses either family's CIDR text; the family is detected from the
  /// address grammar (':' => IPv6). A bare address parses as a full-
  /// length prefix (/32 or /128).
  static std::optional<GenericPrefix> parse(std::string_view text) noexcept;
  static GenericPrefix parse_or_throw(std::string_view text);

  constexpr AddressFamily family() const noexcept { return family_; }
  constexpr AddressKey network_key() const noexcept { return network_; }
  constexpr int length() const noexcept { return length_; }

  /// The typed prefix, if this is the matching family.
  constexpr std::optional<net::Prefix> v4() const noexcept {
    if (family_ != AddressFamily::kIpv4) return std::nullopt;
    return Ipv4Family::make_prefix(network_, length_);
  }
  constexpr std::optional<Ipv6Prefix> v6() const noexcept {
    if (family_ != AddressFamily::kIpv6) return std::nullopt;
    return Ipv6Family::make_prefix(network_, length_);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const GenericPrefix&,
                                    const GenericPrefix&) noexcept = default;

 private:
  constexpr GenericPrefix(AddressFamily family, AddressKey network,
                          int length) noexcept
      : family_(family),
        network_(network),
        length_(static_cast<std::uint8_t>(length)) {}

  AddressFamily family_ = AddressFamily::kIpv4;
  AddressKey network_{};
  std::uint8_t length_ = 0;
};

}  // namespace tass::net
