#include "net/interval.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tass::net {

namespace {

// True if a ends immediately before b starts or they overlap, i.e. the two
// can be coalesced into one interval.
bool mergeable(const Interval& a, const Interval& b) noexcept {
  if (a.last.value() == ~0u) return true;  // a reaches the end of space
  return a.last.value() + 1 >= b.first.value();
}

}  // namespace

IntervalSet::IntervalSet(std::span<const Interval> intervals) {
  std::vector<Interval> sorted(intervals.begin(), intervals.end());
  std::sort(sorted.begin(), sorted.end());
  for (const Interval& interval : sorted) {
    TASS_EXPECTS(interval.first <= interval.last);
    if (!intervals_.empty() && mergeable(intervals_.back(), interval)) {
      intervals_.back().last = std::max(intervals_.back().last, interval.last);
    } else {
      intervals_.push_back(interval);
    }
  }
}

IntervalSet IntervalSet::of_prefixes(std::span<const Prefix> prefixes) {
  std::vector<Interval> intervals;
  intervals.reserve(prefixes.size());
  for (const Prefix prefix : prefixes) {
    intervals.push_back(Interval::of(prefix));
  }
  return IntervalSet(intervals);
}

IntervalSet IntervalSet::full_space() {
  IntervalSet set;
  set.intervals_.push_back(Interval::full_space());
  return set;
}

void IntervalSet::insert(Interval interval) {
  TASS_EXPECTS(interval.first <= interval.last);
  // Find the insertion window: all intervals overlapping or adjacent to
  // `interval` get merged into it.
  auto begin = std::lower_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const Interval& a, const Interval& b) { return a.first < b.first; });
  // Step back if the previous interval touches the new one.
  if (begin != intervals_.begin() && mergeable(*(begin - 1), interval)) {
    --begin;
  }
  auto end = begin;
  while (end != intervals_.end() && mergeable(interval, *end)) {
    interval.first = std::min(interval.first, end->first);
    interval.last = std::max(interval.last, end->last);
    ++end;
  }
  const auto pos = intervals_.erase(begin, end);
  intervals_.insert(pos, interval);
}

void IntervalSet::remove(Interval interval) {
  TASS_EXPECTS(interval.first <= interval.last);
  std::vector<Interval> result;
  result.reserve(intervals_.size() + 1);
  for (const Interval& existing : intervals_) {
    if (existing.last < interval.first || interval.last < existing.first) {
      result.push_back(existing);
      continue;
    }
    if (existing.first < interval.first) {
      result.push_back(
          {existing.first, Ipv4Address(interval.first.value() - 1)});
    }
    if (interval.last < existing.last) {
      result.push_back(
          {Ipv4Address(interval.last.value() + 1), existing.last});
    }
  }
  intervals_ = std::move(result);
}

bool IntervalSet::contains(Ipv4Address addr) const noexcept {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), addr,
      [](Ipv4Address a, const Interval& b) { return a < b.first; });
  return it != intervals_.begin() && (it - 1)->contains(addr);
}

bool IntervalSet::contains_all(Interval interval) const noexcept {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval.first,
      [](Ipv4Address a, const Interval& b) { return a < b.first; });
  return it != intervals_.begin() && (it - 1)->contains(interval.first) &&
         (it - 1)->contains(interval.last);
}

std::uint64_t IntervalSet::address_count() const noexcept {
  std::uint64_t total = 0;
  for (const Interval& interval : intervals_) total += interval.size();
  return total;
}

IntervalSet IntervalSet::union_with(const IntervalSet& other) const {
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  merged.insert(merged.end(), intervals_.begin(), intervals_.end());
  merged.insert(merged.end(), other.intervals_.begin(),
                other.intervals_.end());
  return IntervalSet(merged);
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet result;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const Ipv4Address lo = std::max(a->first, b->first);
    const Ipv4Address hi = std::min(a->last, b->last);
    if (lo <= hi) result.intervals_.push_back({lo, hi});
    if (a->last < b->last) {
      ++a;
    } else {
      ++b;
    }
  }
  return result;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  return intersect(other.complement());
}

IntervalSet IntervalSet::complement() const {
  IntervalSet result;
  std::uint64_t next = 0;
  for (const Interval& interval : intervals_) {
    if (interval.first.value() > next) {
      result.intervals_.push_back(
          {Ipv4Address(static_cast<std::uint32_t>(next)),
           Ipv4Address(interval.first.value() - 1)});
    }
    next = static_cast<std::uint64_t>(interval.last.value()) + 1;
  }
  if (next <= 0xffffffffULL) {
    result.intervals_.push_back(
        {Ipv4Address(static_cast<std::uint32_t>(next)), Ipv4Address(~0u)});
  }
  return result;
}

AddressIndexer::AddressIndexer(const IntervalSet& set)
    : intervals_(set.intervals().begin(), set.intervals().end()) {
  cumulative_.reserve(intervals_.size());
  std::uint64_t running = 0;
  for (const Interval& interval : intervals_) {
    running += interval.size();
    cumulative_.push_back(running);
  }
}

Ipv4Address AddressIndexer::at(std::uint64_t index) const {
  TASS_EXPECTS(index < size());
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), index);
  const auto slot = static_cast<std::size_t>(it - cumulative_.begin());
  const std::uint64_t before = slot == 0 ? 0 : cumulative_[slot - 1];
  return Ipv4Address(intervals_[slot].first.value() +
                     static_cast<std::uint32_t>(index - before));
}

std::vector<Prefix> IntervalSet::to_prefixes() const {
  std::vector<Prefix> prefixes;
  for (const Interval& interval : intervals_) {
    const auto cover = cover_range(interval.first, interval.last);
    prefixes.insert(prefixes.end(), cover.begin(), cover.end());
  }
  return prefixes;
}

}  // namespace tass::net
