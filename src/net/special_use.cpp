#include "net/special_use.hpp"

#include <array>

namespace tass::net {

namespace {

constexpr Prefix p(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d, int len) {
  return Prefix(Ipv4Address::from_octets(a, b, c, d), len);
}

// RFC 6890 table plus 240/4 and multicast; "globally_reachable" follows the
// IANA special-use registry.
constexpr std::array<SpecialUseRange, 15> kRegistry{{
    {p(0, 0, 0, 0, 8), "This-Host", "RFC1122", false},
    {p(10, 0, 0, 0, 8), "Private-Use", "RFC1918", false},
    {p(100, 64, 0, 0, 10), "Shared-Address-Space", "RFC6598", false},
    {p(127, 0, 0, 0, 8), "Loopback", "RFC1122", false},
    {p(169, 254, 0, 0, 16), "Link-Local", "RFC3927", false},
    {p(172, 16, 0, 0, 12), "Private-Use", "RFC1918", false},
    {p(192, 0, 0, 0, 24), "IETF-Protocol-Assignments", "RFC6890", false},
    {p(192, 0, 2, 0, 24), "Documentation-TEST-NET-1", "RFC5737", false},
    {p(192, 88, 99, 0, 24), "6to4-Relay-Anycast", "RFC3068", true},
    {p(192, 168, 0, 0, 16), "Private-Use", "RFC1918", false},
    {p(198, 18, 0, 0, 15), "Benchmarking", "RFC2544", false},
    {p(198, 51, 100, 0, 24), "Documentation-TEST-NET-2", "RFC5737", false},
    {p(203, 0, 113, 0, 24), "Documentation-TEST-NET-3", "RFC5737", false},
    {p(224, 0, 0, 0, 4), "Multicast", "RFC5771", false},
    {p(240, 0, 0, 0, 4), "Reserved-Future-Use", "RFC1112", false},
}};

}  // namespace

std::span<const SpecialUseRange> special_use_ranges() noexcept {
  return kRegistry;
}

const trie::LpmIndex& special_use_index() {
  static const trie::LpmIndex index = [] {
    std::vector<trie::LpmIndex::Entry> table;
    table.reserve(kRegistry.size());
    for (std::uint32_t i = 0; i < kRegistry.size(); ++i) {
      table.push_back({kRegistry[i].prefix, i});
    }
    return trie::LpmIndex(table);
  }();
  return index;
}

const SpecialUseRange* classify(Ipv4Address addr) {
  const std::uint32_t entry = special_use_index().lookup(addr);
  if (entry == trie::LpmIndex::kNoMatch) return nullptr;
  return &kRegistry[entry];
}

bool is_reserved(Ipv4Address addr) {
  const SpecialUseRange* range = classify(addr);
  return range != nullptr && !range->globally_reachable;
}

const IntervalSet& reserved_space() {
  static const IntervalSet set = [] {
    IntervalSet reserved;
    for (const SpecialUseRange& entry : kRegistry) {
      if (!entry.globally_reachable) reserved.insert(entry.prefix);
    }
    return reserved;
  }();
  return set;
}

const IntervalSet& scannable_space() {
  static const IntervalSet set = IntervalSet::full_space().subtract(
      reserved_space());
  return set;
}

}  // namespace tass::net
