// PrefixSet: a set of CIDR prefixes with containment queries, built on
// PrefixTrie<monostate>. Also provides a deliberately naive linear-scan
// implementation used as the oracle in property-based tests.
#pragma once

#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "trie/prefix_trie.hpp"

namespace tass::trie {

class PrefixSet {
 public:
  PrefixSet() = default;
  explicit PrefixSet(std::span<const net::Prefix> prefixes);

  bool insert(net::Prefix prefix);
  bool erase(net::Prefix prefix) noexcept;
  bool contains(net::Prefix prefix) const noexcept;

  /// Longest stored prefix covering the address, if any.
  std::optional<net::Prefix> longest_match(net::Ipv4Address addr) const;
  /// Shortest (least specific) stored prefix covering the address, if any.
  std::optional<net::Prefix> shortest_match(net::Ipv4Address addr) const;
  /// True if some stored prefix covers the address.
  bool covers(net::Ipv4Address addr) const;
  /// True if some stored prefix strictly contains `prefix`.
  bool has_strict_ancestor(net::Prefix prefix) const noexcept;

  /// Stored prefixes contained within `scope` (incl. exact), ascending.
  std::vector<net::Prefix> within(net::Prefix scope) const;

  /// All stored prefixes, ascending (network, length).
  std::vector<net::Prefix> to_vector() const;

  std::size_t size() const noexcept { return trie_.size(); }
  bool empty() const noexcept { return trie_.empty(); }
  void clear() { trie_.clear(); }

 private:
  PrefixTrie<std::monostate> trie_;
};

/// Reference implementation with identical semantics, O(n) per query.
/// Exists solely so property tests can cross-check PrefixSet/PrefixTrie.
class LinearPrefixSet {
 public:
  void insert(net::Prefix prefix);
  bool erase(net::Prefix prefix) noexcept;
  bool contains(net::Prefix prefix) const noexcept;
  std::optional<net::Prefix> longest_match(net::Ipv4Address addr) const;
  std::optional<net::Prefix> shortest_match(net::Ipv4Address addr) const;
  bool has_strict_ancestor(net::Prefix prefix) const noexcept;
  std::vector<net::Prefix> within(net::Prefix scope) const;
  std::size_t size() const noexcept { return prefixes_.size(); }

 private:
  std::vector<net::Prefix> prefixes_;  // sorted, unique
};

}  // namespace tass::trie
