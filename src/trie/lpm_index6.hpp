// LpmIndex6: the IPv6 instantiation of the width-parameterized LPM
// substrate (see lpm_index.hpp for the engine documentation).
//
// Same flat, cache-hot layout as the IPv4 index: a direct-indexed root
// over the top 16 bits, then stride-6 bitmap nodes; the stride schedule
// (16 + 6*8 = 64) lands exactly on the hi/lo boundary of the 128-bit
// key, so no slot extraction straddles the halves and routing-relevant
// prefixes (<= /64) resolve within nine levels. Longer prefixes (down
// to /128 hitlist entries) simply add levels — the structure, patching,
// and borrowed-storage (TSIM) behaviour are the shared template.
#pragma once

#include "net/family.hpp"
#include "trie/lpm_index.hpp"

namespace tass::trie {

using LpmIndex6 = BasicLpmIndex<net::Ipv6Family>;

extern template class BasicLpmIndex<net::Ipv6Family>;

}  // namespace tass::trie
