// The AVX2 batched-lookup kernel for the IPv4 LPM index.
//
// This is the only trie/ translation unit compiled with -mavx2 (see the
// source-file property in CMakeLists.txt); everything it exports is a
// plain function pointer, so the baseline-ISA dispatch code in
// lpm_index.cpp can hold and compare it without ever executing an AVX2
// instruction on a CPU that lacks the feature. When the toolchain or
// target cannot build AVX2 at all, the #else branch exports nullptr and
// the kAvx2 kernel table degrades to scalar.
//
// Shape of the kernel: level-synchronous blocks of 64 lookups. A
// RIB-sized index is tens of MiB, so a random lookup stream is bound by
// DRAM latency, not instructions — the scalar walk already overlaps a
// few misses through out-of-order execution across loop iterations, and
// a straight 8-wide gather descent LOSES to it because each level's
// masked gathers depend on the previous level's. This kernel instead
// walks a whole block breadth-first: the root words for all 64 lookups
// issue as eight 8-wide dword gathers, then each of the three descent
// levels runs across all sixteen 4-lane groups before any group moves
// deeper, and every group prefetches its next node the moment the
// child index is known. By the time level N+1's gathers execute, the
// other fifteen groups' level-N work has covered the miss latency — up
// to 64 independent node misses are in flight instead of the ~3 the
// scalar walk reaches.
//
// The per-level math is the scalar fast path's stride-6/6/4 schedule in
// 64-bit lanes (the node bitmaps are 64-bit): masked qword gathers pull
// child_bits/bases (and leaf_bits only when a lane actually retires),
// variable shifts test the slot bit, and a nibble-LUT popcount computes
// the same ranks as the scalar walk. Lanes retire independently — a
// lane whose slot has no child blends its leaf value into the result
// vector and drops out of the active mask, exactly mirroring the early
// exits of the scalar 6/6/4 walk. Bit-identical to
// BasicLpmIndex::lookup by construction (same loads, same ranks); the
// differential suite and the in-bench verification enforce it.
#include "trie/lpm_index.hpp"
#include "trie/lpm_kernels.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace tass::trie {

namespace {

using Index4 = BasicLpmIndex<net::Ipv4Family>;
using Node = Index4::Node;

// The gathers address node fields by byte offset, so the kernel is
// wedded to this exact layout; refuse to compile against any other.
static_assert(sizeof(Node) == 24);
static_assert(offsetof(Node, child_bits) == 0);
static_assert(offsetof(Node, leaf_bits) == 8);
static_assert(offsetof(Node, child_base) == 16);
static_assert(offsetof(Node, leaf_base) == 20);

// Per-64-bit-lane popcount (no AVX2 popcount instruction exists):
// nibble LUT via PSHUFB, then a horizontal byte sum via PSADBW.
inline __m256i popcount64x4(__m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

// Compacts a 4x64-bit all-ones/zero lane mask into the 4x32-bit mask
// shape the dword instructions want (also used to narrow results).
inline __m128i pack64to32(__m256i v) noexcept {
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
}

// Walk state for one 4-lane group (four lookups widened to 64-bit
// lanes). Sixteen of these make the 64-lookup block; the arrays live on
// the stack and stay L1-resident between levels.
struct LaneGroup {
  __m256i addr;
  __m256i active;
  __m256i result;
  __m256i node_idx;
  // Deferred leaf resolution: lanes that retire through a node leaf
  // record the leaf index (and prefetch it) instead of gathering the
  // value inline; resolve_leaves() pays the single masked gather per
  // group after every level has run, when the prefetches have landed.
  __m256i leaf_idx;
  __m256i need_leaf;
  // The lanes' CURRENT node indices in scalar form — extracted once per
  // level (for the prefetches) and reused by the next level's loads.
  alignas(32) std::uint64_t idx[4];
};

// Extracts the lanes' node indices into group.idx and hints the nodes
// into cache. Both call sites mask retired lanes to node 0 first: the
// NEXT level's 16-byte loads are unmasked, so every extracted index
// must be a real in-bounds node index, and a root-leaf lane's node_idx
// holds leaf-value bits, not an index.
inline void extract_and_prefetch(const Node* nodes, __m256i node_idx,
                                 LaneGroup& group) noexcept {
  _mm256_store_si256(reinterpret_cast<__m256i*>(group.idx), node_idx);
  for (int lane = 0; lane < 4; ++lane) {
    // 24-byte nodes straddle a cache line a third of the time; hint
    // both ends so no lane's loads eat an unprefetched-line miss.
    const char* node = reinterpret_cast<const char*>(nodes + group.idx[lane]);
    __builtin_prefetch(node);
    __builtin_prefetch(node + sizeof(Node) - 1);
  }
}

// Seeds a group from four addresses (zero-extended into 64-bit lanes)
// and their root words. Lanes whose root word is a leaf (possibly
// kNoMatch) are final immediately; the rest carry a node index in the
// low 31 bits, which is prefetched right away so the level-0 gathers
// later in the block find it resident.
inline LaneGroup seed_group(const Node* nodes, __m256i addr,
                            __m256i word) noexcept {
  const __m256i node_flag =
      _mm256_set1_epi64x(static_cast<long long>(Index4::kNodeFlag));
  LaneGroup group;
  group.addr = addr;
  group.active =
      _mm256_cmpeq_epi64(_mm256_and_si256(word, node_flag), node_flag);
  group.result = word;
  group.node_idx = _mm256_and_si256(
      word, _mm256_set1_epi64x(static_cast<long long>(~Index4::kNodeFlag)));
  group.leaf_idx = _mm256_setzero_si256();
  group.need_leaf = _mm256_setzero_si256();
  if (!_mm256_testz_si256(group.active, group.active)) {
    // Root-leaf lanes carry leaf-value garbage in node_idx; clamp them
    // to node 0 so the next level's unmasked loads stay in bounds.
    extract_and_prefetch(
        nodes, _mm256_and_si256(group.node_idx, group.active), group);
  }
  return group;
}

// One descent level for one group: the scalar fast path's 6/6/4
// schedule with per-level immediate shifts. Descending lanes prefetch
// their child node before returning, so the next level's gathers (which
// run only after every other group has taken this level) hit cache.
template <int Level>
inline void step(const Node* nodes, const std::uint32_t* leaves,
                 LaneGroup& group) noexcept {
  static_assert(Level >= 0 && Level < 3);
  if (_mm256_testz_si256(group.active, group.active)) return;
  const __m256i one64 = _mm256_set1_epi64x(1);
  // Per-lane loads + transpose instead of masked gathers: the previous
  // level prefetched these nodes (and extracted their indices into
  // group.idx), so four 16-byte loads hit L1 and the shuffle ports
  // assemble the vectors faster than vpgatherqq decodes. Inactive
  // lanes re-read their last node; the garbage never escapes the
  // blends below.
  const std::uint64_t* const idx = group.idx;
  const __m128i n0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + idx[0]));
  const __m128i n1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + idx[1]));
  const __m128i n2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + idx[2]));
  const __m128i n3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + idx[3]));
  const __m256i child_bits = _mm256_set_m128i(_mm_unpacklo_epi64(n2, n3),
                                              _mm_unpacklo_epi64(n0, n1));
  const __m256i leaf_bits_all = _mm256_set_m128i(_mm_unpackhi_epi64(n2, n3),
                                                 _mm_unpackhi_epi64(n0, n1));
  // child_base and leaf_base share a qword: {lo 32: child, hi 32: leaf}.
  // Assembled through registers (vmovq/vpinsrq), NOT a stack array —
  // four narrow stores feeding one wide load would defeat
  // store-forwarding and stall every level.
  std::uint64_t b0, b1, b2, b3;
  std::memcpy(&b0, reinterpret_cast<const char*>(nodes + idx[0]) + 16, 8);
  std::memcpy(&b1, reinterpret_cast<const char*>(nodes + idx[1]) + 16, 8);
  std::memcpy(&b2, reinterpret_cast<const char*>(nodes + idx[2]) + 16, 8);
  std::memcpy(&b3, reinterpret_cast<const char*>(nodes + idx[3]) + 16, 8);
  const __m256i bases = _mm256_set_epi64x(
      static_cast<long long>(b3), static_cast<long long>(b2),
      static_cast<long long>(b1), static_cast<long long>(b0));

  __m256i slot;
  __m256i has_child;
  if constexpr (Level == 0) {
    slot = _mm256_and_si256(_mm256_srli_epi64(group.addr, 10),
                            _mm256_set1_epi64x(63));
  } else if constexpr (Level == 1) {
    slot = _mm256_and_si256(_mm256_srli_epi64(group.addr, 4),
                            _mm256_set1_epi64x(63));
  } else {
    slot = _mm256_and_si256(group.addr, _mm256_set1_epi64x(15));
  }
  if constexpr (Level < 2) {
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi64(child_bits, slot), one64);
    has_child = _mm256_cmpeq_epi64(bit, one64);
  } else {
    has_child = _mm256_setzero_si256();  // last level is always a leaf
  }

  // Retiring lanes: leaves[leaf_base + rank_inclusive(leaf_bits) - 1].
  // (2 << 63) wraps to 0, so slot 63 yields an all-ones inclusive
  // mask — the same wrap the scalar rank_inclusive relies on. Runs
  // BRANCHLESS: whether any lane retires at a given level is
  // data-dependent coin-flip territory, and the mispredicts cost more
  // than the masked-out vector work (empty-mask blends are no-ops).
  const __m256i retire = _mm256_andnot_si256(has_child, group.active);
  // excl_mask = (1 << slot) - 1; incl_mask = (2 << slot) - 1 is one
  // doubling away (the slot-63 wrap to all-ones falls out of the same
  // arithmetic), saving a second variable shift.
  const __m256i excl_mask =
      _mm256_sub_epi64(_mm256_sllv_epi64(one64, slot), one64);
  {
    const __m256i incl_mask = _mm256_add_epi64(
        _mm256_add_epi64(excl_mask, excl_mask), one64);
    const __m256i leaf_rank =
        popcount64x4(_mm256_and_si256(leaf_bits_all, incl_mask));
    const __m256i leaf_idx = _mm256_sub_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(bases, 32), leaf_rank), one64);
    group.leaf_idx = _mm256_blendv_epi8(group.leaf_idx, leaf_idx, retire);
    group.need_leaf = _mm256_or_si256(group.need_leaf, retire);
    // Even level-2 retirees profit from the hint: their values load in
    // resolve_leaves(), a whole block-sweep later.
    alignas(32) std::uint64_t lidx[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lidx),
                       _mm256_and_si256(leaf_idx, retire));
    for (int lane = 0; lane < 4; ++lane) {
      __builtin_prefetch(leaves + lidx[lane]);
    }
  }

  if constexpr (Level < 2) {
    // Descending lanes: nodes[child_base + rank(child_bits, slot)].
    const __m256i child_rank =
        popcount64x4(_mm256_and_si256(child_bits, excl_mask));
    const __m256i child_base =
        _mm256_and_si256(bases, _mm256_set1_epi64x(0xffffffffll));
    group.node_idx = _mm256_blendv_epi8(
        group.node_idx, _mm256_add_epi64(child_base, child_rank), has_child);
    group.active = _mm256_and_si256(group.active, has_child);
    if (!_mm256_testz_si256(group.active, group.active)) {
      // Mask with the active lanes: root-leaf lanes never held a node
      // index (node_idx is leaf-value bits, up to ~kNoMatch), and the
      // next level's loads are unmasked — clamp them to node 0 exactly
      // as seed_group does.
      extract_and_prefetch(
          nodes, _mm256_and_si256(group.node_idx, group.active), group);
    }
  } else {
    group.active = _mm256_setzero_si256();
  }
}

// Pays the deferred leaf-value gather for one group. Run after every
// level so the retire-time prefetches have had the whole block's
// remaining work to land.
inline void resolve_leaves(const std::uint32_t* leaves,
                           LaneGroup& group) noexcept {
  if (_mm256_testz_si256(group.need_leaf, group.need_leaf)) return;
  const __m128i values = _mm256_mask_i64gather_epi32(
      _mm_setzero_si128(), reinterpret_cast<const int*>(leaves),
      group.leaf_idx, pack64to32(group.need_leaf), 4);
  group.result = _mm256_blendv_epi8(
      group.result, _mm256_cvtepu32_epi64(values), group.need_leaf);
}

// Resolves four addresses depth-first (used for the 8..63 tail, where
// there is no block to pipeline against). Shares step<>() with the
// block path, so there is exactly one copy of the descent math.
inline void descend4(const Index4::Raw& raw, __m256i addr, __m256i word,
                     std::uint32_t* out) noexcept {
  const Node* const nodes = raw.nodes.data();
  const std::uint32_t* const leaves = raw.leaves.data();
  LaneGroup group = seed_group(nodes, addr, word);
  step<0>(nodes, leaves, group);
  step<1>(nodes, leaves, group);
  step<2>(nodes, leaves, group);
  resolve_leaves(leaves, group);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), pack64to32(group.result));
}

void avx2_lookup_many_v4(const Index4& index,
                         std::span<const std::uint32_t> addresses,
                         std::span<std::uint32_t> out) {
  const Index4::Raw raw = index.raw();
  const Node* const nodes = raw.nodes.data();
  const std::uint32_t* const leaves = raw.leaves.data();
  const std::uint32_t* const root = raw.root.data();
  const std::size_t n = addresses.size();
  std::size_t i = 0;

  // Main path: 64 lookups per block, breadth-first. kGroups trades
  // memory-level parallelism against stack-state size; 16 groups keep
  // up to 64 node misses in flight while the state (2 KiB) stays L1.
  constexpr std::size_t kGroups = 32;
  constexpr std::size_t kBlock = kGroups * 4;
  for (; i + kBlock <= n; i += kBlock) {
    // Root words for the NEXT block prefetch while this one resolves —
    // the block structure itself is the prefetch distance here (64,
    // comfortably past kLookupPrefetchDistance's measured plateau).
    if (i + 2 * kBlock <= n) {
      for (std::size_t lane = 0; lane < kBlock; ++lane) {
        __builtin_prefetch(&root[addresses[i + kBlock + lane] >> 16]);
      }
    }
    LaneGroup groups[kGroups];
    for (std::size_t g = 0; g < kGroups; g += 2) {
      const __m256i addr8 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(addresses.data() + i + g * 4));
      const __m256i word8 = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(root), _mm256_srli_epi32(addr8, 16),
          4);
      // The descent works in 64-bit lanes (the bitmaps are 64-bit), so
      // each eight-wide root gather splits into two widened 4-lane
      // groups.
      groups[g] = seed_group(
          nodes, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(addr8)),
          _mm256_cvtepu32_epi64(_mm256_castsi256_si128(word8)));
      groups[g + 1] = seed_group(
          nodes, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(addr8, 1)),
          _mm256_cvtepu32_epi64(_mm256_extracti128_si256(word8, 1)));
    }
    for (std::size_t g = 0; g < kGroups; ++g) {
      step<0>(nodes, leaves, groups[g]);
    }
    for (std::size_t g = 0; g < kGroups; ++g) {
      step<1>(nodes, leaves, groups[g]);
    }
    for (std::size_t g = 0; g < kGroups; ++g) {
      step<2>(nodes, leaves, groups[g]);
    }
    for (std::size_t g = 0; g < kGroups; ++g) {
      resolve_leaves(leaves, groups[g]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i + g * 4),
                       pack64to32(groups[g].result));
    }
  }

  // 8..63-lookup tail: the original depth-first 8-wide path, with the
  // scalar kernel's root-stream prefetch at the shared distance.
  for (; i + 8 <= n; i += 8) {
    if (i + kLookupPrefetchDistance + 8 <= n) {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        __builtin_prefetch(
            &root[addresses[i + kLookupPrefetchDistance + lane] >> 16]);
      }
    }
    const __m256i addr8 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(addresses.data() + i));
    const __m256i word8 = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(root), _mm256_srli_epi32(addr8, 16), 4);
    descend4(raw, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(addr8)),
             _mm256_cvtepu32_epi64(_mm256_castsi256_si128(word8)),
             out.data() + i);
    descend4(raw, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(addr8, 1)),
             _mm256_cvtepu32_epi64(_mm256_extracti128_si256(word8, 1)),
             out.data() + i + 4);
  }
  for (; i < n; ++i) {
    out[i] = index.lookup(net::Ipv4Address(addresses[i]));
  }
}

}  // namespace

namespace detail {
const LpmKernelTable<net::Ipv4Family>::LookupManyFn kAvx2LookupMany4 =
    &avx2_lookup_many_v4;
}  // namespace detail

}  // namespace tass::trie

#else  // !(__AVX2__ && __x86_64__)

namespace tass::trie::detail {
const LpmKernelTable<net::Ipv4Family>::LookupManyFn kAvx2LookupMany4 =
    nullptr;
}  // namespace tass::trie::detail

#endif
