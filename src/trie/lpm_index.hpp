// BasicLpmIndex: a flat, cache-friendly longest-prefix-match engine,
// parameterized over the address family (net::Ipv4Family /
// net::Ipv6Family).
//
// This is the unified match substrate behind every per-address decision a
// scan cycle makes: prefix/AS attribution (bgp::PrefixPartition), blocklist
// checks (scan::Blocklist), special-use classification (net::special_use)
// and scope membership (scan::ScanScope). The bitwise PrefixTrie stays
// around as the mutable build/enumeration structure and as the reference
// implementation for the differential tests; BasicLpmIndex is the
// immutable read-optimised form built once from a prefix -> value table.
//
// Layout (Poptrie-flavoured, generic over the key width):
//   * a direct-indexed root array over the top 16 address bits — one load
//     resolves any address whose longest match is /16 or shorter;
//   * below the root, path-compressed nodes of stride 6 (with a final
//     shorter stride absorbing the remainder: 6/6/4 for IPv4's 16
//     post-root bits, eighteen 6s and a 4 for IPv6's 112). Starting from
//     depth 16 in steps of 6 lands exactly on bit 64, so no IPv6 slot
//     extraction ever straddles the hi/lo halves of the 128-bit
//     net::AddressKey. Each node holds two 64-bit bitmaps: `child_bits`
//     marks slots that continue into a deeper node, `leaf_bits` marks the
//     starts of runs of equal leaf values. Children and leaf runs are
//     stored in contiguous arrays addressed by popcount rank, so a lookup
//     is a handful of dependent loads and never backtracks.
//   * values are leaf-pushed during construction: every slot already knows
//     the best (longest) match covering it, which is what makes the
//     no-backtracking lookup correct.
//
// The batched lookup_many() is the API the sharded scan pipeline uses: a
// shard hands over its whole address block (Family::AddressWord elements:
// raw uint32 for v4, Ipv6Address for v6) so the index amortises across
// the batch instead of being re-entered through per-address virtual calls.
//
// Incremental updates: update() patches the read structures in place by
// rebuilding only the root blocks (/16 sub-spaces) a change touches. The
// index retains its entry table for this, and a cost model falls back to
// a full rebuild when the churn is large enough that patching would not
// pay (see update() below). Lookups observe either the old or the new
// state per address; update() itself must be externally synchronised —
// see the thread-safety contract on update().
//
// Storage: the read structures are flat arrays addressed through spans,
// so an index can either own them (the build/update paths above) or
// borrow them from caller-owned memory — the zero-copy path the TSIM
// state image (state/image.hpp) uses to serve a mmap'ed file without
// parsing or rebuilding. A borrowed index answers lookups through the
// unchanged API but cannot be update()d.
//
// All existing IPv4 call sites keep compiling unchanged: trie::LpmIndex
// is an alias of the IPv4 instantiation and its nested types (Entry,
// Node, Raw, UpdateStats) resolve through it; trie::LpmIndex6 (see
// lpm_index6.hpp) is the IPv6 twin on the same code.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/family.hpp"
#include "net/prefix.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"

namespace tass::trie {

template <class Family>
class BasicLpmIndex {
 public:
  using Address = typename Family::Address;
  using Prefix = typename Family::Prefix;
  using AddressWord = typename Family::AddressWord;

  /// Returned by lookup() when no stored prefix covers the address. Stored
  /// values must be < kNoMatch.
  static constexpr std::uint32_t kNoMatch = 0x7fffffffu;

  /// One row of the prefix -> value table the index is built from.
  struct Entry {
    Prefix prefix;
    std::uint32_t value = 0;
  };

  /// One read-structure node below the root. Public only so the state
  /// image can serialise the arrays verbatim; the layout is an
  /// implementation detail of this class, not a stable API. The node
  /// shape is family-independent (strides never exceed 64 slots).
  struct Node {
    std::uint64_t child_bits = 0;  // slot continues into nodes[child_base+r]
    std::uint64_t leaf_bits = 0;   // slot starts a new run of equal leaves
    std::uint32_t child_base = 0;
    std::uint32_t leaf_base = 0;
  };

  /// The flat read arrays (plus the entry table), as spans. raw() exposes
  /// them for serialisation; from_raw() builds a borrowed index over them.
  struct Raw {
    std::span<const std::uint32_t> root;  // 65536 words, or empty
    std::span<const Node> nodes;
    std::span<const std::uint32_t> leaves;
    std::span<const Entry> entries;  // ascending by prefix, deduplicated
  };

  /// An empty index: lookup() returns kNoMatch for every address.
  BasicLpmIndex() = default;

  /// Builds from a prefix -> value table. Nested and duplicate prefixes are
  /// fine; lookups return the value of the longest covering prefix, and for
  /// duplicate prefixes the last entry wins (matching PrefixTrie::insert
  /// overwrite semantics). Throws tass::Error if a value is >= kNoMatch.
  explicit BasicLpmIndex(std::span<const Entry> table);

  /// Membership-only index: every prefix maps to `value`.
  static BasicLpmIndex from_prefixes(std::span<const Prefix> prefixes,
                                     std::uint32_t value = 0);

  /// Borrowed-storage index: lookups read the caller's arrays in place (no
  /// copy, no rebuild). The storage must stay valid and unmodified for the
  /// index's lifetime, and the arrays must satisfy the structural
  /// invariants of a built index — from_raw trusts its input; the state
  /// image loader validates before calling. A borrowed index rejects
  /// update() (it cannot own mutations); everything else behaves
  /// identically to an owned index over the same arrays.
  static BasicLpmIndex from_raw(const Raw& raw);

  /// The read arrays of this index (borrowed or owned). Spans are
  /// invalidated by update() and by destruction/assignment.
  Raw raw() const noexcept {
    return {root_view_, nodes_view_, leaves_view_, entries_view_};
  }

  /// True if this index borrows caller-owned storage (built by from_raw).
  bool borrowed() const noexcept { return borrowed_; }

  // Spans into own storage must be re-anchored on copy (and cleared on
  // move-from), so the special members are user-defined.
  BasicLpmIndex(const BasicLpmIndex& other);
  BasicLpmIndex& operator=(const BasicLpmIndex& other);
  BasicLpmIndex(BasicLpmIndex&& other) noexcept;
  BasicLpmIndex& operator=(BasicLpmIndex&& other) noexcept;
  ~BasicLpmIndex() = default;

  /// Bookkeeping returned by update() (benchmarks and tests use it to see
  /// which path ran; callers needing only correctness can ignore it).
  struct UpdateStats {
    std::size_t upserts = 0;          // net entry inserts + value changes
    std::size_t erases = 0;           // net entry removals
    std::size_t dirty_blocks = 0;     // /16 root blocks invalidated
    std::size_t touched_entries = 0;  // entries living in dirty blocks
    bool rebuilt = false;             // cost model chose a full rebuild
    bool compacted = false;           // patched, then compacted garbage
  };

  /// Incrementally applies a change batch: `upserts` insert new prefixes or
  /// overwrite the value of existing ones, `erases` remove prefixes.
  ///
  /// Equivalence contract: after update() returns, lookup()/lookup_many()
  /// are bit-identical to a fresh index built from the post-change entry
  /// table (entries()) — the differential suite enforces this. Only the
  /// root blocks covered by a changed prefix are rebuilt; past a churn
  /// threshold (~1/4 of the root blocks or ~1/4 of the entries touched)
  /// patching would not beat rebuilding, so the whole index is rebuilt
  /// instead. Patching appends replacement subtrees and abandons the old
  /// ones; the accumulated garbage is compacted by an automatic full
  /// rebuild once the arrays exceed twice their last-rebuilt size.
  ///
  /// Input validation happens before any mutation (strong guarantee):
  /// throws tass::Error if a value is >= kNoMatch, if a prefix is
  /// both upserted and erased, if an erased prefix is not in the index, or
  /// if this index is a borrowed view (from_raw) and so cannot mutate.
  /// Duplicate upserts of one prefix keep the last value; duplicate erases
  /// of one prefix are idempotent.
  ///
  /// Thread safety: lookups are const-thread-safe with each other, but
  /// update() mutates the read structures — it must not run concurrently
  /// with lookups or with another update(). The sharded scan pipeline
  /// applies deltas between cycles, never inside one.
  UpdateStats update(std::span<const Entry> upserts,
                     std::span<const Prefix> erases);

  /// The current entry table, ascending by prefix, duplicates resolved
  /// (this is what a fresh rebuild would be built from).
  std::span<const Entry> entries() const noexcept { return entries_view_; }

  /// Value of the longest stored prefix covering `addr`, or kNoMatch.
  std::uint32_t lookup(Address addr) const noexcept {
    if (root_view_.empty()) return kNoMatch;
    if constexpr (Family::kBits == 32) {
      // IPv4 fast path: the historical fully-unrolled 6/6/4 walk on the
      // raw uint32 (identical codegen to the pre-generic engine).
      const std::uint32_t a = addr.value();
      const std::uint32_t word = root_view_[a >> 16];
      if ((word & kNodeFlag) == 0) return word;  // leaf (possibly kNoMatch)
      const Node* node = &nodes_view_[word & ~kNodeFlag];
      std::uint32_t slot = (a >> 10) & 63u;  // bits 15..10
      if ((node->child_bits >> slot) & 1u) {
        node = &nodes_view_[node->child_base + rank(node->child_bits, slot)];
        slot = (a >> 4) & 63u;  // bits 9..4
        if ((node->child_bits >> slot) & 1u) {
          node =
              &nodes_view_[node->child_base + rank(node->child_bits, slot)];
          slot = a & 15u;  // bits 3..0; the last level is always a leaf
        }
      }
      return leaves_view_[node->leaf_base +
                          rank_inclusive(node->leaf_bits, slot) - 1];
    } else {
      return lookup_key(Family::key(addr));
    }
  }

  /// As lookup(), over the family's left-aligned AddressKey. The generic
  /// stride walk; at the deepest level (depth + stride == kBits) the
  /// child bitmap is never consulted — the last level is always a leaf,
  /// exactly as in the IPv4 fast path.
  std::uint32_t lookup_key(net::AddressKey key) const noexcept {
    if (root_view_.empty()) return kNoMatch;
    const std::uint32_t word = root_view_[key.top16()];
    if ((word & kNodeFlag) == 0) return word;  // leaf (possibly kNoMatch)
    const Node* node = &nodes_view_[word & ~kNodeFlag];
    int depth = kRootBits;
    for (;;) {
      const int stride = stride_at(depth);
      const std::uint32_t slot = key.slot(depth, stride);
      if (depth + stride < Family::kBits &&
          ((node->child_bits >> slot) & 1u)) {
        node = &nodes_view_[node->child_base + rank(node->child_bits, slot)];
        depth += stride;
        continue;
      }
      return leaves_view_[node->leaf_base +
                          rank_inclusive(node->leaf_bits, slot) - 1];
    }
  }

  /// True if some stored prefix covers the address.
  bool covers(Address addr) const noexcept { return lookup(addr) != kNoMatch; }

  /// Batched lookup: out[i] = lookup(addresses[i]). The span forms are what
  /// the sharded scan engine and attribution call once per shard. The
  /// kernel that runs is selected once per process by util::cpu (AVX2
  /// gather kernel / pipelined walk / scalar reference — see
  /// lpm_kernels.hpp); all kernels are bit-identical.
  /// Precondition: out.size() >= addresses.size().
  void lookup_many(std::span<const AddressWord> addresses,
                   std::span<std::uint32_t> out) const noexcept;
  std::vector<std::uint32_t> lookup_many(
      std::span<const AddressWord> addresses) const;

  /// As above with an explicit kernel level — the differential tests and
  /// micro-benches pin both tables regardless of what the host supports
  /// (kAvx2 on a non-AVX2 machine degrades to the scalar kernel).
  void lookup_many(std::span<const AddressWord> addresses,
                   std::span<std::uint32_t> out,
                   util::cpu::SimdLevel level) const noexcept;

  /// Number of distinct prefixes the index was built from.
  std::size_t prefix_count() const noexcept { return prefix_count_; }
  bool empty() const noexcept { return prefix_count_ == 0; }

  /// Introspection for benchmarks and memory accounting. memory_bytes()
  /// covers the read structures only; the retained entry table that makes
  /// update() possible is reported separately by table_memory_bytes().
  std::size_t node_count() const noexcept { return nodes_view_.size(); }
  std::size_t leaf_count() const noexcept { return leaves_view_.size(); }
  std::size_t memory_bytes() const noexcept {
    return root_view_.size() * sizeof(std::uint32_t) +
           nodes_view_.size() * sizeof(Node) +
           leaves_view_.size() * sizeof(std::uint32_t);
  }
  std::size_t table_memory_bytes() const noexcept {
    return entries_view_.size() * sizeof(Entry);
  }

  // Root words: high bit set -> index into nodes; clear -> leaf value.
  // Public alongside Node/Raw for the state-image validator.
  static constexpr std::uint32_t kNodeFlag = 0x80000000u;

  // Root stride width and the per-depth node stride schedule (6-wide,
  // with the remainder absorbed by the final level). Public for the
  // state-image validator's reachability walk.
  static constexpr int kRootBits = 16;
  static constexpr int stride_at(int depth) noexcept {
    return Family::kBits - depth < 6 ? Family::kBits - depth : 6;
  }
  /// Number of node levels below the root (3 for IPv4, 19 for IPv6).
  static constexpr int kNodeLevels =
      (Family::kBits - kRootBits + 5) / 6;

  // The popcount ranks the walks are built on. Public alongside
  // Node/Raw so the out-of-line lookup kernels (lpm_kernels.hpp)
  // compute exactly the same ranks as the member walks.
  // Children (or leaf runs) strictly below `slot`.
  static std::uint32_t rank(std::uint64_t bits, std::uint32_t slot) noexcept {
    return static_cast<std::uint32_t>(
        std::popcount(bits & ((1ull << slot) - 1)));
  }
  // Leaf runs at or below `slot`; (2 << 63) wraps to 0 so slot 63 counts all.
  static std::uint32_t rank_inclusive(std::uint64_t bits,
                                      std::uint32_t slot) noexcept {
    return static_cast<std::uint32_t>(
        std::popcount(bits & ((2ull << slot) - 1)));
  }

 private:
  // Ordering by prefix only (the Entry value rides along).
  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    return a.prefix < b.prefix;
  }

  struct BuildNode;
  static std::vector<BuildNode> build_trie(std::span<const Entry> entries);
  static void trie_insert(std::vector<BuildNode>& bt, const Entry& entry);
  void populate(std::uint32_t index, const std::vector<BuildNode>& bt,
                std::int32_t node, int depth, std::uint32_t inherited);
  void fill_root(const std::vector<BuildNode>& bt, std::int32_t node,
                 int depth, std::uint32_t path, std::uint32_t inherited);
  void rebuild_all();
  void patch_block(std::uint32_t block, const std::vector<BuildNode>& bt);
  // Re-anchors the read-side spans on the owned vectors (no-op for a
  // borrowed index, whose spans point at caller storage).
  void sync_views() noexcept;

  std::vector<Entry> entries_;       // ascending by prefix, deduplicated
  std::vector<std::uint32_t> root_;  // 65536 words once built
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> leaves_;
  // What lookup() actually reads: the owned vectors above (synced after
  // every mutation) or borrowed caller storage (from_raw).
  std::span<const std::uint32_t> root_view_;
  std::span<const Node> nodes_view_;
  std::span<const std::uint32_t> leaves_view_;
  std::span<const Entry> entries_view_;
  bool borrowed_ = false;
  std::size_t prefix_count_ = 0;
  // Garbage-compaction thresholds, re-armed by every full rebuild: a patch
  // abandons its replaced subtrees, so the arrays only grow until a
  // rebuild reclaims them.
  std::size_t node_limit_ = 0;
  std::size_t leaf_limit_ = 0;
};

/// The IPv4 instantiation — the unified substrate every existing v4 call
/// site (partition, blocklist, special-use, scope, state image) rides on.
using LpmIndex = BasicLpmIndex<net::Ipv4Family>;

extern template class BasicLpmIndex<net::Ipv4Family>;

}  // namespace tass::trie
