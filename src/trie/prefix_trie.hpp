// Binary (uncompressed) prefix trie keyed by CIDR prefix.
//
// The trie is the routing-table index used everywhere an address or prefix
// must be mapped to covering prefixes: longest-prefix match for scan-result
// attribution, containment queries for l/m classification, and subtree
// enumeration for deaggregation.
//
// Nodes live in a contiguous pool addressed by 32-bit indices; erase marks
// values dead and prunes value-free leaf chains. Depth is bounded by 33, so
// every operation is O(32) plus output size.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.hpp"
#include "util/error.hpp"

namespace tass::trie {

template <typename T>
class PrefixTrie {
 public:
  using value_type = std::pair<net::Prefix, T>;

  PrefixTrie() { nodes_.emplace_back(); }

  /// Number of stored (prefix, value) entries.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    nodes_.clear();
    nodes_.emplace_back();
    size_ = 0;
  }

  /// Inserts or overwrites. Returns true if the prefix was newly inserted.
  bool insert(net::Prefix prefix, T value) {
    const std::uint32_t node = descend_or_create(prefix);
    const bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Exact-match lookup.
  const T* find(net::Prefix prefix) const noexcept {
    const std::uint32_t node = descend(prefix);
    if (node == kNil || !nodes_[node].value.has_value()) return nullptr;
    return &*nodes_[node].value;
  }
  T* find(net::Prefix prefix) noexcept {
    return const_cast<T*>(std::as_const(*this).find(prefix));
  }

  bool contains(net::Prefix prefix) const noexcept {
    return find(prefix) != nullptr;
  }

  /// Longest-prefix match for an address.
  std::optional<value_type> longest_match(net::Ipv4Address addr) const {
    std::optional<value_type> best;
    std::uint32_t node = kRoot;
    for (int depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value.has_value()) {
        best.emplace(net::Prefix(addr, depth), *nodes_[node].value);
      }
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = nodes_[node].child[bit];
      if (node == kNil) break;
    }
    return best;
  }

  /// Shortest-prefix (least specific) match for an address.
  std::optional<value_type> shortest_match(net::Ipv4Address addr) const {
    std::uint32_t node = kRoot;
    for (int depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value.has_value()) {
        return value_type(net::Prefix(addr, depth), *nodes_[node].value);
      }
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = nodes_[node].child[bit];
      if (node == kNil) break;
    }
    return std::nullopt;
  }

  /// All stored prefixes covering the address, least specific first.
  std::vector<value_type> all_matches(net::Ipv4Address addr) const {
    std::vector<value_type> matches;
    std::uint32_t node = kRoot;
    for (int depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value.has_value()) {
        matches.emplace_back(net::Prefix(addr, depth), *nodes_[node].value);
      }
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = nodes_[node].child[bit];
      if (node == kNil) break;
    }
    return matches;
  }

  /// Does any stored prefix strictly contain `prefix` (shorter length)?
  bool has_strict_ancestor(net::Prefix prefix) const noexcept {
    std::uint32_t node = kRoot;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      if (nodes_[node].value.has_value()) return true;
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      node = nodes_[node].child[bit];
      if (node == kNil) return false;
    }
    return false;
  }

  /// Visits every entry contained in `scope` (including an exact match),
  /// in ascending (network, length) order.
  template <typename Fn>
  void for_each_within(net::Prefix scope, Fn&& fn) const {
    const std::uint32_t node = descend(scope);
    if (node != kNil)

      walk(node, scope, fn);
  }

  /// Visits every entry, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(kRoot, net::Prefix(), fn);
  }

  /// Materialises all entries contained in `scope`.
  std::vector<value_type> entries_within(net::Prefix scope) const {
    std::vector<value_type> out;
    for_each_within(scope,
                    [&](net::Prefix p, const T& v) { out.emplace_back(p, v); });
    return out;
  }

  /// Materialises all entries.
  std::vector<value_type> entries() const {
    std::vector<value_type> out;
    out.reserve(size_);
    for_each([&](net::Prefix p, const T& v) { out.emplace_back(p, v); });
    return out;
  }

  /// Removes an exact prefix. Returns true if it was present. Value-free
  /// branches are left in place (depth is bounded, so the memory cost is
  /// negligible for scan workloads; clear() reclaims everything).
  bool erase(net::Prefix prefix) noexcept {
    const std::uint32_t node = descend(prefix);
    if (node == kNil || !nodes_[node].value.has_value()) return false;
    nodes_[node].value.reset();
    --size_;
    return true;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kRoot = 0;

  struct Node {
    std::uint32_t child[2] = {kNil, kNil};
    std::optional<T> value;
  };

  std::uint32_t descend(net::Prefix prefix) const noexcept {
    std::uint32_t node = kRoot;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      node = nodes_[node].child[bit];
      if (node == kNil) return kNil;
    }
    return node;
  }

  std::uint32_t descend_or_create(net::Prefix prefix) {
    std::uint32_t node = kRoot;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      std::uint32_t next = nodes_[node].child[bit];
      if (next == kNil) {
        next = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
        nodes_[node].child[bit] = next;
      }
      node = next;
    }
    return node;
  }

  template <typename Fn>
  void walk(std::uint32_t node, net::Prefix at, Fn& fn) const {
    if (nodes_[node].value.has_value()) fn(at, *nodes_[node].value);
    if (at.length() == 32) return;
    if (const auto lo = nodes_[node].child[0]; lo != kNil) {
      walk(lo, at.lower_half(), fn);
    }
    if (const auto hi = nodes_[node].child[1]; hi != kNil) {
      walk(hi, at.upper_half(), fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace tass::trie
