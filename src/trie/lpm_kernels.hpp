// Kernel dispatch for the batched LPM hot path.
//
// BasicLpmIndex::lookup_many is where the sharded scan pipeline spends
// its cycles, so it exists in more than one implementation: the scalar
// reference walk (always compiled, the correctness oracle) and
// SIMD/pipelined kernels selected at runtime through util::cpu. This
// header is the seam between them: a per-family table of function
// pointers, resolved once per call from the cached
// util::cpu::active_level(), so the index itself never contains an
// #ifdef and the binary runs unchanged on any x86-64 (or non-x86)
// machine.
//
// The AVX2 kernels live in lpm_kernels_avx2.cpp, the only translation
// unit compiled with -mavx2; it exports plain function pointers
// (nullptr when the toolchain or target cannot build AVX2) so that no
// AVX2 instruction can ever be reached on a CPU that lacks the feature
// — the dispatch tables themselves are compiled for the baseline ISA.
//
// Contract: every kernel registered here is bit-identical to the scalar
// reference on all inputs (tests/lpm_differential_test.cpp runs every
// table shape through both kernel tables; the micro-benches re-verify
// on every timed iteration).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "net/family.hpp"
#include "util/cpu.hpp"

namespace tass::trie {

template <class Family>
class BasicLpmIndex;

/// How many lookups ahead the batch walks prefetch the root array (and
/// the SIMD walk prefetches the next block's root words). Measured with
/// bench/micro_lpm on RIB-shaped tables (~700k prefixes, index well
/// beyond L2): throughput plateaus from ~8 ahead and is flat through
/// ~32, so 16 sits mid-plateau — deep enough to cover a full
/// memory-latency's worth of root misses at the walk's consumption
/// rate, shallow enough that the prefetched lines still live in L1 when
/// their lookup arrives. Shared by the scalar, pipelined and AVX2
/// kernels so a retune applies everywhere at once.
inline constexpr std::size_t kLookupPrefetchDistance = 16;

/// The per-family kernel table: one entry per batch operation the
/// dispatch layer covers. `name` is what benches/tests report so every
/// JSON record says which kernel produced a number.
template <class Family>
struct LpmKernelTable {
  using AddressWord = typename Family::AddressWord;
  using LookupManyFn = void (*)(const BasicLpmIndex<Family>& index,
                                std::span<const AddressWord> addresses,
                                std::span<std::uint32_t> out);
  LookupManyFn lookup_many = nullptr;
  const char* name = "scalar";
};

/// The kernel table for `level`. kScalar always returns the reference
/// kernels; kAvx2 returns the AVX2 gather kernel for IPv4 (falling back
/// to scalar in builds without AVX2 support) and the software-pipelined
/// multi-stream walk for IPv6. Defined in lpm_index.cpp.
template <class Family>
const LpmKernelTable<Family>& lpm_kernel_table(
    util::cpu::SimdLevel level) noexcept;

template <>
const LpmKernelTable<net::Ipv4Family>& lpm_kernel_table<net::Ipv4Family>(
    util::cpu::SimdLevel level) noexcept;
template <>
const LpmKernelTable<net::Ipv6Family>& lpm_kernel_table<net::Ipv6Family>(
    util::cpu::SimdLevel level) noexcept;

/// The table the process actually runs with, per util::cpu's cached
/// probe (hardware capability + TASS_FORCE_SCALAR override).
template <class Family>
inline const LpmKernelTable<Family>& active_lpm_kernel_table() noexcept {
  return lpm_kernel_table<Family>(util::cpu::active_level());
}

namespace detail {

// Exported by lpm_kernels_avx2.cpp; nullptr when that TU was built
// without AVX2 codegen (non-x86 target or a compiler lacking -mavx2),
// in which case the kAvx2 table silently degrades to scalar.
extern const LpmKernelTable<net::Ipv4Family>::LookupManyFn kAvx2LookupMany4;

}  // namespace detail

}  // namespace tass::trie
