#include "trie/prefix_set.hpp"

#include <algorithm>

namespace tass::trie {

PrefixSet::PrefixSet(std::span<const net::Prefix> prefixes) {
  for (const net::Prefix prefix : prefixes) insert(prefix);
}

bool PrefixSet::insert(net::Prefix prefix) {
  return trie_.insert(prefix, std::monostate{});
}

bool PrefixSet::erase(net::Prefix prefix) noexcept {
  return trie_.erase(prefix);
}

bool PrefixSet::contains(net::Prefix prefix) const noexcept {
  return trie_.contains(prefix);
}

std::optional<net::Prefix> PrefixSet::longest_match(
    net::Ipv4Address addr) const {
  const auto match = trie_.longest_match(addr);
  if (!match) return std::nullopt;
  return match->first;
}

std::optional<net::Prefix> PrefixSet::shortest_match(
    net::Ipv4Address addr) const {
  const auto match = trie_.shortest_match(addr);
  if (!match) return std::nullopt;
  return match->first;
}

bool PrefixSet::covers(net::Ipv4Address addr) const {
  return trie_.shortest_match(addr).has_value();
}

bool PrefixSet::has_strict_ancestor(net::Prefix prefix) const noexcept {
  return trie_.has_strict_ancestor(prefix);
}

std::vector<net::Prefix> PrefixSet::within(net::Prefix scope) const {
  std::vector<net::Prefix> out;
  trie_.for_each_within(
      scope, [&](net::Prefix p, const std::monostate&) { out.push_back(p); });
  return out;
}

std::vector<net::Prefix> PrefixSet::to_vector() const {
  std::vector<net::Prefix> out;
  out.reserve(trie_.size());
  trie_.for_each(
      [&](net::Prefix p, const std::monostate&) { out.push_back(p); });
  return out;
}

void LinearPrefixSet::insert(net::Prefix prefix) {
  const auto it = std::lower_bound(prefixes_.begin(), prefixes_.end(), prefix);
  if (it == prefixes_.end() || *it != prefix) prefixes_.insert(it, prefix);
}

bool LinearPrefixSet::erase(net::Prefix prefix) noexcept {
  const auto it = std::lower_bound(prefixes_.begin(), prefixes_.end(), prefix);
  if (it == prefixes_.end() || *it != prefix) return false;
  prefixes_.erase(it);
  return true;
}

bool LinearPrefixSet::contains(net::Prefix prefix) const noexcept {
  return std::binary_search(prefixes_.begin(), prefixes_.end(), prefix);
}

std::optional<net::Prefix> LinearPrefixSet::longest_match(
    net::Ipv4Address addr) const {
  std::optional<net::Prefix> best;
  for (const net::Prefix prefix : prefixes_) {
    if (prefix.contains(addr) &&
        (!best || prefix.length() > best->length())) {
      best = prefix;
    }
  }
  return best;
}

std::optional<net::Prefix> LinearPrefixSet::shortest_match(
    net::Ipv4Address addr) const {
  std::optional<net::Prefix> best;
  for (const net::Prefix prefix : prefixes_) {
    if (prefix.contains(addr) &&
        (!best || prefix.length() < best->length())) {
      best = prefix;
    }
  }
  return best;
}

bool LinearPrefixSet::has_strict_ancestor(net::Prefix prefix) const noexcept {
  return std::any_of(prefixes_.begin(), prefixes_.end(),
                     [&](net::Prefix candidate) {
                       return candidate != prefix &&
                              candidate.contains(prefix);
                     });
}

std::vector<net::Prefix> LinearPrefixSet::within(net::Prefix scope) const {
  std::vector<net::Prefix> out;
  for (const net::Prefix prefix : prefixes_) {
    if (scope.contains(prefix)) out.push_back(prefix);
  }
  return out;
}

}  // namespace tass::trie
