#include "trie/lpm_index.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace tass::trie {

// Transient binary trie used only during construction; 12 bytes per node
// (no std::optional padding) so full-RIB builds stay cheap. The read
// structure is derived from it by leaf-pushing whole strides at a time.
struct LpmIndex::BuildNode {
  std::int32_t child[2] = {-1, -1};
  std::uint32_t value = kNoMatch;
};

namespace {

constexpr int kRootBits = 16;

// Stride of the node that starts at `depth` (16 -> 6, 22 -> 6, 28 -> 4).
constexpr int stride_at(int depth) noexcept { return depth < 28 ? 6 : 4; }

}  // namespace

LpmIndex::LpmIndex(std::span<const Entry> table) {
  std::vector<BuildNode> bt(1);
  for (const Entry& entry : table) {
    if (entry.value >= kNoMatch) {
      throw Error("LpmIndex value out of range (>= kNoMatch)");
    }
    std::int32_t node = 0;
    const std::uint32_t network = entry.prefix.network().value();
    for (int depth = 0; depth < entry.prefix.length(); ++depth) {
      const int bit = (network >> (31 - depth)) & 1;
      if (bt[static_cast<std::size_t>(node)].child[bit] < 0) {
        bt[static_cast<std::size_t>(node)].child[bit] =
            static_cast<std::int32_t>(bt.size());
        bt.emplace_back();
      }
      node = bt[static_cast<std::size_t>(node)].child[bit];
    }
    if (bt[static_cast<std::size_t>(node)].value == kNoMatch) ++prefix_count_;
    bt[static_cast<std::size_t>(node)].value = entry.value;
  }
  root_.assign(std::size_t{1} << kRootBits, kNoMatch);
  fill_root(bt, 0, 0, 0, kNoMatch);
}

LpmIndex LpmIndex::from_prefixes(std::span<const net::Prefix> prefixes,
                                 std::uint32_t value) {
  std::vector<Entry> table;
  table.reserve(prefixes.size());
  for (const net::Prefix prefix : prefixes) table.push_back({prefix, value});
  return LpmIndex(table);
}

// Walks the build trie down to the root-stride depth. Slots whose subtree
// ends at or above /16 become direct leaves; slots with longer prefixes
// below get a node subtree. `path` is the address-bit prefix accumulated so
// far, `inherited` the best match covering it.
void LpmIndex::fill_root(const std::vector<BuildNode>& bt, std::int32_t node,
                         int depth, std::uint32_t path,
                         std::uint32_t inherited) {
  if (node >= 0 && bt[static_cast<std::size_t>(node)].value != kNoMatch) {
    inherited = bt[static_cast<std::size_t>(node)].value;
  }
  const bool has_children =
      node >= 0 && (bt[static_cast<std::size_t>(node)].child[0] >= 0 ||
                    bt[static_cast<std::size_t>(node)].child[1] >= 0);
  if (depth == kRootBits) {
    if (has_children) {
      const auto index = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
      populate(index, bt, node, depth, inherited);
      root_[path] = kNodeFlag | index;
    } else {
      root_[path] = inherited;
    }
    return;
  }
  if (!has_children) {
    // The whole sub-block resolves to `inherited` (root_ is pre-filled
    // with kNoMatch, so only real matches need writing).
    if (inherited != kNoMatch) {
      const std::uint32_t width = 1u << (kRootBits - depth);
      std::fill_n(root_.begin() + (path << (kRootBits - depth)), width,
                  inherited);
    }
    return;
  }
  const BuildNode& bn = bt[static_cast<std::size_t>(node)];
  fill_root(bt, bn.child[0], depth + 1, path << 1, inherited);
  fill_root(bt, bn.child[1], depth + 1, (path << 1) | 1u, inherited);
}

// Fills nodes_[index] for the build-trie subtree rooted at `node` (depth 16,
// 22 or 28). For every stride slot the best covering value is leaf-pushed;
// slots with prefixes continuing below the stride become children, which
// are allocated as one contiguous block so popcount ranking addresses them.
void LpmIndex::populate(std::uint32_t index, const std::vector<BuildNode>& bt,
                        std::int32_t node, int depth, std::uint32_t inherited) {
  const int stride = stride_at(depth);
  const std::uint32_t slots = 1u << stride;

  std::array<std::int32_t, 64> sub{};
  std::array<std::uint32_t, 64> value{};
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    std::int32_t cur = node;
    std::uint32_t best = inherited;
    for (int bit = stride - 1; bit >= 0 && cur >= 0; --bit) {
      cur = bt[static_cast<std::size_t>(cur)].child[(slot >> bit) & 1u];
      if (cur >= 0 && bt[static_cast<std::size_t>(cur)].value != kNoMatch) {
        best = bt[static_cast<std::size_t>(cur)].value;
      }
    }
    sub[slot] = cur;
    value[slot] = best;
  }

  Node result;
  result.leaf_base = static_cast<std::uint32_t>(leaves_.size());
  bool in_run = false;
  std::uint32_t run_value = 0;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    const bool internal =
        sub[slot] >= 0 &&
        (bt[static_cast<std::size_t>(sub[slot])].child[0] >= 0 ||
         bt[static_cast<std::size_t>(sub[slot])].child[1] >= 0);
    if (internal) {
      result.child_bits |= 1ull << slot;
      in_run = false;  // an internal slot breaks the leaf run
      continue;
    }
    if (!in_run || value[slot] != run_value) {
      result.leaf_bits |= 1ull << slot;
      leaves_.push_back(value[slot]);
      in_run = true;
      run_value = value[slot];
    }
  }

  // Children must be contiguous; reserve the block first, then recurse
  // (grandchildren land after it).
  result.child_base = static_cast<std::uint32_t>(nodes_.size());
  const auto child_count =
      static_cast<std::size_t>(std::popcount(result.child_bits));
  nodes_.resize(nodes_.size() + child_count);
  nodes_[index] = result;
  std::uint32_t child = result.child_base;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    if ((result.child_bits >> slot) & 1u) {
      populate(child++, bt, sub[slot], depth + stride, value[slot]);
    }
  }
}

void LpmIndex::lookup_many(std::span<const std::uint32_t> addresses,
                           std::span<std::uint32_t> out) const noexcept {
  TASS_EXPECTS(out.size() >= addresses.size());
  if (root_.empty()) {
    std::fill_n(out.begin(), addresses.size(), kNoMatch);
    return;
  }
  // Pull the root words of upcoming addresses into cache while resolving
  // the current one; on big shards most time is the root-array miss.
  constexpr std::size_t kAhead = 16;
  const std::size_t n = addresses.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      __builtin_prefetch(&root_[addresses[i + kAhead] >> 16]);
    }
    out[i] = lookup(net::Ipv4Address(addresses[i]));
  }
}

std::vector<std::uint32_t> LpmIndex::lookup_many(
    std::span<const std::uint32_t> addresses) const {
  std::vector<std::uint32_t> out(addresses.size());
  lookup_many(addresses, out);
  return out;
}

}  // namespace tass::trie
