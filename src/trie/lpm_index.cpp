#include "trie/lpm_index.hpp"

#include "trie/lpm_index6.hpp"
#include "trie/lpm_kernels.hpp"

namespace tass::trie {

// Transient binary trie used only during construction; 12 bytes per node
// (no std::optional padding) so full-RIB builds stay cheap. The read
// structure is derived from it by leaf-pushing whole strides at a time.
template <class Family>
struct BasicLpmIndex<Family>::BuildNode {
  std::int32_t child[2] = {-1, -1};
  std::uint32_t value = kNoMatch;
};

template <class Family>
void BasicLpmIndex<Family>::trie_insert(std::vector<BuildNode>& bt,
                                        const Entry& entry) {
  std::int32_t node = 0;
  const net::AddressKey network = Family::first_key(entry.prefix);
  for (int depth = 0; depth < entry.prefix.length(); ++depth) {
    const int bit = network.bit(depth);
    if (bt[static_cast<std::size_t>(node)].child[bit] < 0) {
      bt[static_cast<std::size_t>(node)].child[bit] =
          static_cast<std::int32_t>(bt.size());
      bt.emplace_back();
    }
    node = bt[static_cast<std::size_t>(node)].child[bit];
  }
  bt[static_cast<std::size_t>(node)].value = entry.value;
}

// Builds the transient binary trie for a set of (absolute) entries; used
// for both the full build and the per-block patches.
template <class Family>
auto BasicLpmIndex<Family>::build_trie(std::span<const Entry> entries)
    -> std::vector<BuildNode> {
  std::vector<BuildNode> bt(1);
  for (const Entry& entry : entries) trie_insert(bt, entry);
  return bt;
}

template <class Family>
void BasicLpmIndex<Family>::sync_views() noexcept {
  if (borrowed_) return;
  root_view_ = root_;
  nodes_view_ = nodes_;
  leaves_view_ = leaves_;
  entries_view_ = entries_;
}

template <class Family>
BasicLpmIndex<Family> BasicLpmIndex<Family>::from_raw(const Raw& raw) {
  BasicLpmIndex index;
  index.borrowed_ = true;
  index.root_view_ = raw.root;
  index.nodes_view_ = raw.nodes;
  index.leaves_view_ = raw.leaves;
  index.entries_view_ = raw.entries;
  index.prefix_count_ = raw.entries.size();
  return index;
}

template <class Family>
BasicLpmIndex<Family>::BasicLpmIndex(const BasicLpmIndex& other)
    : entries_(other.entries_),
      root_(other.root_),
      nodes_(other.nodes_),
      leaves_(other.leaves_),
      borrowed_(other.borrowed_),
      prefix_count_(other.prefix_count_),
      node_limit_(other.node_limit_),
      leaf_limit_(other.leaf_limit_) {
  if (borrowed_) {
    // Borrowed views share the caller's storage; the copy does too.
    root_view_ = other.root_view_;
    nodes_view_ = other.nodes_view_;
    leaves_view_ = other.leaves_view_;
    entries_view_ = other.entries_view_;
  } else {
    sync_views();
  }
}

template <class Family>
BasicLpmIndex<Family>& BasicLpmIndex<Family>::operator=(
    const BasicLpmIndex& other) {
  if (this != &other) *this = BasicLpmIndex(other);
  return *this;
}

template <class Family>
BasicLpmIndex<Family>::BasicLpmIndex(BasicLpmIndex&& other) noexcept
    : entries_(std::move(other.entries_)),
      root_(std::move(other.root_)),
      nodes_(std::move(other.nodes_)),
      leaves_(std::move(other.leaves_)),
      // Owned vector buffers survive the move at the same addresses, so
      // the source's views stay valid for the new owner; borrowed views
      // point at caller storage and transfer as-is.
      root_view_(other.root_view_),
      nodes_view_(other.nodes_view_),
      leaves_view_(other.leaves_view_),
      entries_view_(other.entries_view_),
      borrowed_(other.borrowed_),
      prefix_count_(other.prefix_count_),
      node_limit_(other.node_limit_),
      leaf_limit_(other.leaf_limit_) {
  other.root_view_ = {};
  other.nodes_view_ = {};
  other.leaves_view_ = {};
  other.entries_view_ = {};
  other.prefix_count_ = 0;
  other.borrowed_ = false;
}

template <class Family>
BasicLpmIndex<Family>& BasicLpmIndex<Family>::operator=(
    BasicLpmIndex&& other) noexcept {
  if (this != &other) {
    entries_ = std::move(other.entries_);
    root_ = std::move(other.root_);
    nodes_ = std::move(other.nodes_);
    leaves_ = std::move(other.leaves_);
    root_view_ = other.root_view_;
    nodes_view_ = other.nodes_view_;
    leaves_view_ = other.leaves_view_;
    entries_view_ = other.entries_view_;
    borrowed_ = other.borrowed_;
    prefix_count_ = other.prefix_count_;
    node_limit_ = other.node_limit_;
    leaf_limit_ = other.leaf_limit_;
    other.root_view_ = {};
    other.nodes_view_ = {};
    other.leaves_view_ = {};
    other.entries_view_ = {};
    other.prefix_count_ = 0;
    other.borrowed_ = false;
  }
  return *this;
}

template <class Family>
BasicLpmIndex<Family>::BasicLpmIndex(std::span<const Entry> table) {
  for (const Entry& entry : table) {
    if (entry.value >= kNoMatch) {
      throw Error("LpmIndex value out of range (>= kNoMatch)");
    }
  }
  // Canonical entry table: ascending by prefix, duplicates resolved with
  // the historical last-entry-wins semantics (stable sort keeps input
  // order within a duplicate run; we keep the run's last element).
  entries_.assign(table.begin(), table.end());
  std::stable_sort(entries_.begin(), entries_.end(), entry_less);
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i + 1 < entries_.size() &&
        entries_[i].prefix == entries_[i + 1].prefix) {
      continue;  // a later duplicate overrides this one
    }
    entries_[out++] = entries_[i];
  }
  entries_.resize(out);
  prefix_count_ = entries_.size();
  rebuild_all();
}

template <class Family>
void BasicLpmIndex<Family>::rebuild_all() {
  nodes_.clear();
  leaves_.clear();
  const std::vector<BuildNode> bt = build_trie(entries_);
  root_.assign(std::size_t{1} << kRootBits, kNoMatch);
  fill_root(bt, 0, 0, 0, kNoMatch);
  node_limit_ = nodes_.size() * 2 + 1024;
  leaf_limit_ = leaves_.size() * 2 + 4096;
  sync_views();
}

template <class Family>
BasicLpmIndex<Family> BasicLpmIndex<Family>::from_prefixes(
    std::span<const Prefix> prefixes, std::uint32_t value) {
  std::vector<Entry> table;
  table.reserve(prefixes.size());
  for (const Prefix prefix : prefixes) table.push_back({prefix, value});
  return BasicLpmIndex(table);
}

// Walks the build trie down to the root-stride depth. Slots whose subtree
// ends at or above /16 become direct leaves; slots with longer prefixes
// below get a node subtree. `path` is the address-bit prefix accumulated so
// far, `inherited` the best match covering it.
template <class Family>
void BasicLpmIndex<Family>::fill_root(const std::vector<BuildNode>& bt,
                                      std::int32_t node, int depth,
                                      std::uint32_t path,
                                      std::uint32_t inherited) {
  if (node >= 0 && bt[static_cast<std::size_t>(node)].value != kNoMatch) {
    inherited = bt[static_cast<std::size_t>(node)].value;
  }
  const bool has_children =
      node >= 0 && (bt[static_cast<std::size_t>(node)].child[0] >= 0 ||
                    bt[static_cast<std::size_t>(node)].child[1] >= 0);
  if (depth == kRootBits) {
    if (has_children) {
      const auto index = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
      populate(index, bt, node, depth, inherited);
      root_[path] = kNodeFlag | index;
    } else {
      root_[path] = inherited;
    }
    return;
  }
  if (!has_children) {
    // The whole sub-block resolves to `inherited` (root_ is pre-filled
    // with kNoMatch, so only real matches need writing).
    if (inherited != kNoMatch) {
      const std::uint32_t width = 1u << (kRootBits - depth);
      std::fill_n(root_.begin() + (path << (kRootBits - depth)), width,
                  inherited);
    }
    return;
  }
  const BuildNode& bn = bt[static_cast<std::size_t>(node)];
  fill_root(bt, bn.child[0], depth + 1, path << 1, inherited);
  fill_root(bt, bn.child[1], depth + 1, (path << 1) | 1u, inherited);
}

// Fills nodes_[index] for the build-trie subtree rooted at `node` (a
// stride-aligned depth >= 16). For every stride slot the best covering
// value is leaf-pushed; slots with prefixes continuing below the stride
// become children, which are allocated as one contiguous block so
// popcount ranking addresses them.
template <class Family>
void BasicLpmIndex<Family>::populate(std::uint32_t index,
                                     const std::vector<BuildNode>& bt,
                                     std::int32_t node, int depth,
                                     std::uint32_t inherited) {
  const int stride = stride_at(depth);
  const std::uint32_t slots = 1u << stride;

  std::array<std::int32_t, 64> sub{};
  std::array<std::uint32_t, 64> value{};
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    std::int32_t cur = node;
    std::uint32_t best = inherited;
    for (int bit = stride - 1; bit >= 0 && cur >= 0; --bit) {
      cur = bt[static_cast<std::size_t>(cur)].child[(slot >> bit) & 1u];
      if (cur >= 0 && bt[static_cast<std::size_t>(cur)].value != kNoMatch) {
        best = bt[static_cast<std::size_t>(cur)].value;
      }
    }
    sub[slot] = cur;
    value[slot] = best;
  }

  Node result;
  result.leaf_base = static_cast<std::uint32_t>(leaves_.size());
  bool in_run = false;
  std::uint32_t run_value = 0;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    const bool internal =
        sub[slot] >= 0 &&
        (bt[static_cast<std::size_t>(sub[slot])].child[0] >= 0 ||
         bt[static_cast<std::size_t>(sub[slot])].child[1] >= 0);
    if (internal) {
      result.child_bits |= 1ull << slot;
      in_run = false;  // an internal slot breaks the leaf run
      continue;
    }
    if (!in_run || value[slot] != run_value) {
      result.leaf_bits |= 1ull << slot;
      leaves_.push_back(value[slot]);
      in_run = true;
      run_value = value[slot];
    }
  }

  // Children must be contiguous; reserve the block first, then recurse
  // (grandchildren land after it).
  result.child_base = static_cast<std::uint32_t>(nodes_.size());
  const auto child_count =
      static_cast<std::size_t>(std::popcount(result.child_bits));
  nodes_.resize(nodes_.size() + child_count);
  nodes_[index] = result;
  std::uint32_t child = result.child_base;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    if ((result.child_bits >> slot) & 1u) {
      populate(child++, bt, sub[slot], depth + stride, value[slot]);
    }
  }
}

// Rebuilds the read structures of one /16 root block from a transient
// trie holding exactly the entries that intersect the block (in-block
// prefixes plus any shorter covering prefixes). Mirrors the terminal case
// of fill_root; the replaced subtree is abandoned in place and reclaimed
// by the next full rebuild.
template <class Family>
void BasicLpmIndex<Family>::patch_block(std::uint32_t block,
                                        const std::vector<BuildNode>& bt) {
  std::int32_t node = 0;
  std::uint32_t inherited = kNoMatch;
  for (int depth = 0; depth < kRootBits && node >= 0; ++depth) {
    if (bt[static_cast<std::size_t>(node)].value != kNoMatch) {
      inherited = bt[static_cast<std::size_t>(node)].value;
    }
    const int bit = (block >> (kRootBits - 1 - depth)) & 1;
    node = bt[static_cast<std::size_t>(node)].child[bit];
  }
  if (node >= 0 && bt[static_cast<std::size_t>(node)].value != kNoMatch) {
    inherited = bt[static_cast<std::size_t>(node)].value;
  }
  const bool has_children =
      node >= 0 && (bt[static_cast<std::size_t>(node)].child[0] >= 0 ||
                    bt[static_cast<std::size_t>(node)].child[1] >= 0);
  if (has_children) {
    const auto index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    populate(index, bt, node, kRootBits, inherited);
    root_[block] = kNodeFlag | index;
  } else {
    root_[block] = inherited;
  }
}

template <class Family>
auto BasicLpmIndex<Family>::update(std::span<const Entry> upserts,
                                   std::span<const Prefix> erases)
    -> UpdateStats {
  if (borrowed_) {
    throw Error(
        "LpmIndex::update on a borrowed view (from_raw): read-only "
        "storage cannot absorb deltas; rebuild an owned index instead");
  }
  for (const Entry& entry : upserts) {
    if (entry.value >= kNoMatch) {
      throw Error("LpmIndex value out of range (>= kNoMatch)");
    }
  }
  // Normalise the batch: sorted upserts with last-wins duplicates, sorted
  // unique erases. All validation happens before any mutation so input
  // errors leave the index untouched.
  std::vector<Entry> ups(upserts.begin(), upserts.end());
  std::stable_sort(ups.begin(), ups.end(), entry_less);
  {
    std::size_t out = 0;
    for (std::size_t i = 0; i < ups.size(); ++i) {
      if (i + 1 < ups.size() && ups[i].prefix == ups[i + 1].prefix) continue;
      ups[out++] = ups[i];
    }
    ups.resize(out);
  }
  std::vector<Prefix> ers(erases.begin(), erases.end());
  std::sort(ers.begin(), ers.end());
  ers.erase(std::unique(ers.begin(), ers.end()), ers.end());
  {
    auto u = ups.begin();
    for (const Prefix p : ers) {
      while (u != ups.end() && u->prefix < p) ++u;
      if (u != ups.end() && u->prefix == p) {
        throw Error("LpmIndex update: prefix " + p.to_string() +
                    " both upserted and erased");
      }
    }
    auto e = entries_.cbegin();
    for (const Prefix p : ers) {
      e = std::lower_bound(e, entries_.cend(), Entry{p, 0}, entry_less);
      if (e == entries_.cend() || e->prefix != p) {
        throw Error("LpmIndex update: erased prefix " + p.to_string() +
                    " not present");
      }
    }
  }

  UpdateStats stats;
  // Merge the batch into a fresh entry table, recording which prefixes
  // actually change the mapping (value-identical upserts are no-ops).
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + ups.size());
  std::vector<Prefix> dirty;
  // Which prefix lengths < 16 exist at all — gathering block coverers
  // below then only probes lengths that can match (real tables hold a
  // handful of short lengths, not all sixteen).
  std::uint32_t short_lengths = 0;
  {
    std::size_t i = 0;
    auto u = ups.cbegin();
    auto e = ers.cbegin();
    while (i < entries_.size() || u != ups.cend()) {
      const bool take_upsert =
          u != ups.cend() &&
          (i == entries_.size() || !(entries_[i].prefix < u->prefix));
      if (take_upsert) {
        if (i < entries_.size() && entries_[i].prefix == u->prefix) {
          if (entries_[i].value != u->value) {
            dirty.push_back(u->prefix);
            ++stats.upserts;
          }
          ++i;
        } else {
          dirty.push_back(u->prefix);
          ++stats.upserts;
        }
        if (u->prefix.length() < kRootBits) {
          short_lengths |= 1u << u->prefix.length();
        }
        merged.push_back(*u);
        ++u;
        continue;
      }
      while (e != ers.cend() && *e < entries_[i].prefix) ++e;
      if (e != ers.cend() && *e == entries_[i].prefix) {
        dirty.push_back(entries_[i].prefix);
        ++stats.erases;
        ++i;
        continue;
      }
      if (entries_[i].prefix.length() < kRootBits) {
        short_lengths |= 1u << entries_[i].prefix.length();
      }
      merged.push_back(entries_[i]);
      ++i;
    }
  }
  entries_ = std::move(merged);
  prefix_count_ = entries_.size();
  sync_views();  // entries_ moved; the read arrays re-sync again below
  if (dirty.empty()) return stats;  // value-identical no-op batch

  // Dirty /16 root blocks, as merged runs. `dirty` came out of an ordered
  // merge, so the runs are already sorted by first block.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
  runs.reserve(dirty.size());
  for (const Prefix p : dirty) {
    const std::uint32_t lo = Family::first_key(p).top16();
    const std::uint32_t hi = Family::last_key(p).top16();
    if (!runs.empty() && lo <= runs.back().second) {
      runs.back().second = std::max(runs.back().second, hi);
    } else {
      runs.emplace_back(lo, hi);
    }
  }
  // Orders entries by the root block their network lands in (ties keep
  // prefix order, which the callers below never rely on).
  const auto block_lower = [](const Entry& e, std::uint32_t block) {
    return Family::first_key(e.prefix).top16() < block;
  };
  for (const auto& [lo, hi] : runs) {
    stats.dirty_blocks += hi - lo + 1;
    const auto begin = std::lower_bound(entries_.cbegin(), entries_.cend(),
                                        lo, block_lower);
    // hi + 1 == 0x10000 never compares below a real block, so the last
    // block's run naturally extends to the end of the table.
    const auto end =
        std::lower_bound(begin, entries_.cend(), hi + 1, block_lower);
    stats.touched_entries += static_cast<std::size_t>(end - begin);
  }

  // Cost model: patch cost scales with the entries living in dirty blocks
  // plus the dirty block count; rebuild cost with the whole table plus
  // the whole root. Past ~1/4 of either the patch does enough of a
  // rebuild's work (with worse locality and per-block overhead) that
  // rebuilding wins — measured on RIB-shaped tables by bench/micro_delta.
  if (root_.empty() || stats.dirty_blocks * 4 >= root_.size() ||
      stats.touched_entries * 4 >= entries_.size() + 4) {
    rebuild_all();
    stats.rebuilt = true;
    return stats;
  }

  // Per-block rebuild, with the gather buffer and the transient trie
  // reused across blocks (the patch loop's hot allocation otherwise).
  std::vector<BuildNode> bt;
  for (const auto& [lo, hi] : runs) {
    for (std::uint32_t block = lo; block <= hi; ++block) {
      bt.clear();
      bt.emplace_back();
      // Shorter prefixes covering the block — only lengths the table has.
      for (std::uint32_t mask = short_lengths; mask != 0;
           mask &= mask - 1) {
        const int length = std::countr_zero(mask);
        const Prefix cover =
            Family::make_prefix(net::AddressKey::of_block(block), length);
        const auto it = std::lower_bound(entries_.cbegin(), entries_.cend(),
                                         Entry{cover, 0}, entry_less);
        if (it != entries_.cend() && it->prefix == cover) {
          trie_insert(bt, *it);
        }
      }
      // Prefixes of /16 and longer whose network lies inside the block.
      for (auto it = std::lower_bound(entries_.cbegin(), entries_.cend(),
                                      block, block_lower);
           it != entries_.cend() &&
           Family::first_key(it->prefix).top16() == block;
           ++it) {
        if (it->prefix.length() >= kRootBits) trie_insert(bt, *it);
      }
      patch_block(block, bt);
    }
  }

  // Patches abandon replaced subtrees; compact via a full rebuild once
  // the arrays carry more garbage than live structure.
  if (nodes_.size() > node_limit_ || leaves_.size() > leaf_limit_) {
    rebuild_all();
    stats.compacted = true;
  }
  sync_views();
  return stats;
}

namespace {

// The scalar reference kernel: the historical lookup_many loop. Pulls
// the root words of upcoming addresses into cache while resolving the
// current one; on big shards most time is the root-array miss.
template <class Family>
void scalar_lookup_many(
    const BasicLpmIndex<Family>& index,
    std::span<const typename Family::AddressWord> addresses,
    std::span<std::uint32_t> out) {
  const std::span<const std::uint32_t> root = index.raw().root;
  const std::size_t n = addresses.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kLookupPrefetchDistance < n) {
      __builtin_prefetch(
          &root[Family::word_key(addresses[i + kLookupPrefetchDistance])
                    .top16()]);
    }
    out[i] = index.lookup(Family::word_address(addresses[i]));
  }
}

// The software-pipelined kernel the kAvx2 table registers for IPv6:
// eight lookups walk the stride schedule in lockstep, and every
// descent issues __builtin_prefetch on the child it just ranked. By
// the time the walk returns to a lane — after the other seven lanes
// took their level-k step — the level-k+1 line (and usually the k+2
// line the hardware prefetcher chains behind it) is in flight, so the
// deep 19-level v6 walk overlaps up to eight node misses instead of
// serialising them. Portable scalar code: the win is memory-level
// parallelism, not vector ALUs, which is what the long-latency walk is
// actually bound by.
template <class Family>
void pipelined_lookup_many(
    const BasicLpmIndex<Family>& index,
    std::span<const typename Family::AddressWord> addresses,
    std::span<std::uint32_t> out) {
  using Index = BasicLpmIndex<Family>;
  using Node = typename Index::Node;
  const typename Index::Raw raw = index.raw();
  const std::uint32_t* const root = raw.root.data();
  const Node* const nodes = raw.nodes.data();
  const std::uint32_t* const leaves = raw.leaves.data();
  constexpr std::uint32_t kWidth = 8;  // streams walked in lockstep
  const std::size_t n = addresses.size();
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    net::AddressKey key[kWidth];
    const Node* node[kWidth];
    int depth[kWidth];
    std::uint32_t walking = 0;
    for (std::uint32_t lane = 0; lane < kWidth; ++lane) {
      if (i + kLookupPrefetchDistance + lane < n) {
        __builtin_prefetch(
            &root[Family::word_key(
                      addresses[i + kLookupPrefetchDistance + lane])
                      .top16()]);
      }
      key[lane] = Family::word_key(addresses[i + lane]);
      const std::uint32_t word = root[key[lane].top16()];
      if ((word & Index::kNodeFlag) == 0) {
        out[i + lane] = word;  // leaf (possibly kNoMatch)
      } else {
        node[lane] = nodes + (word & ~Index::kNodeFlag);
        __builtin_prefetch(node[lane]);
        depth[lane] = Index::kRootBits;
        walking |= 1u << lane;
      }
    }
    while (walking != 0) {
      std::uint32_t continuing = 0;
      for (std::uint32_t pending = walking; pending != 0;
           pending &= pending - 1) {
        const auto lane =
            static_cast<std::uint32_t>(std::countr_zero(pending));
        const Node* const cur = node[lane];
        const int stride = Index::stride_at(depth[lane]);
        const std::uint32_t slot = key[lane].slot(depth[lane], stride);
        if (depth[lane] + stride < Family::kBits &&
            ((cur->child_bits >> slot) & 1u)) {
          const Node* const child =
              nodes + cur->child_base + Index::rank(cur->child_bits, slot);
          __builtin_prefetch(child);
          node[lane] = child;
          depth[lane] += stride;
          continuing |= 1u << lane;
        } else {
          out[i + lane] =
              leaves[cur->leaf_base +
                     Index::rank_inclusive(cur->leaf_bits, slot) - 1];
        }
      }
      walking = continuing;
    }
  }
  for (; i < n; ++i) {
    out[i] = index.lookup(Family::word_address(addresses[i]));
  }
}

}  // namespace

template <>
const LpmKernelTable<net::Ipv4Family>& lpm_kernel_table<net::Ipv4Family>(
    util::cpu::SimdLevel level) noexcept {
  static const LpmKernelTable<net::Ipv4Family> kScalarTable{
      &scalar_lookup_many<net::Ipv4Family>, "scalar"};
  static const LpmKernelTable<net::Ipv4Family> kSimdTable{
      detail::kAvx2LookupMany4 != nullptr
          ? detail::kAvx2LookupMany4
          : &scalar_lookup_many<net::Ipv4Family>,
      detail::kAvx2LookupMany4 != nullptr ? "avx2" : "scalar"};
  return level == util::cpu::SimdLevel::kAvx2 ? kSimdTable : kScalarTable;
}

template <>
const LpmKernelTable<net::Ipv6Family>& lpm_kernel_table<net::Ipv6Family>(
    util::cpu::SimdLevel level) noexcept {
  static const LpmKernelTable<net::Ipv6Family> kScalarTable{
      &scalar_lookup_many<net::Ipv6Family>, "scalar"};
  // The v6 walk is latency-bound, not ALU-bound; the pipelined walk is
  // its "SIMD" tier and runs on any hardware.
  static const LpmKernelTable<net::Ipv6Family> kSimdTable{
      &pipelined_lookup_many<net::Ipv6Family>, "pipelined"};
  return level == util::cpu::SimdLevel::kAvx2 ? kSimdTable : kScalarTable;
}

template <class Family>
void BasicLpmIndex<Family>::lookup_many(
    std::span<const AddressWord> addresses, std::span<std::uint32_t> out,
    util::cpu::SimdLevel level) const noexcept {
  TASS_EXPECTS(out.size() >= addresses.size());
  if (root_view_.empty()) {
    std::fill_n(out.begin(), addresses.size(), kNoMatch);
    return;
  }
  lpm_kernel_table<Family>(level).lookup_many(*this, addresses, out);
}

template <class Family>
void BasicLpmIndex<Family>::lookup_many(
    std::span<const AddressWord> addresses,
    std::span<std::uint32_t> out) const noexcept {
  lookup_many(addresses, out, util::cpu::active_level());
}

template <class Family>
std::vector<std::uint32_t> BasicLpmIndex<Family>::lookup_many(
    std::span<const AddressWord> addresses) const {
  std::vector<std::uint32_t> out(addresses.size());
  lookup_many(addresses, out);
  return out;
}

template class BasicLpmIndex<net::Ipv4Family>;
template class BasicLpmIndex<net::Ipv6Family>;

}  // namespace tass::trie
