// RCU-style generation handles for the serving daemon.
//
// tass_serve answers every query out of an immutable, mmap'ed
// state::BasicStateImage. Reloads (operator command or SIGHUP) must not
// stall the query path: a writer seals/loads the *new* image off-thread,
// installs it with one atomic pointer swap, and the old image is
// destroyed only after the last in-flight request batch that acquired it
// has drained. GenerationStore is that mechanism, built so the reader
// side is wait-free and lock-free — the acceptance bar for the query
// hot path is *zero locks*:
//
//   * Readers are a fixed set of serving shards, each owning one
//     cache-line-padded announcement slot. acquire(slot) publishes the
//     *pointer value* of the generation the shard is about to read,
//     then re-validates that the installed generation did not change in
//     between (the classic hazard-pointer announce-then-validate
//     dance); on a race it simply retries against the newer
//     generation. Announcing the raw pointer — never a field read
//     through it — is load-bearing: between the initial load and the
//     announcement the writer may already have installed a successor
//     and retired (freed) the loaded generation, so the pointer must
//     not be dereferenced until the validating load proves it is still
//     installed. The returned Ref is an RAII guard: its destructor
//     clears the announcement, marking the batch drained. Cost per
//     batch: three uncontended atomic accesses, no CAS loop in the
//     common case, no mutex ever.
//   * The writer (a single reload thread; installs must be externally
//     serialised) swaps the current pointer and receives the previous
//     generation back. retire() then polls the announcement slots
//     until none still names the old pointer — readers that announced
//     before the swap are visible to the scan (both sides use seq_cst
//     on the announce/validate/install edges), and readers arriving
//     after the swap can only acquire the new generation. Only then is
//     the old image destroyed. Address reuse across install cycles is
//     benign: a slot can only name a freed address while the reader is
//     between announce and a validation that is guaranteed to fail
//     (and re-announce), and if a later generation is allocated at
//     that same address the slot's announcement pins whichever live
//     generation currently owns the address — exactly the object the
//     validating load handed to the reader.
//
// Sequence numbers strictly increase across installs and are carried in
// every wire response next to the image's topology fingerprint, so a
// client (and the swap-stress test) can pin every answer to exactly one
// generation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace tass::serve {

/// One reader's announcement slot: 0 when quiescent, otherwise the
/// pointer value of the generation the reader holds (a hazard
/// pointer). Padded so two shards never share a cache line.
struct alignas(64) ReaderSlot {
  std::atomic<std::uintptr_t> active{0};
};

template <class Image>
class GenerationStore {
 public:
  /// One installed image plus its monotonically increasing sequence
  /// number. Heap-allocated by install(); destroyed by retire() (or the
  /// store's destructor, for the final generation).
  struct Generation {
    Generation(std::uint64_t s, Image img)
        : seq(s), image(std::move(img)) {}
    std::uint64_t seq;
    Image image;
  };

  /// RAII read guard over one generation. Movable, not copyable; the
  /// destructor clears the owning slot's announcement, which is what
  /// lets the writer retire the generation.
  class Ref {
   public:
    Ref() = default;
    Ref(const Generation* gen, ReaderSlot* slot) noexcept
        : gen_(gen), slot_(slot) {}
    Ref(Ref&& other) noexcept
        : gen_(other.gen_), slot_(other.slot_) {
      other.gen_ = nullptr;
      other.slot_ = nullptr;
    }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        gen_ = other.gen_;
        slot_ = other.slot_;
        other.gen_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    explicit operator bool() const noexcept { return gen_ != nullptr; }
    const Image& image() const noexcept { return gen_->image; }
    std::uint64_t seq() const noexcept { return gen_->seq; }

   private:
    void release() noexcept {
      if (slot_ != nullptr) {
        slot_->active.store(0, std::memory_order_seq_cst);
        slot_ = nullptr;
        gen_ = nullptr;
      }
    }

    const Generation* gen_ = nullptr;
    ReaderSlot* slot_ = nullptr;
  };

  /// A store read by at most `reader_slots` concurrent shards (slot
  /// indices [0, reader_slots)). Starts empty: acquire() returns a null
  /// Ref until the first install().
  explicit GenerationStore(std::size_t reader_slots)
      : slots_(reader_slots) {
    TASS_EXPECTS(reader_slots > 0);
  }

  GenerationStore(const GenerationStore&) = delete;
  GenerationStore& operator=(const GenerationStore&) = delete;

  ~GenerationStore() {
    delete current_.load(std::memory_order_acquire);
  }

  /// True once a generation has been installed.
  bool has_generation() const noexcept {
    return current_.load(std::memory_order_acquire) != nullptr;
  }

  /// Sequence number of the installed generation (0 when empty). A
  /// monitoring read, not a synchronisation point.
  std::uint64_t current_seq() const noexcept {
    const Generation* gen = current_.load(std::memory_order_acquire);
    return gen == nullptr ? 0 : gen->seq;
  }

  /// Wait-free reader entry: pins the current generation for slot
  /// `slot_index` and returns a guard over it (null when the store is
  /// empty). The guard must be dropped promptly — one request batch,
  /// not one connection lifetime — or reloads cannot retire.
  Ref acquire(std::size_t slot_index) const noexcept {
    TASS_EXPECTS(slot_index < slots_.size());
    ReaderSlot& slot = slots_[slot_index];
    for (;;) {
      const Generation* gen = current_.load(std::memory_order_seq_cst);
      if (gen == nullptr) return Ref{};
      // Announce the raw pointer, then re-validate: if the writer
      // swapped in between, retry on the newer generation. `gen` may
      // already be freed at this point (install + retire can both land
      // between the two loads — retire sees the slot still quiescent),
      // so nothing may be read through it until the validating load
      // still sees `gen` installed; only the pointer *value* goes into
      // the slot. Once validation passes, the writer's post-swap scan
      // is guaranteed to see this announcement before retiring `gen`.
      slot.active.store(reinterpret_cast<std::uintptr_t>(gen),
                        std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == gen) {
        return Ref{gen, &slot};
      }
      slot.active.store(0, std::memory_order_seq_cst);
    }
  }

  /// Writer entry (single writer; installs must be externally
  /// serialised): installs `image` as the next generation and returns
  /// the displaced one — nullptr on the first install — which the
  /// caller must hand to retire() once convenient. Wait-free.
  const Generation* install(Image image) {
    auto fresh = std::make_unique<Generation>(next_seq_++, std::move(image));
    return current_.exchange(fresh.release(), std::memory_order_seq_cst);
  }

  /// Blocks until no reader slot still announces `old`'s pointer value
  /// (readers hold a generation only for one request batch, so this
  /// terminates), then destroys it. Writer-side only; accepts nullptr
  /// as a no-op.
  void retire(const Generation* old) const {
    if (old == nullptr) return;
    const auto old_value = reinterpret_cast<std::uintptr_t>(old);
    for (const ReaderSlot& slot : slots_) {
      while (slot.active.load(std::memory_order_seq_cst) == old_value) {
        std::this_thread::yield();
      }
    }
    delete old;
  }

 private:
  std::atomic<const Generation*> current_{nullptr};
  std::uint64_t next_seq_ = 1;  // writer-only
  mutable std::vector<ReaderSlot> slots_;
};

}  // namespace tass::serve
