// tass_serve — the resident scan-planning daemon.
//
// The paper's footprint-reduction loop pays off operationally when many
// scanner processes share one topology-aware plan instead of each
// rebuilding it. Server mmaps sealed TSIM/TSI6 images (state/image.hpp)
// and answers rank / plan / scope (locate) / attribute (tally) queries
// for many concurrent clients over the length-prefixed wire protocol in
// serve/wire.hpp.
//
// Architecture:
//
//   * Connections are served by the sharded util::ThreadPool: run()
//     enters one long-lived for_each_shard region whose shard count is
//     the pool's participant count. Shard 0 owns the listening socket
//     and deals accepted connections round-robin across the shards
//     (including itself) through per-shard mailboxes; every shard then
//     polls and serves its own connection set, so a slow client only
//     ever delays its own shard.
//   * The query hot path is lock-free: a request batch acquires the
//     current generation through serve::GenerationStore (three
//     uncontended atomics, no mutex), resolves its whole address batch
//     with the existing batch kernels — LpmIndex::lookup_many /
//     PrefixPartition::tally_cells, which carry the util::cpu SIMD
//     dispatch straight onto the network path — and releases the
//     generation when the response is encoded. Mailboxes and the reload
//     queue use mutexes, but those are control-plane only.
//   * Reloads are RCU generation swaps: request_reload() (wire kReload,
//     or SIGHUP in the tass_serve binary) enqueues to a dedicated
//     reloader thread, which loads + validates the new image off the
//     query path, installs it with one atomic exchange, and retires the
//     displaced generation only after the last in-flight batch that
//     acquired it has drained. Queries never wait; a batch is answered
//     entirely by the one generation it pinned, and every response
//     carries that generation's sequence number and topology
//     fingerprint.
//
// Lifecycle: the constructor binds/listens and loads the initial
// image(s) synchronously, so port() is valid and clients may connect
// (backlogged) before run() starts. run() serves until stop() and is
// typically called on a dedicated thread; join that thread before
// destroying the server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/family.hpp"
#include "serve/generation.hpp"
#include "serve/wire.hpp"
#include "state/image.hpp"
#include "util/thread_pool.hpp"

namespace tass::serve {

struct ServerOptions {
  /// Image paths; an empty path means that family is not served (at
  /// least one must be set — the constructor throws otherwise).
  std::string v4_image_path;
  std::string v6_image_path;

  /// Listening endpoint. The daemon is a loopback/LAN planning service,
  /// not an Internet-facing one; the default binds loopback only.
  /// port 0 picks an ephemeral port (read it back via port()).
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;

  /// Serving shards, in the ThreadPool convention: the pool has
  /// `threads` participants including the thread that calls run();
  /// 0 means one per hardware thread.
  unsigned threads = 4;
};

class Server {
 public:
  /// Binds + listens and loads the configured images (throws
  /// tass::Error / tass::FormatError on socket or image failure).
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const noexcept { return port_; }
  /// Serving shard count (== reader-slot count of the generation
  /// stores).
  std::size_t shard_count() const noexcept { return shard_count_; }

  /// Serves connections until stop(). Blocking; the calling thread
  /// becomes shard 0 (accept + its share of connections).
  void run();

  /// Asks run() to return (thread-safe; idempotent). Open connections
  /// are closed; queued reloads are drained first.
  void stop();

  /// Enqueues a generation swap for `family`, reloading from `path` —
  /// or from the family's current path when nullopt (the SIGHUP
  /// semantics). Returns the reload ticket. The swap is asynchronous;
  /// observe completion via stats().swaps or a changed response
  /// fingerprint. A failed load (missing/corrupt file, wrong family)
  /// keeps the current generation serving and counts a failure.
  std::uint64_t request_reload(net::AddressFamily family,
                               std::optional<std::string> path = {});

  /// Snapshot of the serving counters (what wire kStats reports).
  StatsReply stats() const noexcept;
  std::uint64_t reload_failures() const noexcept {
    return reload_failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::size_t in_consumed = 0;
    std::vector<std::uint8_t> out;
    std::size_t out_sent = 0;
    bool closing = false;  // flush pending output, then close

    /// Queued-but-unsent response bytes — the backpressure signal.
    std::size_t unflushed() const noexcept { return out.size() - out_sent; }
  };

  struct Shard {
    int wake_read = -1;
    int wake_write = -1;
    std::mutex intake_mutex;
    std::vector<int> intake;  // accepted fds waiting for adoption
  };

  struct ReloadJob {
    net::AddressFamily family = net::AddressFamily::kIpv4;
    std::optional<std::string> path;
  };

  template <class Family>
  GenerationStore<state::BasicStateImage<Family>>& store() noexcept;
  template <class Family>
  const GenerationStore<state::BasicStateImage<Family>>& store()
      const noexcept;

  void shard_loop(std::size_t shard);
  void accept_ready(std::size_t shard);
  void adopt_intake(Shard& shard, std::vector<Connection>& connections);
  void wake(Shard& shard);
  void wake_all();

  // Reads whatever is available, then processes buffered frames up to
  // the output high-water mark and queues responses. Returns false
  // when the connection must close. A connection over the mark is not
  // polled for input at all, so TCP flow control throttles a client
  // that pipelines queries without draining responses; process_frames
  // is re-run after a flush brings the backlog under the low-water
  // mark to serve the frames that were deferred.
  bool service_input(std::size_t shard, Connection& connection);
  bool process_frames(std::size_t shard, Connection& connection);
  bool flush_output(Connection& connection);

  void handle_frame(std::size_t shard,
                    std::span<const std::uint8_t> payload,
                    Connection& connection);
  template <class Family>
  void handle_query(std::size_t shard, const RequestHeader& request,
                    Cursor& cursor, Connection& connection);
  void handle_reload(const RequestHeader& request, Cursor& cursor,
                     Connection& connection);

  void reloader_loop();
  template <class Family>
  void perform_reload(const ReloadJob& job);

  // Per-shard, per-family tally scratch: kept all-zero between
  // requests so a tally request only pays for the cells it touched.
  struct TallyScratch {
    std::vector<std::uint32_t> counts4;
    std::vector<std::uint32_t> counts6;
  };

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  util::ThreadPool pool_;
  std::size_t shard_count_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<TallyScratch> scratch_;
  std::atomic<std::size_t> next_assign_{0};
  std::atomic<bool> stop_{false};

  GenerationStore<state::StateImage> store4_;
  GenerationStore<state::StateImage6> store6_;

  // Current image paths (control plane; SIGHUP reloads re-read these).
  std::mutex path_mutex_;
  std::string v4_path_;
  std::string v6_path_;

  // Reload queue, drained by the dedicated reloader thread.
  std::mutex reload_mutex_;
  std::condition_variable reload_cv_;
  std::deque<ReloadJob> reload_queue_;
  bool reloader_stop_ = false;
  std::thread reloader_;

  // Serving counters (relaxed; monitoring only).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batched_addresses_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> last_install_us_{0};
  std::atomic<std::uint64_t> last_drain_us_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> reload_tickets_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
};

}  // namespace tass::serve
