#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace tass::serve {

namespace {

void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw Error(std::string("serve client: send: ") + std::strerror(errno));
  }
}

void recv_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw Error("serve client: connection closed by server");
    if (errno == EINTR) continue;
    throw Error(std::string("serve client: recv: ") + std::strerror(errno));
  }
}

net::GenericPrefix read_row_prefix(Cursor& cursor,
                                   net::AddressFamily family) {
  return read_prefix(cursor, family);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw Error(std::string("serve client: socket: ") +
                std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error("serve client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("serve client: connect to " + host + ":" +
                std::to_string(port) + ": " + what);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

std::vector<std::uint8_t> Client::roundtrip(
    const RequestHeader& request, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + kRequestHeaderBytes + body.size());
  put_u32(out,
          static_cast<std::uint32_t>(kRequestHeaderBytes + body.size()));
  encode_request_header(out, request);
  out.insert(out.end(), body.begin(), body.end());
  send_all(fd_, out.data(), out.size());

  std::uint8_t length_bytes[4];
  recv_all(fd_, length_bytes, sizeof length_bytes);
  std::uint32_t length;
  std::memcpy(&length, length_bytes, sizeof length);
  if (length > kMaxFrameBytes) {
    throw FormatError("serve client: oversized response frame");
  }
  std::vector<std::uint8_t> payload(length);
  recv_all(fd_, payload.data(), payload.size());
  return payload;
}

std::pair<ResponseHeader, Cursor> Client::transact(
    const RequestHeader& request, std::span<const std::uint8_t> body,
    std::vector<std::uint8_t>& payload) {
  RequestHeader stamped = request;
  stamped.request_id = next_request_id_++;
  payload = roundtrip(stamped, body);
  Cursor cursor{std::span<const std::uint8_t>(payload)};
  const ResponseHeader header = decode_response_header(cursor);
  if (header.request_id != stamped.request_id) {
    throw FormatError("serve client: response id mismatch");
  }
  if (header.status == Status::kError) {
    const auto message = cursor.bytes(header.count);
    throw Error("serve client: remote error: " +
                std::string(reinterpret_cast<const char*>(message.data()),
                            message.size()));
  }
  return {header, cursor};
}

ResponseHeader Client::ping() {
  RequestHeader request;
  request.op = Op::kPing;
  std::vector<std::uint8_t> payload;
  return transact(request, {}, payload).first;
}

std::pair<ResponseHeader, InfoReply> Client::info(
    net::AddressFamily family) {
  RequestHeader request;
  request.op = Op::kInfo;
  request.family = family;
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, {}, payload);
  InfoReply reply;
  reply.total_hosts = cursor.u64();
  reply.advertised_addresses = cursor.u64();
  reply.cells = cursor.u64();
  reply.live_cells = cursor.u64();
  reply.ranked = cursor.u64();
  reply.mode = cursor.u32();
  reply.family = cursor.u32();
  return {header, reply};
}

std::pair<ResponseHeader, std::vector<RankRow>> Client::rank(
    net::AddressFamily family, std::uint32_t top_n) {
  RequestHeader request;
  request.op = Op::kRank;
  request.family = family;
  request.count = top_n;
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, {}, payload);
  std::vector<RankRow> rows;
  rows.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    RankRow row;
    row.prefix = read_row_prefix(cursor, family);
    row.hosts = cursor.u64();
    row.density = cursor.f64();
    rows.push_back(row);
  }
  return {header, std::move(rows)};
}

std::pair<ResponseHeader, PlanReply> Client::plan(
    net::AddressFamily family, const PlanParams& params) {
  RequestHeader request;
  request.op = Op::kPlan;
  request.family = family;
  std::vector<std::uint8_t> body;
  encode_plan_params(body, params);
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, body, payload);
  PlanReply reply;
  reply.selected_addresses = cursor.u64();
  reply.covered_hosts = cursor.u64();
  reply.total_hosts = cursor.u64();
  reply.prefixes.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    reply.prefixes.push_back(read_row_prefix(cursor, family));
  }
  return {header, std::move(reply)};
}

std::pair<ResponseHeader, SampleReply> Client::sample(
    net::AddressFamily family, const SampleParams& params) {
  RequestHeader request;
  request.op = Op::kSample;
  request.family = family;
  std::vector<std::uint8_t> body;
  encode_sample_params(body, params);
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, body, payload);
  SampleReply reply;
  reply.total_draws = cursor.u64();
  reply.frame_units = cursor.u64();
  reply.seed = cursor.u64();
  reply.rows.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    SampleRow row;
    row.cell = cursor.u32();
    if (cursor.u32() != 0) {
      throw FormatError("serve: non-zero reserved field in sample row");
    }
    row.prefix = read_row_prefix(cursor, family);
    row.universe = cursor.u64();
    row.draws = cursor.u64();
    row.seed_hosts = cursor.u64();
    reply.rows.push_back(row);
  }
  return {header, std::move(reply)};
}

std::pair<ResponseHeader, ReduceReply> Client::reduce(
    net::AddressFamily family, const ReduceParams& params) {
  RequestHeader request;
  request.op = Op::kReduce;
  request.family = family;
  std::vector<std::uint8_t> body;
  encode_reduce_params(body, params);
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, body, payload);
  ReduceReply reply;
  reply.selected_prefixes = cursor.u64();
  reply.selected_addresses = cursor.u64();
  reply.overshoot_addresses = cursor.u64();
  reply.merges = cursor.u64();
  reply.prefixes.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    reply.prefixes.push_back(read_row_prefix(cursor, family));
  }
  return {header, std::move(reply)};
}

template <class Word>
std::pair<ResponseHeader, std::vector<std::uint32_t>> Client::locate_impl(
    net::AddressFamily family, std::span<const Word> addresses) {
  RequestHeader request;
  request.op = Op::kLocate;
  request.family = family;
  request.count = static_cast<std::uint32_t>(addresses.size());
  std::vector<std::uint8_t> body;
  for (const Word& word : addresses) put_address(body, word);
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, body, payload);
  std::vector<std::uint32_t> cells;
  cells.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    cells.push_back(cursor.u32());
  }
  return {header, std::move(cells)};
}

std::pair<ResponseHeader, std::vector<std::uint32_t>> Client::locate(
    std::span<const std::uint32_t> addresses) {
  return locate_impl<std::uint32_t>(net::AddressFamily::kIpv4, addresses);
}

std::pair<ResponseHeader, std::vector<std::uint32_t>> Client::locate(
    std::span<const net::Ipv6Address> addresses) {
  return locate_impl<net::Ipv6Address>(net::AddressFamily::kIpv6,
                                       addresses);
}

template <class Word>
std::pair<ResponseHeader, TallyReply> Client::tally_impl(
    net::AddressFamily family, std::span<const Word> addresses) {
  RequestHeader request;
  request.op = Op::kTally;
  request.family = family;
  request.count = static_cast<std::uint32_t>(addresses.size());
  std::vector<std::uint8_t> body;
  for (const Word& word : addresses) put_address(body, word);
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, body, payload);
  TallyReply reply;
  reply.attributed = cursor.u64();
  reply.unattributed = cursor.u64();
  reply.cells.reserve(header.count);
  for (std::uint32_t i = 0; i < header.count; ++i) {
    const std::uint32_t cell = cursor.u32();
    const std::uint32_t count = cursor.u32();
    reply.cells.emplace_back(cell, count);
  }
  return {header, std::move(reply)};
}

std::pair<ResponseHeader, TallyReply> Client::tally(
    std::span<const std::uint32_t> addresses) {
  return tally_impl<std::uint32_t>(net::AddressFamily::kIpv4, addresses);
}

std::pair<ResponseHeader, TallyReply> Client::tally(
    std::span<const net::Ipv6Address> addresses) {
  return tally_impl<net::Ipv6Address>(net::AddressFamily::kIpv6, addresses);
}

std::pair<ResponseHeader, StatsReply> Client::stats() {
  RequestHeader request;
  request.op = Op::kStats;
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(request, {}, payload);
  StatsReply reply;
  reply.requests = cursor.u64();
  reply.batched_addresses = cursor.u64();
  reply.swaps = cursor.u64();
  reply.last_swap_install_us = cursor.u64();
  reply.last_swap_drain_us = cursor.u64();
  reply.generations_retired = cursor.u64();
  return {header, reply};
}

std::pair<ResponseHeader, std::uint64_t> Client::reload(
    net::AddressFamily family, const std::string& path) {
  RequestHeader request;
  request.op = Op::kReload;
  request.family = family;
  request.count = static_cast<std::uint32_t>(path.size());
  std::vector<std::uint8_t> payload;
  auto [header, cursor] = transact(
      request,
      {reinterpret_cast<const std::uint8_t*>(path.data()), path.size()},
      payload);
  return {header, cursor.u64()};
}

ResponseHeader Client::shutdown() {
  RequestHeader request;
  request.op = Op::kShutdown;
  std::vector<std::uint8_t> payload;
  return transact(request, {}, payload).first;
}

}  // namespace tass::serve
