#include "serve/wire.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace tass::serve {

namespace {

// The wire is little-endian; the pipeline only targets LE hosts (the
// state image makes the same assumption), so the codecs are memcpy with
// a compile-time guard rather than byte-swapping paths nothing tests.
static_assert(std::endian::native == std::endian::little,
              "the tass_serve wire codec assumes a little-endian host");

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof value);
  std::memcpy(out.data() + at, &value, sizeof value);
}

}  // namespace

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  put_raw(out, value);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  put_raw(out, value);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  put_raw(out, value);
}
void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_raw(out, value);
}

std::uint8_t Cursor::u8() {
  if (remaining() < 1) throw FormatError("serve: truncated payload (u8)");
  return data_[pos_++];
}

std::uint16_t Cursor::u16() {
  if (remaining() < 2) throw FormatError("serve: truncated payload (u16)");
  std::uint16_t value;
  std::memcpy(&value, data_.data() + pos_, sizeof value);
  pos_ += sizeof value;
  return value;
}

std::uint32_t Cursor::u32() {
  if (remaining() < 4) throw FormatError("serve: truncated payload (u32)");
  std::uint32_t value;
  std::memcpy(&value, data_.data() + pos_, sizeof value);
  pos_ += sizeof value;
  return value;
}

std::uint64_t Cursor::u64() {
  if (remaining() < 8) throw FormatError("serve: truncated payload (u64)");
  std::uint64_t value;
  std::memcpy(&value, data_.data() + pos_, sizeof value);
  pos_ += sizeof value;
  return value;
}

double Cursor::f64() {
  std::uint64_t bits = u64();
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::span<const std::uint8_t> Cursor::bytes(std::size_t n) {
  if (remaining() < n) throw FormatError("serve: truncated payload (bytes)");
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void encode_request_header(std::vector<std::uint8_t>& out,
                           const RequestHeader& header) {
  out.push_back(static_cast<std::uint8_t>(header.op));
  out.push_back(static_cast<std::uint8_t>(header.family));
  put_u16(out, 0);
  put_u32(out, header.request_id);
  put_u32(out, header.count);
}

void encode_response_header(std::vector<std::uint8_t>& out,
                            const ResponseHeader& header) {
  out.push_back(static_cast<std::uint8_t>(header.op));
  out.push_back(static_cast<std::uint8_t>(header.status));
  put_u16(out, 0);
  put_u32(out, header.request_id);
  put_u64(out, header.generation);
  put_u64(out, header.fingerprint);
  put_u32(out, header.count);
}

namespace {

Op checked_op(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(Op::kPing) ||
      raw > static_cast<std::uint8_t>(Op::kReduce)) {
    throw FormatError("serve: unknown op " + std::to_string(raw));
  }
  return static_cast<Op>(raw);
}

net::AddressFamily checked_family(std::uint8_t raw) {
  // 0 is the "no image needed" wildcard; it decodes as kIpv4 and the
  // server ignores it for family-free ops.
  if (raw != 0 && raw != 4 && raw != 6) {
    throw FormatError("serve: unknown address family " +
                      std::to_string(raw));
  }
  return raw == 6 ? net::AddressFamily::kIpv6 : net::AddressFamily::kIpv4;
}

}  // namespace

RequestHeader decode_request_header(Cursor& cursor) {
  RequestHeader header;
  header.op = checked_op(cursor.u8());
  header.family = checked_family(cursor.u8());
  if (cursor.u16() != 0) {
    throw FormatError("serve: non-zero reserved field in request header");
  }
  header.request_id = cursor.u32();
  header.count = cursor.u32();
  return header;
}

ResponseHeader decode_response_header(Cursor& cursor) {
  ResponseHeader header;
  header.op = checked_op(cursor.u8());
  const std::uint8_t status = cursor.u8();
  if (status > static_cast<std::uint8_t>(Status::kAccepted)) {
    throw FormatError("serve: unknown status " + std::to_string(status));
  }
  header.status = static_cast<Status>(status);
  if (cursor.u16() != 0) {
    throw FormatError("serve: non-zero reserved field in response header");
  }
  header.request_id = cursor.u32();
  header.generation = cursor.u64();
  header.fingerprint = cursor.u64();
  header.count = cursor.u32();
  return header;
}

void put_address(std::vector<std::uint8_t>& out, std::uint32_t address) {
  put_u32(out, address);
}

void put_address(std::vector<std::uint8_t>& out, net::Ipv6Address address) {
  put_u64(out, address.hi());
  put_u64(out, address.lo());
}

void put_prefix(std::vector<std::uint8_t>& out, net::Prefix prefix) {
  put_u32(out, prefix.network().value());
  put_u32(out, static_cast<std::uint32_t>(prefix.length()));
}

void put_prefix(std::vector<std::uint8_t>& out, net::Ipv6Prefix prefix) {
  put_u64(out, prefix.network().hi());
  put_u64(out, prefix.network().lo());
  put_u32(out, static_cast<std::uint32_t>(prefix.length()));
  put_u32(out, 0);
}

net::GenericPrefix read_prefix(Cursor& cursor, net::AddressFamily family) {
  if (family == net::AddressFamily::kIpv4) {
    const std::uint32_t network = cursor.u32();
    const std::uint32_t length = cursor.u32();
    if (length > 32) {
      throw FormatError("serve: IPv4 prefix length " +
                        std::to_string(length));
    }
    return net::GenericPrefix::from(
        net::Prefix(net::Ipv4Address(network), static_cast<int>(length)));
  }
  const std::uint64_t hi = cursor.u64();
  const std::uint64_t lo = cursor.u64();
  const std::uint32_t length = cursor.u32();
  if (cursor.u32() != 0) {
    throw FormatError("serve: non-zero pad in IPv6 prefix row");
  }
  if (length > 128) {
    throw FormatError("serve: IPv6 prefix length " + std::to_string(length));
  }
  return net::GenericPrefix::from(
      net::Ipv6Prefix(net::Ipv6Address(hi, lo), static_cast<int>(length)));
}

void encode_plan_params(std::vector<std::uint8_t>& out,
                        const PlanParams& params) {
  put_f64(out, params.phi);
  put_f64(out, params.min_density);
  put_u64(out, params.max_addresses);
}

PlanParams decode_plan_params(Cursor& cursor) {
  PlanParams params;
  params.phi = cursor.f64();
  params.min_density = cursor.f64();
  params.max_addresses = cursor.u64();
  return params;
}

void encode_sample_params(std::vector<std::uint8_t>& out,
                          const SampleParams& params) {
  put_u64(out, params.budget);
  put_u32(out, params.floor);
  put_u32(out, 0);  // reserved
  put_u64(out, params.seed);
  put_f64(out, params.phi);
  put_f64(out, params.min_density);
}

SampleParams decode_sample_params(Cursor& cursor) {
  SampleParams params;
  params.budget = cursor.u64();
  params.floor = cursor.u32();
  if (cursor.u32() != 0) {
    throw FormatError("serve: non-zero reserved field in sample params");
  }
  params.seed = cursor.u64();
  params.phi = cursor.f64();
  params.min_density = cursor.f64();
  return params;
}

void encode_reduce_params(std::vector<std::uint8_t>& out,
                          const ReduceParams& params) {
  put_f64(out, params.phi);
  put_f64(out, params.min_density);
  put_u64(out, params.max_addresses);
  put_f64(out, params.max_overshoot);
  put_u32(out, params.min_prefixes);
  put_u32(out, 0);  // reserved
}

ReduceParams decode_reduce_params(Cursor& cursor) {
  ReduceParams params;
  params.phi = cursor.f64();
  params.min_density = cursor.f64();
  params.max_addresses = cursor.u64();
  params.max_overshoot = cursor.f64();
  params.min_prefixes = cursor.u32();
  if (cursor.u32() != 0) {
    throw FormatError("serve: non-zero reserved field in reduce params");
  }
  return params;
}

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw Error("serve: frame payload of " +
                std::to_string(payload.size()) + " bytes exceeds the " +
                std::to_string(kMaxFrameBytes) + " byte cap");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> buffer, std::size_t& offset) {
  if (buffer.size() - offset < 4) return std::nullopt;
  std::uint32_t length;
  std::memcpy(&length, buffer.data() + offset, sizeof length);
  if (length > kMaxFrameBytes) {
    throw FormatError("serve: announced frame of " +
                      std::to_string(length) + " bytes exceeds the cap");
  }
  if (buffer.size() - offset - 4 < length) return std::nullopt;
  const auto payload = buffer.subspan(offset + 4, length);
  offset += 4 + static_cast<std::size_t>(length);
  return payload;
}

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kInfo: return "info";
    case Op::kRank: return "rank";
    case Op::kPlan: return "plan";
    case Op::kLocate: return "locate";
    case Op::kTally: return "tally";
    case Op::kStats: return "stats";
    case Op::kReload: return "reload";
    case Op::kShutdown: return "shutdown";
    case Op::kSample: return "sample";
    case Op::kReduce: return "reduce";
  }
  return "unknown";
}

}  // namespace tass::serve
