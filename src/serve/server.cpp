#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "bgp/reduce.hpp"
#include "core/selection.hpp"
#include "scan/sampled_scope.hpp"
#include "util/error.hpp"

namespace tass::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Per-connection output backpressure: once a connection has this much
// unflushed response data queued, the shard stops decoding its frames
// (and stops reading its socket), letting TCP flow control push back on
// a pipelining client that is not draining responses. Decoding resumes
// once flushes bring the backlog under the low-water mark. A single
// response may overshoot the high-water mark — the check runs between
// frames — so the true bound is the mark plus one maximal response.
constexpr std::size_t kOutHighWater = 4u << 20;
constexpr std::size_t kOutLowWater = 1u << 20;

std::uint64_t elapsed_us(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            since)
          .count());
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("serve: " + what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Appends one complete response frame (length word + header + body) to
// the connection's output buffer.
void append_response(std::vector<std::uint8_t>& out, ResponseHeader header,
                     std::span<const std::uint8_t> body) {
  put_u32(out, static_cast<std::uint32_t>(kResponseHeaderBytes +
                                          body.size()));
  encode_response_header(out, header);
  out.insert(out.end(), body.begin(), body.end());
}

void append_error(std::vector<std::uint8_t>& out, Op op,
                  std::uint32_t request_id, std::string_view message) {
  ResponseHeader header;
  header.op = op;
  header.status = Status::kError;
  header.request_id = request_id;
  header.count = static_cast<std::uint32_t>(message.size());
  append_response(out, header,
                  {reinterpret_cast<const std::uint8_t*>(message.data()),
                   message.size()});
}

// Reads one batch of raw addresses off the request cursor in the
// family's wire width. The count is client-supplied: bound it by the
// bytes actually present in the (already size-capped) payload before
// sizing anything, so a malicious 16-byte frame announcing 2^32-1
// addresses cannot trigger a multi-GiB reserve.
template <class Family>
std::vector<typename Family::AddressWord> read_addresses(Cursor& cursor,
                                                         std::uint32_t n) {
  constexpr std::size_t kWordBytes =
      std::is_same_v<typename Family::AddressWord, std::uint32_t> ? 4 : 16;
  if (n > cursor.remaining() / kWordBytes) {
    throw FormatError("serve: address batch count " + std::to_string(n) +
                      " exceeds the bytes present in the frame");
  }
  std::vector<typename Family::AddressWord> addresses;
  addresses.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if constexpr (std::is_same_v<typename Family::AddressWord,
                                 std::uint32_t>) {
      addresses.push_back(cursor.u32());
    } else {
      const std::uint64_t hi = cursor.u64();
      const std::uint64_t lo = cursor.u64();
      addresses.push_back(net::Ipv6Address(hi, lo));
    }
  }
  return addresses;
}

}  // namespace

template <>
GenerationStore<state::StateImage>& Server::store<net::Ipv4Family>()
    noexcept {
  return store4_;
}
template <>
GenerationStore<state::StateImage6>& Server::store<net::Ipv6Family>()
    noexcept {
  return store6_;
}
template <>
const GenerationStore<state::StateImage>& Server::store<net::Ipv4Family>()
    const noexcept {
  return store4_;
}
template <>
const GenerationStore<state::StateImage6>& Server::store<net::Ipv6Family>()
    const noexcept {
  return store6_;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      shard_count_(pool_.thread_count()),
      store4_(shard_count_),
      store6_(shard_count_) {
  if (options_.v4_image_path.empty() && options_.v6_image_path.empty()) {
    throw Error("serve: at least one of v4/v6 image paths is required");
  }

  // Load the initial generation(s) synchronously so the server never
  // answers from an empty store for a configured family.
  if (!options_.v4_image_path.empty()) {
    store4_.retire(
        store4_.install(state::StateImage::load(options_.v4_image_path)));
    v4_path_ = options_.v4_image_path;
  }
  if (!options_.v6_image_path.empty()) {
    store6_.retire(
        store6_.install(state::StateImage6::load(options_.v6_image_path)));
    v6_path_ = options_.v6_image_path;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    throw_errno("bind/listen on " + options_.bind_address + ":" +
                std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  shards_.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    auto shard = std::make_unique<Shard>();
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("pipe2");
    }
    shard->wake_read = pipe_fds[0];
    shard->wake_write = pipe_fds[1];
    shards_.push_back(std::move(shard));
  }
  scratch_.resize(shard_count_);

  reloader_ = std::thread([this] { reloader_loop(); });
}

Server::~Server() {
  stop();
  {
    std::lock_guard lock(reload_mutex_);
    reloader_stop_ = true;
  }
  reload_cv_.notify_all();
  if (reloader_.joinable()) reloader_.join();
  for (auto& shard : shards_) {
    if (shard->wake_read >= 0) ::close(shard->wake_read);
    if (shard->wake_write >= 0) ::close(shard->wake_write);
    for (int fd : shard->intake) ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::run() {
  pool_.for_each_shard(shard_count_,
                       [this](std::size_t shard) { shard_loop(shard); });
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  wake_all();
}

std::uint64_t Server::request_reload(net::AddressFamily family,
                                     std::optional<std::string> path) {
  const std::uint64_t ticket =
      reload_tickets_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard lock(reload_mutex_);
    reload_queue_.push_back(ReloadJob{family, std::move(path)});
  }
  reload_cv_.notify_one();
  return ticket;
}

StatsReply Server::stats() const noexcept {
  StatsReply reply;
  reply.requests = requests_.load(std::memory_order_relaxed);
  reply.batched_addresses =
      batched_addresses_.load(std::memory_order_relaxed);
  reply.swaps = swaps_.load(std::memory_order_relaxed);
  reply.last_swap_install_us =
      last_install_us_.load(std::memory_order_relaxed);
  reply.last_swap_drain_us = last_drain_us_.load(std::memory_order_relaxed);
  reply.generations_retired = retired_.load(std::memory_order_relaxed);
  return reply;
}

void Server::wake(Shard& shard) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(shard.wake_write, &byte, 1);
}

void Server::wake_all() {
  for (auto& shard : shards_) wake(*shard);
}

void Server::accept_ready(std::size_t shard) {
  (void)shard;
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; keep serving
    }
    set_nodelay(fd);
    const std::size_t target =
        next_assign_.fetch_add(1, std::memory_order_relaxed) % shard_count_;
    {
      std::lock_guard lock(shards_[target]->intake_mutex);
      shards_[target]->intake.push_back(fd);
    }
    wake(*shards_[target]);
  }
}

void Server::adopt_intake(Shard& shard,
                          std::vector<Connection>& connections) {
  std::vector<int> fds;
  {
    std::lock_guard lock(shard.intake_mutex);
    fds.swap(shard.intake);
  }
  for (int fd : fds) {
    Connection connection;
    connection.fd = fd;
    connections.push_back(std::move(connection));
  }
}

void Server::shard_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Connection> connections;
  std::vector<pollfd> fds;

  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{shard.wake_read, POLLIN, 0});
    if (shard_index == 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    for (const Connection& connection : connections) {
      // Backpressure: a connection sitting on too much unflushed output
      // is not polled for input — its queries wait in the kernel buffer
      // (and eventually in the client) until the backlog drains.
      short events = 0;
      if (connection.unflushed() < kOutHighWater) events |= POLLIN;
      if (connection.unflushed() > 0) events |= POLLOUT;
      fds.push_back(pollfd{connection.fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0 && errno != EINTR) break;
    if (stop_.load(std::memory_order_acquire)) break;

    std::size_t at = 0;
    if (fds[at++].revents & POLLIN) {
      char buf[64];
      while (::read(shard.wake_read, buf, sizeof buf) > 0) {
      }
    }
    if (shard_index == 0 && (fds[at++].revents & POLLIN)) {
      accept_ready(shard_index);
    }
    adopt_intake(shard, connections);

    // fds[at..] parallel the connections snapshot taken before poll;
    // adopt_intake only appends, so indices still line up and adopted
    // connections (no pollfd yet) wait for the next round.
    std::size_t alive = 0;
    for (std::size_t i = 0; at + i < fds.size() && i < connections.size();
         ++i) {
      Connection& connection = connections[i];
      const short revents = fds[at + i].revents;
      bool keep = true;
      if (revents & (POLLERR | POLLNVAL)) keep = false;
      if (keep && (revents & (POLLIN | POLLHUP))) {
        keep = service_input(shard_index, connection);
      }
      if (keep && connection.unflushed() > 0) {
        keep = flush_output(connection);
      }
      // Frames deferred by backpressure: once the flush drained the
      // backlog under the low-water mark, serve them now rather than
      // waiting for more input that may never come.
      if (keep && !connection.closing && !connection.in.empty() &&
          connection.unflushed() < kOutLowWater) {
        keep = process_frames(shard_index, connection);
      }
      if (keep && connection.closing && connection.unflushed() == 0) {
        keep = false;
      }
      if (!keep) {
        ::close(connection.fd);
        connection.fd = -1;
      }
    }
    // Compact closed connections (and any adopted this round stay).
    for (std::size_t i = 0; i < connections.size(); ++i) {
      if (connections[i].fd >= 0) {
        if (alive != i) connections[alive] = std::move(connections[i]);
        ++alive;
      }
    }
    connections.resize(alive);
  }

  // Best-effort final flush so a shutdown response reaches the client.
  for (Connection& connection : connections) {
    flush_output(connection);
    ::close(connection.fd);
  }
}

bool Server::service_input(std::size_t shard, Connection& connection) {
  for (;;) {
    const std::size_t old_size = connection.in.size();
    connection.in.resize(old_size + 16384);
    const ssize_t n =
        ::recv(connection.fd, connection.in.data() + old_size, 16384, 0);
    if (n > 0) {
      connection.in.resize(old_size + static_cast<std::size_t>(n));
      continue;
    }
    connection.in.resize(old_size);
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  return process_frames(shard, connection);
}

bool Server::process_frames(std::size_t shard, Connection& connection) {
  try {
    for (;;) {
      // Backpressure: leave further frames buffered once too much
      // output is queued; shard_loop re-runs us after a flush drains
      // the backlog.
      if (connection.unflushed() >= kOutHighWater) break;
      const auto payload =
          next_frame(std::span<const std::uint8_t>(connection.in),
                     connection.in_consumed);
      if (!payload) break;
      handle_frame(shard, *payload, connection);
      if (connection.closing) break;
    }
  } catch (const std::exception&) {
    // Frame-layer violation (oversized announcement) or resource
    // exhaustion (bad_alloc on a huge-but-well-formed batch): drop the
    // peer rather than let the exception unwind the shard loop.
    return false;
  }

  if (connection.in_consumed > 0) {
    connection.in.erase(connection.in.begin(),
                        connection.in.begin() +
                            static_cast<std::ptrdiff_t>(
                                connection.in_consumed));
    connection.in_consumed = 0;
  }
  return true;
}

bool Server::flush_output(Connection& connection) {
  while (connection.out_sent < connection.out.size()) {
    const ssize_t n = ::send(
        connection.fd, connection.out.data() + connection.out_sent,
        connection.out.size() - connection.out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      connection.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  connection.out.clear();
  connection.out_sent = 0;
  return true;
}

void Server::handle_frame(std::size_t shard,
                          std::span<const std::uint8_t> payload,
                          Connection& connection) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Cursor cursor(payload);
  RequestHeader request;
  try {
    request = decode_request_header(cursor);
  } catch (const Error& e) {
    append_error(connection.out, Op::kPing, 0, e.what());
    return;
  }

  try {
    switch (request.op) {
      case Op::kPing: {
        ResponseHeader header;
        header.op = Op::kPing;
        header.request_id = request.request_id;
        append_response(connection.out, header, {});
        return;
      }
      case Op::kStats: {
        const StatsReply reply = stats();
        std::vector<std::uint8_t> body;
        put_u64(body, reply.requests);
        put_u64(body, reply.batched_addresses);
        put_u64(body, reply.swaps);
        put_u64(body, reply.last_swap_install_us);
        put_u64(body, reply.last_swap_drain_us);
        put_u64(body, reply.generations_retired);
        ResponseHeader header;
        header.op = Op::kStats;
        header.request_id = request.request_id;
        append_response(connection.out, header, body);
        return;
      }
      case Op::kReload:
        handle_reload(request, cursor, connection);
        return;
      case Op::kShutdown: {
        ResponseHeader header;
        header.op = Op::kShutdown;
        header.request_id = request.request_id;
        append_response(connection.out, header, {});
        connection.closing = true;
        stop();
        return;
      }
      default:
        break;
    }
    if (request.family == net::AddressFamily::kIpv6) {
      handle_query<net::Ipv6Family>(shard, request, cursor, connection);
    } else {
      handle_query<net::Ipv4Family>(shard, request, cursor, connection);
    }
  } catch (const Error& e) {
    append_error(connection.out, request.op, request.request_id, e.what());
  }
}

template <class Family>
void Server::handle_query(std::size_t shard, const RequestHeader& request,
                          Cursor& cursor, Connection& connection) {
  // Pin one generation for the whole batch: every byte of this response
  // comes from exactly this image, and the header says which one.
  const auto ref = store<Family>().acquire(shard);
  if (!ref) {
    append_error(connection.out, request.op, request.request_id,
                 Family::kFamily == net::AddressFamily::kIpv6
                     ? "serve: no IPv6 image is being served"
                     : "serve: no IPv4 image is being served");
    return;
  }
  const auto& image = ref.image();

  ResponseHeader header;
  header.op = request.op;
  header.request_id = request.request_id;
  header.generation = ref.seq();
  header.fingerprint = image.info().fingerprint;

  std::vector<std::uint8_t> body;
  switch (request.op) {
    case Op::kInfo: {
      const auto& info = image.info();
      put_u64(body, info.total_hosts);
      put_u64(body, info.advertised_addresses);
      put_u64(body, static_cast<std::uint64_t>(info.cell_count));
      put_u64(body, static_cast<std::uint64_t>(info.live_cells));
      put_u64(body, static_cast<std::uint64_t>(info.ranked_count));
      put_u32(body, static_cast<std::uint32_t>(info.mode));
      put_u32(body, static_cast<std::uint32_t>(info.family));
      break;
    }
    case Op::kRank: {
      const auto view = image.ranking();
      const std::size_t n =
          std::min<std::size_t>(request.count, view.ranked.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto& row = view.ranked[i];
        put_prefix(body, row.prefix);
        put_u64(body, row.hosts);
        put_f64(body, row.density);
      }
      header.count = static_cast<std::uint32_t>(n);
      break;
    }
    case Op::kPlan: {
      const PlanParams params = decode_plan_params(cursor);
      core::SelectionParams selection_params;
      selection_params.phi = params.phi;
      selection_params.min_density = params.min_density;
      if (params.max_addresses != 0) {
        selection_params.max_addresses = params.max_addresses;
      }
      const auto selection =
          core::select_by_density(image.ranking(), selection_params);
      put_u64(body, selection.selected_addresses);
      put_u64(body, selection.covered_hosts);
      put_u64(body, selection.total_hosts);
      for (const auto& prefix : selection.prefixes) {
        put_prefix(body, prefix);
      }
      header.count = static_cast<std::uint32_t>(selection.prefixes.size());
      break;
    }
    case Op::kLocate: {
      const auto addresses = read_addresses<Family>(cursor, request.count);
      std::vector<std::uint32_t> cells(addresses.size());
      image.partition().locate_many(addresses, cells);
      for (std::uint32_t cell : cells) put_u32(body, cell);
      header.count = static_cast<std::uint32_t>(cells.size());
      batched_addresses_.fetch_add(addresses.size(),
                                   std::memory_order_relaxed);
      break;
    }
    case Op::kTally: {
      const auto addresses = read_addresses<Family>(cursor, request.count);
      auto& counts =
          Family::kFamily == net::AddressFamily::kIpv6
              ? scratch_[shard].counts6
              : scratch_[shard].counts4;
      // The scratch vector is all-zero between requests; resizing keeps
      // that invariant (shrink drops zeros, grow appends zeros), so one
      // tally pays only for the cells it touches.
      if (counts.size() != image.partition().size()) {
        counts.resize(image.partition().size(), 0);
      }
      std::uint64_t attributed = 0;
      std::uint64_t unattributed = 0;
      image.partition().tally_cells(std::span(addresses), counts,
                                    attributed, unattributed);
      put_u64(body, attributed);
      put_u64(body, unattributed);
      std::uint32_t nonzero = 0;
      for (std::size_t cell = 0; cell < counts.size(); ++cell) {
        if (counts[cell] != 0) {
          put_u32(body, static_cast<std::uint32_t>(cell));
          put_u32(body, counts[cell]);
          counts[cell] = 0;
          ++nonzero;
        }
      }
      header.count = nonzero;
      batched_addresses_.fetch_add(addresses.size(),
                                   std::memory_order_relaxed);
      break;
    }
    case Op::kSample: {
      const SampleParams params = decode_sample_params(cursor);
      // Validate here rather than letting library preconditions abort
      // the daemon on a malformed request.
      if (!(params.phi > 0.0 && params.phi <= 1.0)) {
        throw Error("serve: sample phi must be in (0, 1]");
      }
      scan::SampleParams plan_params;
      plan_params.budget = params.budget;
      plan_params.floor = params.floor;
      plan_params.seed = params.seed;
      plan_params.phi = params.phi;
      plan_params.min_density = params.min_density;
      const auto design = scan::plan_sample(image.ranking(), plan_params);
      put_u64(body, design.total_draws);
      put_u64(body, design.frame_units);
      put_u64(body, design.seed);
      for (const auto& row : design.cells) {
        put_u32(body, row.cell);
        put_u32(body, 0);  // reserved
        put_prefix(body, row.prefix);
        put_u64(body, row.universe);
        put_u64(body, row.draws);
        put_u64(body, row.seed_hosts);
      }
      header.count = static_cast<std::uint32_t>(design.cells.size());
      break;
    }
    case Op::kReduce: {
      const ReduceParams params = decode_reduce_params(cursor);
      // Validate here rather than letting library preconditions abort
      // the daemon on a malformed request.
      if (!(params.phi > 0.0 && params.phi <= 1.0)) {
        throw Error("serve: reduce phi must be in (0, 1]");
      }
      if (!(std::isfinite(params.max_overshoot) &&
            params.max_overshoot >= 0.0)) {
        throw Error("serve: reduce max_overshoot must be finite and >= 0");
      }
      core::SelectionParams selection_params;
      selection_params.phi = params.phi;
      selection_params.min_density = params.min_density;
      if (params.max_addresses != 0) {
        selection_params.max_addresses = params.max_addresses;
      }
      const auto selection =
          core::select_by_density(image.ranking(), selection_params);
      bgp::ReduceParams reduce_params;
      reduce_params.max_overshoot = params.max_overshoot;
      reduce_params.min_prefixes = params.min_prefixes;
      const auto reduced = bgp::reduce<Family>(
          std::span<const typename Family::Prefix>(selection.prefixes),
          reduce_params);
      put_u64(body, static_cast<std::uint64_t>(selection.prefixes.size()));
      put_u64(body, selection.selected_addresses);
      put_u64(body, reduced.overshoot_addresses);
      put_u64(body, reduced.merges);
      for (const auto& prefix : reduced.prefixes) {
        put_prefix(body, prefix);
      }
      header.count = static_cast<std::uint32_t>(reduced.prefixes.size());
      break;
    }
    default:
      append_error(connection.out, request.op, request.request_id,
                   "serve: op carries no query semantics");
      return;
  }
  append_response(connection.out, header, body);
}

void Server::handle_reload(const RequestHeader& request, Cursor& cursor,
                           Connection& connection) {
  const auto path_bytes = cursor.bytes(request.count);
  std::optional<std::string> path;
  if (!path_bytes.empty()) {
    path.emplace(reinterpret_cast<const char*>(path_bytes.data()),
                 path_bytes.size());
  }
  const std::uint64_t ticket = request_reload(request.family, std::move(path));
  std::vector<std::uint8_t> body;
  put_u64(body, ticket);
  ResponseHeader header;
  header.op = Op::kReload;
  header.status = Status::kAccepted;
  header.request_id = request.request_id;
  append_response(connection.out, header, body);
}

template <class Family>
void Server::perform_reload(const ReloadJob& job) {
  using Image = state::BasicStateImage<Family>;
  const bool v6 = Family::kFamily == net::AddressFamily::kIpv6;
  std::string path;
  if (job.path) {
    path = *job.path;
  } else {
    std::lock_guard lock(path_mutex_);
    path = v6 ? v6_path_ : v4_path_;
  }
  if (path.empty()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "tass_serve: reload ignored: no %s image configured\n",
                 v6 ? "IPv6" : "IPv4");
    return;
  }

  const auto t0 = Clock::now();
  typename GenerationStore<Image>::Generation const* old = nullptr;
  try {
    Image fresh = Image::load(path);
    old = store<Family>().install(std::move(fresh));
  } catch (const std::exception& e) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "tass_serve: reload of %s failed: %s\n",
                 path.c_str(), e.what());
    return;
  }
  last_install_us_.store(elapsed_us(t0), std::memory_order_relaxed);

  const auto t1 = Clock::now();
  store<Family>().retire(old);
  last_drain_us_.store(elapsed_us(t1), std::memory_order_relaxed);
  if (old != nullptr) retired_.fetch_add(1, std::memory_order_relaxed);
  swaps_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard lock(path_mutex_);
    (v6 ? v6_path_ : v4_path_) = path;
  }
}

void Server::reloader_loop() {
  for (;;) {
    ReloadJob job;
    {
      std::unique_lock lock(reload_mutex_);
      reload_cv_.wait(lock, [this] {
        return reloader_stop_ || !reload_queue_.empty();
      });
      if (reload_queue_.empty()) return;  // stop requested, queue drained
      job = std::move(reload_queue_.front());
      reload_queue_.pop_front();
    }
    if (job.family == net::AddressFamily::kIpv6) {
      perform_reload<net::Ipv6Family>(job);
    } else {
      perform_reload<net::Ipv4Family>(job);
    }
  }
}

}  // namespace tass::serve
