// Blocking client for the tass_serve wire protocol.
//
// One Client is one TCP connection; it is intentionally synchronous
// (send one frame, read one frame) because the batching happens inside
// a request — a locate/tally call ships the whole address batch in one
// frame and the server resolves it with one batch-kernel call.
// Concurrency comes from running one Client per connection/thread, which
// is exactly how the bench and the swap-stress test drive the daemon.
//
// Every query result is returned together with the ResponseHeader so
// the caller can bind the answer to the (generation, fingerprint) pair
// that produced it. A Status::kError response is raised as tass::Error
// carrying the server's message; protocol violations (truncated or
// malformed frames) raise tass::FormatError.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/family.hpp"
#include "net/ipv6.hpp"
#include "serve/wire.hpp"

namespace tass::serve {

class Client {
 public:
  /// Connects to a tass_serve endpoint (throws tass::Error on failure).
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ResponseHeader ping();
  std::pair<ResponseHeader, InfoReply> info(net::AddressFamily family);
  std::pair<ResponseHeader, std::vector<RankRow>> rank(
      net::AddressFamily family, std::uint32_t top_n);
  std::pair<ResponseHeader, PlanReply> plan(net::AddressFamily family,
                                            const PlanParams& params);

  /// Sampled-scan budget allocation over the served ranking: the reply
  /// is the per-cell (universe, draws) design; drawing the concrete
  /// targets happens client-side (scan::SampledScopeT) from the
  /// echoed seed.
  std::pair<ResponseHeader, SampleReply> sample(net::AddressFamily family,
                                                const SampleParams& params);

  /// Density selection post-processed by bgp::reduce on the server: the
  /// reply's prefix list is the minimal overshoot-bounded cover of the
  /// selection (smaller than the kPlan list, never missing an address
  /// of it).
  std::pair<ResponseHeader, ReduceReply> reduce(net::AddressFamily family,
                                                const ReduceParams& params);

  /// Batched scope queries: cells[i] is the partition cell of
  /// addresses[i] (PrefixPartition::kNoCell when unrouted).
  std::pair<ResponseHeader, std::vector<std::uint32_t>> locate(
      std::span<const std::uint32_t> addresses);
  std::pair<ResponseHeader, std::vector<std::uint32_t>> locate(
      std::span<const net::Ipv6Address> addresses);

  /// Batched attribution histogram over the served partition.
  std::pair<ResponseHeader, TallyReply> tally(
      std::span<const std::uint32_t> addresses);
  std::pair<ResponseHeader, TallyReply> tally(
      std::span<const net::Ipv6Address> addresses);

  std::pair<ResponseHeader, StatsReply> stats();

  /// Asks for an asynchronous generation swap; an empty path means
  /// "reload the family's current image". Returns the reload ticket.
  std::pair<ResponseHeader, std::uint64_t> reload(
      net::AddressFamily family, const std::string& path = {});

  ResponseHeader shutdown();

 private:
  std::vector<std::uint8_t> roundtrip(const RequestHeader& request,
                                      std::span<const std::uint8_t> body);
  std::pair<ResponseHeader, Cursor> transact(
      const RequestHeader& request, std::span<const std::uint8_t> body,
      std::vector<std::uint8_t>& payload);

  template <class Word>
  std::pair<ResponseHeader, std::vector<std::uint32_t>> locate_impl(
      net::AddressFamily family, std::span<const Word> addresses);
  template <class Word>
  std::pair<ResponseHeader, TallyReply> tally_impl(
      net::AddressFamily family, std::span<const Word> addresses);

  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace tass::serve
