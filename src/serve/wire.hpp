// The tass_serve wire protocol: length-prefixed binary frames.
//
// One frame is a little-endian u32 payload length followed by that many
// payload bytes (kMaxFrameBytes cap; an oversized announcement is a
// protocol error and closes the connection). Requests and responses
// share the frame layer and differ only in their fixed payload headers:
//
//   request  header (12 bytes):
//     u8  op          one of Op
//     u8  family      4 / 6 selects the served image; 0 for ops that
//                     need none (ping, stats, shutdown)
//     u16 reserved    must be zero
//     u32 request_id  echoed verbatim in the response
//     u32 count       op-specific element count (batch size, top-n,
//                     path length); 0 when unused
//   response header (28 bytes):
//     u8  op          echoed
//     u8  status      Status
//     u16 reserved    zero
//     u32 request_id  echoed
//     u64 generation  sequence number of the generation that answered
//     u64 fingerprint topology fingerprint of that generation
//     u32 count       op-specific element count
//
// Every data-plane response carries the (generation, fingerprint) pair
// of the exact image that produced it, so a client can bind each answer
// to one generation even while reloads are racing the request stream —
// the invariant the swap-stress test asserts.
//
// Batched bodies are flat little-endian arrays in the family's natural
// width (v4 addresses u32, v6 addresses hi/lo u64 pairs), sized so a
// whole request batch feeds LpmIndex::lookup_many /
// PrefixPartition::tally_cells in one call.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/family.hpp"
#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace tass::serve {

inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kRequestHeaderBytes = 12;
inline constexpr std::size_t kResponseHeaderBytes = 28;

enum class Op : std::uint8_t {
  kPing = 1,      // liveness probe; empty body both ways
  kInfo = 2,      // image header fields of the current generation
  kRank = 3,      // top-n ranked prefixes; count = n
  kPlan = 4,      // density selection; body = phi/min_density/budget
  kLocate = 5,    // batch scope/attribution: addresses -> cell indices
  kTally = 6,     // batch attribution histogram over the partition
  kStats = 7,     // serving counters (process-wide, generation-free)
  kReload = 8,    // control: swap in a new image; body = path
  kShutdown = 9,  // control: stop the daemon
  kSample = 10,   // sampled-scan budget allocation; body = SampleParams
  kReduce = 11,   // overshoot-bounded plan reduction; body = ReduceParams
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,     // body = error message bytes (count = length)
  kAccepted = 2,  // async control op queued; body = u64 ticket
};

struct RequestHeader {
  Op op = Op::kPing;
  net::AddressFamily family = net::AddressFamily::kIpv4;
  std::uint32_t request_id = 0;
  std::uint32_t count = 0;
};

struct ResponseHeader {
  Op op = Op::kPing;
  Status status = Status::kOk;
  std::uint32_t request_id = 0;
  std::uint64_t generation = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
};

/// One ranked-prefix row of a kRank response (family-specific byte
/// layout on the wire; this is the decoded form).
struct RankRow {
  net::GenericPrefix prefix;
  std::uint64_t hosts = 0;
  double density = 0.0;
};

/// Decoded kPlan request body.
struct PlanParams {
  double phi = 1.0;
  double min_density = 0.0;
  std::uint64_t max_addresses = 0;  // 0 = unbounded
};

/// Decoded kPlan response body.
struct PlanReply {
  std::uint64_t selected_addresses = 0;
  std::uint64_t covered_hosts = 0;
  std::uint64_t total_hosts = 0;
  std::vector<net::GenericPrefix> prefixes;
};

/// Decoded kSample request body (mirrors scan::SampleParams — the
/// daemon plans the budget allocation; drawing the concrete targets is
/// the client's job, seeded by the reply's `seed`).
struct SampleParams {
  std::uint64_t budget = 100'000;
  std::uint32_t floor = 16;
  std::uint64_t seed = 1;
  double phi = 1.0;
  double min_density = 0.0;
};

/// One cell row of a kSample response.
struct SampleRow {
  std::uint32_t cell = 0;
  net::GenericPrefix prefix;
  std::uint64_t universe = 0;
  std::uint64_t draws = 0;
  std::uint64_t seed_hosts = 0;
};

/// Decoded kSample response body.
struct SampleReply {
  std::uint64_t total_draws = 0;
  std::uint64_t frame_units = 0;
  std::uint64_t seed = 0;
  std::vector<SampleRow> rows;  // ranking (density) order
};

/// Decoded kReduce request body: a density selection (the kPlan
/// parameters) post-processed by bgp::reduce into a minimal target list
/// whose address overshoot is bounded by `max_overshoot`.
struct ReduceParams {
  double phi = 1.0;
  double min_density = 0.0;
  std::uint64_t max_addresses = 0;  // 0 = unbounded
  double max_overshoot = 0.05;      // fraction of the exact union
  std::uint32_t min_prefixes = 0;   // stop reducing below this count
};

/// Decoded kReduce response body. `prefixes` is the reduced list; the
/// counters report what the reduction did to the selection.
struct ReduceReply {
  std::uint64_t selected_prefixes = 0;   // before reduction
  std::uint64_t selected_addresses = 0;  // exact union (v4 addresses,
                                         // v6 /64 units)
  std::uint64_t overshoot_addresses = 0;
  std::uint64_t merges = 0;
  std::vector<net::GenericPrefix> prefixes;
};

/// Decoded kInfo response body.
struct InfoReply {
  std::uint64_t total_hosts = 0;
  std::uint64_t advertised_addresses = 0;
  std::uint64_t cells = 0;
  std::uint64_t live_cells = 0;
  std::uint64_t ranked = 0;
  std::uint32_t mode = 0;  // core::PrefixMode value
  std::uint32_t family = 0;
};

/// Decoded kStats response body. All counters are process-wide and
/// monotonic except the last_* pair, which describe the most recent
/// completed generation swap.
struct StatsReply {
  std::uint64_t requests = 0;            // frames answered
  std::uint64_t batched_addresses = 0;   // addresses resolved via batches
  std::uint64_t swaps = 0;               // completed generation swaps
  std::uint64_t last_swap_install_us = 0;  // load+install of last swap
  std::uint64_t last_swap_drain_us = 0;    // retire wait of last swap
  std::uint64_t generations_retired = 0;
};

/// Decoded kTally response body.
struct TallyReply {
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;  // nonzero
};

// ---- primitive little-endian append/read helpers ----------------------
// Shared by the server, the client and the tests so there is exactly one
// byte-order implementation. The readers throw tass::FormatError on a
// truncated buffer.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);

/// A bounds-checked cursor over one received payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::span<const std::uint8_t> bytes(std::size_t n);
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- header codecs ----------------------------------------------------

/// Appends a request/response header to `out` (the frame length word is
/// written by the frame layer, not here).
void encode_request_header(std::vector<std::uint8_t>& out,
                           const RequestHeader& header);
void encode_response_header(std::vector<std::uint8_t>& out,
                            const ResponseHeader& header);

/// Decodes a header off the front of `payload`; throws tass::FormatError
/// on truncation, a non-zero reserved field, or an unknown op/status/
/// family value.
RequestHeader decode_request_header(Cursor& cursor);
ResponseHeader decode_response_header(Cursor& cursor);

// ---- body codecs ------------------------------------------------------
// Addresses and prefixes serialise in the family's width:
//   v4 address: u32             v4 prefix: u32 network, u32 length
//   v6 address: u64 hi, u64 lo  v6 prefix: u64 hi, u64 lo, u32 len, u32 0
// A RankRow appends u64 hosts + f64 density to the prefix row.

void put_address(std::vector<std::uint8_t>& out, std::uint32_t address);
void put_address(std::vector<std::uint8_t>& out, net::Ipv6Address address);
void put_prefix(std::vector<std::uint8_t>& out, net::Prefix prefix);
void put_prefix(std::vector<std::uint8_t>& out, net::Ipv6Prefix prefix);

net::GenericPrefix read_prefix(Cursor& cursor, net::AddressFamily family);

void encode_plan_params(std::vector<std::uint8_t>& out,
                        const PlanParams& params);
PlanParams decode_plan_params(Cursor& cursor);

void encode_sample_params(std::vector<std::uint8_t>& out,
                          const SampleParams& params);
SampleParams decode_sample_params(Cursor& cursor);

void encode_reduce_params(std::vector<std::uint8_t>& out,
                          const ReduceParams& params);
ReduceParams decode_reduce_params(Cursor& cursor);

/// Frames `payload` (prepends the length word). Throws tass::Error if
/// the payload exceeds kMaxFrameBytes.
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload);

/// Attempts to slice one complete frame payload out of `buffer`
/// starting at `offset`. Returns the payload span and advances
/// `offset` past the frame, or nullopt if the buffer does not yet hold
/// a complete frame. Throws tass::FormatError if the announced length
/// exceeds kMaxFrameBytes.
std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> buffer, std::size_t& offset);

std::string_view op_name(Op op) noexcept;

}  // namespace tass::serve
