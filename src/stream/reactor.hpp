// StreamReactor — the live-churn driver of the incremental pipeline.
//
// The paper's footprint-reduction loop is only honest if the TASS
// selection tracks the routing table as it actually moves; real scanners
// demonstrably re-steer off BGP signals within minutes (PAPERS.md). The
// reactor closes that loop for the serving daemon: it tails an
// UpdateSource of MRT BGP4MP messages, reassembles and decodes them
// through MrtFramer (with mid-stream resync on corruption), folds the
// per-prefix churn through a bounded CoalescingQueue, and drives the
// existing incremental machinery — PrefixPartition::apply_delta,
// core::rerank_cells (the churn_step sequence) — on a dedicated pipeline
// thread. Each re-scoped plan is sealed with state::encode_image and
// handed to the publisher callback, which typically installs it into a
// serve::GenerationStore (the reactor's pipeline thread is the store's
// single writer) or atomically writes it for tass_serve to reload.
//
// Equivalence contract (pinned by tests/stream_differential_test.cpp):
// with pacing disabled, feeding the reactor the encoded wire of a churn
// step and flushing produces a partition, ranking and counts vector
// bit-identical to the batch path — decode + rebased + apply +
// partition_delta + apply_delta + core::churn_step — for the same step,
// for any fragmentation of the wire and any engine thread count.
//
// Per-AS politeness (the paper's good-citizenship arm): when
// `as_probes_per_second` is set, each origin AS owns a scan::TokenBucket
// and a cell rescan must consume tokens equal to its address count
// (clamped to the burst) before the re-probe runs. Cells whose AS is out
// of budget are deferred — ranked at zero until their budget allows the
// rescan — and surfaced via paced_deferrals / deferred_pending, so burst
// churn in one AS can never make the reactor hammer that AS's space.
//
// Threading model: start() spawns two threads — ingest (source → framer
// → queue) and pipeline (queue → delta → rescan → rerank → publish).
// The sync API (feed/poll/flush) runs everything on the caller's thread
// for deterministic tests. The two modes must not be mixed while
// running. partition()/ranking()/table() may only be read when no
// pipeline thread is running (after stop()); stats() is safe anytime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "core/ranking.hpp"
#include "scan/engine.hpp"
#include "scan/ratelimit.hpp"
#include "stream/framer.hpp"
#include "stream/queue.hpp"
#include "stream/source.hpp"

namespace tass::stream {

struct ReactorOptions {
  /// Ranking granularity of the plan (must match the bootstrap ranking).
  core::PrefixMode mode = core::PrefixMode::kMore;

  /// Churn queue bound and what to do when a burst fills it.
  std::size_t queue_capacity = 1u << 16;
  OverflowPolicy overflow = OverflowPolicy::kBlock;

  /// Pipeline batching: a batch closes after `max_batch` folded actions
  /// or `max_batch_delay_seconds` of waiting, whichever comes first —
  /// the bounded-latency knob between per-update replanning and
  /// amortised bursts.
  std::size_t max_batch = 4096;
  double max_batch_delay_seconds = 0.025;

  /// Ingest read size per source poll.
  std::size_t read_chunk = 64u * 1024;

  /// Per-origin-AS politeness budget for rescans: each AS accrues this
  /// many probe tokens per second (burst defaults to one second of
  /// rate); a cell rescan consumes its address count, clamped to the
  /// burst. <= 0 disables pacing (every invalidated cell rescans
  /// immediately — the bit-identical-to-batch configuration).
  double as_probes_per_second = 0.0;
  double as_probe_burst = 0.0;

  /// Time source (seconds, monotonic). Injectable for deterministic
  /// pacing/latency tests; defaults to std::chrono::steady_clock.
  std::function<double()> clock;
};

/// One sealed plan handed to the publisher after a batch changed the
/// topology or ranking.
struct PublishedPlan {
  std::uint64_t seq = 0;          // monotonic per reactor, from 1
  std::uint64_t fingerprint = 0;  // bgp::partition_fingerprint
  std::vector<std::byte> image;   // state::encode_image bytes (TSIM)
  std::uint64_t batch_updates = 0;       // folded actions in the batch
  double update_to_plan_seconds = 0.0;   // oldest enqueue → publish
};

/// Cumulative reactor accounting (all monotonic except the gauges).
struct ReactorStats {
  FramerStats framer;
  QueueStats queue;
  std::uint64_t batches = 0;
  std::uint64_t applied_announces = 0;
  std::uint64_t applied_withdraws = 0;
  std::uint64_t applied_reorigins = 0;
  /// Withdraws of absent prefixes and re-announcements with unchanged
  /// origins — legitimate wire chatter that changes nothing.
  std::uint64_t noop_updates = 0;
  /// Announces overlapping a live cell (or another batch add): the
  /// partition stays disjoint, the update is counted and dropped.
  std::uint64_t rejected_overlaps = 0;
  std::uint64_t paced_deferrals = 0;   // rescans postponed by AS budget
  std::uint64_t deferred_pending = 0;  // gauge: cells awaiting budget
  std::uint64_t plans_published = 0;
  std::uint64_t rescanned_cells = 0;
  std::uint64_t rescanned_addresses = 0;
  double last_update_to_plan_seconds = 0.0;
  double max_update_to_plan_seconds = 0.0;
};

class StreamReactor {
 public:
  using Publisher = std::function<void(PublishedPlan)>;

  /// Bootstraps from a routing table and its per-cell responsive counts
  /// (cell i == table[i]). The table must be ascending by prefix,
  /// duplicate-free, pairwise disjoint, with non-empty origin sets;
  /// counts must be table-aligned. Throws tass::Error on overlap (via
  /// the partition build).
  StreamReactor(std::vector<bgp::Pfx2AsRecord> table,
                std::vector<std::uint32_t> counts,
                ReactorOptions options = {});
  ~StreamReactor();

  StreamReactor(const StreamReactor&) = delete;
  StreamReactor& operator=(const StreamReactor&) = delete;

  /// Attaches the rescan capability: cells invalidated by churn are
  /// re-probed through `engine` against `oracle` (both borrowed; must
  /// outlive the reactor or be reset to null). Without a rescanner,
  /// invalidated cells score zero until the next full seed.
  void set_rescanner(const scan::ProbeOracle* oracle,
                     const scan::ScanEngine* engine);

  /// Publisher for sealed plans, invoked on the pipeline thread (the
  /// single-writer seat of a serve::GenerationStore). Set before
  /// start()/feed().
  void set_publisher(Publisher publisher);

  // --- Synchronous mode (deterministic; everything on this thread) ---

  /// Pushes raw feed bytes: frames, decodes, and enqueues. When the
  /// queue fills, a batch is processed inline (backpressure never drops
  /// under kBlock).
  void feed(std::span<const std::byte> data);

  /// Processes one batch if the queue or the deferred set has work;
  /// returns whether a batch ran.
  bool poll();

  /// Processes batches until the queue is empty and no deferred rescan
  /// is currently within budget.
  void flush();

  /// End-of-stream bookkeeping: accounts a partial framer tail.
  void finish();

  // --- Asynchronous mode ---

  /// Spawns the ingest + pipeline threads over `source`. The reactor
  /// runs until the source is exhausted (then drains and idles) or
  /// stop(). One start per reactor lifetime at a time.
  void start(std::unique_ptr<UpdateSource> source);

  /// Stops the threads: closes the queue (waking any blocked producer),
  /// joins ingest, drains remaining work, joins pipeline. Idempotent.
  void stop();

  /// Graceful end-of-feed: blocks until the source is exhausted and
  /// every queued update has been processed, then joins the threads.
  /// The source must terminate (EOF / close()) for join to return.
  void join();

  bool running() const noexcept { return running_; }

  // --- State views (not concurrent with a running pipeline) ---

  const bgp::PrefixPartition& partition() const noexcept {
    return partition_;
  }
  const core::DensityRanking& ranking() const noexcept { return ranking_; }
  const std::vector<bgp::Pfx2AsRecord>& table() const noexcept {
    return table_;
  }
  std::span<const std::uint32_t> counts() const noexcept { return counts_; }

  /// Snapshot of the reactor counters (thread-safe anytime).
  ReactorStats stats() const;

 private:
  struct Deferred {
    std::uint32_t cell = 0;
    net::Prefix prefix;   // guards against slot reuse after removal
    std::uint32_t asn = 0;
    double enqueued_at = 0.0;
  };

  void ingest_loop(UpdateSource& source);
  void pipeline_loop();

  /// Decodes framer output into queue actions. `blocking` selects
  /// offer() (ingest thread) vs try_offer()+inline batch (sync mode).
  void drain_framer(bool blocking);
  void enqueue_action(PrefixAction action, bool blocking);

  /// Drains one batch through classify → delta → rescan → rerank →
  /// publish. Returns whether any work was done.
  bool process_batch();

  /// True when an announce of `prefix` would overlap a cell surviving
  /// this batch (present, live, and not in `withdrawn_cells`).
  bool overlaps_surviving(const net::Prefix& prefix,
                          const std::vector<std::uint32_t>& withdrawn_cells)
      const;

  /// Moves budget-ready deferred cells into `dirty`, consuming tokens.
  void collect_ready_deferred(double now,
                              std::vector<std::uint32_t>& dirty,
                              double& oldest_enqueue);

  scan::TokenBucket& bucket_for(std::uint32_t asn);
  bool pacing_enabled() const noexcept {
    return options_.as_probes_per_second > 0.0;
  }

  /// Binary search of table_ by prefix; table_.size() when absent.
  std::size_t table_find(const net::Prefix& prefix) const noexcept;

  void snapshot_framer_stats();

  ReactorOptions options_;
  std::function<double()> clock_;

  // Plan state (pipeline thread exclusively while running).
  std::vector<bgp::Pfx2AsRecord> table_;  // ascending by prefix
  bgp::PrefixPartition partition_;
  std::vector<std::uint32_t> counts_;
  core::DensityRanking ranking_;
  std::vector<Deferred> deferred_;
  std::unordered_map<std::uint32_t, scan::TokenBucket> buckets_;
  std::uint64_t seq_ = 0;

  const scan::ProbeOracle* oracle_ = nullptr;
  const scan::ScanEngine* engine_ = nullptr;
  Publisher publisher_;

  // Ingest state (ingest thread, or caller in sync mode).
  MrtFramer framer_;
  CoalescingQueue queue_;

  std::unique_ptr<UpdateSource> source_;
  std::thread ingest_thread_;
  std::thread pipeline_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  // Counter snapshot readable from any thread.
  mutable std::mutex stats_mutex_;
  ReactorStats stats_;
};

}  // namespace tass::stream
