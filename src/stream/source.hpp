// Update-feed byte sources for the live BGP stream reactor.
//
// Real scanners that track BGP (see "A Detailed Measurement View on IPv6
// Scanners and Their Adaption to BGP Signals", PAPERS.md) consume MRT
// BGP4MP update streams from wherever a collector publishes them: a file
// that keeps growing (RouteViews dump directories), a pipe from a decoder
// process, or a TCP socket. UpdateSource is the one interface the
// stream::StreamReactor ingests from; every implementation is a plain
// byte tap — framing, decoding and resync all live in stream::MrtFramer,
// so a source never needs to understand record boundaries.
//
// The contract is poll-friendly rather than callback-driven: read() may
// return 0 ("nothing available right now"), and exhausted() turns true
// only when the source can never produce another byte. That keeps the
// ingest loop stoppable (it never parks in an unbounded blocking read)
// and makes the file-tail follow mode a natural fit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace tass::stream {

/// A pollable byte stream of MRT update data.
class UpdateSource {
 public:
  virtual ~UpdateSource() = default;

  /// Copies up to out.size() available bytes into `out`, returning the
  /// count. 0 means "nothing available right now" — the caller should
  /// poll again unless exhausted(). Never blocks for longer than a short
  /// internal poll interval, so an ingest loop stays responsive to stop.
  virtual std::size_t read(std::span<std::byte> out) = 0;

  /// True once the stream has ended for good (EOF on a non-follow file,
  /// peer close on a socket, close() on a buffer). After this, read()
  /// returns 0 forever.
  virtual bool exhausted() = 0;
};

/// In-memory source: serves a byte buffer in bounded chunks. Appendable
/// and thread-safe, so tests and benches can keep feeding a running
/// reactor and then close() the stream; also the replay vehicle for a
/// fully buffered update trace. `max_chunk` caps each read so callers
/// can exercise ragged fragment boundaries (0 = unbounded).
class BufferSource final : public UpdateSource {
 public:
  explicit BufferSource(std::vector<std::byte> data = {},
                        std::size_t max_chunk = 0);

  std::size_t read(std::span<std::byte> out) override;
  bool exhausted() override;

  /// Appends more stream bytes (thread-safe; no-op-rejected after
  /// close()).
  void append(std::span<const std::byte> data);
  /// Marks the end of the stream: once drained, exhausted() turns true.
  void close();

 private:
  std::mutex mutex_;
  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
  std::size_t max_chunk_;
  bool closed_ = false;
};

/// Tails a file of MRT records. With follow == false this is a plain
/// sequential reader that is exhausted at EOF (batch replay of a dump
/// file, including the mid-record-EOF fault case). With follow == true it
/// behaves like `tail -f`: EOF just means "no new bytes yet" and the
/// reader keeps polling as the collector appends. Throws tass::Error if
/// the file cannot be opened.
class FileTailSource final : public UpdateSource {
 public:
  explicit FileTailSource(const std::string& path, bool follow = false);
  ~FileTailSource() override;

  FileTailSource(const FileTailSource&) = delete;
  FileTailSource& operator=(const FileTailSource&) = delete;

  std::size_t read(std::span<std::byte> out) override;
  bool exhausted() override;

 private:
  int fd_ = -1;
  bool follow_ = false;
  bool eof_ = false;
};

/// Reads from an already-open descriptor — a pipe from a decoder process
/// or a connected socket. Uses a short poll() before each read so the
/// ingest loop never parks indefinitely; EOF (peer close) exhausts the
/// source. Owns the descriptor.
class FdSource final : public UpdateSource {
 public:
  explicit FdSource(int fd);
  ~FdSource() override;

  FdSource(const FdSource&) = delete;
  FdSource& operator=(const FdSource&) = delete;

  std::size_t read(std::span<std::byte> out) override;
  bool exhausted() override;

 private:
  int fd_ = -1;
  bool eof_ = false;
};

/// Connects a TCP socket to host:port and returns it as a source.
/// Throws tass::Error on resolution or connection failure.
std::unique_ptr<UpdateSource> connect_tcp_source(const std::string& host,
                                                 std::uint16_t port);

/// Builds a source from a command-line spec:
///   "tcp:HOST:PORT"  live socket feed
///   "fd:N"           inherited descriptor (pipe)
///   anything else    file path, tailed with the given follow mode
std::unique_ptr<UpdateSource> make_update_source(const std::string& spec,
                                                 bool follow);

}  // namespace tass::stream
