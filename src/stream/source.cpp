#include "stream/source.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"

namespace tass::stream {
namespace {

constexpr int kPollMillis = 20;  // short parks keep ingest loops stoppable

/// Reads available bytes from `fd` after a bounded poll; returns the
/// byte count, 0 when nothing is ready, and sets *eof on end-of-stream.
std::size_t poll_read(int fd, std::span<std::byte> out, bool* eof) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, kPollMillis);
  if (ready <= 0) return 0;  // timeout or transient poll error: retry later
  if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) return 0;
  ssize_t got = ::read(fd, out.data(), out.size());
  if (got > 0) return static_cast<std::size_t>(got);
  if (got == 0) {
    *eof = true;
    return 0;
  }
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return 0;
  // Hard read error: treat as end-of-stream rather than crashing the
  // ingest loop; the reactor surfaces the early termination through its
  // source-exhausted accounting.
  *eof = true;
  return 0;
}

}  // namespace

BufferSource::BufferSource(std::vector<std::byte> data, std::size_t max_chunk)
    : data_(std::move(data)), max_chunk_(max_chunk) {}

std::size_t BufferSource::read(std::span<std::byte> out) {
  std::lock_guard lock(mutex_);
  std::size_t available = data_.size() - cursor_;
  std::size_t take = std::min(available, out.size());
  if (max_chunk_ != 0) take = std::min(take, max_chunk_);
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(cursor_), take,
              out.begin());
  cursor_ += take;
  // Reclaim consumed bytes occasionally so a long-running appendable
  // buffer does not grow without bound.
  if (cursor_ > (1u << 20) && cursor_ == data_.size()) {
    data_.clear();
    cursor_ = 0;
  }
  return take;
}

bool BufferSource::exhausted() {
  std::lock_guard lock(mutex_);
  return closed_ && cursor_ == data_.size();
}

void BufferSource::append(std::span<const std::byte> data) {
  std::lock_guard lock(mutex_);
  TASS_EXPECTS(!closed_);
  data_.insert(data_.end(), data.begin(), data.end());
}

void BufferSource::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
}

FileTailSource::FileTailSource(const std::string& path, bool follow)
    : follow_(follow) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    throw Error("stream: cannot open feed file '" + path +
                "': " + std::strerror(errno));
  }
}

FileTailSource::~FileTailSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t FileTailSource::read(std::span<std::byte> out) {
  if (eof_) return 0;
  ssize_t got = ::read(fd_, out.data(), out.size());
  if (got > 0) return static_cast<std::size_t>(got);
  if (got < 0 && errno == EINTR) return 0;
  if (got == 0 && follow_) {
    // At the current end of a growing file: wait briefly for appends.
    struct timespec ts {
      0, kPollMillis * 1000000L
    };
    ::nanosleep(&ts, nullptr);
    return 0;
  }
  eof_ = true;
  return 0;
}

bool FileTailSource::exhausted() { return eof_; }

FdSource::FdSource(int fd) : fd_(fd) {
  TASS_EXPECTS(fd >= 0);
}

FdSource::~FdSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t FdSource::read(std::span<std::byte> out) {
  if (eof_) return 0;
  return poll_read(fd_, out, &eof_);
}

bool FdSource::exhausted() { return eof_; }

std::unique_ptr<UpdateSource> connect_tcp_source(const std::string& host,
                                                 std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    throw Error("stream: cannot resolve feed host '" + host +
                "': " + gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw Error("stream: cannot connect to feed " + host + ":" + service);
  }
  return std::make_unique<FdSource>(fd);
}

std::unique_ptr<UpdateSource> make_update_source(const std::string& spec,
                                                 bool follow) {
  if (spec.rfind("tcp:", 0) == 0) {
    std::string rest = spec.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw Error("stream: bad tcp feed spec '" + spec +
                  "' (want tcp:HOST:PORT)");
    }
    unsigned long port = 0;
    try {
      port = std::stoul(rest.substr(colon + 1));
    } catch (const std::exception&) {
      throw Error("stream: bad port in feed spec '" + spec + "'");
    }
    if (port == 0 || port > 65535) {
      throw Error("stream: bad port in feed spec '" + spec + "'");
    }
    return connect_tcp_source(rest.substr(0, colon),
                              static_cast<std::uint16_t>(port));
  }
  if (spec.rfind("fd:", 0) == 0) {
    int fd = -1;
    try {
      fd = std::stoi(spec.substr(3));
    } catch (const std::exception&) {
      throw Error("stream: bad fd feed spec '" + spec + "'");
    }
    if (fd < 0) throw Error("stream: bad fd feed spec '" + spec + "'");
    return std::make_unique<FdSource>(fd);
  }
  return std::make_unique<FileTailSource>(spec, follow);
}

}  // namespace tass::stream
