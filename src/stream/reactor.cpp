#include "stream/reactor.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>

#include "scan/scope.hpp"
#include "state/image.hpp"
#include "util/error.hpp"

namespace tass::stream {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when `prefix` equals/contains/is-contained-by any prefix in the
/// ascending `sorted` set. Ancestor probes cover "contained by" (a CIDR
/// container is always an ancestor); the first successor at or after
/// `prefix` covers "contains" (any overlapping successor's network lies
/// inside `prefix`).
bool overlaps_sorted(const net::Prefix& prefix,
                     const std::vector<net::Prefix>& sorted) {
  net::Prefix ancestor = prefix;
  while (true) {
    if (std::binary_search(sorted.begin(), sorted.end(), ancestor)) {
      return true;
    }
    if (ancestor.length() == 0) break;
    ancestor = ancestor.parent();
  }
  auto it = std::lower_bound(sorted.begin(), sorted.end(), prefix);
  return it != sorted.end() && prefix.contains(*it);
}

}  // namespace

StreamReactor::StreamReactor(std::vector<bgp::Pfx2AsRecord> table,
                             std::vector<std::uint32_t> counts,
                             ReactorOptions options)
    : options_(std::move(options)),
      clock_(options_.clock ? options_.clock : steady_seconds),
      table_(std::move(table)),
      counts_(std::move(counts)),
      queue_(options_.queue_capacity, options_.overflow) {
  TASS_EXPECTS(counts_.size() == table_.size());
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(table_.size());
  for (std::size_t i = 0; i < table_.size(); ++i) {
    TASS_EXPECTS(!table_[i].origins.empty());
    if (i > 0) TASS_EXPECTS(table_[i - 1].prefix < table_[i].prefix);
    prefixes.push_back(table_[i].prefix);
  }
  partition_ = bgp::PrefixPartition(std::move(prefixes));
  ranking_ = core::rank_by_density(std::span<const std::uint32_t>(counts_),
                                   partition_, options_.mode);
}

StreamReactor::~StreamReactor() { stop(); }

void StreamReactor::set_rescanner(const scan::ProbeOracle* oracle,
                                  const scan::ScanEngine* engine) {
  oracle_ = oracle;
  engine_ = engine;
}

void StreamReactor::set_publisher(Publisher publisher) {
  publisher_ = std::move(publisher);
}

std::size_t StreamReactor::table_find(
    const net::Prefix& prefix) const noexcept {
  auto it = std::lower_bound(
      table_.begin(), table_.end(), prefix,
      [](const bgp::Pfx2AsRecord& record, const net::Prefix& p) {
        return record.prefix < p;
      });
  if (it != table_.end() && it->prefix == prefix) {
    return static_cast<std::size_t>(it - table_.begin());
  }
  return table_.size();
}

scan::TokenBucket& StreamReactor::bucket_for(std::uint32_t asn) {
  auto it = buckets_.find(asn);
  if (it == buckets_.end()) {
    const double rate = options_.as_probes_per_second;
    const double burst = options_.as_probe_burst > 0.0
                             ? options_.as_probe_burst
                             : std::max(rate, 1.0);
    it = buckets_.emplace(asn, scan::TokenBucket(rate, burst)).first;
  }
  return it->second;
}

void StreamReactor::snapshot_framer_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_.framer = framer_.stats();
}

void StreamReactor::drain_framer(bool blocking) {
  while (std::optional<bgp::RibDelta> delta = framer_.next()) {
    const double now = clock_();
    // Wire order: an UPDATE carries its withdrawals before its NLRI, and
    // encode_mrt_updates writes withdrawal messages first — preserving
    // that order into the queue keeps remove-before-add semantics for
    // overlap-shaped churn (e.g. merge steps).
    for (const net::Prefix& prefix : delta->withdraw) {
      enqueue_action(PrefixAction{prefix, std::nullopt, now}, blocking);
    }
    for (bgp::Pfx2AsRecord& record : delta->announce) {
      enqueue_action(
          PrefixAction{record.prefix, std::move(record.origins), now},
          blocking);
    }
  }
}

void StreamReactor::enqueue_action(PrefixAction action, bool blocking) {
  if (blocking) {
    queue_.offer(std::move(action));  // false only when closed: shutdown
    return;
  }
  // Sync mode: a full queue is drained inline — backpressure becomes an
  // immediate batch on the caller's thread, so kBlock never deadlocks.
  while (!queue_.try_offer(action)) {
    if (queue_.closed()) return;
    const bool did_work = process_batch();
    TASS_EXPECTS(did_work);  // the queue was full, so a batch must drain
  }
}

bool StreamReactor::overlaps_surviving(
    const net::Prefix& prefix,
    const std::vector<std::uint32_t>& withdrawn_cells) const {
  const auto withdrawn = [&](std::uint32_t cell) {
    return std::find(withdrawn_cells.begin(), withdrawn_cells.end(), cell) !=
           withdrawn_cells.end();
  };
  // A live cell containing prefix's network overlaps it (two prefixes
  // sharing an address nest by CIDR structure).
  if (std::optional<std::uint32_t> hit = partition_.locate(prefix.network())) {
    if (!withdrawn(*hit)) return true;
  }
  // Live cells whose network lies inside `prefix` are contained in it.
  const bgp::PrefixPartition::Raw raw = partition_.raw();
  const bgp::SortedCell probe{prefix, 0};
  auto it = std::lower_bound(raw.sorted.begin(), raw.sorted.end(), probe);
  for (; it != raw.sorted.end() &&
         it->prefix.network().value() <= prefix.last().value();
       ++it) {
    if (!withdrawn(it->slot)) return true;
  }
  return false;
}

void StreamReactor::collect_ready_deferred(
    double now, std::vector<std::uint32_t>& dirty, double& oldest_enqueue) {
  if (deferred_.empty()) return;
  std::vector<Deferred> keep;
  keep.reserve(deferred_.size());
  for (Deferred& entry : deferred_) {
    // The slot may have been freed — or freed and reused by a different
    // prefix — since the deferral; a re-announced identical prefix gets
    // rescanned through the added-cells path instead.
    if (entry.cell >= partition_.size() || !partition_.live(entry.cell) ||
        partition_.prefix(entry.cell) != entry.prefix) {
      continue;
    }
    scan::TokenBucket& bucket = bucket_for(entry.asn);
    const double tokens = std::min(
        static_cast<double>(entry.prefix.size()), bucket.burst());
    if (bucket.try_consume(tokens, now)) {
      dirty.push_back(entry.cell);
      oldest_enqueue = std::min(oldest_enqueue, entry.enqueued_at);
    } else {
      keep.push_back(entry);
    }
  }
  deferred_.swap(keep);
}

bool StreamReactor::process_batch() {
  const double now = clock_();
  std::vector<PrefixAction> actions = queue_.drain(options_.max_batch);

  double oldest = std::numeric_limits<double>::infinity();

  // --- Classify against the current table -------------------------------
  std::vector<net::Prefix> removes;
  std::vector<std::uint32_t> withdrawn_cells;
  std::vector<bgp::Pfx2AsRecord> adds;
  std::vector<double> adds_enqueued;
  std::vector<net::Prefix> adds_sorted;  // overlap probe set, ascending
  std::uint64_t announces = 0, withdraws = 0, reorigins = 0, noops = 0,
                rejected = 0;

  for (PrefixAction& action : actions) {
    const std::size_t pos = table_find(action.prefix);
    if (action.is_withdraw()) {
      if (pos == table_.size()) {
        ++noops;  // withdraw of an absent prefix: wire chatter
        continue;
      }
      removes.push_back(action.prefix);
      withdrawn_cells.push_back(*partition_.index_of(action.prefix));
      ++withdraws;
      oldest = std::min(oldest, action.enqueued_at);
      continue;
    }
    if (pos != table_.size()) {
      if (table_[pos].origins == *action.origins) {
        ++noops;  // re-announcement with unchanged origins
      } else {
        table_[pos].origins = std::move(*action.origins);
        ++reorigins;
        oldest = std::min(oldest, action.enqueued_at);
      }
      continue;
    }
    if (overlaps_surviving(action.prefix, withdrawn_cells) ||
        overlaps_sorted(action.prefix, adds_sorted)) {
      ++rejected;  // keeps the partition disjoint; counted, never applied
      continue;
    }
    adds_sorted.insert(
        std::lower_bound(adds_sorted.begin(), adds_sorted.end(),
                         action.prefix),
        action.prefix);
    adds.push_back(
        bgp::Pfx2AsRecord{action.prefix, std::move(*action.origins)});
    adds_enqueued.push_back(action.enqueued_at);
    ++announces;
    oldest = std::min(oldest, action.enqueued_at);
  }

  // --- Patch the table (one ascending merge, == RibDelta::apply) --------
  std::vector<net::Prefix> add_prefixes;
  if (!removes.empty() || !adds.empty()) {
    std::sort(removes.begin(), removes.end());
    std::vector<std::size_t> add_order(adds.size());
    for (std::size_t i = 0; i < add_order.size(); ++i) add_order[i] = i;
    std::sort(add_order.begin(), add_order.end(),
              [&](std::size_t a, std::size_t b) {
                return adds[a].prefix < adds[b].prefix;
              });
    add_prefixes.reserve(adds.size());
    std::vector<double> sorted_enqueued;
    sorted_enqueued.reserve(adds.size());
    std::vector<bgp::Pfx2AsRecord> sorted_adds;
    sorted_adds.reserve(adds.size());
    for (const std::size_t i : add_order) {
      add_prefixes.push_back(adds[i].prefix);
      sorted_enqueued.push_back(adds_enqueued[i]);
      sorted_adds.push_back(std::move(adds[i]));
    }
    adds = std::move(sorted_adds);
    adds_enqueued = std::move(sorted_enqueued);

    std::vector<bgp::Pfx2AsRecord> merged;
    merged.reserve(table_.size() + adds.size() - removes.size());
    std::size_t ai = 0, ri = 0;
    for (bgp::Pfx2AsRecord& record : table_) {
      while (ai < adds.size() && adds[ai].prefix < record.prefix) {
        merged.push_back(std::move(adds[ai++]));
      }
      if (ri < removes.size() && removes[ri] == record.prefix) {
        ++ri;
        continue;
      }
      merged.push_back(std::move(record));
    }
    while (ai < adds.size()) merged.push_back(std::move(adds[ai++]));
    table_ = std::move(merged);
  }

  // --- Patch partition + counts (the churn_step sequence) ---------------
  bgp::PartitionDelta pdelta{std::move(removes), add_prefixes};
  bgp::PartitionApplyResult result;
  if (!pdelta.empty()) {
    result = partition_.apply_delta(pdelta);
  } else {
    result.old_cell_count =
        static_cast<std::uint32_t>(partition_.size());
    result.new_cell_count = result.old_cell_count;
  }
  TASS_EXPECTS(counts_.size() == result.old_cell_count);
  result.reindex(counts_);

  // Deferred budgets are re-checked against the post-delta partition so
  // a cell withdrawn (or reused) this batch can never reach the dirty
  // set.
  std::vector<std::uint32_t> dirty;
  collect_ready_deferred(now, dirty, oldest);
  std::sort(dirty.begin(), dirty.end());

  if (announces + withdraws + reorigins + noops + rejected == 0 &&
      dirty.empty()) {
    return false;
  }

  // Politeness shaping: an added cell may only rescan when its origin
  // AS has probe budget; otherwise it is deferred (ranked at zero until
  // the bucket refills).
  std::vector<std::uint32_t> rescan;
  std::uint64_t paced = 0;
  const bool can_rescan = oracle_ != nullptr && engine_ != nullptr;
  for (std::size_t i = 0; i < result.added_cells.size(); ++i) {
    const std::uint32_t cell = result.added_cells[i];
    if (can_rescan && pacing_enabled()) {
      const net::Prefix prefix = partition_.prefix(cell);
      const std::size_t pos = table_find(prefix);
      const std::uint32_t asn =
          pos != table_.size() ? table_[pos].origins.front() : 0;
      scan::TokenBucket& bucket = bucket_for(asn);
      const double tokens =
          std::min(static_cast<double>(prefix.size()), bucket.burst());
      if (!bucket.try_consume(tokens, now)) {
        // added_cells is ascending and parallel to the sorted adds, so
        // index i maps the cell back to its enqueue time.
        const double enqueued_at =
            i < adds_enqueued.size() ? adds_enqueued[i] : now;
        deferred_.push_back(Deferred{cell, prefix, asn, enqueued_at});
        ++paced;
        continue;
      }
    }
    rescan.push_back(cell);
  }
  rescan.insert(rescan.end(), dirty.begin(), dirty.end());
  std::sort(rescan.begin(), rescan.end());
  rescan.erase(std::unique(rescan.begin(), rescan.end()), rescan.end());

  std::uint64_t rescanned_addresses = 0;
  if (can_rescan && !rescan.empty()) {
    const scan::ScanScope scope =
        scan::ScanScope::of_cells(partition_, rescan);
    const scan::AttributedScanResult attributed =
        engine_->run_attributed(scope, *oracle_, partition_);
    rescanned_addresses = attributed.result.stats.probes_sent;
    for (const std::uint32_t cell : rescan) {
      counts_[cell] =
          static_cast<std::uint32_t>(attributed.cell_counts[cell]);
    }
  }

  const bool changed = !pdelta.empty() || !dirty.empty();
  if (changed) {
    core::rerank_cells(ranking_, counts_, partition_, result, dirty);
  }

  // --- Publish ----------------------------------------------------------
  double latency = 0.0;
  bool published = false;
  if (changed && publisher_) {
    PublishedPlan plan;
    plan.seq = ++seq_;
    plan.fingerprint = bgp::partition_fingerprint(partition_);
    plan.image = state::encode_image(partition_, ranking_);
    plan.batch_updates = announces + withdraws + reorigins;
    latency = oldest == std::numeric_limits<double>::infinity()
                  ? 0.0
                  : std::max(0.0, clock_() - oldest);
    plan.update_to_plan_seconds = latency;
    published = true;
    publisher_(std::move(plan));
  }

  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.batches;
    stats_.applied_announces += announces;
    stats_.applied_withdraws += withdraws;
    stats_.applied_reorigins += reorigins;
    stats_.noop_updates += noops;
    stats_.rejected_overlaps += rejected;
    stats_.paced_deferrals += paced;
    stats_.deferred_pending = deferred_.size();
    stats_.rescanned_cells += rescan.size();
    stats_.rescanned_addresses += rescanned_addresses;
    if (published) {
      ++stats_.plans_published;
      stats_.last_update_to_plan_seconds = latency;
      stats_.max_update_to_plan_seconds =
          std::max(stats_.max_update_to_plan_seconds, latency);
    }
  }
  return true;
}

// --- Synchronous mode ----------------------------------------------------

void StreamReactor::feed(std::span<const std::byte> data) {
  TASS_EXPECTS(!running_.load(std::memory_order_relaxed));
  framer_.push(data);
  drain_framer(/*blocking=*/false);
  snapshot_framer_stats();
}

bool StreamReactor::poll() {
  TASS_EXPECTS(!running_.load(std::memory_order_relaxed));
  return process_batch();
}

void StreamReactor::flush() {
  TASS_EXPECTS(!running_.load(std::memory_order_relaxed));
  while (process_batch()) {
  }
}

void StreamReactor::finish() {
  TASS_EXPECTS(!running_.load(std::memory_order_relaxed));
  framer_.finish();
  snapshot_framer_stats();
}

// --- Asynchronous mode ---------------------------------------------------

void StreamReactor::ingest_loop(UpdateSource& source) {
  std::vector<std::byte> chunk(options_.read_chunk);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const std::size_t got = source.read(std::span(chunk));
    if (got == 0) {
      if (source.exhausted()) break;
      // Sources with no internal park (BufferSource) would spin here.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    framer_.push(std::span<const std::byte>(chunk.data(), got));
    drain_framer(/*blocking=*/true);
    snapshot_framer_stats();
  }
  framer_.finish();
  snapshot_framer_stats();
  // Sole producer: closing here lets the pipeline drain and quiesce.
  queue_.close();
}

void StreamReactor::pipeline_loop() {
  while (true) {
    const bool have =
        queue_.wait_nonempty(options_.max_batch_delay_seconds);
    if (have || !deferred_.empty()) process_batch();
    if (queue_.closed() && queue_.size() == 0) {
      if (deferred_.empty() ||
          stop_requested_.load(std::memory_order_relaxed)) {
        break;
      }
      // Feed ended but paced rescans still owe probes: tick until the
      // budgets refill or stop() is requested. wait_nonempty returns
      // immediately on a closed queue, so pace the loop explicitly.
      if (!have) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.max_batch_delay_seconds));
      }
    }
  }
}

void StreamReactor::start(std::unique_ptr<UpdateSource> source) {
  TASS_EXPECTS(source != nullptr);
  TASS_EXPECTS(!running_.load());
  TASS_EXPECTS(!queue_.closed());  // one start per reactor lifetime
  stop_requested_.store(false);
  source_ = std::move(source);
  running_.store(true);
  ingest_thread_ = std::thread([this] { ingest_loop(*source_); });
  pipeline_thread_ = std::thread([this] { pipeline_loop(); });
}

void StreamReactor::stop() {
  stop_requested_.store(true);
  queue_.close();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (pipeline_thread_.joinable()) pipeline_thread_.join();
  source_.reset();
  running_.store(false);
}

void StreamReactor::join() {
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (pipeline_thread_.joinable()) pipeline_thread_.join();
  source_.reset();
  running_.store(false);
}

ReactorStats StreamReactor::stats() const {
  ReactorStats out;
  {
    std::lock_guard lock(stats_mutex_);
    out = stats_;
  }
  out.queue = queue_.stats();
  return out;
}

}  // namespace tass::stream
