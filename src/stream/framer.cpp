#include "stream/framer.hpp"

#include <algorithm>

#include "bgp/mrt.hpp"
#include "util/error.hpp"

namespace tass::stream {
namespace {

constexpr std::size_t kMrtHeaderBytes = 12;
constexpr std::size_t kCompactThreshold = 1u << 16;

std::uint16_t read_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<unsigned>(p[0]) << 8) |
                                    std::to_integer<unsigned>(p[1]));
}

std::uint32_t read_u32(const std::byte* p) noexcept {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

}  // namespace

void MrtFramer::push(std::span<const std::byte> data) {
  stats_.bytes_in += data.size();
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool MrtFramer::plausible_header(std::size_t offset) const noexcept {
  const std::byte* p = buffer_.data() + offset;
  auto type = read_u16(p + 4);
  auto subtype = read_u16(p + 6);
  auto length = read_u32(p + 8);
  if (length > kMaxRecordBytes) return false;
  using bgp::Bgp4mpSubtype;
  using bgp::MrtType;
  using bgp::TableDumpV2Subtype;
  if (type == static_cast<std::uint16_t>(MrtType::kBgp4mp)) {
    return subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage) ||
           subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
  }
  if (type == static_cast<std::uint16_t>(MrtType::kTableDumpV2)) {
    return subtype ==
               static_cast<std::uint16_t>(
                   TableDumpV2Subtype::kPeerIndexTable) ||
           subtype ==
               static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast);
  }
  return false;
}

void MrtFramer::discard(std::size_t count) {
  consumed_ += count;
  stats_.bytes_discarded += count;
}

void MrtFramer::resync() {
  ++stats_.resyncs;
  // The byte at consumed_ started a record we rejected; it can never
  // start a good one, so drop it, then scan byte-at-a-time for the next
  // plausible header. One-byte steps guarantee no intact record in the
  // buffer is ever jumped over.
  discard(1);
  while (buffer_.size() - consumed_ >= kMrtHeaderBytes &&
         !plausible_header(consumed_)) {
    discard(1);
  }
  compact();
}

void MrtFramer::compact() {
  if (consumed_ >= kCompactThreshold) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<bgp::RibDelta> MrtFramer::next() {
  while (true) {
    std::size_t available = buffer_.size() - consumed_;
    if (available < kMrtHeaderBytes) return std::nullopt;
    if (!plausible_header(consumed_)) {
      resync();
      continue;
    }
    std::uint32_t body = read_u32(buffer_.data() + consumed_ + 8);
    std::size_t total = kMrtHeaderBytes + body;
    if (total > available) return std::nullopt;  // record still arriving

    std::span<const std::byte> record(buffer_.data() + consumed_, total);
    try {
      std::size_t skipped = 0;
      bgp::RibDelta delta = bgp::decode_mrt_updates(record, &skipped);
      consumed_ += total;
      compact();
      if (skipped > 0) {
        // Valid MRT, but not an IPv4 BGP4MP_MESSAGE_AS4 UPDATE — consume
        // without surfacing.
        stats_.skipped_records += skipped;
        continue;
      }
      ++stats_.records;
      return delta;
    } catch (const FormatError&) {
      ++stats_.decode_errors;
      resync();
      continue;
    }
  }
}

void MrtFramer::finish() {
  std::size_t remaining = buffer_.size() - consumed_;
  if (remaining > 0) {
    ++stats_.truncated_tail;
    discard(remaining);
  }
  buffer_.clear();
  consumed_ = 0;
}

}  // namespace tass::stream
